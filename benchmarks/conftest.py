"""Benchmark-suite plumbing.

Each benchmark regenerates one table/figure of the paper (see DESIGN.md
for the experiment index), prints the rendered artifact, appends it to
``results/benchmark_report.txt``, and asserts the paper's qualitative
shape.  Resolution follows the ``REPRO_PROFILE`` env var (default
``bench``; use ``paper`` for the full grids reported in EXPERIMENTS.md,
``smoke`` for a fast pass).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.bench.report import save_report

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_path():
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "benchmark_report.txt"
    if os.environ.get("REPRO_FRESH_REPORT", "1") == "1" and path.exists():
        path.unlink()
        os.environ["REPRO_FRESH_REPORT"] = "0"
    return path


@pytest.fixture
def emit(results_path):
    """Print a rendered block and persist it to the results file."""

    def _emit(text):
        print()
        print(text)
        save_report(results_path, text)
        return text

    return _emit


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
