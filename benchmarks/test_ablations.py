"""Ablations for the design choices DESIGN.md calls out.

* contour cost ratio (Section 4.2 remark: doubling is near-optimal for
  SB; ~1.8 marginally better in 2D);
* anorexic-reduction threshold lambda (PB's bound knob);
* ESS grid resolution (discretization stability);
* bounded cost-model error (Section 7's (1+delta)^2 inflation);
* the pipeline-based spill-node total order vs a naive policy.
"""

from benchmarks.conftest import once
from repro.bench import harness
from repro.bench.report import format_table


def test_ablation_contour_ratio(benchmark, emit):
    rows = once(benchmark,
                lambda: harness.run_ablation_cost_ratio("4D_Q91"))
    emit(format_table(
        "Ablation: contour cost ratio (SpillBound, 4D_Q91)",
        ["ratio", "contours", "SB MSOe", "SB ASO"],
        [[r["ratio"], r["num_contours"], r["sb_msoe"], r["sb_aso"]]
         for r in rows],
    ))
    # More aggressive spacing -> fewer contours.
    contour_counts = [r["num_contours"] for r in rows]
    assert contour_counts == sorted(contour_counts, reverse=True)
    # Empirical MSO stays bounded across sensible ratios.
    for row in rows:
        assert row["sb_msoe"] <= 28.0 * row["ratio"]


def test_ablation_lambda(benchmark, emit):
    rows = once(benchmark, lambda: harness.run_ablation_lambda("4D_Q91"))
    emit(format_table(
        "Ablation: anorexic reduction threshold (PlanBouquet, 4D_Q91)",
        ["lambda", "rho_red", "PB MSOg", "PB MSOe"],
        [[r["lambda"], r["rho_red"], r["pb_msog"], r["pb_msoe"]]
         for r in rows],
    ))
    rhos = [r["rho_red"] for r in rows]
    assert rhos == sorted(rhos, reverse=True)  # reduction bites
    for row in rows:
        assert row["pb_msoe"] <= row["pb_msog"] * (1 + 1e-9)


def test_ablation_resolution(benchmark, emit):
    rows = once(benchmark, lambda: harness.run_ablation_resolution("3D_Q15"))
    emit(format_table(
        "Ablation: ESS grid resolution (SpillBound, 3D_Q15)",
        ["per-dim resolution", "grid points", "SB MSOe", "SB ASO"],
        [[r["resolution"], r["grid_points"], r["sb_msoe"], r["sb_aso"]]
         for r in rows],
    ))
    # The empirical MSO is stable (within the guarantee) as the grid
    # refines — discretization does not manufacture violations.
    for row in rows:
        assert row["sb_msoe"] <= 18.0 + 1e-9
    finest, coarsest = rows[-1]["sb_msoe"], rows[0]["sb_msoe"]
    assert finest <= coarsest * 2.5


def test_ablation_cost_noise(benchmark, emit):
    rows = once(benchmark, lambda: harness.run_ablation_cost_noise("4D_Q26"))
    emit(format_table(
        "Ablation: bounded cost-model error (SpillBound, 4D_Q26)",
        ["delta", "SB MSOe vs true model", "(1+delta)^2-inflated bound"],
        [[r["delta"], r["sb_msoe_vs_true"], r["bound_with_inflation"]]
         for r in rows],
    ))
    for row in rows:
        # Section 7: guarantees carry through modulo (1+delta)^2.
        assert row["sb_msoe_vs_true"] <= row["bound_with_inflation"] * (
            1 + 1e-9
        )


def test_ablation_search_space(benchmark, emit):
    rows = once(benchmark, lambda: harness.run_ablation_search_space("4D_Q91"))
    emit(format_table(
        "Ablation: bushy vs left-deep optimizer search space (4D_Q91)",
        ["space", "POSP", "rho", "origin cost", "SB MSOe", "SB ASO"],
        [[r["space"], r["posp_size"], r["rho"], r["origin_cost"],
          r["sb_msoe"], r["sb_aso"]] for r in rows],
    ))
    bushy, left_deep = rows
    # The restricted space can only prune plans...
    assert left_deep["posp_size"] <= bushy["posp_size"]
    # ...and can never beat the bushy optimum anywhere.
    assert left_deep["origin_cost"] >= bushy["origin_cost"] * (1 - 1e-9)
    # The guarantee is structural: MSO stays bounded in both spaces.
    for row in rows:
        assert row["sb_msoe"] <= 28.0 + 1e-9


def test_ablation_spill_order(benchmark, emit):
    data = once(benchmark, lambda: harness.run_ablation_spill_order("4D_Q26"))
    emit(format_table(
        "Ablation: pipeline spill order vs naive first-dimension policy",
        ["query", "POSP plans", "order differs", "naive unsound"],
        [[data["query"], data["posp_size"], data["order_disagreements"],
          data["naive_unsound"]]],
    ))
    # The naive policy frequently picks a spill node whose subtree still
    # contains unlearned epps — voiding guaranteed learning (Lemma 3.1).
    assert data["order_disagreements"] > 0
    assert data["naive_unsound"] > 0
