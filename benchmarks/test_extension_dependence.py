"""Future-work extension: SpillBound under dependent selectivities.

The paper assumes selectivity independence and defers the dependent
case to future work (Sections 2.4, 9).  This experiment quantifies why:
the discovery machinery keeps its SI-built contours and plan choices,
but execution outcomes follow fuzzy-AND-correlated cardinalities of
strength theta between one epp pair.  At theta = 0 the behaviour (and
the D^2+3D guarantee) is exactly recovered; as theta grows, budgeted
executions are mispredicted and the empirical MSO drifts away from the
SI guarantee — bounded by Section 7's (1+delta)^2 envelope with delta
the worst correction factor on the explored region.
"""

from benchmarks.conftest import once
from repro.bench import harness
from repro.bench.report import format_table


def test_extension_dependent_selectivities(benchmark, emit):
    rows = once(
        benchmark,
        lambda: harness.run_extension_dependence(
            "3D_Q15", thetas=(0.0, 0.3, 0.7)
        ),
    )
    emit(format_table(
        "Extension: SpillBound under SI violation (3D_Q15, one epp pair)",
        ["theta", "SB MSOe", "SB ASO", "worst correction", "SI guarantee"],
        [[r["theta"], r["sb_msoe"], r["sb_aso"], r["worst_correction"],
          r["si_guarantee"]] for r in rows],
    ))
    base = rows[0]
    # theta = 0 reproduces the SI behaviour and its guarantee.
    assert base["worst_correction"] == 1.0
    assert base["sb_msoe"] <= base["si_guarantee"] * (1 + 1e-9)
    # Positive correlation produces real cost mispredictions...
    assert rows[-1]["worst_correction"] > 10.0
    # ...and the empirical MSO visibly drifts beyond the SI guarantee,
    # while staying inside the Section 7 envelope for the observed
    # correction bound.
    assert rows[-1]["sb_msoe"] > base["si_guarantee"]
    envelope = base["si_guarantee"] * rows[-1]["worst_correction"] ** 2
    assert rows[-1]["sb_msoe"] <= envelope
