"""Figure 10: empirical MSO (MSOe) via exhaustive ESS enumeration.

Paper findings: (i) SB's empirical MSO sits far below its guarantee;
(ii) SB beats PB empirically across the suite.
"""

from benchmarks.conftest import once
from repro.bench import harness
from repro.bench.report import format_table


def test_fig10_empirical_mso(benchmark, emit):
    rows = once(benchmark, lambda: harness.run_fig10())
    emit(format_table(
        "Figure 10: empirical MSO (exhaustive qa sweep)",
        ["query", "D", "PB MSOe", "SB MSOe", "PB MSOg", "SB MSOg"],
        [[r["query"], r["D"], r["pb_msoe"], r["sb_msoe"], r["pb_msog"],
          r["sb_msog"]] for r in rows],
    ))
    for row in rows:
        assert 1.0 - 1e-9 <= row["pb_msoe"] <= row["pb_msog"] * (1 + 1e-9)
        assert 1.0 - 1e-9 <= row["sb_msoe"] <= row["sb_msog"] * (1 + 1e-9)
        # SB's empirical MSO is well below its guarantee (Section 6.2.3).
        assert row["sb_msoe"] < row["sb_msog"]
    # SB beats (or matches) PB empirically on the large majority of the
    # suite, and never loses badly.
    wins = sum(1 for r in rows if r["sb_msoe"] <= r["pb_msoe"] * 1.02)
    assert wins >= len(rows) * 0.7
    for row in rows:
        assert row["sb_msoe"] <= row["pb_msoe"] * 1.8
