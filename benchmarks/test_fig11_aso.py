"""Figure 11: average sub-optimality (ASO), PB vs SB.

Paper finding: SB's worst-case gains are *not* bought with worse
average-case behaviour — ASO improves too, especially at higher D.
"""

from benchmarks.conftest import once
from repro.bench import harness
from repro.bench.report import format_table


def test_fig11_aso(benchmark, emit):
    rows = once(benchmark, lambda: harness.run_fig11())
    emit(format_table(
        "Figure 11: ASO under a uniform qa prior",
        ["query", "PB ASO", "SB ASO"],
        [[r["query"], r["pb_aso"], r["sb_aso"]] for r in rows],
    ))
    for row in rows:
        assert row["pb_aso"] >= 1.0 - 1e-9
        assert row["sb_aso"] >= 1.0 - 1e-9
        # SB's average case stays at or below PB's (small tolerance).
        assert row["sb_aso"] <= row["pb_aso"] * 1.15
    wins = sum(1 for r in rows if r["sb_aso"] <= r["pb_aso"])
    assert wins >= len(rows) * 0.7
