"""Figure 12: sub-optimality distribution over the ESS (4D_Q91).

Paper finding: SB concentrates the ESS mass in the lowest
sub-optimality bin (SubOpt < 5 for over 90% of locations, vs ~35% for
PB on their platform) — SB is better both globally and locally.
"""

from benchmarks.conftest import once
from repro.bench import harness
from repro.bench.report import format_histogram


def test_fig12_distribution(benchmark, emit):
    data = once(benchmark, lambda: harness.run_fig12("4D_Q91", bin_width=5.0))
    edges_pb, frac_pb = data["pb"]
    edges_sb, frac_sb = data["sb"]
    emit(format_histogram(
        "Figure 12a: PlanBouquet sub-optimality distribution (4D_Q91)",
        edges_pb, frac_pb,
    ))
    emit(format_histogram(
        "Figure 12b: SpillBound sub-optimality distribution (4D_Q91)",
        edges_sb, frac_sb,
    ))
    # SB's lowest bin holds at least as much mass as PB's, and holds
    # the overwhelming majority of locations.
    assert data["sb_below_first_bin"] >= data["pb_below_first_bin"] - 1e-9
    assert data["sb_below_first_bin"] >= 0.9
