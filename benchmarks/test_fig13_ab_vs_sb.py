"""Figure 13: empirical MSO, SpillBound vs AlignedBound.

Paper findings: AB's empirical MSO stays around 10 or lower on every
query, improves on SB where SB struggles, and lands near the lower end
(2D+2) of its guarantee range.
"""

from benchmarks.conftest import once
from repro.bench import harness
from repro.bench.report import format_table


def test_fig13_ab_vs_sb(benchmark, emit):
    rows = once(benchmark, lambda: harness.run_fig13())
    emit(format_table(
        "Figure 13: empirical MSO, SB vs AB (2D+2 reference)",
        ["query", "D", "SB MSOe", "AB MSOe", "2D+2", "D^2+3D"],
        [[r["query"], r["D"], r["sb_msoe"], r["ab_msoe"],
          r["ab_low_bound"], r["ab_high_bound"]] for r in rows],
    ))
    for row in rows:
        assert row["ab_msoe"] <= row["ab_high_bound"] * (1 + 1e-9)
        # AB never loses to SB by more than a small margin...
        assert row["ab_msoe"] <= row["sb_msoe"] * 1.10
        # ...and its empirical MSO approaches the linear regime: below
        # the midpoint of its guarantee range.
        midpoint = (row["ab_low_bound"] + row["ab_high_bound"]) / 2
        assert row["ab_msoe"] <= midpoint
    # Paper headline: AB completes virtually all queries with MSO
    # "around 10 or lower" — allow one outlier near the 2D+2 line.
    low = sum(1 for r in rows if r["ab_msoe"] <= 12.0)
    assert low >= len(rows) - 1
    # And AB's MSO never strays far above its linear-regime reference.
    for row in rows:
        assert row["ab_msoe"] <= row["ab_low_bound"] * 1.6
