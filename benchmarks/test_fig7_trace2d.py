"""Figure 7: the 2D-SpillBound execution trace on TPC-DS Q91.

Paper artifact: with qa = (0.04, 0.1), the running location qrun climbs
a Manhattan profile of axis-parallel moves toward qa, one move per
spill execution, finishing within the 2-epp guarantee of 10.
"""

from benchmarks.conftest import once
from repro.bench import harness
from repro.bench.report import format_table


def test_fig7_manhattan_trace(benchmark, emit):
    data = once(benchmark, lambda: harness.run_fig7("2D_Q91", qa=(0.04, 0.1)))
    emit(format_table(
        f"Figure 7: 2D-SpillBound trace on Q91, "
        f"qa=({data['qa'][0]:.4g}, {data['qa'][1]:.4g}) "
        f"(sub-optimality {data['suboptimality']:.2f}, "
        f"{data['num_contours']} contours)",
        ["IC", "mode", "plan", "spill dim", "qrun.x", "qrun.y", "done"],
        [[r["contour"], r["mode"], f"P{r['plan']}",
          "-" if r["spill_dim"] is None else f"e{r['spill_dim'] + 1}",
          r["qrun"][0], r["qrun"][1], "yes" if r["completed"] else "no"]
         for r in data["rows"]],
    ))
    waypoints = data["waypoints"]
    # Manhattan profile: qrun advances monotonically, never overshooting qa.
    for earlier, later in zip(waypoints, waypoints[1:]):
        assert all(b >= a - 1e-12 for a, b in zip(earlier, later))
    for point in waypoints:
        assert point[0] <= data["qa"][0] * (1 + 1e-9)
        assert point[1] <= data["qa"][1] * (1 + 1e-9)
    # Theorem 4.2: the 2-epp bound is 10.
    assert data["suboptimality"] <= 10.0 + 1e-9
