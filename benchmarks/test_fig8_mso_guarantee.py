"""Figure 8: MSO guarantees (MSOg), PlanBouquet vs SpillBound.

Paper finding: the two guarantee families are roughly comparable, with
SB noticeably tighter on some instances (4D_Q26, 4D_Q91, 6D_Q91) —
platform independence is not bought with a worse numerical bound.
"""

from benchmarks.conftest import once
from repro.bench import harness, workloads
from repro.bench.report import format_table


def test_fig8_guarantees(benchmark, emit):
    rows = once(benchmark, lambda: harness.run_fig8())
    emit(format_table(
        "Figure 8: MSO guarantees (PB = 4(1+lambda)rho, SB = D^2+3D)",
        ["query", "D", "rho_red", "PB MSOg", "SB MSOg"],
        [[r["query"], r["D"], r["rho_red"], r["pb_msog"], r["sb_msog"]]
         for r in rows],
    ))
    suite = workloads.evaluation_suite()
    assert [r["query"] for r in rows] == suite
    for row in rows:
        # Structural bound depends only on D...
        assert row["sb_msog"] == row["D"] ** 2 + 3 * row["D"]
        # ...and stays in the same ballpark as PB's behavioural bound.
        assert row["sb_msog"] <= max(4 * row["pb_msog"], 60)
    # SB's bound never explodes with the platform: it is bounded by the
    # 6D worst case across the whole suite.
    assert max(r["sb_msog"] for r in rows) == 54
