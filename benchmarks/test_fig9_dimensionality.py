"""Figure 9: MSO guarantee vs ESS dimensionality (TPC-DS Q91, D=2..6).

Paper finding: SB is marginally worse at D=2 but scales better — by
D=6 the SB bound (54) undercuts PB's growing behavioural bound.
"""

from benchmarks.conftest import once
from repro.bench import harness
from repro.bench.report import format_table


def test_fig9_dimensionality(benchmark, emit):
    rows = once(benchmark, lambda: harness.run_fig9())
    emit(format_table(
        "Figure 9: MSOg vs dimensionality (Q91)",
        ["D", "rho_red", "PB MSOg", "SB MSOg"],
        [[r["D"], r["rho_red"], r["pb_msog"], r["sb_msog"]] for r in rows],
    ))
    assert [r["D"] for r in rows] == [2, 3, 4, 5, 6]
    # The structural bound follows the exact quadratic.
    assert [r["sb_msog"] for r in rows] == [10, 18, 28, 40, 54]
    # PB's bound grows with rho as dimensionality rises.
    assert rows[-1]["rho_red"] >= rows[0]["rho_red"]
