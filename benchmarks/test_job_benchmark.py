"""Section 6.5: the Join Order Benchmark experiment (Query 1a).

Paper finding: on JOB — designed to break optimizers — the native
optimizer's MSO climbs "well above 6,000" while SpillBound stays near
12 and AlignedBound below 9.  The reproducible shape: a gap of orders
of magnitude between estimate-and-hope and budgeted discovery.
"""

from benchmarks.conftest import once
from repro.bench import harness
from repro.bench.report import format_table


def test_job_query_1a(benchmark, emit):
    data = once(benchmark, lambda: harness.run_job())
    emit(format_table(
        "Section 6.5: JOB Query 1a (3 epps)",
        ["metric", "value"],
        [
            ["native optimizer MSO", data["native_mso"]],
            ["SpillBound MSOe", data["sb_msoe"]],
            ["AlignedBound MSOe", data["ab_msoe"]],
            ["SpillBound guarantee", data["sb_msog"]],
        ],
    ))
    # Orders-of-magnitude collapse of the worst case.
    assert data["native_mso"] > 1_000
    assert data["native_mso"] > 100 * data["sb_msoe"]
    # Discovery MSO stays in the paper's regime.
    assert data["sb_msoe"] <= data["sb_msog"] * (1 + 1e-9)
    assert data["ab_msoe"] <= data["sb_msoe"] * 1.05
