"""Theorem 4.6: the MSO lower bound for half-space pruning algorithms.

The adversarial game forces any deterministic algorithm in the class E
to pay at least D times the oracle cost; the round-robin strategy
achieves exactly D, certifying SpillBound's D^2+3D guarantee is within
an O(D) factor of optimal.
"""

from benchmarks.conftest import once
from repro.bench import harness
from repro.bench.report import format_table


def test_lower_bound_demonstration(benchmark, emit):
    rows = once(benchmark, lambda: harness.run_lower_bound((2, 3, 4, 5, 6)))
    emit(format_table(
        "Theorem 4.6: adversarial lower bound (measured MSO >= D)",
        ["D", "measured MSO", "SB guarantee D^2+3D"],
        [[r["D"], r["measured_mso"], r["D"] ** 2 + 3 * r["D"]]
         for r in rows],
    ))
    for row in rows:
        assert row["measured_mso"] >= row["D"] - 1e-9
        # The gap to SB's guarantee is the paper's O(D) factor.
        assert row["D"] ** 2 + 3 * row["D"] <= (row["D"] + 3) * row[
            "measured_mso"
        ]
