"""Render the paper's figures as SVG files in ``results/figures/``.

Runs after the figure benchmarks (alphabetical collection), so all the
harness data is already cached within the session and rendering adds
negligible time.  The SVGs complement the tables in
``results/benchmark_report.txt`` (the table view).
"""

import xml.dom.minidom

from benchmarks.conftest import RESULTS_DIR, once
from repro.bench.figures import render_all_figures


def test_render_all_figures(benchmark, emit):
    outdir = RESULTS_DIR / "figures"
    paths = once(benchmark, lambda: render_all_figures(outdir))
    assert len(paths) == 7
    for path in paths:
        assert path.exists()
        xml.dom.minidom.parse(str(path))  # well-formed
    emit("== Figures rendered ==\n" + "\n".join(str(p) for p in paths))
