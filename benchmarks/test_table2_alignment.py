"""Table 2: the cost of enforcing contour alignment.

Paper finding: native alignment is partial; modest penalty thresholds
recover more contours; some instances need high penalties to align
fully — which is what motivates predicate-set alignment.
"""

from benchmarks.conftest import once
from repro.bench import harness
from repro.bench.report import format_table


def test_table2_alignment_cost(benchmark, emit):
    rows = once(benchmark, lambda: harness.run_table2())
    emit(format_table(
        "Table 2: % contours aligned vs replacement-penalty threshold",
        ["query", "original %", "<=1.2 %", "<=1.5 %", "<=2.0 %", "max pen"],
        [[r["query"], r["original_pct"], r["pct_at_1.2"], r["pct_at_1.5"],
          r["pct_at_2.0"], r["max_penalty"]] for r in rows],
    ))
    for row in rows:
        # Fractions are monotone in the allowed penalty.
        assert (row["original_pct"] <= row["pct_at_1.2"] + 1e-9)
        assert (row["pct_at_1.2"] <= row["pct_at_1.5"] + 1e-9)
        assert (row["pct_at_1.5"] <= row["pct_at_2.0"] + 1e-9)
        assert row["max_penalty"] >= 1.0
    # Alignment is never universal for free across the whole set
    # (Section 5.1: "we may not always find the alignment property
    # satisfied at all contours").
    assert any(r["original_pct"] < 100.0 for r in rows)
