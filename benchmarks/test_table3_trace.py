"""Table 3: SpillBound execution drill-down on 4D TPC-DS Q91.

Paper artifact: the contour-by-contour log of a single discovery run —
which epp each spill execution targeted, the selectivity learnt, and
the accumulated cost, ending in the full execution that returns the
query result.
"""

from benchmarks.conftest import once
from repro.bench import harness
from repro.bench.report import format_table, format_value


def test_table3_execution_drilldown(benchmark, emit):
    data = once(benchmark, lambda: harness.run_table3("4D_Q91"))
    rendered = []
    for row in data["rows"]:
        learned = (f"{row['learned_sel'] * 100:.3g}%"
                   if row["learned_sel"] == row["learned_sel"] else "-")
        rendered.append([
            row["contour"], row["mode"], row["epp"], f"P{row['plan']}",
            learned, format_value(row["cumulative_cost"]),
        ])
    emit(format_table(
        f"Table 3: SpillBound on 4D_Q91 at qa={data['qa']} "
        f"(sub-optimality {data['suboptimality']:.2f})",
        ["IC", "mode", "epp", "plan", "learned sel", "cumulative cost"],
        rendered,
    ))
    rows = data["rows"]
    # The run ascends contours monotonically and ends completed.
    contour_sequence = [r["contour"] for r in rows]
    assert contour_sequence == sorted(contour_sequence)
    assert rows[-1]["completed"]
    # Costs accumulate.
    costs = [r["cumulative_cost"] for r in rows]
    assert all(b >= a for a, b in zip(costs, costs[1:]))
    # Within the paper's 4-epp guarantee.
    assert data["suboptimality"] <= 28.0 + 1e-9
