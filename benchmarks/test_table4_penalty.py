"""Table 4: AlignedBound's maximum replacement penalty per query.

Paper finding: the penalties actually encountered during execution stay
small (below ~3 even at 6D), which is why induced alignment pays off.
"""

from benchmarks.conftest import once
from repro.bench import harness
from repro.bench.report import format_table


def test_table4_max_penalty(benchmark, emit):
    rows = once(benchmark, lambda: harness.run_table4())
    emit(format_table(
        "Table 4: maximum partition penalty encountered by AB",
        ["query", "max penalty"],
        [[r["query"], r["max_penalty"]] for r in rows],
    ))
    for row in rows:
        assert row["max_penalty"] >= 1.0
        # The paper's headline: encountered penalties stay small.
        assert row["max_penalty"] <= 5.0
