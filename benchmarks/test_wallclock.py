"""Section 6.3: the actual-execution (wall-clock) experiment.

Paper numbers on their 100 GB testbed (4D Q91): oracle 44s, native
628s (14.3x), SpillBound 246s (5.6x), AlignedBound 165s (3.8x).  At
our generated scale the absolute costs differ, but the ordering — the
native optimizer pays heavily for its correlated-selectivity blind
spot, while budgeted discovery stays within a few multiples of the
oracle — is the reproduced finding.  All strategies must return the
same result rows.
"""

from benchmarks.conftest import once
from repro.bench import harness
from repro.bench.report import format_table


def test_wallclock_actual_execution(benchmark, emit):
    result = once(benchmark, lambda: harness.run_wallclock(row_budget=40_000))
    emit(format_table(
        "Section 6.3: engine-measured costs (Q91-shaped, generated data)",
        ["strategy", "measured cost", "vs oracle", "executions"],
        [
            ["oracle", result["oracle_cost"], 1.0, 1],
            ["native", result["native_cost"], result["native_subopt"], 1],
            ["SpillBound", result["sb_cost"], result["sb_subopt"],
             result["sb_steps"]],
            ["AlignedBound", result["ab_cost"], result["ab_subopt"],
             result["ab_steps"]],
        ],
    ))
    # Correctness: every strategy returns the same result set.
    assert result["rows_match"]
    # The native optimizer's correlated-skew blind spot costs it a
    # substantial factor over the oracle...
    assert result["native_subopt"] >= 2.0
    # ...while budgeted discovery stays within its guarantee regime and
    # beats the native plan.
    assert result["sb_subopt"] <= 28.0
    assert result["sb_subopt"] < result["native_subopt"]
    assert result["ab_subopt"] <= result["sb_subopt"] * 1.05
