#!/usr/bin/env python3
"""Geometry tour: plan diagram, cost surface and contours (Figs 2/3/5/6).

Renders, for a 2-epp TPC-DS query, ASCII versions of the paper's
geometric illustrations:

* the POSP *plan diagram* — which plan is optimal where;
* the *optimal cost surface* (log-cost heat map);
* the iso-cost *contour bands* with their plan densities;
* per-contour *spill dimensions* and the contour-alignment check that
  AlignedBound exploits.

Run:  python examples/contour_geometry.py [query-name]   (default 2D_Q91)
"""

import sys

import numpy as np

from repro import ContourSet, ESS, ESSGrid, build_query, contour_alignment_stats

GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def render_grid(values, legend_title, formatter=None):
    """Print a 2-D grid of single-character glyphs, origin bottom-left."""
    rows = []
    for y in range(values.shape[1] - 1, -1, -1):
        line = "".join(values[x][y] for x in range(values.shape[0]))
        rows.append(f"  {line}")
    print("\n".join(rows))
    print(f"  (x = epp 1 selectivity ->, y = epp 2 selectivity ^; "
          f"{legend_title})")


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "2D_Q91"
    query = build_query(name)
    if query.num_epps != 2:
        raise SystemExit("pick a 2-epp query (e.g. 2D_Q91) for ASCII plots")
    print(query.describe())

    grid = ESSGrid(2, resolution=48,
                   sel_min=[min(1e-5, p.selectivity / 3) for p in query.epps])
    ess = ESS.build(query, grid)
    contours = ContourSet(ess)
    shape = grid.shape

    print(f"\n== Plan diagram ({ess.posp_size} POSP plans) ==")
    plan_ids = ess.plan_ids.reshape(shape)
    glyph = np.empty(shape, dtype=object)
    for x in range(shape[0]):
        for y in range(shape[1]):
            glyph[x][y] = GLYPHS[int(plan_ids[x][y]) % len(GLYPHS)]
    render_grid(glyph, "each glyph = one optimal plan")

    print("\n== Optimal cost surface (log10 cost, rescaled 0-9) ==")
    logc = np.log10(ess.optimal_cost.reshape(shape))
    scaled = np.clip(
        (logc - logc.min()) / max(logc.max() - logc.min(), 1e-9) * 9.999,
        0, 9,
    ).astype(int)
    digits = np.empty(shape, dtype=object)
    for x in range(shape[0]):
        for y in range(shape[1]):
            digits[x][y] = str(scaled[x][y])
    render_grid(digits, "0 = C_min, 9 = C_max")

    print(f"\n== Iso-cost contours (m = {contours.num_contours}, "
          f"ratio = {contours.cost_ratio}) ==")
    print(f"{'IC':>4} {'cost budget':>14} {'locations':>10} {'plans':>6}")
    for contour in contours:
        print(f"{contour.index:>4} {contour.budget:>14.4e} "
              f"{len(contour.points):>10} {contour.density:>6}")
    print(f"max density rho = {contours.max_density}")

    print("\n== Contour alignment (Section 5.1) ==")
    stats = contour_alignment_stats(ess, contours)
    print(f"natively aligned contours: "
          f"{100 * stats.fraction_aligned(1.0):.0f}%")
    for threshold in (1.2, 1.5, 2.0):
        print(f"aligned at penalty <= {threshold}: "
              f"{100 * stats.fraction_aligned(threshold):.0f}%")
    print(f"penalty to align every contour: {stats.max_penalty:.2f}")


if __name__ == "__main__":
    main()
