#!/usr/bin/env python3
"""Deployment workflow (paper Section 7 + the stated future work).

Walks the pragmatic path a deployment would take:

1. **Which predicates are error-prone?**  Analyze catalog statistics
   (with deliberately skewed data) and query-log feedback, and let
   :func:`repro.recommend_epps` rank the query's joins by estimation
   risk.
2. **Mark the epps and build the ESS offline** (Section 7 suggests
   offline contour enumeration for canned queries) — then persist it
   with :func:`repro.save_ess` and reload it without re-optimizing.
3. **Native or robust?**  The :class:`repro.RobustnessAdvisor` compares
   the native plan's worst case within an anticipated error radius
   against SpillBound's structural guarantee.

Run:  python examples/deployment_advisor.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    ContourSet,
    ESS,
    ESSGrid,
    RobustnessAdvisor,
    SpillBound,
    StatisticsCatalog,
    load_ess,
    recommend_epps,
    save_ess,
)
from repro.catalog.tpcds import q91


def main():
    query = q91()
    print(query.describe())

    # -- Step 1: rank predicates by estimation risk -----------------------
    catalog = StatisticsCatalog(query.schema)
    rng = np.random.default_rng(3)
    # Simulate an ANALYZE over skewed join columns.
    skewed = rng.zipf(1.4, size=50_000).clip(max=73_048)
    catalog.analyze("catalog_returns", "cr_returned_date_sk", skewed,
                    num_buckets=32)
    # Query-log feedback: one join's past estimate missed badly.
    observed = {"j:c-ca": 0.1}
    recommendations = recommend_epps(query, catalog, observed=observed,
                                     max_epps=4)
    print("\nestimation-risk ranking (top 4):")
    for rec in recommendations:
        print(f"  {rec}")

    # -- Step 2: mark the epps, build the ESS offline, persist ------------
    marked = query.with_epps([r.name for r in recommendations[:2]])
    print(f"\nmarked query: D = {marked.num_epps} "
          f"({[p.name for p in marked.epps]})")
    grid = ESSGrid(marked.num_epps, resolution=16,
                   sel_min=[min(1e-5, p.selectivity / 3)
                            for p in marked.epps])
    ess = ESS.build(marked, grid)
    with tempfile.TemporaryDirectory() as tmp:
        archive = Path(tmp) / "q91_ess.npz"
        save_ess(ess, archive)
        restored = load_ess(archive, marked)
        print(f"persisted and reloaded the ESS "
              f"({archive.stat().st_size} bytes, "
              f"{restored.posp_size} POSP plans)")

    # -- Step 3: native or robust? ----------------------------------------
    advisor = RobustnessAdvisor(ess)
    print(f"\nSpillBound guarantee for this query: "
          f"{SpillBound.mso_guarantee_for(marked.num_epps):.0f}")
    for radius in (2, 10, 100, 10_000):
        advice = advisor.advise(ess.grid.origin, radius)
        verdict = "robust" if advice.use_robust else "native"
        print(f"  anticipated error {radius:>6}x  ->  {verdict:<7} "
              f"(native worst case {advice.native_worst_case:,.1f})")
    crossover = advisor.crossover_radius(ess.grid.origin)
    if crossover is None:
        print("\nfor this query/marking the native plan is robust at any "
              "tested error radius\n(its plan diagram is benign) — the "
              "advisor correctly keeps the native optimizer.")
    else:
        print(f"\ncrossover: robust processing wins once errors can "
              f"exceed ~{crossover:g}x")

    # -- Contrast: a JOB query, where the verdict flips --------------------
    from repro import q1a

    job = q1a(num_epps=3)
    job_grid = ESSGrid(3, resolution=10,
                       sel_min=[min(1e-5, p.selectivity / 3)
                                for p in job.epps])
    job_advisor = RobustnessAdvisor(ESS.build(job, job_grid))
    print("\nthe same question for JOB 1a (correlation-heavy workload,\n"
          "where true selectivities sit orders of magnitude above "
          "estimates):")
    for radius in (100, 10_000, 1_000_000):
        advice = job_advisor.advise(job_grid.origin, radius)
        verdict = "robust" if advice.use_robust else "native"
        print(f"  anticipated error {radius:>6}x  ->  {verdict:<7} "
              f"(native worst case {advice.native_worst_case:,.1f})")


if __name__ == "__main__":
    main()
