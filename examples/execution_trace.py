#!/usr/bin/env python3
"""Execution traces: Figure 7's Manhattan profile and Table 3's drill-down.

Part 1 replays 2D-SpillBound on TPC-DS Q91 with the paper's query
location qa = (0.04, 0.1) and prints the Manhattan profile of the
running location ``qrun`` as it chases ``qa``.

Part 2 drills into the 4-epp variant, printing the contour-by-contour
execution log (which epp each spill execution targeted, what was learnt,
and the cumulative cost) in the style of the paper's Table 3.

Run:  python examples/execution_trace.py
"""

from repro.bench.harness import run_fig7, run_table3


def manhattan_profile():
    data = run_fig7("2D_Q91", qa=(0.04, 0.1))
    print("== Figure 7: 2D-SpillBound trace on TPC-DS Q91 ==")
    print(f"qa (snapped to grid): ({data['qa'][0]:.3g}, {data['qa'][1]:.3g})"
          f"   contours: {data['num_contours']}")
    print(f"{'step':>4} {'IC':>3} {'mode':>7} {'plan':>5} "
          f"{'qrun.x':>10} {'qrun.y':>10} {'done':>5}")
    for i, row in enumerate(data["rows"], 1):
        qx, qy = row["qrun"]
        print(f"{i:>4} {row['contour']:>3} {row['mode']:>7} "
              f"P{row['plan']:<4} {qx:>10.3g} {qy:>10.3g} "
              f"{'yes' if row['completed'] else 'no':>5}")
    print(f"sub-optimality: {data['suboptimality']:.2f} "
          f"(2-epp guarantee is 10)\n")


def drill_down():
    data = run_table3("4D_Q91")
    print("== Table 3: SpillBound execution on 4D TPC-DS Q91 ==")
    print(f"qa grid coordinates: {data['qa']}")
    print(f"{'IC':>3} {'mode':>7} {'epp':>4} {'plan':>5} "
          f"{'learned sel':>12} {'cum. cost':>12}")
    for row in data["rows"]:
        learned = (f"{row['learned_sel'] * 100:.3g}%"
                   if row["learned_sel"] == row["learned_sel"] else "-")
        print(f"{row['contour']:>3} {row['mode']:>7} {row['epp']:>4} "
              f"P{row['plan']:<4} {learned:>12} "
              f"{row['cumulative_cost']:>12.4e}")
    print(f"sub-optimality: {data['suboptimality']:.2f} "
          f"(4-epp guarantee is 28)")


if __name__ == "__main__":
    manhattan_profile()
    drill_down()
