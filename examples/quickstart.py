#!/usr/bin/env python3
"""Quickstart: robust processing of the paper's example query (Fig. 1).

Builds the introduction's 2-epp query EQ — orders of cheap parts, with
two error-prone join predicates — then:

1. sweeps the optimizer over the Error-prone Selectivity Space,
2. draws the cost-doubling iso-cost contours,
3. runs PlanBouquet, SpillBound and AlignedBound for a query instance
   whose actual selectivities are *not* what any estimator would guess,
4. prints each algorithm's budgeted execution sequence and
   sub-optimality against the oracle.

Run:  python examples/quickstart.py
"""

from repro import (
    AlignedBound,
    Column,
    ContourSet,
    ESS,
    ESSGrid,
    PlanBouquet,
    Schema,
    SPJQuery,
    SpillBound,
    Table,
    filter_pred,
    fk_column,
    join,
    key_column,
)


def build_example_query():
    """The paper's Figure 1 query: cheap-part orders with two epps."""
    schema = Schema("tpch_like", tables=[
        Table("part", 2_000_000, [
            key_column("p_partkey", 2_000_000),
            Column("p_retailprice", ndv=30_000, indexed=True),
        ]),
        Table("lineitem", 60_000_000, [
            fk_column("l_partkey", 2_000_000, indexed=True),
            fk_column("l_orderkey", 15_000_000, indexed=True),
        ]),
        Table("orders", 15_000_000, [
            key_column("o_orderkey", 15_000_000),
        ]),
    ])
    return SPJQuery("EQ", schema, ["part", "lineitem", "orders"], joins=[
        join("part", "p_partkey", "lineitem", "l_partkey",
             selectivity=2e-5, error_prone=True),
        join("orders", "o_orderkey", "lineitem", "l_orderkey",
             selectivity=3e-4, error_prone=True),
    ], filters=[
        filter_pred("part", "p_retailprice", "<", 1000, selectivity=0.05),
    ])


def describe_run(label, result):
    print(f"\n{label}:")
    print(f"  executions: {result.num_executions}, "
          f"contours visited: {result.contours_visited}")
    for record in result.executions:
        spill = (f" spill e{record.spill_dim + 1}"
                 if record.spill_dim is not None else "")
        status = "completed" if record.completed else "killed at budget"
        print(f"    IC{record.contour:<2} plan P{record.plan_id:<3}{spill:<10} "
              f"budget {record.budget:12.3e}  ->  {status}")
    print(f"  total cost {result.total_cost:.3e} vs oracle "
          f"{result.optimal_cost:.3e}  =>  sub-optimality "
          f"{result.suboptimality:.2f}")


def main():
    query = build_example_query()
    print(query.describe())

    grid = ESSGrid(query.num_epps, resolution=32, sel_min=1e-7)
    print("\nSweeping the optimizer over the ESS grid "
          f"({grid.num_points} locations)...")
    ess = ESS.build(query, grid)
    contours = ContourSet(ess)
    print(f"POSP holds {ess.posp_size} plans across "
          f"{contours.num_contours} cost-doubling contours "
          f"(max density rho = {contours.max_density})")

    pb = PlanBouquet(ess, contours)
    sb = SpillBound(ess, contours)
    ab = AlignedBound(ess, contours)
    print(f"\nguarantees:  PlanBouquet 4(1+lam)rho = {pb.mso_guarantee():.1f}"
          f"   SpillBound D^2+3D = {sb.mso_guarantee():.0f}"
          f"   AlignedBound in [{ab.mso_guarantee_range()[0]:.0f}, "
          f"{ab.mso_guarantee_range()[1]:.0f}]")

    qa = query.true_location()
    print(f"\nactual selectivities (unknown to the algorithms): {qa}")
    describe_run("PlanBouquet", pb.run(qa, trace=True))
    describe_run("SpillBound", sb.run(qa, trace=True))
    describe_run("AlignedBound", ab.run(qa, trace=True))


if __name__ == "__main__":
    main()
