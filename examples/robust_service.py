#!/usr/bin/env python3
"""A robust query-processing service over a mixed workload.

Puts the whole Section 7 deployment story together with
:class:`repro.RobustSession`:

* canned queries get their ESS built once and persisted to disk;
* each incoming instance is routed native-vs-robust by the advisor,
  using an error radius sharpened by query-log feedback;
* robust runs feed their *discovered* selectivities back into the log,
  so the session gets smarter as the workload flows.

The workload mixes a benign TPC-DS star (estimation errors barely
matter) with JOB 1a (estimates off by orders of magnitude): the session
keeps the first on the native optimizer and reroutes the second to
SpillBound after its first burned estimate.

Run:  python examples/robust_service.py
"""

import tempfile

from repro import RobustSession, build_query, q1a


def main():
    workload = [
        ("benign star", build_query("2D_Q3")),
        ("JOB 1a", q1a(num_epps=2)),
    ]
    with tempfile.TemporaryDirectory() as cache:
        session = RobustSession(cache_dir=cache, algorithm="sb",
                                error_radius=1.5, resolution=10)
        print("preparing canned queries (offline ESS construction)...")
        for label, query in workload:
            bundle = session.prepare(query)
            print(f"  {label:<12} D={query.num_epps}  "
                  f"POSP={bundle['ess'].posp_size}  "
                  f"contours={bundle['contours'].num_contours}")

        print("\nprocessing the query stream:")
        stream = [workload[0], workload[1], workload[0], workload[1],
                  workload[1]]
        for round_number, (label, query) in enumerate(stream, 1):
            decision = session.execute(query)
            print(f"  #{round_number} {label:<12} -> {decision.route:<7} "
                  f"sub-optimality {decision.suboptimality:6.2f}   "
                  f"({decision.reason[:58]}...)")
            if round_number == 2:
                # The operations team notices the JOB estimate was badly
                # off and records the incident in the query log.
                pred = query.epps[0]
                session.record_feedback(pred.name, pred.selectivity * 500)
                print("     [query log] recorded a 500x estimation miss "
                      f"for {pred.name}")

        print("\nsession summary:")
        for key, value in session.summary().items():
            print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
