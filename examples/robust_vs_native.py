#!/usr/bin/env python3
"""Robust processing vs the native optimizer on JOB (paper Section 6.5).

The Join Order Benchmark was designed to break optimizers: its true
selectivities are correlated and skewed, so uniformity estimates miss by
orders of magnitude.  This example evaluates JOB Query 1a exhaustively
over the ESS and contrasts:

* the native optimizer's MSO (worst case over estimate/actual pairs) —
  the paper reports "well above 6,000";
* SpillBound's empirical MSO — the paper reports "only around 12";
* AlignedBound's — "below 9".

Absolute numbers depend on the cost model; the orders-of-magnitude gap
is the reproducible finding.

Run:  python examples/robust_vs_native.py
"""

from repro import (
    AlignedBound,
    ContourSet,
    ESS,
    ESSGrid,
    NativeOptimizer,
    SpillBound,
    evaluate_algorithm,
    q1a,
)


def main():
    query = q1a(num_epps=3)
    print(query.describe())

    grid = ESSGrid(3, resolution=14,
                   sel_min=[min(1e-5, p.selectivity / 3) for p in query.epps])
    print(f"\nbuilding the ESS ({grid.num_points} locations)...")
    ess = ESS.build(query, grid)
    contours = ContourSet(ess)

    native = NativeOptimizer(ess)
    qe, qa, worst = native.worst_pair()
    print(f"\nnative optimizer MSO over all (estimate, actual) pairs: "
          f"{native.mso():,.0f}")
    print(f"  worst pair: estimate at grid {qe}, actual at grid {qa} "
          f"-> sub-optimality {worst:,.0f}")

    sb = SpillBound(ess, contours)
    sb_eval = evaluate_algorithm(sb)
    print(f"\nSpillBound:   guarantee {sb.mso_guarantee():.0f}, "
          f"empirical MSO {sb_eval.mso:.1f}, ASO {sb_eval.aso:.2f}")

    ab = AlignedBound(ess, contours)
    ab_eval = evaluate_algorithm(ab)
    low, high = ab.mso_guarantee_range()
    print(f"AlignedBound: guarantee [{low:.0f}, {high:.0f}], "
          f"empirical MSO {ab_eval.mso:.1f}, ASO {ab_eval.aso:.2f}")

    improvement = native.mso() / sb_eval.mso
    print(f"\nrobust discovery collapses the worst case by a factor of "
          f"{improvement:,.0f}x")


if __name__ == "__main__":
    main()
