#!/usr/bin/env python3
"""The actual-execution experiment (paper Section 6.3), on real data.

Generates a Q91-shaped database instance with filter-correlated skew
(the kind of correlation that wrecks uniformity-based estimates), then
*actually executes* — on the demand-driven iterator engine, with cost
budgets enforced and spill-mode monitoring — the plans chosen by:

* the oracle (optimal plan for the true selectivities),
* the native optimizer (plan chosen at its uniformity estimate),
* SpillBound's budgeted discovery sequence,
* AlignedBound's budgeted discovery sequence,

and reports each strategy's measured cost relative to the oracle.

Run:  python examples/wall_clock_run.py [row-budget]    (default 40000)
"""

import sys
import time

from repro.bench.harness import run_wallclock


def main():
    row_budget = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    print(f"generating ~{row_budget} rows and building the ESS...")
    started = time.time()
    result = run_wallclock(row_budget=row_budget)
    elapsed = time.time() - started

    qa = ", ".join(f"{s:.3g}" for s in result["qa"])
    print(f"\nmeasured true selectivities qa = ({qa})")
    print(f"result sizes agree across strategies: {result['rows_match']}\n")

    print(f"{'strategy':>14} {'measured cost':>14} {'vs oracle':>10} "
          f"{'executions':>11}")
    print(f"{'oracle':>14} {result['oracle_cost']:>14.4g} {1.0:>10.2f} "
          f"{1:>11}")
    print(f"{'native':>14} {result['native_cost']:>14.4g} "
          f"{result['native_subopt']:>10.2f} {1:>11}")
    print(f"{'SpillBound':>14} {result['sb_cost']:>14.4g} "
          f"{result['sb_subopt']:>10.2f} {result['sb_steps']:>11}")
    print(f"{'AlignedBound':>14} {result['ab_cost']:>14.4g} "
          f"{result['ab_subopt']:>10.2f} {result['ab_steps']:>11}")

    print("\nSpillBound's budgeted executions:")
    for step in result["sb_report"].steps:
        kind = (f"spill {step.spill_epp}" if step.mode == "spill"
                else "full plan")
        status = "completed" if step.completed else "killed"
        learned = ""
        if step.learned_selectivity == step.learned_selectivity:
            learned = f"  learned sel = {step.learned_selectivity:.3g}"
        print(f"  IC{step.contour:<3} {kind:<16} budget {step.budget:>10.4g} "
              f"spent {step.cost_spent:>10.4g}  {status}{learned}")
    print(f"\n(wall time {elapsed:.1f}s)")


if __name__ == "__main__":
    main()
