"""repro — Platform-Independent Robust Query Processing.

A from-scratch reproduction of *"Platform-Independent Robust Query
Processing"* (Karthik, Haritsa, Kenkre, Pandit, Krishnan — IEEE TKDE
31(1), 2019; the system behind the ICDE'19 tutorial *"Robust Query
Processing: Mission Possible"*): the PlanBouquet, SpillBound and
AlignedBound selectivity-discovery algorithms with provable Maximum
Sub-Optimality (MSO) guarantees, together with the full database
substrate they need — a cost-based optimizer with selectivity injection,
the Error-prone Selectivity Space machinery (POSP, optimal cost surface,
iso-cost contours, anorexic reduction), and a budgeted iterator engine
with spill-mode execution and selectivity monitoring.

Quickstart::

    from repro import build_query, ESS, ContourSet, SpillBound

    query = build_query("4D_Q91")          # TPC-DS Q91, 4 epps
    ess = ESS.build(query)                 # sweep the optimizer grid
    sb = SpillBound(ess, ContourSet(ess))
    print(sb.mso_guarantee())              # D^2 + 3D = 28
    result = sb.run((0.01, 1e-4, 1e-3, 0.05))
    print(result.suboptimality)
"""

from repro.catalog.datagen import DataGenerator, TableData, scale_cardinalities
from repro.catalog.job import job_schema, q1a
from repro.catalog.schema import (
    Column,
    ForeignKey,
    Schema,
    Table,
    fk_column,
    key_column,
)
from repro.catalog.statistics import EquiDepthHistogram, StatisticsCatalog
from repro.catalog.tpcds import (
    build_query,
    extended_suite_names,
    suite_names,
    tpcds_schema,
)
from repro.conformance.monitors import (
    ConformanceMonitor,
    Violation,
    active_monitor,
    install_monitor,
    monitoring,
)
from repro.core.advisor import (
    Advice,
    EppRecommendation,
    RobustnessAdvisor,
    recommend_epps,
)
from repro.core.aligned_bound import (
    AlignedBound,
    AlignmentStats,
    contour_alignment_stats,
)
from repro.core.discovery import DiscoveryResult, ExecutionRecord
from repro.core.lower_bound import AdversarialGame, lower_bound_demonstration
from repro.core.validate import (
    ValidationError,
    validate_contours,
    validate_discovery_result,
    validate_ess,
)
from repro.core.mso import Evaluation, evaluate_algorithm
from repro.core.native import NativeOptimizer
from repro.core.plan_bouquet import PlanBouquet
from repro.core.randomized import RandomizedSpillBound
from repro.core.session import RobustSession, SessionDecision
from repro.core.spill_bound import SpillBound
from repro.engine.driver import (
    EngineDiscoveryDriver,
    measured_location,
    native_run,
    oracle_run,
)
from repro.engine.spill import ENGINES, execute_plan, resolve_engine
from repro.errors import (
    BudgetExhausted,
    DiscoveryError,
    ExecutionError,
    OptimizerError,
    QueryError,
    ReproError,
    SchemaError,
)
from repro.core import bounds
from repro.ess.contours import Contour, ContourSet
from repro.ess.dependence import (
    CorrelatedSpillBound,
    CorrelationSpec,
    correlated_plan_cost,
    joint_correction,
)
from repro.ess.grid import ESSGrid
from repro.ess.ocs import ESS
from repro.ess.diagrams import plan_diagram_stats, reduction_curve, switching_profile
from repro.ess.persistence import load_ess, save_ess
from repro.ess.reduction import AnorexicReduction
from repro.optimizer.calibration import CalibrationReport, calibrate, measure_delta
from repro.optimizer.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.optimizer.optimizer import Optimizer
from repro.query.predicates import FilterPredicate, JoinPredicate, filter_pred, join
from repro.query.parser import SQLParser, parse_sql
from repro.query.query import SPJQuery

__version__ = "1.0.0"

__all__ = [
    # catalog
    "Schema", "Table", "Column", "ForeignKey", "key_column", "fk_column",
    "EquiDepthHistogram", "StatisticsCatalog",
    "DataGenerator", "TableData", "scale_cardinalities",
    "tpcds_schema", "build_query", "suite_names", "extended_suite_names",
    "job_schema", "q1a",
    # query model
    "SPJQuery", "JoinPredicate", "FilterPredicate", "join", "filter_pred",
    "parse_sql", "SQLParser",
    # optimizer
    "Optimizer", "CostModel", "DEFAULT_COST_MODEL",
    "calibrate", "measure_delta", "CalibrationReport",
    # ESS machinery
    "ESSGrid", "ESS", "ContourSet", "Contour", "AnorexicReduction",
    "save_ess", "load_ess", "bounds",
    "plan_diagram_stats", "switching_profile", "reduction_curve",
    "validate_ess", "validate_contours", "validate_discovery_result",
    "ValidationError",
    # conformance monitors
    "ConformanceMonitor", "Violation", "monitoring", "install_monitor",
    "active_monitor",
    "CorrelationSpec", "CorrelatedSpillBound", "joint_correction",
    "correlated_plan_cost",
    # algorithms
    "PlanBouquet", "SpillBound", "AlignedBound", "NativeOptimizer",
    "RandomizedSpillBound", "RobustSession", "SessionDecision",
    "contour_alignment_stats", "AlignmentStats",
    "AdversarialGame", "lower_bound_demonstration",
    "recommend_epps", "EppRecommendation", "RobustnessAdvisor", "Advice",
    # results and metrics
    "DiscoveryResult", "ExecutionRecord", "Evaluation", "evaluate_algorithm",
    # engine
    "execute_plan", "ENGINES", "resolve_engine",
    "EngineDiscoveryDriver", "oracle_run", "native_run",
    "measured_location",
    # errors
    "ReproError", "SchemaError", "QueryError", "OptimizerError",
    "ExecutionError", "BudgetExhausted", "DiscoveryError",
]
