"""The competing-algorithm arena.

ROADMAP item 3: the paper proves worst-case guarantees, but the related
work optimizes different robustness metrics entirely.  This package
implements those rivals against the *unchanged* ESS/discovery substrate
and runs everything head-to-head:

* :mod:`repro.arena.profiles` — configurable selectivity-error profiles
  (the error model the rivals plan under);
* :mod:`repro.arena.rivals` — a PARQO-style penalty-aware selector, a
  minmax-regret baseline (Alyoubi et al.), and a probabilistic
  plan-evaluation baseline (Kamali et al.), each exposing the same
  ``run``/``evaluate_all``/sweep-engine interface as PB/SB/AB;
* :mod:`repro.arena.adversarial` — the constructive Theorem 4.6
  workload family forcing MSO >= D on half-space-pruning algorithms;
* :mod:`repro.arena.report` — the head-to-head MSO/ASO sweep
  (``repro arena``, BENCH schema v8 ``arena`` section).
"""

from repro.arena.adversarial import (
    AdversarialESS,
    adversarial_knobs,
    build_adversarial_instance,
)
from repro.arena.profiles import (
    DEFAULT_PROFILE,
    ErrorProfile,
    as_profile,
    profile_from_spec,
    zero_error_profile,
)
from repro.arena.report import (
    ARENA_ALGORITHMS,
    ArenaReport,
    ArenaRow,
    arena_algorithms,
    run_arena,
)
from repro.arena.rivals import (
    RIVAL_FACTORIES,
    FixedPlanRival,
    MinmaxRegretSelector,
    PenaltyAwareSelector,
    ProbabilisticSelector,
)

__all__ = [
    "AdversarialESS",
    "ARENA_ALGORITHMS",
    "ArenaReport",
    "ArenaRow",
    "DEFAULT_PROFILE",
    "ErrorProfile",
    "FixedPlanRival",
    "MinmaxRegretSelector",
    "PenaltyAwareSelector",
    "ProbabilisticSelector",
    "RIVAL_FACTORIES",
    "adversarial_knobs",
    "arena_algorithms",
    "as_profile",
    "build_adversarial_instance",
    "profile_from_spec",
    "run_arena",
    "zero_error_profile",
]
