"""The constructive Theorem 4.6 adversarial workload family.

Paper Theorem 4.6: no deterministic selectivity-discovery algorithm
that relies on half-space pruning can guarantee ``MSO < D``.  The
proof is constructive, and this module builds that construction as a
synthetic ESS the unchanged discovery algorithms run on directly:

* the optimal cost is **flat** — ``C`` everywhere — so the contour
  ladder collapses to a single contour of budget ``C`` and the oracle
  pays exactly ``C`` at every location;
* there are ``D`` plans; plan ``p``'s epp total order is the rotation
  ``(p, p+1, ..., p+D-1 mod D)``, and the optimal plan at a location is
  ``sum(coords) mod D`` — every residue class appears in every grid
  slice, so each dimension has spillers at the extreme coordinate;
* every plan's full cost and every spill-subtree cost curve is flat at
  ``C``: a spill probe always *completes* (learning exactly one epp)
  and always charges the full contour cost ``C``.

Each budgeted execution therefore reveals exactly one half-space
(one epp) at price ``C``, and nothing executed before the last epp is
known can finish cheaper: any half-space-pruning algorithm pays
``(D-1) * C`` in probes plus ``C`` for the final plan, against an
oracle cost of ``C`` — sub-optimality exactly ``D`` at *every*
location.  SpillBound and AlignedBound land on MSO = D precisely
(within their ``D^2 + 3D`` ceilings); the family is seeded and
registered with the conformance workload registry
(``family="adversarial"`` in
:func:`repro.conformance.workloads.build_conformance_instance`) so the
monitors and parallel workers treat it like any other workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.conformance.workloads import ConformanceInstance
from repro.errors import ReproError
from repro.ess.contours import ContourSet
from repro.ess.grid import ESSGrid
from repro.ess.ocs import ESS

#: Dimensionalities the seeded family cycles through (the paper's
#: lower-bound argument is per-D; tests pin D = 2, 3, 4).
FAMILY_DIMS = (2, 3, 4)

#: Grid resolutions the seeded knob draw picks from.  Any resolution
#: >= 2 works — the construction's sub-optimality is resolution-free.
RESOLUTION_RANGE = (5, 7)

#: Base-cost range for the flat surface (the constant ``C``).
SCALE_RANGE = (50.0, 500.0)


@dataclass(frozen=True)
class AdversarialQuery:
    """The minimal query-shaped object the substrate needs."""

    name: str
    num_epps: int

    def true_location(self):
        """Center of the grid in selectivity terms is meaningless for a
        synthetic surface; report the origin."""
        return (0,) * self.num_epps


class _AdversarialPlan:
    """A synthetic plan: identity only (costs live on the surface)."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key


class AdversarialESS(ESS):
    """The Theorem 4.6 surface: flat costs, rotated spill orders.

    Overrides every method whose stock implementation would walk a real
    plan tree; everything else (contours, spill-order matrices,
    sub-optimality surfaces, the grid) is the unchanged substrate.
    """

    def __init__(self, num_dims, resolution, scale, name=None):
        num_dims = int(num_dims)
        if num_dims < 2:
            raise ReproError(
                "the adversarial construction needs D >= 2 "
                f"(got {num_dims})"
            )
        if float(scale) <= 0:
            raise ReproError("adversarial cost scale must be positive")
        grid = ESSGrid(num_dims, resolution=int(resolution))
        name = name or f"ADV_D{num_dims}_R{int(resolution)}"
        plans = [_AdversarialPlan(f"{name}:P{p}") for p in range(num_dims)]
        coord_sum = np.zeros(grid.num_points, dtype=np.int64)
        for dim in range(num_dims):
            coord_sum += grid.coord_array(dim).astype(np.int64)
        super().__init__(
            query=AdversarialQuery(name=name, num_epps=num_dims),
            grid=grid,
            cost_model=None,
            optimal_cost=np.full(grid.num_points, float(scale)),
            plan_ids=(coord_sum % num_dims).astype(np.int32),
            plans=plans,
        )
        self.scale = float(scale)
        self._flat_surface = np.full(grid.num_points, self.scale)

    def _check_plan(self, plan_id):
        if not 0 <= int(plan_id) < self.posp_size:
            raise ReproError(
                f"adversarial plan id {plan_id} outside "
                f"[0, {self.posp_size})"
            )

    def plan_cost_array(self, plan_id):
        self._check_plan(plan_id)
        return self._flat_surface

    def plan_cost_at_points(self, plan_id, flat_indices):
        self._check_plan(plan_id)
        flats = np.asarray(flat_indices, dtype=np.int64)
        return np.full(flats.shape, self.scale)

    def spill_order(self, plan_id):
        """Plan ``p`` spills ``p, p+1, ..., p+D-1 (mod D)`` in turn."""
        self._check_plan(plan_id)
        d = self.grid.num_dims
        return [(int(plan_id) + k) % d for k in range(d)]

    def spill_cost_curve(self, plan_id, dim, fixed_coords):
        self._check_plan(plan_id)
        return np.full(self.grid.resolution[dim], self.scale)

    def _subtree_dims(self, plan_id, dim):
        self._check_plan(plan_id)
        return (int(dim),)


def adversarial_knobs(seed):
    """The deterministic ``(num_dims, resolution, scale)`` draw."""
    seed = int(seed)
    rng = np.random.default_rng([0xAD5A, seed])
    num_dims = FAMILY_DIMS[seed % len(FAMILY_DIMS)]
    lo, hi = RESOLUTION_RANGE
    resolution = int(rng.integers(lo, hi + 1))
    scale = float(np.round(rng.uniform(*SCALE_RANGE), 6))
    return num_dims, resolution, scale


def build_adversarial_instance(seed=0, num_dims=None, resolution=None,
                               scale=None, **_ignored):
    """Build the seeded Theorem 4.6 instance.

    Explicit ``num_dims``/``resolution``/``scale`` override the
    seed-derived knobs — the parallel-sweep workers pass resolved
    values back through the provenance, so a worker rebuild is
    knob-for-knob (and bit-for-bit) identical.  Extra keyword
    arguments from the shared conformance-builder signature
    (``cost_ratio``, ``ess_mode``, ...) are accepted and ignored: the
    synthetic surface is always eager and single-contour.
    """
    seed = int(seed)
    auto_dims, auto_res, auto_scale = adversarial_knobs(seed)
    num_dims = auto_dims if num_dims is None else int(num_dims)
    resolution = auto_res if resolution is None else int(resolution)
    scale = auto_scale if scale is None else float(scale)
    ess = AdversarialESS(
        num_dims, resolution, scale,
        name=f"ADV_D{num_dims}_R{resolution}_S{seed}",
    )
    contours = ContourSet(ess, cost_ratio=2.0)
    ess.provenance = {
        "kind": "adversarial",
        "build_kwargs": {
            "seed": seed,
            "num_dims": num_dims,
            "resolution": resolution,
            "scale": scale,
        },
        "cost_ratio": contours.cost_ratio,
        "disk_key": None,
    }
    return ConformanceInstance(
        seed=seed,
        query=ess.query,
        ess=ess,
        contours=contours,
        resolution=resolution,
        cost_ratio=contours.cost_ratio,
        cost_noise=0.0,
    )
