"""Selectivity-error profiles for the arena rivals.

A rival algorithm plans against an *estimate* ``qe`` plus a model of
how far the actual location ``qa`` may drift from it — PARQO's "error
profile" (Xiu et al., PAPERS.md).  The ESS grid is geometric in
selectivity, so a multiplicative estimation error is (to grid
precision) an additive offset in grid-index space; a profile is
therefore a distribution over per-dimension index offsets around
``qe``, discretized onto the grid.

The profile is deliberately tiny and picklable: the multiprocess sweep
engine ships it across the process boundary inside a
:class:`~repro.perf.parallel.SweepSpec`, and the metamorphic tests in
``tests/test_arena.py`` rely on the degenerate (zero-error) profile
collapsing every rival to the plain optimizer's choice at ``qe``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

#: Profile shapes: a truncated log-space Gaussian, or a uniform box.
PROFILE_KINDS = ("gaussian", "uniform")


@dataclass(frozen=True)
class ErrorProfile:
    """A distribution of estimation error in grid-index space.

    Attributes:
        width: maximum per-dimension index offset considered (the
            profile's support is the ``[-width, width]^D`` box around
            ``qe``, clipped to the grid).  ``0`` is the degenerate
            zero-error profile: all mass on ``qe`` itself.
        spread: Gaussian spread in index units (ignored for
            ``kind="uniform"``).
        kind: ``"gaussian"`` or ``"uniform"``.
    """

    width: int = 2
    spread: float = 1.0
    kind: str = "gaussian"

    def __post_init__(self):
        if self.kind not in PROFILE_KINDS:
            raise ReproError(
                f"unknown error-profile kind {self.kind!r}; "
                f"choose from {PROFILE_KINDS}"
            )
        if self.width < 0:
            raise ReproError("error-profile width must be >= 0")
        if self.kind == "gaussian" and self.width > 0 and self.spread <= 0:
            raise ReproError("error-profile spread must be > 0")

    @property
    def is_degenerate(self):
        """Whether all probability mass sits on the estimate itself."""
        return self.width == 0

    def offset_weights(self):
        """``(offsets, weights)`` of the 1-D marginal, pre-clipping."""
        offsets = np.arange(-self.width, self.width + 1, dtype=np.int64)
        if self.kind == "uniform" or self.width == 0:
            weights = np.ones(offsets.size, dtype=float)
        else:
            weights = np.exp(-0.5 * (offsets / float(self.spread)) ** 2)
        return offsets, weights / weights.sum()

    def support(self, grid, qe_coords):
        """The discretized scenario set around an estimate.

        Returns ``(flats, weights)``: flat grid indices of every
        distinct scenario location and their probabilities (summing to
        1).  Offsets falling off the grid are clipped to the boundary
        — their mass accumulates on the edge cell, mirroring how an
        estimator cannot err past the selectivity range the ESS covers.
        """
        qe_coords = tuple(int(c) for c in qe_coords)
        offsets, marginal = self.offset_weights()
        per_dim = []
        for dim in range(grid.num_dims):
            idx = np.clip(qe_coords[dim] + offsets, 0,
                          grid.resolution[dim] - 1)
            uniq, inverse = np.unique(idx, return_inverse=True)
            weights = np.zeros(uniq.size, dtype=float)
            np.add.at(weights, inverse, marginal)
            per_dim.append((uniq, weights))
        flats = np.zeros(1, dtype=np.int64)
        weights = np.ones(1, dtype=float)
        for dim, (idx, w) in enumerate(per_dim):
            stride = int(grid.strides[dim])
            flats = (flats[:, None] + idx[None, :] * stride).ravel()
            weights = (weights[:, None] * w[None, :]).ravel()
        return flats, weights

    def spec(self):
        """Picklable/hashable recipe, inverted by :func:`profile_from_spec`."""
        return ("error-profile", self.kind, int(self.width),
                float(self.spread))


def profile_from_spec(spec):
    """Rebuild an :class:`ErrorProfile` from :meth:`ErrorProfile.spec`."""
    if not (isinstance(spec, tuple) and len(spec) == 4
            and spec[0] == "error-profile"):
        raise ReproError(f"not an error-profile spec: {spec!r}")
    _, kind, width, spread = spec
    return ErrorProfile(width=int(width), spread=float(spread), kind=kind)


def as_profile(profile):
    """Coerce None / spec tuple / profile into an :class:`ErrorProfile`."""
    if profile is None:
        return DEFAULT_PROFILE
    if isinstance(profile, ErrorProfile):
        return profile
    if isinstance(profile, tuple):
        return profile_from_spec(profile)
    raise ReproError(
        f"cannot interpret {type(profile).__name__} as an error profile"
    )


def zero_error_profile():
    """The degenerate profile: the estimate is trusted exactly."""
    return ErrorProfile(width=0, spread=1.0, kind="gaussian")


#: The arena default: up to two grid steps of multiplicative error per
#: epp, Gaussian-weighted — a mid-strength PARQO-style profile.
DEFAULT_PROFILE = ErrorProfile(width=2, spread=1.0, kind="gaussian")
