"""Head-to-head arena sweeps: every algorithm, shared workloads.

The arena runs the paper's guaranteed algorithms (PlanBouquet,
SpillBound, AlignedBound) and the fixed-plan rivals of
:mod:`repro.arena.rivals` over the *same* seeded workload set — built
through the unchanged conformance workload registry — and reports MSO
and ASO per algorithm per workload.  A :class:`ConformanceMonitor` is
installed for the whole sweep, so every stock-algorithm run is checked
against its guarantee while the rivals (which have none) are exempt;
the report carries the violation count so "0 violations" is an
asserted output, not an assumption.

The per-workload ``(aso, mso)`` pairs feed the MSO-vs-ASO scatter
(:func:`repro.bench.svgfig.scatter_chart`): the paper's robustness
story in one picture — the guaranteed algorithms cluster under their
bound lines while the rivals' MSO spreads unboundedly to the right
even when their ASO looks competitive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arena.profiles import as_profile
from repro.arena.rivals import RIVAL_FACTORIES
from repro.conformance.monitors import ConformanceMonitor, monitoring
from repro.conformance.workloads import (
    WORKLOAD_FAMILIES,
    build_conformance_instance,
)
from repro.core.aligned_bound import AlignedBound
from repro.core.mso import evaluate_algorithm
from repro.core.plan_bouquet import PlanBouquet
from repro.core.spill_bound import SpillBound
from repro.errors import ReproError

#: The default arena lineup: the three guaranteed algorithms plus the
#: three rivals.  Order is presentation order (tables, scatter legend).
ARENA_ALGORITHMS = ("pb", "sb", "ab", "penalty", "regret", "sampling")

_STOCK_FACTORIES = {
    "pb": PlanBouquet,
    "sb": SpillBound,
    "ab": AlignedBound,
}


def arena_algorithms(instance, profile=None, algorithms=None):
    """Build the arena lineup against one workload instance.

    Returns an ordered ``{name: algorithm}`` dict.  Stock algorithms
    take the instance's ESS and contours; rivals additionally get the
    selectivity-error ``profile`` (default
    :data:`~repro.arena.profiles.DEFAULT_PROFILE`).
    """
    names = tuple(algorithms) if algorithms else ARENA_ALGORITHMS
    profile = as_profile(profile)
    built = {}
    for name in names:
        if name in _STOCK_FACTORIES:
            built[name] = _STOCK_FACTORIES[name](
                instance.ess, instance.contours)
        elif name in RIVAL_FACTORIES:
            built[name] = RIVAL_FACTORIES[name](
                instance.ess, instance.contours, profile=profile)
        else:
            known = tuple(_STOCK_FACTORIES) + tuple(RIVAL_FACTORIES)
            raise ReproError(
                f"unknown arena algorithm {name!r}; choose from {known}"
            )
    return built


@dataclass(frozen=True)
class ArenaRow:
    """One (workload, algorithm) cell of the arena."""

    seed: int
    workload: str
    family: str
    num_epps: int
    algorithm: str
    mso: float
    aso: float
    guarantee: float | None

    def to_payload(self):
        return {
            "seed": self.seed,
            "workload": self.workload,
            "family": self.family,
            "num_epps": self.num_epps,
            "algorithm": self.algorithm,
            "mso": self.mso,
            "aso": self.aso,
            "guarantee": self.guarantee,
        }


@dataclass
class ArenaReport:
    """The full head-to-head grid plus its conformance verdict."""

    rows: list = field(default_factory=list)
    algorithms: tuple = ARENA_ALGORITHMS
    family: str = "random"
    num_workloads: int = 0
    profile_spec: tuple = ()
    num_violations: int = 0
    violations_by_invariant: dict = field(default_factory=dict)

    def by_algorithm(self):
        """Aggregate ``{algorithm: {...}}`` over the workload set."""
        out = {}
        for name in self.algorithms:
            rows = [r for r in self.rows if r.algorithm == name]
            if not rows:
                continue
            msos = np.array([r.mso for r in rows])
            asos = np.array([r.aso for r in rows])
            out[name] = {
                "workloads": len(rows),
                "worst_mso": float(msos.max()),
                "mean_mso": float(msos.mean()),
                "mean_aso": float(asos.mean()),
                "worst_aso": float(asos.max()),
            }
        return out

    def scatter_series(self):
        """``[(name, [(aso, mso), ...]), ...]`` for the svg scatter."""
        return [
            (name, [(r.aso, r.mso) for r in self.rows
                    if r.algorithm == name])
            for name in self.algorithms
        ]

    def to_payload(self):
        """The BENCH schema ``arena`` section."""
        return {
            "family": self.family,
            "num_workloads": self.num_workloads,
            "algorithms": list(self.algorithms),
            "profile": list(self.profile_spec),
            "rows": [row.to_payload() for row in self.rows],
            "by_algorithm": self.by_algorithm(),
            "num_violations": self.num_violations,
            "violations_by_invariant": dict(self.violations_by_invariant),
        }


def run_arena(num_workloads=20, base_seed=0, family="random",
              algorithms=None, profile=None, engine="auto",
              monitor=None, use_cache=True):
    """Sweep the whole lineup over a shared seeded workload set.

    Args:
        num_workloads: how many seeds (``base_seed ..
            base_seed + num_workloads - 1``) to build.
        family: workload family (:data:`WORKLOAD_FAMILIES`).
        algorithms: lineup override (names from
            :data:`ARENA_ALGORITHMS`); default the full lineup.
        profile: the rivals' selectivity-error profile (an
            :class:`~repro.arena.profiles.ErrorProfile`, its spec tuple,
            or None for the default).
        engine: sweep engine passed to
            :func:`~repro.core.mso.evaluate_algorithm`.
        monitor: an existing :class:`ConformanceMonitor` to record
            into; default a fresh one (installed for the sweep either
            way).
        use_cache: forwarded to the workload builder.

    Returns:
        :class:`ArenaReport`.
    """
    num_workloads = int(num_workloads)
    if num_workloads < 1:
        raise ReproError("the arena needs at least one workload")
    if family not in WORKLOAD_FAMILIES:
        raise ReproError(
            f"unknown workload family {family!r}; "
            f"choose from {WORKLOAD_FAMILIES}"
        )
    profile = as_profile(profile)
    names = tuple(algorithms) if algorithms else ARENA_ALGORITHMS
    mon = monitor if monitor is not None else ConformanceMonitor()
    before = len(mon.violations)
    rows = []
    with monitoring(monitor=mon):
        for seed in range(int(base_seed), int(base_seed) + num_workloads):
            instance = build_conformance_instance(
                seed, family=family, use_cache=use_cache)
            mon.check_contour_ladder(instance.contours, engine="arena")
            lineup = arena_algorithms(
                instance, profile=profile, algorithms=names)
            with mon.context(seed=seed, workload=instance.name):
                for name, algorithm in lineup.items():
                    evaluation = evaluate_algorithm(
                        algorithm, engine=engine)
                    worst = evaluation.worst_location
                    result = algorithm.run(worst, trace=True)
                    mon.check_run(result, algorithm, engine="arena")
                    guarantee = None
                    if hasattr(algorithm, "mso_guarantee"):
                        guarantee = float(algorithm.mso_guarantee())
                    rows.append(ArenaRow(
                        seed=seed,
                        workload=instance.name,
                        family=family,
                        num_epps=instance.num_epps,
                        algorithm=name,
                        mso=evaluation.mso,
                        aso=evaluation.aso,
                        guarantee=guarantee,
                    ))
    fresh = mon.violations[before:]
    by_invariant = {}
    for violation in fresh:
        key = violation.invariant
        by_invariant[key] = by_invariant.get(key, 0) + 1
    return ArenaReport(
        rows=rows,
        algorithms=names,
        family=family,
        num_workloads=num_workloads,
        profile_spec=profile.spec(),
        num_violations=len(fresh),
        violations_by_invariant=by_invariant,
    )
