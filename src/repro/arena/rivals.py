"""Rival plan-selection algorithms for the arena.

Each rival is an *estimate-then-execute* strategy like the native
optimizer, but instead of trusting the estimate blindly it scores every
candidate plan under a configurable selectivity-error profile
(:mod:`repro.arena.profiles`) and commits to the winner:

* :class:`PenaltyAwareSelector` — PARQO-style (Xiu et al.): minimize
  the *expected penalty* ``E[Cost(P, q) - Cost(P_q, q)]`` under the
  profile's scenario distribution;
* :class:`MinmaxRegretSelector` — Alyoubi et al.: minimize the *worst*
  regret ``max_q (Cost(P, q) - Cost(P_q, q))`` over the profile's
  support;
* :class:`ProbabilisticSelector` — Kamali et al.-style probabilistic
  plan evaluation: score each plan by its mean sub-optimality over a
  seeded Monte-Carlo draw of scenario locations.

All three expose the same interface as the discovery algorithms —
``run(qa, trace=False) -> DiscoveryResult``, ``evaluate_all()``, an
``ess`` / ``contours`` pair — so :func:`~repro.core.mso.evaluate_algorithm`,
the batch and parallel sweep engines, and the conformance monitors work
on them unmodified.  They deliberately do **not** define
``mso_guarantee``: a fixed-plan strategy has no worst-case bound (that
is the point of the arena), and the monitors exempt guarantee checks
for algorithms without one.

Selection ties break on the canonical plan *key*, never the surface-
local plan id — so the chosen plan is invariant under plan relabeling
(pinned by the metamorphic tests).
"""

from __future__ import annotations

import numpy as np

from repro.arena.profiles import as_profile
from repro.core.discovery import (
    NORMAL,
    DiscoveryResult,
    ExecutionRecord,
    normalize_location,
)
from repro.perf.batch import register_batch_engine
from repro.perf.parallel import register_algorithm_factory


class FixedPlanRival:
    """Shared machinery: score plans under the profile, run the winner.

    Args:
        ess: the built ESS (eager or lazy).
        contour_set: optional contours — unused by the strategy itself,
            but carried so the parallel sweep engine's spec derivation
            (which validates contours against build provenance) covers
            rivals exactly like the stock algorithms.
        profile: an :class:`~repro.arena.profiles.ErrorProfile`, its
            ``spec()`` tuple, or None for the arena default.
        estimate: the estimate ``qe`` (flat index, coords tuple, or
            selectivity vector); default the grid origin — the
            optimistic all-independent estimate the native baseline
            uses.
    """

    def __init__(self, ess, contour_set=None, profile=None, estimate=None):
        self.ess = ess
        self.contours = contour_set
        self.profile = as_profile(profile)
        if estimate is None:
            estimate = ess.grid.origin
        self._qe_coords, self._qe_flat = normalize_location(
            ess.grid, estimate)
        self._plan_id = None

    # -- selection -----------------------------------------------------

    def _score(self, costs, optimal, weights):
        raise NotImplementedError

    def candidate_plan_ids(self, flats):
        """Plans optimal somewhere in the scenario set — the candidate
        pool a re-optimizing selector would actually see."""
        self.ess.resolve(flats)
        return [int(p) for p in np.unique(np.asarray(
            self.ess.plan_ids[flats], dtype=np.int64))]

    @property
    def plan_id(self):
        """The committed plan (selected once, cached)."""
        if self._plan_id is None:
            self._plan_id = self._select()
        return self._plan_id

    def _select(self):
        ess = self.ess
        flats, weights = self.profile.support(ess.grid, self._qe_coords)
        optimal = ess.optimal_cost_at(flats)
        scored = []
        for pid in self.candidate_plan_ids(flats):
            costs = np.asarray(ess.plan_cost_at_points(pid, flats),
                               dtype=float)
            scored.append((float(self._score(costs, optimal, weights)),
                           ess.plan_keys[pid], pid))
        return min(scored)[2]

    # -- the evaluate_algorithm / sweep-engine interface ---------------

    def run(self, qa, trace=False):
        """Execute the committed plan to completion at ``qa``."""
        coords, flat = normalize_location(self.ess.grid, qa)
        pid = self.plan_id
        cost = float(self.ess.plan_cost_at(pid, flat))
        optimal = float(self.ess.optimal_cost_at([flat])[0])
        executions = None
        if trace:
            executions = [ExecutionRecord(
                contour=0,
                plan_id=pid,
                plan_key=self.ess.plan_keys[pid],
                mode=NORMAL,
                spill_dim=None,
                budget=float("inf"),
                charged=cost,
                completed=True,
            )]
        return DiscoveryResult(
            qa_coords=coords,
            total_cost=cost,
            optimal_cost=optimal,
            executions=executions,
            num_executions=1,
            contours_visited=0,
            completed_plan_key=self.ess.plan_keys[pid],
        )

    def evaluate_all(self):
        """Vectorized full-grid sub-optimality (loop-bit-identical)."""
        self.ess.resolve_all()
        return (
            np.asarray(self.ess.plan_cost_array(self.plan_id), dtype=float)
            / np.asarray(self.ess.optimal_cost, dtype=float)
        )

    def spec_kwargs(self):
        """Constructor kwargs for the parallel engine's worker rebuild."""
        return {
            "profile": self.profile.spec(),
            "estimate": tuple(int(c) for c in self._qe_coords),
        }

    def __repr__(self):
        return (f"{type(self).__name__}(qe={self._qe_coords}, "
                f"profile={self.profile.spec()})")


class PenaltyAwareSelector(FixedPlanRival):
    """PARQO-style expected-penalty minimization."""

    def _score(self, costs, optimal, weights):
        return np.sum(weights * (costs - optimal))


class MinmaxRegretSelector(FixedPlanRival):
    """Minmax-regret selection over the profile's scenario support."""

    def _score(self, costs, optimal, weights):
        return np.max(costs - optimal)


class ProbabilisticSelector(FixedPlanRival):
    """Probabilistic plan evaluation by seeded scenario sampling."""

    #: Monte-Carlo draws per selection (seeded — selection stays
    #: deterministic, bit-identical across engines and workers).
    NUM_SAMPLES = 64

    def _sample_indices(self, num_scenarios, weights):
        rng = np.random.default_rng([0xA3E2A, int(self._qe_flat)])
        return rng.choice(num_scenarios, size=self.NUM_SAMPLES, p=weights)

    def _score(self, costs, optimal, weights):
        idx = self._sample_indices(costs.size, weights)
        return np.mean(costs[idx] / optimal[idx])


def _sweep_fixed_plan(algorithm, flats):
    """Batched sweep engine for fixed-plan rivals: one gather.

    Mirrors the stock engines' contract — a full-grid *total charged
    cost* array, filled at the requested flats; the shared
    ``batched_suboptimality`` wrapper divides by the optimal cost so
    the result is bit-identical to the per-location ``run`` loop.
    """
    total = np.zeros(algorithm.ess.grid.num_points, dtype=float)
    flats = np.asarray(flats, dtype=np.int64)
    total[flats] = algorithm.ess.plan_cost_at_points(
        algorithm.plan_id, flats)
    return total


#: Factory names the parallel sweep engine (and the arena report) use.
RIVAL_FACTORIES = {
    "penalty": PenaltyAwareSelector,
    "regret": MinmaxRegretSelector,
    "sampling": ProbabilisticSelector,
}

for _name, _cls in RIVAL_FACTORIES.items():
    register_algorithm_factory(_name, _cls)
    register_batch_engine(_cls, _sweep_fixed_plan)
