"""Assemble the paper's figures as SVG files from harness data.

``render_all_figures(outdir)`` regenerates Figures 7-13 (each figure's
numeric table also lives in ``results/benchmark_report.txt``, which is
the table view the charts reference).
"""

from __future__ import annotations

import pathlib

from repro.bench import harness
from repro.bench.svgfig import (
    grouped_bar_chart,
    histogram_chart,
    line_chart,
    save_svg,
    step_trace_chart,
)

_TABLE_NOTE = "full data table: results/benchmark_report.txt"


def render_fig7(outdir, profile=None):
    data = harness.run_fig7(profile=profile)
    svg = step_trace_chart(
        "Figure 7 - 2D-SpillBound execution trace (TPC-DS Q91)",
        waypoints=data["waypoints"],
        qa=data["qa"],
        subtitle=(f"sub-optimality {data['suboptimality']:.2f} "
                  f"(guarantee 10) - {_TABLE_NOTE}"),
    )
    return save_svg(outdir / "fig07_trace.svg", svg)


def render_fig8(outdir, profile=None):
    rows = harness.run_fig8(profile=profile)
    svg = grouped_bar_chart(
        "Figure 8 - MSO guarantees, PlanBouquet vs SpillBound",
        categories=[r["query"] for r in rows],
        series=[
            ("PlanBouquet 4(1+lambda)rho", [r["pb_msog"] for r in rows]),
            ("SpillBound D^2+3D", [r["sb_msog"] for r in rows]),
        ],
        y_label="MSO guarantee",
        subtitle=_TABLE_NOTE,
    )
    return save_svg(outdir / "fig08_msog.svg", svg)


def render_fig9(outdir, profile=None):
    rows = harness.run_fig9(profile=profile)
    svg = line_chart(
        "Figure 9 - guarantee vs dimensionality (Q91)",
        x_values=[r["D"] for r in rows],
        series=[
            ("PlanBouquet", [r["pb_msog"] for r in rows]),
            ("SpillBound", [r["sb_msog"] for r in rows]),
        ],
        x_label="number of error-prone predicates D",
        y_label="MSO guarantee",
        subtitle=_TABLE_NOTE,
    )
    return save_svg(outdir / "fig09_dimensionality.svg", svg)


def render_fig10(outdir, profile=None):
    rows = harness.run_fig10(profile=profile)
    svg = grouped_bar_chart(
        "Figure 10 - empirical MSO (exhaustive qa sweep)",
        categories=[r["query"] for r in rows],
        series=[
            ("PlanBouquet", [r["pb_msoe"] for r in rows]),
            ("SpillBound", [r["sb_msoe"] for r in rows]),
        ],
        y_label="empirical MSO",
        subtitle=_TABLE_NOTE,
    )
    return save_svg(outdir / "fig10_msoe.svg", svg)


def render_fig11(outdir, profile=None):
    rows = harness.run_fig11(profile=profile)
    svg = grouped_bar_chart(
        "Figure 11 - average sub-optimality (ASO)",
        categories=[r["query"] for r in rows],
        series=[
            ("PlanBouquet", [r["pb_aso"] for r in rows]),
            ("SpillBound", [r["sb_aso"] for r in rows]),
        ],
        y_label="ASO",
        subtitle=_TABLE_NOTE,
    )
    return save_svg(outdir / "fig11_aso.svg", svg)


def render_fig12(outdir, profile=None):
    data = harness.run_fig12(profile=profile)
    edges, pb_fractions = data["pb"]
    _, sb_fractions = data["sb"]
    bins = min(len(pb_fractions), len(sb_fractions), 6)
    svg = histogram_chart(
        f"Figure 12 - sub-optimality distribution ({data['query']})",
        edges=edges[: bins + 1],
        series=[
            ("PlanBouquet", list(pb_fractions[:bins])),
            ("SpillBound", list(sb_fractions[:bins])),
        ],
        subtitle=_TABLE_NOTE,
    )
    return save_svg(outdir / "fig12_distribution.svg", svg)


def render_fig13(outdir, profile=None):
    rows = harness.run_fig13(profile=profile)
    svg = grouped_bar_chart(
        "Figure 13 - empirical MSO, SpillBound vs AlignedBound",
        categories=[r["query"] for r in rows],
        series=[
            ("SpillBound", [r["sb_msoe"] for r in rows]),
            ("AlignedBound", [r["ab_msoe"] for r in rows]),
        ],
        reference=("2D+2", [r["ab_low_bound"] for r in rows]),
        y_label="empirical MSO",
        subtitle=_TABLE_NOTE,
    )
    return save_svg(outdir / "fig13_ab_vs_sb.svg", svg)


_RENDERERS = (
    render_fig7, render_fig8, render_fig9, render_fig10, render_fig11,
    render_fig12, render_fig13,
)


def render_all_figures(outdir="results/figures", profile=None):
    """Render every figure; returns the list of written paths."""
    outdir = pathlib.Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    return [render(outdir, profile=profile) for render in _RENDERERS]
