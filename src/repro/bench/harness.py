"""Experiment runners: one function per table/figure of the paper.

Each ``run_*`` function computes the rows behind one artifact of the
paper's evaluation (Section 6) and returns plain data structures; the
benchmark suite renders them with :mod:`repro.bench.report` and asserts
the *shape* findings (who wins, by what rough factor) that DESIGN.md
catalogues.  Everything flows through :func:`repro.bench.workloads.load`
so ESS construction is shared.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench import workloads
from repro.catalog.datagen import DataGenerator, scale_cardinalities
from repro.core.aligned_bound import AlignedBound, contour_alignment_stats
from repro.core.lower_bound import lower_bound_demonstration
from repro.core.mso import evaluate_algorithm
from repro.core.native import NativeOptimizer
from repro.core.plan_bouquet import PlanBouquet
from repro.core.spill_bound import SpillBound
from repro.engine.driver import (
    EngineDiscoveryDriver,
    measured_location,
    native_run,
    oracle_run,
)
from repro.ess.contours import ContourSet
from repro.ess.reduction import DEFAULT_LAMBDA
from repro.optimizer.cost_model import DEFAULT_COST_MODEL
from repro.optimizer.plans import epp_total_order
from repro.perf.timers import TIMERS


@dataclass
class AlgorithmProfiles:
    """All three algorithms evaluated over one workload instance."""

    instance: object
    pb: object
    sb: object
    ab: object
    pb_eval: object = None
    sb_eval: object = None
    ab_eval: object = None


_PROFILE_CACHE = {}


def algorithm_profiles(name, with_eval=("pb", "sb", "ab"), profile=None):
    """Build (and cache) PB/SB/AB plus requested exhaustive evaluations."""
    key = (name, profile or workloads.active_profile())
    prof = _PROFILE_CACHE.get(key)
    if prof is None:
        instance = workloads.load(name, profile=profile)
        prof = AlgorithmProfiles(
            instance=instance,
            pb=PlanBouquet(instance.ess, instance.contours),
            sb=SpillBound(instance.ess, instance.contours),
            ab=AlignedBound(instance.ess, instance.contours),
        )
        _PROFILE_CACHE[key] = prof
    # The exhaustive sweeps parallelize across processes when
    # REPRO_WORKERS > 1 (see repro.perf.parallel); each one reports its
    # wall time into the perf-trajectory timers either way.
    if "pb" in with_eval and prof.pb_eval is None:
        with TIMERS.phase("sweep_pb"):
            prof.pb_eval = evaluate_algorithm(prof.pb)
    if "sb" in with_eval and prof.sb_eval is None:
        with TIMERS.phase("sweep_sb"):
            prof.sb_eval = evaluate_algorithm(prof.sb)
    if "ab" in with_eval and prof.ab_eval is None:
        with TIMERS.phase("sweep_ab"):
            prof.ab_eval = evaluate_algorithm(prof.ab)
    return prof


# ----------------------------------------------------------------------
# Figure 8: MSO guarantees, PB vs SB
# ----------------------------------------------------------------------

def run_fig8(names=None, profile=None):
    """Rows: query, D, rho_red, PB guarantee 4(1+lam)rho, SB D^2+3D."""
    names = names or workloads.evaluation_suite()
    rows = []
    for name in names:
        prof = algorithm_profiles(name, with_eval=(), profile=profile)
        rows.append({
            "query": name,
            "D": prof.instance.num_epps,
            "rho_red": prof.pb.rho,
            "pb_msog": prof.pb.mso_guarantee(),
            "sb_msog": prof.sb.mso_guarantee(),
        })
    return rows


# ----------------------------------------------------------------------
# Figure 9: guarantee vs dimensionality (Q91, D = 2..6)
# ----------------------------------------------------------------------

def run_fig9(dims=(2, 3, 4, 5, 6), profile=None):
    rows = []
    for d in dims:
        prof = algorithm_profiles(f"{d}D_Q91", with_eval=(), profile=profile)
        rows.append({
            "D": d,
            "rho_red": prof.pb.rho,
            "pb_msog": prof.pb.mso_guarantee(),
            "sb_msog": prof.sb.mso_guarantee(),
        })
    return rows


# ----------------------------------------------------------------------
# Figures 10 / 11: empirical MSO and ASO, PB vs SB
# ----------------------------------------------------------------------

def run_fig10(names=None, profile=None):
    names = names or workloads.evaluation_suite()
    rows = []
    for name in names:
        prof = algorithm_profiles(name, with_eval=("pb", "sb"), profile=profile)
        rows.append({
            "query": name,
            "D": prof.instance.num_epps,
            "pb_msoe": prof.pb_eval.mso,
            "sb_msoe": prof.sb_eval.mso,
            "pb_msog": prof.pb.mso_guarantee(),
            "sb_msog": prof.sb.mso_guarantee(),
        })
    return rows


def run_fig11(names=None, profile=None):
    names = names or workloads.evaluation_suite()
    rows = []
    for name in names:
        prof = algorithm_profiles(name, with_eval=("pb", "sb"), profile=profile)
        rows.append({
            "query": name,
            "pb_aso": prof.pb_eval.aso,
            "sb_aso": prof.sb_eval.aso,
        })
    return rows


# ----------------------------------------------------------------------
# Figure 12: sub-optimality distribution histogram
# ----------------------------------------------------------------------

def run_fig12(name="4D_Q91", bin_width=5.0, profile=None):
    prof = algorithm_profiles(name, with_eval=("pb", "sb"), profile=profile)
    edges_pb, frac_pb = prof.pb_eval.histogram(bin_width)
    edges_sb, frac_sb = prof.sb_eval.histogram(bin_width)
    return {
        "query": name,
        "pb": (edges_pb, frac_pb),
        "sb": (edges_sb, frac_sb),
        "pb_below_first_bin": prof.pb_eval.fraction_below(bin_width),
        "sb_below_first_bin": prof.sb_eval.fraction_below(bin_width),
    }


# ----------------------------------------------------------------------
# Figure 13: empirical MSO, SB vs AB (with the 2D+2 reference)
# ----------------------------------------------------------------------

def run_fig13(names=None, profile=None):
    names = names or workloads.evaluation_suite()
    rows = []
    for name in names:
        prof = algorithm_profiles(name, with_eval=("sb", "ab"), profile=profile)
        low, high = prof.ab.mso_guarantee_range()
        rows.append({
            "query": name,
            "D": prof.instance.num_epps,
            "sb_msoe": prof.sb_eval.mso,
            "ab_msoe": prof.ab_eval.mso,
            "ab_low_bound": low,
            "ab_high_bound": high,
        })
    return rows


# ----------------------------------------------------------------------
# Table 2: cost of enforcing contour alignment
# ----------------------------------------------------------------------

def run_table2(names=None, thresholds=(1.2, 1.5, 2.0), profile=None):
    names = names or ["3D_Q96", "4D_Q7", "4D_Q26", "4D_Q91", "5D_Q29",
                      "5D_Q84"]
    rows = []
    for name in names:
        instance = workloads.load(name, profile=profile)
        stats = contour_alignment_stats(instance.ess, instance.contours)
        row = {
            "query": name,
            "original_pct": 100.0 * stats.fraction_aligned(1.0),
            "max_penalty": stats.max_penalty,
        }
        for threshold in thresholds:
            row[f"pct_at_{threshold}"] = 100.0 * stats.fraction_aligned(threshold)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table 3: SpillBound execution drill-down on Q91
# ----------------------------------------------------------------------

def run_table3(name="4D_Q91", qa=None, profile=None):
    """Per-execution trace: contour, epp, plan, learnt sel, running cost."""
    instance = workloads.load(name, profile=profile)
    prof = algorithm_profiles(name, with_eval=(), profile=profile)
    location = instance.qa_coords() if qa is None else qa
    result = prof.sb.run(location, trace=True)
    rows = []
    running = 0.0
    for record in result.executions:
        running += record.charged
        rows.append({
            "contour": record.contour,
            "mode": record.mode,
            "epp": ("e%d" % (record.spill_dim + 1)
                    if record.spill_dim is not None else "-"),
            "plan": record.plan_id,
            "learned_sel": record.learned_selectivity,
            "completed": record.completed,
            "cumulative_cost": running,
        })
    return {
        "query": name,
        "qa": location,
        "suboptimality": result.suboptimality,
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Table 4: AlignedBound's maximum partition penalty
# ----------------------------------------------------------------------

def run_table4(names=None, profile=None):
    names = names or workloads.evaluation_suite()
    rows = []
    for name in names:
        # The exhaustive AB sweep updates observed_max_penalty as a side
        # effect, so Table 4 shares Figure 13's evaluation work.
        prof = algorithm_profiles(name, with_eval=("ab",), profile=profile)
        rows.append({
            "query": name,
            "max_penalty": prof.ab.observed_max_penalty,
        })
    return rows


# ----------------------------------------------------------------------
# Figure 7: the 2-D execution trace (Manhattan profile)
# ----------------------------------------------------------------------

def run_fig7(name="2D_Q91", qa=(0.04, 0.1), profile=None):
    """The 2D-SpillBound trace: per-execution qrun waypoints."""
    instance = workloads.load(name, profile=profile)
    prof = algorithm_profiles(name, with_eval=(), profile=profile)
    grid = instance.ess.grid
    coords = grid.snap(qa)
    result = prof.sb.run(coords, trace=True)
    qrun = [grid.values[d][0] for d in range(grid.num_dims)]
    waypoints = [tuple(qrun)]
    rows = []
    for record in result.executions:
        if record.spill_dim is not None and record.learned_selectivity == record.learned_selectivity:
            qrun[record.spill_dim] = max(
                qrun[record.spill_dim], record.learned_selectivity
            )
        waypoints.append(tuple(qrun))
        rows.append({
            "contour": record.contour,
            "mode": record.mode,
            "plan": record.plan_id,
            "spill_dim": record.spill_dim,
            "qrun": tuple(qrun),
            "completed": record.completed,
        })
    return {
        "query": name,
        "qa": tuple(grid.values[d][c] for d, c in enumerate(coords)),
        "suboptimality": result.suboptimality,
        "num_contours": instance.contours.num_contours,
        "waypoints": waypoints,
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Section 6.3: the wall-clock (actual execution) experiment
# ----------------------------------------------------------------------

def run_wallclock(name="mini4d", row_budget=40_000, seed=11, engine="auto",
                  resolution=None, setup=None):
    """Native vs SpillBound vs AlignedBound on real engine executions.

    The paper runs 4D Q91 on 100 GB; we run a down-scaled generated
    instance (documented substitution) with the same mechanics: real
    budgeted executions, spill-mode monitoring, and actual costs.

    Args:
        engine: execution engine selector (``auto`` / ``vector`` /
            ``volcano``) threaded into every engine run.
        resolution: optional ESS grid resolution override.
        setup: a pre-built :func:`~repro.bench.wallclock
            .build_wallclock_setup` result to reuse (the benchmark
            harness shares one setup across engine timings).
    """
    from repro.bench.wallclock import build_wallclock_setup

    if setup is None:
        kwargs = {} if resolution is None else {"resolution": resolution}
        setup = build_wallclock_setup(row_budget=row_budget, seed=seed,
                                      **kwargs)
    ess, contours, gen, query = (
        setup.ess, setup.contours, setup.generator, setup.query
    )
    qa = measured_location(gen, query)
    oracle = oracle_run(ess, gen, qa, engine=engine)
    native = native_run(ess, gen, engine=engine)
    sb_report = EngineDiscoveryDriver(SpillBound(ess, contours), gen,
                                      engine=engine).run()
    ab_report = EngineDiscoveryDriver(AlignedBound(ess, contours), gen,
                                      engine=engine).run()
    return {
        "qa": qa,
        "oracle_cost": oracle.cost_spent,
        "oracle_rows": oracle.rows_out,
        "native_cost": native.cost_spent,
        "native_subopt": native.cost_spent / oracle.cost_spent,
        "sb_cost": sb_report.total_cost,
        "sb_subopt": sb_report.total_cost / oracle.cost_spent,
        "sb_steps": sb_report.num_steps,
        "ab_cost": ab_report.total_cost,
        "ab_subopt": ab_report.total_cost / oracle.cost_spent,
        "ab_steps": ab_report.num_steps,
        "rows_match": (oracle.rows_out == native.rows_out
                       == sb_report.rows_out == ab_report.rows_out),
        "sb_report": sb_report,
        "ab_report": ab_report,
    }


# ----------------------------------------------------------------------
# Guarantee-conformance suite (the ``repro check`` experiment)
# ----------------------------------------------------------------------

def run_conformance(num_workloads=200, base_seed=0,
                    engines=("loop", "batch", "parallel"), trace_samples=3,
                    jsonl_path=None, use_cache=True, inject=None,
                    progress=None, ess_mode=None, prior=None):
    """Seeded randomized workloads under runtime invariant monitors.

    Runs PB/SB/AB across every requested sweep engine on
    ``num_workloads`` seeded random workloads, checking the paper's
    per-execution invariants and the engines' bit-identity (see
    :mod:`repro.conformance.suite`).  ``inject`` corrupts one
    observation for negative testing; ``prior`` re-proves every
    invariant with the prior-guided scheduler enabled.

    Returns a :class:`~repro.conformance.suite.SuiteReport`.
    """
    from repro.conformance.suite import run_suite

    with TIMERS.phase("conformance_suite"):
        return run_suite(
            num_workloads=num_workloads,
            base_seed=base_seed,
            engines=engines,
            trace_samples=trace_samples,
            jsonl_path=jsonl_path,
            use_cache=use_cache,
            inject=inject,
            progress=progress,
            ess_mode=ess_mode,
            prior=prior,
        )


# ----------------------------------------------------------------------
# Section 6.5: the JOB benchmark experiment
# ----------------------------------------------------------------------

def run_job(profile=None):
    prof = algorithm_profiles("3D_JOB1a", with_eval=("sb", "ab"),
                              profile=profile)
    native = NativeOptimizer(prof.instance.ess)
    return {
        "query": "JOB 1a",
        "native_mso": native.mso(),
        "sb_msoe": prof.sb_eval.mso,
        "ab_msoe": prof.ab_eval.mso,
        "sb_msog": prof.sb.mso_guarantee(),
    }


# ----------------------------------------------------------------------
# Theorem 4.6: lower-bound demonstration
# ----------------------------------------------------------------------

def run_lower_bound(dims=(2, 3, 4, 5, 6)):
    return [
        {"D": d, "measured_mso": lower_bound_demonstration(d)} for d in dims
    ]


# ----------------------------------------------------------------------
# Ablations (DESIGN.md Section 5)
# ----------------------------------------------------------------------

def run_ablation_cost_ratio(name="4D_Q91", ratios=(1.5, 1.8, 2.0, 3.0),
                            profile=None):
    """Contour spacing sweep (paper Section 4.2 remark)."""
    rows = []
    for ratio in ratios:
        instance = workloads.load(name, profile=profile, cost_ratio=ratio)
        sb = SpillBound(instance.ess, instance.contours)
        evaluation = evaluate_algorithm(sb)
        rows.append({
            "ratio": ratio,
            "num_contours": instance.contours.num_contours,
            "sb_msoe": evaluation.mso,
            "sb_aso": evaluation.aso,
        })
    return rows


def run_ablation_lambda(name="4D_Q91", lams=(0.0, 0.1, 0.2, 0.5),
                        profile=None):
    """Anorexic-reduction threshold sweep for PlanBouquet."""
    instance = workloads.load(name, profile=profile)
    rows = []
    for lam in lams:
        pb = PlanBouquet(instance.ess, instance.contours, lam=lam)
        evaluation = evaluate_algorithm(pb)
        rows.append({
            "lambda": lam,
            "rho_red": pb.rho,
            "pb_msog": pb.mso_guarantee(),
            "pb_msoe": evaluation.mso,
        })
    return rows


def run_ablation_resolution(name="3D_Q15", resolutions=(6, 10, 14, 18)):
    """Grid-resolution stability of the empirical MSO."""
    rows = []
    for res in resolutions:
        instance = workloads.load(name, resolution=res)
        sb = SpillBound(instance.ess, instance.contours)
        evaluation = evaluate_algorithm(sb)
        rows.append({
            "resolution": res,
            "grid_points": instance.ess.grid.num_points,
            "sb_msoe": evaluation.mso,
            "sb_aso": evaluation.aso,
        })
    return rows


def run_ablation_cost_noise(name="4D_Q26", deltas=(0.0, 0.1, 0.3),
                            profile=None):
    """Bounded cost-model error (paper Section 7): guarantee inflates by
    (1 + delta)^2 — discovery runs against a noisy model, sub-optimality
    is judged by the true one."""
    base = workloads.load(name, profile=profile)
    true_opt = base.ess.optimal_cost
    rows = []
    for delta in deltas:
        noisy_model = DEFAULT_COST_MODEL.with_noise(delta, seed=5)
        instance = workloads.load(name, profile=profile,
                                  cost_model=noisy_model)
        sb = SpillBound(instance.ess, instance.contours)
        sub = evaluate_algorithm(sb).suboptimality
        # Re-judge against the true optimal surface.
        adjusted = sub * instance.ess.optimal_cost / true_opt
        rows.append({
            "delta": delta,
            "sb_msoe_vs_true": float(np.max(adjusted)),
            "bound_with_inflation": sb.mso_guarantee() * (1 + delta) ** 2,
        })
    return rows


def run_ablation_search_space(name="4D_Q91", profile=None):
    """Bushy vs left-deep optimizer search space.

    The discovery algorithms consume whatever POSP the optimizer
    produces; this ablation shows how the search space shapes the plan
    diagram (POSP size, contour density) and the resulting MSO.
    """
    from repro.ess.ocs import ESS

    instance = workloads.load(name, profile=profile)
    rows = []
    for label, left_deep in (("bushy", False), ("left-deep", True)):
        if left_deep:
            ess = ESS.build(instance.query, instance.ess.grid,
                            left_deep=True)
            contours = ContourSet(ess)
        else:
            ess, contours = instance.ess, instance.contours
        sb = SpillBound(ess, contours)
        evaluation = evaluate_algorithm(sb)
        rows.append({
            "space": label,
            "posp_size": ess.posp_size,
            "rho": contours.max_density,
            "origin_cost": ess.min_cost,
            "sb_msoe": evaluation.mso,
            "sb_aso": evaluation.aso,
        })
    return rows


def run_extension_dependence(name="3D_Q15", thetas=(0.0, 0.3, 0.7),
                             pair=(0, 1), profile=None):
    """The future-work extension: SpillBound under SI violation.

    The discovery machinery stays SI-built; execution outcomes follow
    fuzzy-AND-correlated cardinalities of strength theta between one epp
    pair.  Reports the empirical MSO drift plus the Section 7 reference
    envelope computed from the observed correction-factor bound.
    """
    from repro.ess.dependence import (
        CorrelatedSpillBound,
        CorrelationSpec,
        joint_correction,
    )

    instance = workloads.load(name, profile=profile)
    grid = instance.ess.grid
    rows = []
    for theta in thetas:
        spec = CorrelationSpec(pair[0], pair[1], theta)
        algorithm = CorrelatedSpillBound(instance.ess, [spec],
                                         instance.contours)
        evaluation = evaluate_algorithm(algorithm)
        # The worst correction factor over the grid bounds the effective
        # cost-model error delta of Section 7.
        worst_factor = float(np.max(joint_correction(
            grid.sel_array(pair[0]), grid.sel_array(pair[1]), theta,
        )))
        rows.append({
            "theta": theta,
            "sb_msoe": evaluation.mso,
            "sb_aso": evaluation.aso,
            "worst_correction": worst_factor,
            "si_guarantee": SpillBound(instance.ess,
                                       instance.contours).mso_guarantee(),
        })
    return rows


def run_ablation_spill_order(name="4D_Q26", profile=None):
    """Why the pipeline-based spill total order matters.

    Compares the paper's ordering against a degenerate 'first epp by
    dimension index' policy: the degenerate policy can pick a spill node
    whose subtree still contains unlearned epps, voiding guaranteed
    learning.  We count, over all POSP plans, how often the two orders
    disagree and how often the degenerate choice is unsound.
    """
    instance = workloads.load(name, profile=profile)
    ess = instance.ess
    query = ess.query
    all_dims = list(range(query.num_epps))
    disagreements = 0
    unsound = 0
    for pid in range(ess.posp_size):
        order = ess.spill_order(pid)
        paper_choice = order[0]
        naive_choice = min(all_dims)
        if paper_choice != naive_choice:
            disagreements += 1
            # Unsound if the naive node's subtree holds another epp that
            # precedes it in execution order (its selectivity unknown).
            naive_pos = order.index(naive_choice)
            if naive_pos > 0:
                unsound += 1
    return {
        "query": name,
        "posp_size": ess.posp_size,
        "order_disagreements": disagreements,
        "naive_unsound": unsound,
    }
