"""The perf-trajectory benchmark: ``repro bench --json BENCH_pr2.json``.

Measures the performance layer end to end and writes a JSON artifact so
every PR can append a comparable data point:

* **cache** — cold ESS build (optimizer sweep + archive store) vs warm
  load (persistent-archive hit) for one workload, with an equivalence
  check (optimal costs, plan ids and plan keys must round-trip
  bit-identically);
* **sweeps** — the per-location reference loop vs the frontier-batched
  engine for PB/SB/AB exhaustive evaluation, timed best-of-N on fresh
  instances (cold memo caches both sides), with a bit-identity check
  (``np.array_equal``, not a tolerance) between the two paths;
* **parallel** — the multiprocess fan-out *decision* and, only when the
  cost guard lets fan-out proceed, its timings.  On hosts where the
  guard keeps the sweep serial (single CPU, small sweep) the artifact
  records the skip and its reason rather than a meaningless 1x;
* **wallclock** — the Section 6.3 actual-execution experiment on the
  Volcano interpreter vs the columnar vector engine
  (:mod:`repro.engine.vector`), best-of-N on one shared setup, with an
  identity flag asserting both engines produced bit-identical results
  (costs via ``repr`` so NaNs and the last float bit both count);
* **tracing** — the same batched sweep with span tracing off vs on
  (the observability layer's overhead budget is <2% when disabled and
  bit-identical results always), see :mod:`repro.obs.trace`;
* **serving** — a mixed-tenant closed-loop burst against the in-process
  discovery server: latency percentiles, rps, the single-flight proof
  and a served-vs-solo bit-identity check
  (:func:`repro.serve.loadgen.bench_serving`);
* **arena** — the head-to-head arena: guaranteed algorithms vs the
  fixed-plan rivals over shared seeded workloads, MSO/ASO per cell and
  a conformance verdict (see :mod:`repro.arena.report`);
* **observability** — end-to-end request tracing economics: paired
  tracing-off/on serving bursts (median p50 overhead, budget < 2%),
  served bit-identity traced vs untraced vs solo, and the merged
  multi-process trace proof
  (:func:`repro.serve.loadgen.bench_observability`);
* **timers** — the process-global phase profile (ess_build / contour /
  sweep timings, cache hit counters) accumulated while benchmarking.

The artifact records the visible CPU count: on single-core containers
the multiprocess sweep cannot beat serial, and the JSON says so rather
than hiding it.
"""

from __future__ import annotations

import os
import platform
import time

import numpy as np

from repro.bench import workloads
from repro.core.aligned_bound import AlignedBound
from repro.core.mso import evaluate_algorithm
from repro.core.plan_bouquet import PlanBouquet
from repro.core.spill_bound import SpillBound
from repro.errors import ReproError
from repro.ess.persistence import ess_cache_key
from repro.perf import cache as ess_cache
from repro.perf.parallel import fanout_decision
from repro.perf.timers import TIMERS


def validate_artifact_path(path):
    """Fail fast (:class:`ReproError`) on an unwritable ``--json`` path.

    Checked *before* the benchmark runs, so a bad destination costs
    seconds rather than surfacing as an :class:`OSError` traceback after
    minutes of measurement.
    """
    if not path:
        return
    if os.path.isdir(path):
        raise ReproError(
            f"bench artifact path {path!r} is a directory; give a file path"
        )
    directory = os.path.dirname(path) or "."
    try:
        os.makedirs(directory, exist_ok=True)
    except OSError as exc:
        raise ReproError(
            f"cannot create bench artifact directory {directory!r}: {exc}"
        ) from None
    if not os.access(directory, os.W_OK):
        raise ReproError(
            f"bench artifact directory {directory!r} is not writable"
        )
    if os.path.exists(path) and not os.access(path, os.W_OK):
        raise ReproError(
            f"bench artifact path {path!r} exists and is not writable"
        )

#: Schema version of the BENCH json artifact.  v2: ``sweeps`` compares
#: the reference loop against the frontier-batched engine (was serial vs
#: multiprocess) and the fan-out measurement moved to ``parallel`` with
#: an explicit skip/skip_reason record.  v3: adds ``wallclock`` —
#: Volcano-vs-vector engine timings on the Section 6.3 experiment with
#: an identity flag.  v4: adds ``tracing`` — tracing-off vs tracing-on
#: sweep timings with a bit-identity flag, plus the registry's
#: ``gauges``/``histograms`` sections riding in the phase profile.
#: v5: adds ``ess_build`` — eager full-grid vs lazy contour-adaptive
#: surface construction: optimizer-call counts, end-to-end discovery
#: timings, peak RSS (``ru_maxrss``), a bit-identity check per cell, and
#: optionally a cell whose eager build is infeasible under a laptop-class
#: memory budget and is therefore recorded as not attempted.  v6: adds
#: ``serving`` — a closed-loop mixed-tenant burst against the in-process
#: discovery server (:func:`repro.serve.loadgen.bench_serving`):
#: p50/p90/p99 latency and rps, a single-flight proof (exactly one
#: ``ess_build`` per unique surface under >= 32-way concurrency, the
#: rest coalesced or cache hits), a served-vs-solo bit-identity check
#: per workload, and a conformance pass over the service path.
#: v7: adds ``anytime`` — average-case discovery cost under
#: prior-guided contour scheduling (:func:`bench_anytime`): randomized
#: conformance workloads discovered at their true locations under the
#: uniform, sampled and history priors, with per-mode mean/percentile
#: cost speedups vs uniform, mean sub-optimality, and a conformance
#: monitor pass over every prior-scheduled run (the MSO machinery must
#: hold with aggressive scheduling on).
#: v8: adds ``arena`` — the head-to-head arena
#: (:func:`bench_arena`): the guaranteed algorithms and the fixed-plan
#: rivals (penalty-aware, minmax-regret, sampling) swept over shared
#: seeded workloads, MSO and ASO per (workload, algorithm) row, with
#: per-algorithm aggregates and a conformance-monitor violation count
#: (the guarantees are asserted for pb/sb/ab while the rivals, which
#: have none, are exempt).
#: v9: adds ``observability`` — end-to-end request-tracing economics
#: against the in-process server
#: (:func:`repro.serve.loadgen.bench_observability`): paired
#: tracing-off/tracing-on closed-loop bursts (median relative p50
#: delta as ``overhead_pct``, budget < 2%), a served bit-identity
#: check traced vs untraced vs solo, and a structural proof that one
#: traced request fanning a nested parallel sweep yields a single
#: merged multi-process trace (front-end, pool-worker and
#: sweep-worker spans under one trace id, wall-clock ordered).
BENCH_SCHEMA_VERSION = 9

#: Timing repeats per engine; the minimum is reported (the minimum is
#: the least noise-contaminated observation of a deterministic
#: computation — the ``timeit`` rationale).
SWEEP_REPEATS = 5

_ALGORITHMS = {"pb": PlanBouquet, "sb": SpillBound, "ab": AlignedBound}


def _disk_key(instance):
    return ess_cache_key(
        query_name=instance.query.name,
        resolution=instance.ess.grid.resolution,
        sel_min=[float(v[0]) for v in instance.ess.grid.values],
        cost_fingerprint=instance.ess.cost_model.fingerprint(),
        left_deep=False,
    )


def bench_cache(name, profile, resolution=None):
    """Cold-build vs warm-load timings for one workload."""
    workloads.clear_cache()
    # Evict any pre-existing archive so "cold" really builds.
    probe = workloads.load(name, profile=profile, resolution=resolution)
    path = ess_cache.archive_path(_disk_key(probe))
    workloads.clear_cache()
    if os.path.exists(path):
        os.remove(path)

    start = time.perf_counter()
    cold = workloads.load(name, profile=profile, resolution=resolution)
    cold_s = time.perf_counter() - start

    workloads.clear_cache()
    start = time.perf_counter()
    warm = workloads.load(name, profile=profile, resolution=resolution)
    warm_s = time.perf_counter() - start

    identical = (
        np.array_equal(cold.ess.optimal_cost, warm.ess.optimal_cost)
        and np.array_equal(cold.ess.plan_ids, warm.ess.plan_ids)
        and cold.ess.plan_keys == warm.ess.plan_keys
    )
    return {
        "query": name,
        "profile": profile or workloads.active_profile(),
        "grid_points": int(cold.ess.grid.num_points),
        "posp_size": int(cold.ess.posp_size),
        "cold_build_s": cold_s,
        "warm_load_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "roundtrip_identical": bool(identical),
        "cache_hit": bool(TIMERS.counter("ess_cache_hit")),
    }


def _fresh_instance(name, profile, resolution):
    """A workload instance with cold in-process caches.

    Clearing the registry forces a reload; the persistent archive makes
    that cheap while guaranteeing the ESS-level memo caches (spill
    curves, per-plan cost arrays) start empty, so back-to-back sweep
    timings don't leak warmth into each other.
    """
    workloads.clear_cache()
    return workloads.load(name, profile=profile, resolution=resolution)


def _timed_sweep(cls, name, profile, resolution, engine, workers=None):
    """One fresh-instance exhaustive sweep on the given engine."""
    instance = _fresh_instance(name, profile, resolution)
    algorithm = cls(instance.ess, instance.contours)
    start = time.perf_counter()
    evaluation = evaluate_algorithm(algorithm, workers=workers,
                                    engine=engine)
    return time.perf_counter() - start, evaluation, instance


def bench_sweep(name, profile, algorithms=("pb", "sb", "ab"),
                resolution=None, repeats=SWEEP_REPEATS):
    """Reference loop vs frontier-batched exhaustive evaluation.

    Each engine runs ``repeats`` times on a fresh instance (cold memo
    caches every run) and the minimum is reported; the two engines'
    sub-optimality arrays must be bit-identical (``np.array_equal``).
    """
    out = {}
    for key in algorithms:
        cls = _ALGORITHMS[key]
        loop_s = batch_s = float("inf")
        loop_eval = batch_eval = instance = None
        for _ in range(repeats):
            elapsed, loop_eval, instance = _timed_sweep(
                cls, name, profile, resolution, "loop")
            loop_s = min(loop_s, elapsed)
            elapsed, batch_eval, _ = _timed_sweep(
                cls, name, profile, resolution, "batch")
            batch_s = min(batch_s, elapsed)
        identical = np.array_equal(
            loop_eval.suboptimality, batch_eval.suboptimality
        )
        out[key] = {
            "grid_points": int(instance.ess.grid.num_points),
            "loop_s": loop_s,
            "batch_s": batch_s,
            "repeats": int(repeats),
            "speedup": loop_s / batch_s if batch_s > 0 else float("inf"),
            "batch_identical": bool(identical),
            "max_abs_deviation": float(np.max(np.abs(
                loop_eval.suboptimality - batch_eval.suboptimality
            ))),
            "mso": float(loop_eval.mso),
            "aso": float(loop_eval.aso),
        }
    return out


def bench_parallel(name, profile, workers, algorithms=("sb",),
                   resolution=None):
    """The multiprocess fan-out, reported honestly.

    :func:`repro.perf.parallel.fanout_decision` is consulted first; when
    it keeps the sweep serial, the entry records the skip and its reason
    instead of timing a fan-out the engine would never run.  Only when
    fan-out proceeds are serial-vs-parallel timings (and their max
    absolute deviation, expected 0.0) measured.
    """
    out = {}
    for key in algorithms:
        cls = _ALGORITHMS[key]
        instance = _fresh_instance(name, profile, resolution)
        num_points = int(instance.ess.grid.num_points)
        effective, skip = fanout_decision(num_points, workers)
        entry = {
            "grid_points": num_points,
            "workers_requested": int(workers),
            "workers_effective": int(effective),
            "skipped": skip is not None,
            "skip_reason": skip,
        }
        if skip is None:
            serial_s, serial_eval, _ = _timed_sweep(
                cls, name, profile, resolution, "batch")
            start_instance = _fresh_instance(name, profile, resolution)
            algorithm = cls(start_instance.ess, start_instance.contours)
            start = time.perf_counter()
            par = evaluate_algorithm(algorithm, workers=effective,
                                     engine="parallel")
            parallel_s = time.perf_counter() - start
            entry.update({
                "serial_s": serial_s,
                "parallel_s": parallel_s,
                "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
                "max_abs_deviation": float(np.max(np.abs(
                    serial_eval.suboptimality - par.suboptimality
                ))),
            })
        out[key] = entry
    return out


def _wallclock_fingerprint(result):
    """Everything comparable about one wall-clock run, bit-exactly.

    Floats go through ``repr`` so the identity check is exact to the
    last bit and NaN learned-selectivities (killed spill steps) compare
    equal instead of poisoning ``==``.
    """
    fp = {k: repr(result[k]) for k in (
        "qa", "oracle_cost", "oracle_rows", "native_cost", "sb_cost",
        "sb_steps", "ab_cost", "ab_steps", "rows_match",
    )}
    for label in ("sb_report", "ab_report"):
        fp[label] = [
            (s.contour, s.plan_key, s.mode, s.spill_epp, repr(s.budget),
             repr(s.cost_spent), s.completed, repr(s.learned_selectivity))
            for s in result[label].steps
        ]
    return fp


def bench_wallclock(row_budget=40_000, seed=11, resolution=None,
                    repeats=SWEEP_REPEATS):
    """Volcano vs vector engine on the Section 6.3 experiment.

    One wall-clock setup (data + ESS + contours) is built up front and
    shared, and the true location memo is warmed, so the timed region is
    exactly the engine-bound discovery work.  Each engine runs
    ``repeats`` times and the minimum is reported; the identity flag
    asserts both engines returned bit-identical experiment results,
    step-by-step (:func:`_wallclock_fingerprint`).
    """
    from repro.bench.harness import run_wallclock
    from repro.bench.wallclock import build_wallclock_setup
    from repro.engine.driver import measured_location

    kwargs = {} if resolution is None else {"resolution": resolution}
    setup = build_wallclock_setup(row_budget=row_budget, seed=seed, **kwargs)
    measured_location(setup.generator, setup.query)  # warm the qa memo
    timings, fingerprints = {}, {}
    for engine in ("volcano", "vector"):
        best = float("inf")
        result = None
        for _ in range(repeats):
            start = time.perf_counter()
            result = run_wallclock(engine=engine, setup=setup)
            best = min(best, time.perf_counter() - start)
        timings[engine] = best
        fingerprints[engine] = _wallclock_fingerprint(result)
    return {
        "query": setup.query.name,
        "row_budget": int(row_budget),
        "seed": int(seed),
        "grid_points": int(setup.ess.grid.num_points),
        "repeats": int(repeats),
        "volcano_s": timings["volcano"],
        "vector_s": timings["vector"],
        "speedup": (timings["volcano"] / timings["vector"]
                    if timings["vector"] > 0 else float("inf")),
        "identical": fingerprints["volcano"] == fingerprints["vector"],
        "vector_fallbacks": int(TIMERS.counter("vector_fallback")),
    }


def bench_tracing(name, profile, algorithm="sb", resolution=None,
                  repeats=SWEEP_REPEATS):
    """Tracing-off vs tracing-on exhaustive sweep on one workload.

    The disabled path must be free (no tracer installed — an
    instrumented call site costs a global load and a None check) and
    the enabled path must not perturb results: both sweeps'
    sub-optimality arrays are compared bit-exactly
    (``np.array_equal``).  Timings are best-of-``repeats`` on fresh
    instances, same protocol as :func:`bench_sweep`.
    """
    from repro.obs.trace import Tracer, install_tracer

    cls = _ALGORITHMS[algorithm]
    off_s = on_s = float("inf")
    off_eval = on_eval = instance = None
    spans = 0
    for _ in range(repeats):
        elapsed, off_eval, instance = _timed_sweep(
            cls, name, profile, resolution, "batch")
        off_s = min(off_s, elapsed)
        tracer = Tracer()
        previous = install_tracer(tracer)
        try:
            elapsed, on_eval, _ = _timed_sweep(
                cls, name, profile, resolution, "batch")
        finally:
            install_tracer(previous)
        on_s = min(on_s, elapsed)
        spans = len(tracer.spans)
    identical = np.array_equal(
        off_eval.suboptimality, on_eval.suboptimality
    )
    return {
        "query": name,
        "algorithm": algorithm,
        "engine": "batch",
        "grid_points": int(instance.ess.grid.num_points),
        "repeats": int(repeats),
        "tracing_off_s": off_s,
        "tracing_on_s": on_s,
        "overhead_pct": ((on_s - off_s) / off_s * 100.0
                         if off_s > 0 else 0.0),
        "identical": bool(identical),
        "spans_per_sweep": int(spans),
    }


#: Eager full-grid builds whose estimated peak RSS exceeds this budget
#: are recorded as infeasible (not attempted) in the ``ess_build``
#: section — the laptop-class memory budget the benchmark assumes.
EAGER_RSS_BUDGET_MB = 4096

#: Measured eager-DP footprint per grid point (KB), from the 5D_Q91
#: resolution-scaling measurement (45 MB @ 7.8k points -> 149 MB @ 100k
#: points, ~1.13 KB/point marginal).  Used only to *refuse* eager
#: builds over the budget, never to report a number as measured.
EAGER_KB_PER_POINT = 1.2

#: Default eager-vs-lazy build cells: the 4D acceptance cell (lazy must
#: cut optimizer calls >= 10x on a resolution-20 grid) and a 5-epp
#: million-point grid.
DEFAULT_ESS_CELLS = (("4D_Q26", 20), ("5D_Q91", 16))

#: The high-resolution 5-epp cell (24.3M points): eager needs an
#: estimated ~28 GB so it is never attempted; the lazy surface completes
#: it.  Included via ``repro bench --ess-big-cell``.
BIG_ESS_CELL = ("5D_Q91", 30)


def _peak_rss_kb():
    """Process-lifetime peak RSS in KB (Linux ``ru_maxrss`` unit)."""
    import resource

    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _run_fingerprint(ess, result):
    """Bit-exact fingerprint of one discovery run, mode-portable.

    Plan *ids* are surface-local (the lazy surface numbers plans in
    resolution order, the eager one in sorted-key order), so executions
    are compared through their plan *keys*; floats go through ``repr``
    so the comparison is exact to the last bit.
    """
    return {
        "total_cost": repr(result.total_cost),
        "optimal_cost": repr(result.optimal_cost),
        "suboptimality": repr(result.suboptimality),
        "executions": [
            (r.contour, r.mode, r.spill_dim, ess.plan_keys[r.plan_id],
             repr(r.budget), repr(r.charged), r.completed)
            for r in result.executions
        ],
    }


def _no_persistent_cache():
    """Context manager: disable the archive cache (honest cold builds)."""
    import contextlib

    @contextlib.contextmanager
    def scope():
        previous = os.environ.get("REPRO_CACHE")
        os.environ["REPRO_CACHE"] = "0"
        try:
            yield
        finally:
            if previous is None:
                os.environ.pop("REPRO_CACHE", None)
            else:
                os.environ["REPRO_CACHE"] = previous

    return scope()


def _ess_build_cell(name, resolution):
    """One eager-vs-lazy cell: build + discovery run at the true qa.

    The lazy side runs *first*: ``ru_maxrss`` is a process-lifetime
    high-water mark, so this ordering guarantees the lazy figure is
    never inflated by the eager build's allocations (the eager figure
    may be understated by earlier peaks — the conservative direction).
    """
    from repro.core.spill_bound import SpillBound

    with _no_persistent_cache():
        workloads.clear_cache()
        start = time.perf_counter()
        lazy = workloads.load(name, resolution=resolution, ess_mode="lazy")
        algorithm = SpillBound(lazy.ess, lazy.contours)
        result = algorithm.run(lazy.qa_coords(), trace=True)
        lazy_s = time.perf_counter() - start
        num_points = int(lazy.ess.grid.num_points)
        lazy_calls = int(lazy.ess.optimizer_calls)
        cell = {
            "query": name,
            "resolution": int(resolution),
            "grid_points": num_points,
            "lazy": {
                "build_and_run_s": lazy_s,
                "optimizer_calls": lazy_calls,
                "resolved_fraction": lazy_calls / num_points,
                "peak_rss_kb": _peak_rss_kb(),
                "suboptimality": float(result.suboptimality),
            },
            # An eager build always issues exactly one optimizer
            # evaluation per grid point, whether or not it is run here.
            "call_reduction": (num_points / lazy_calls
                               if lazy_calls else float("inf")),
        }
        lazy_fp = _run_fingerprint(lazy.ess, result)
        workloads.clear_cache()

        estimated_mb = num_points * EAGER_KB_PER_POINT / 1024.0
        if estimated_mb > EAGER_RSS_BUDGET_MB:
            cell["eager"] = {
                "attempted": False,
                "estimated_rss_mb": estimated_mb,
                "reason": (
                    f"estimated ~{estimated_mb / 1024.0:.1f} GB peak RSS "
                    f"exceeds the {EAGER_RSS_BUDGET_MB // 1024} GB budget"
                ),
            }
            return cell

        start = time.perf_counter()
        eager = workloads.load(name, resolution=resolution,
                               ess_mode="eager")
        algorithm = SpillBound(eager.ess, eager.contours)
        eager_result = algorithm.run(eager.qa_coords(), trace=True)
        eager_s = time.perf_counter() - start
        cell["eager"] = {
            "attempted": True,
            "build_and_run_s": eager_s,
            "optimizer_calls": int(eager.ess.optimizer_calls),
            "peak_rss_kb": _peak_rss_kb(),
            "suboptimality": float(eager_result.suboptimality),
        }
        cell["speedup"] = eager_s / lazy_s if lazy_s > 0 else float("inf")
        cell["run_identical"] = (
            lazy_fp == _run_fingerprint(eager.ess, eager_result)
        )
        workloads.clear_cache()
    return cell


def bench_ess_build(name, profile, resolution=None, cells=DEFAULT_ESS_CELLS,
                    big_cell=False):
    """Eager full-grid vs lazy contour-adaptive ESS construction.

    Two parts: a *sweep identity* check on the bench workload — the full
    exhaustive MSO sweep under both modes must produce bit-identical
    (``np.array_equal``) sub-optimality arrays (an exhaustive sweep
    resolves every location, so its value is fidelity, not economy) —
    and per-``cells`` build economy: lazy build + one discovery run at
    the true ``qa`` vs the eager equivalent, with optimizer-call counts,
    peak RSS and a run-fingerprint identity flag.  Cells whose eager
    build is estimated over :data:`EAGER_RSS_BUDGET_MB` record the
    refusal instead of a measurement.
    """
    from repro.core.spill_bound import SpillBound

    with _no_persistent_cache():
        workloads.clear_cache()
        evals = {}
        for mode in ("lazy", "eager"):
            instance = workloads.load(name, profile=profile,
                                      resolution=resolution, ess_mode=mode)
            algorithm = SpillBound(instance.ess, instance.contours)
            evals[mode] = evaluate_algorithm(algorithm, engine="batch")
            workloads.clear_cache()
    identity = {
        "query": name,
        "grid_points": int(
            evals["eager"].suboptimality.size
        ),
        "identical": bool(np.array_equal(
            evals["lazy"].suboptimality, evals["eager"].suboptimality
        )),
        "mso_lazy": float(evals["lazy"].mso),
        "mso_eager": float(evals["eager"].mso),
    }
    cell_list = [
        _ess_build_cell(cell_name, cell_resolution)
        for cell_name, cell_resolution in cells
    ]
    if big_cell:
        cell_list.append(_ess_build_cell(*BIG_ESS_CELL))
    return {"sweep_identity": identity, "cells": cell_list}


#: Default workload count for the anytime prior-scheduling cell.
ANYTIME_WORKLOADS = 100


def bench_anytime(num_workloads=ANYTIME_WORKLOADS, base_seed=0,
                  algorithms=("pb", "sb", "ab")):
    """Average-case discovery cost under prior-guided scheduling.

    Every seeded conformance workload is discovered at its *true*
    location by each algorithm under three priors: ``uniform`` (the
    guaranteed-inert baseline), ``sampled`` (catalog sampling), and
    ``history`` (fitted from the uniform runs' recorded outcomes in a
    throwaway store — the serving-tier repeat-workload scenario, where
    past discoveries of the same query feed the next one's schedule).
    Per (workload, algorithm) the speedup is the uniform run's total
    discovery cost over the prior run's; every prior-scheduled run
    also passes through a :class:`ConformanceMonitor`, so the artifact
    proves the MSO machinery held while the scheduler was aggressive.
    """
    import tempfile

    from repro.conformance.monitors import ConformanceMonitor
    from repro.conformance.workloads import build_conformance_instance
    from repro.prior import HistoryStore, history_key, make_prior

    monitor = ConformanceMonitor()
    costs = {m: [] for m in ("uniform", "sampled", "history")}
    subs = {m: [] for m in ("uniform", "sampled", "history")}
    with tempfile.TemporaryDirectory() as tmp:
        store = HistoryStore(os.path.join(tmp, "history.jsonl"))
        for k in range(num_workloads):
            seed = base_seed + k
            instance = build_conformance_instance(seed)
            qa = instance.query.true_location()
            priors = {"uniform": make_prior("uniform")}
            with monitor.context(seed=seed, workload=instance.name):
                for name in algorithms:
                    algorithm = _ALGORITHMS[name](
                        instance.ess, instance.contours,
                        prior=priors["uniform"])
                    result = algorithm.run(qa, trace=True)
                    monitor.check_run(result, algorithm, engine="loop")
                    costs["uniform"].append(float(result.total_cost))
                    subs["uniform"].append(float(result.suboptimality))
                store.record(history_key(instance.query, instance.ess),
                             qa)
                priors["sampled"] = make_prior(
                    "sampled", instance.query, instance.ess)
                priors["history"] = make_prior(
                    "history", instance.query, instance.ess, store=store)
                for mode in ("sampled", "history"):
                    for name in algorithms:
                        algorithm = _ALGORITHMS[name](
                            instance.ess, instance.contours,
                            prior=priors[mode])
                        result = algorithm.run(qa, trace=True)
                        monitor.check_run(result, algorithm,
                                          engine="loop")
                        costs[mode].append(float(result.total_cost))
                        subs[mode].append(float(result.suboptimality))
    uniform = np.asarray(costs["uniform"], dtype=float)
    modes = {
        "uniform": {
            "mean_cost": float(uniform.mean()),
            "aso_mean": float(np.mean(subs["uniform"])),
        },
    }
    for mode in ("sampled", "history"):
        cost = np.asarray(costs[mode], dtype=float)
        speedups = uniform / cost
        modes[mode] = {
            "mean_cost": float(cost.mean()),
            "aso_mean": float(np.mean(subs[mode])),
            "speedup_mean": float(speedups.mean()),
            "speedup_p50": float(np.percentile(speedups, 50)),
            "speedup_p95": float(np.percentile(speedups, 95)),
            "speedup_min": float(speedups.min()),
        }
    return {
        "workloads": int(num_workloads),
        "base_seed": int(base_seed),
        "algorithms": list(algorithms),
        "runs_per_mode": int(uniform.size),
        "modes": modes,
        "violations": int(monitor.counters.get("violations", 0)),
    }


#: Default workload count for the arena cell.  Small: the bench wants a
#: representative head-to-head row set, not the CLI's full 20-workload
#: sweep.
ARENA_WORKLOADS = 6


def bench_arena(num_workloads=ARENA_WORKLOADS, base_seed=0):
    """The head-to-head arena as a BENCH section (schema v8).

    Delegates to :func:`repro.arena.report.run_arena` over the shared
    seeded conformance workloads and returns its payload — per-row MSO
    and ASO for every (workload, algorithm) cell, per-algorithm
    aggregates, and the conformance verdict (0 expected).
    """
    from repro.arena.report import run_arena

    return run_arena(num_workloads=num_workloads,
                     base_seed=base_seed).to_payload()


def run_bench(json_path=None, query="3D_Q91", profile=None, workers=4,
              resolution=None, ess_mode=None, ess_big_cell=False,
              anytime_workloads=None):
    """Run the full perf benchmark and (optionally) write the artifact.

    Args:
        json_path: where to write the BENCH json (None: don't write).
        query: workload for the cache, sweep and parallel measurements.
        profile: resolution profile (None: ``REPRO_PROFILE`` default).
        workers: requested process count for the parallel sweep (the
            fan-out cost guard may clamp or skip it).
        resolution: optional explicit grid resolution (bigger grids
            give every measurement more to chew).  The wall-clock
            engine comparison always runs its own 4D workload at that
            experiment's default resolution.
        ess_mode: ``"eager"``/``"lazy"`` surface mode for the cache,
            sweep, parallel and tracing sections (the ``ess_build``
            section always measures both modes explicitly).
        ess_big_cell: also measure :data:`BIG_ESS_CELL` — the 24M-point
            5-epp grid only the lazy surface can build (minutes).
        anytime_workloads: randomized workloads for the anytime
            prior-scheduling cell (None: :data:`ANYTIME_WORKLOADS`).
    """
    from repro.ess.lazy import resolve_ess_mode

    validate_artifact_path(json_path)
    ess_mode = resolve_ess_mode(ess_mode)
    TIMERS.reset()
    previous_env = os.environ.get("REPRO_ESS")
    os.environ["REPRO_ESS"] = ess_mode
    try:
        cache_stats = bench_cache(query, profile, resolution=resolution)
        sweep_stats = bench_sweep(query, profile, resolution=resolution)
        parallel_stats = bench_parallel(query, profile, workers,
                                        resolution=resolution)
        wallclock_stats = bench_wallclock()
        tracing_stats = bench_tracing(query, profile, resolution=resolution)
    finally:
        if previous_env is None:
            os.environ.pop("REPRO_ESS", None)
        else:
            os.environ["REPRO_ESS"] = previous_env
    ess_build_stats = bench_ess_build(query, profile, resolution=resolution,
                                      big_cell=ess_big_cell)
    from repro.serve.loadgen import bench_observability, bench_serving

    serving_stats = bench_serving()
    observability_stats = bench_observability()
    anytime_stats = bench_anytime(
        num_workloads=(ANYTIME_WORKLOADS if anytime_workloads is None
                       else anytime_workloads))
    arena_stats = bench_arena()
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "generated_by": "repro bench",
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "parallel_speedup_achievable": (os.cpu_count() or 1) > 1,
        "ess_mode": ess_mode,
        "cache": cache_stats,
        "sweeps": sweep_stats,
        "parallel": parallel_stats,
        "wallclock": wallclock_stats,
        "tracing": tracing_stats,
        "ess_build": ess_build_stats,
        "serving": serving_stats,
        "observability": observability_stats,
        "anytime": anytime_stats,
        "arena": arena_stats,
    }
    if json_path:
        TIMERS.write_json(json_path, extra=payload)
    payload.update(TIMERS.summary())
    return payload
