"""The perf-trajectory benchmark: ``repro bench --json BENCH_pr1.json``.

Measures the performance layer end to end and writes a JSON artifact so
every PR can append a comparable data point:

* **cache** — cold ESS build (optimizer sweep + archive store) vs warm
  load (persistent-archive hit) for one workload, with an equivalence
  check (optimal costs, plan ids and plan keys must round-trip
  bit-identically);
* **sweeps** — serial vs multiprocess exhaustive SB/AB evaluation with
  the max absolute sub-optimality deviation between the two paths;
* **timers** — the process-global phase profile (ess_build / contour /
  sweep timings, cache hit counters) accumulated while benchmarking.

The artifact records the visible CPU count: on single-core containers
the multiprocess sweep cannot beat serial, and the JSON says so rather
than hiding it.
"""

from __future__ import annotations

import os
import platform
import time

import numpy as np

from repro.bench import workloads
from repro.core.aligned_bound import AlignedBound
from repro.core.mso import evaluate_algorithm
from repro.core.spill_bound import SpillBound
from repro.ess.persistence import ess_cache_key
from repro.perf import cache as ess_cache
from repro.perf.timers import TIMERS

#: Schema version of the BENCH json artifact.
BENCH_SCHEMA_VERSION = 1


def _disk_key(instance):
    return ess_cache_key(
        query_name=instance.query.name,
        resolution=instance.ess.grid.resolution,
        sel_min=[float(v[0]) for v in instance.ess.grid.values],
        cost_fingerprint=instance.ess.cost_model.fingerprint(),
        left_deep=False,
    )


def bench_cache(name, profile, resolution=None):
    """Cold-build vs warm-load timings for one workload."""
    workloads.clear_cache()
    # Evict any pre-existing archive so "cold" really builds.
    probe = workloads.load(name, profile=profile, resolution=resolution)
    path = ess_cache.archive_path(_disk_key(probe))
    workloads.clear_cache()
    if os.path.exists(path):
        os.remove(path)

    start = time.perf_counter()
    cold = workloads.load(name, profile=profile, resolution=resolution)
    cold_s = time.perf_counter() - start

    workloads.clear_cache()
    start = time.perf_counter()
    warm = workloads.load(name, profile=profile, resolution=resolution)
    warm_s = time.perf_counter() - start

    identical = (
        np.array_equal(cold.ess.optimal_cost, warm.ess.optimal_cost)
        and np.array_equal(cold.ess.plan_ids, warm.ess.plan_ids)
        and cold.ess.plan_keys == warm.ess.plan_keys
    )
    return {
        "query": name,
        "profile": profile or workloads.active_profile(),
        "grid_points": int(cold.ess.grid.num_points),
        "posp_size": int(cold.ess.posp_size),
        "cold_build_s": cold_s,
        "warm_load_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "roundtrip_identical": bool(identical),
        "cache_hit": bool(TIMERS.counter("ess_cache_hit")),
    }


def _fresh_instance(name, profile, resolution):
    """A workload instance with cold in-process caches.

    Clearing the registry forces a reload; the persistent archive makes
    that cheap while guaranteeing the ESS-level memo caches (spill
    curves, per-plan cost arrays) start empty, so back-to-back sweep
    timings don't leak warmth into each other.
    """
    workloads.clear_cache()
    return workloads.load(name, profile=profile, resolution=resolution)


def bench_sweep(name, profile, workers, algorithms=("sb", "ab"),
                resolution=None):
    """Serial vs parallel exhaustive evaluation for SB/AB."""
    classes = {"sb": SpillBound, "ab": AlignedBound}
    out = {}
    for key in algorithms:
        cls = classes[key]
        instance = _fresh_instance(name, profile, resolution)
        serial_algo = cls(instance.ess, instance.contours)
        start = time.perf_counter()
        serial = evaluate_algorithm(serial_algo, workers=1)
        serial_s = time.perf_counter() - start

        instance = _fresh_instance(name, profile, resolution)
        parallel_algo = cls(instance.ess, instance.contours)
        start = time.perf_counter()
        par = evaluate_algorithm(parallel_algo, workers=workers)
        parallel_s = time.perf_counter() - start

        deviation = float(
            np.max(np.abs(serial.suboptimality - par.suboptimality))
        )
        out[key] = {
            "grid_points": int(instance.ess.grid.num_points),
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "workers": int(workers),
            "speedup": serial_s / parallel_s if parallel_s > 0 else 0.0,
            "max_abs_deviation": deviation,
            "mso": float(serial.mso),
            "aso": float(serial.aso),
        }
    return out


def run_bench(json_path=None, query="3D_Q91", profile=None, workers=4,
              resolution=None):
    """Run the full perf benchmark and (optionally) write the artifact.

    Args:
        json_path: where to write the BENCH json (None: don't write).
        query: workload for both the cache and sweep measurements.
        profile: resolution profile (None: ``REPRO_PROFILE`` default).
        workers: process count for the parallel sweep.
        resolution: optional explicit grid resolution (bigger grids
            give both the cache and the parallel sweep more to chew).
    """
    TIMERS.reset()
    cache_stats = bench_cache(query, profile, resolution=resolution)
    sweep_stats = bench_sweep(query, profile, workers,
                              resolution=resolution)
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "generated_by": "repro bench",
        "hardware": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "parallel_speedup_achievable": (os.cpu_count() or 1) > 1,
        "cache": cache_stats,
        "sweeps": sweep_stats,
    }
    if json_path:
        TIMERS.write_json(json_path, extra=payload)
    payload.update(TIMERS.summary())
    return payload
