"""Random workload generation for fuzz-testing the guarantees.

The MSO guarantees are supposed to hold for *any* query on *any*
platform — the whole point of a structural bound.  This module
generates random-but-valid workloads (random tree-shaped join graphs
over random schemas, random epp markings, random filter selectivities)
so property tests can hammer the pipeline end-to-end: build the ESS,
run the discovery algorithms everywhere, and check every invariant.

Generation is deterministic in the seed and biased toward the shapes
the paper evaluates (chains, stars, branches of 3-7 relations, 2-4
epps).
"""

from __future__ import annotations

import numpy as np

from repro.catalog.schema import Column, Schema, Table, fk_column, key_column
from repro.query.predicates import filter_pred, join
from repro.query.query import SPJQuery


def random_workload(seed, max_tables=6, max_epps=3):
    """Generate a random SPJ query (with schema) from a seed.

    Returns an :class:`~repro.query.query.SPJQuery` whose join graph is
    a random tree, with ``2..max_epps`` joins marked error-prone and
    plausible catalog statistics (fact tables of 10^5..10^8 rows,
    dimensions of 10..10^6).
    """
    rng = np.random.default_rng(seed)
    num_tables = int(rng.integers(3, max_tables + 1))

    # One fact table plus dimensions; sizes span realistic magnitudes.
    tables = []
    fact_rows = int(10 ** rng.uniform(5, 8))
    dim_rows = [int(10 ** rng.uniform(1, 6)) for _ in range(num_tables - 1)]

    fact_columns = []
    for k, rows in enumerate(dim_rows):
        indexed = bool(rng.random() < 0.7)
        fact_columns.append(fk_column(f"f_ref{k}", rows, indexed=indexed))
    fact_columns.append(Column("f_attr", ndv=int(rng.integers(2, 1000)),
                               indexed=bool(rng.random() < 0.3)))
    tables.append(Table("fact", fact_rows, fact_columns))
    for k, rows in enumerate(dim_rows):
        tables.append(Table(f"dim{k}", rows, [
            key_column(f"d{k}_id", rows),
            Column(f"d{k}_attr", ndv=min(rows, int(rng.integers(2, 500))),
                   indexed=bool(rng.random() < 0.5)),
        ]))
    schema = Schema(f"rand{seed}", tables=tables)

    # Random tree: each dimension attaches to the fact table or to a
    # previously attached dimension (via its reference column).  To keep
    # the catalog simple, dimension-to-dimension edges reuse the fact
    # reference columns' domains — join selectivity is what matters.
    joins = []
    attached = ["fact"]
    for k in range(num_tables - 1):
        parent = attached[int(rng.integers(0, len(attached)))]
        if parent == "fact":
            left, left_col = "fact", f"f_ref{k}"
        else:
            # Parent dimension joins via its id column (many-many edge).
            left = parent
            left_col = parent.replace("dim", "d") + "_id"
        sel = 10.0 ** rng.uniform(-6, -1)
        joins.append(join(left, left_col, f"dim{k}", f"d{k}_id",
                          selectivity=sel, name=f"j{k}"))
        attached.append(f"dim{k}")

    num_epps = int(rng.integers(2, min(max_epps, len(joins)) + 1))
    epp_indices = rng.choice(len(joins), size=num_epps, replace=False)
    marked = []
    for idx, pred in enumerate(joins):
        kwargs = {field: getattr(pred, field)
                  for field in pred.__dataclass_fields__}
        kwargs["error_prone"] = idx in epp_indices
        marked.append(type(pred)(**kwargs))

    filters = []
    if rng.random() < 0.8:
        target = int(rng.integers(0, num_tables - 1))
        filters.append(filter_pred(
            f"dim{target}", f"d{target}_attr", "=",
            int(rng.integers(0, 5)),
            selectivity=float(10 ** rng.uniform(-3, -0.3)),
        ))
    if rng.random() < 0.5:
        filters.append(filter_pred(
            "fact", "f_attr", "<", int(rng.integers(1, 900)),
            selectivity=float(10 ** rng.uniform(-2, -0.1)),
        ))

    return SPJQuery(f"rand{seed}", schema, [t.name for t in tables],
                    joins=marked, filters=filters)
