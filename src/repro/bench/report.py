"""Plain-text renderers for the experiment tables and figure series.

The paper's figures are bar charts over the query suite; in a terminal
reproduction the same information is a table of series values, which is
what these helpers print.  Everything returns strings so benchmarks can
both print and persist them.
"""

from __future__ import annotations


def format_value(value):
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_table(title, headers, rows):
    """Render an ASCII table with a title rule."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    def line(parts, pad=" "):
        return " | ".join(str(p).rjust(w, pad) for p, w in zip(parts, widths))

    rule = "-+-".join("-" * w for w in widths)
    out = [f"== {title} ==", line(headers), rule]
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def format_histogram(title, edges, fractions, bar_width=40):
    """Render a sub-optimality histogram (paper Figure 12 style)."""
    out = [f"== {title} =="]
    for i, frac in enumerate(fractions):
        lo, hi = edges[i], edges[i + 1]
        bar = "#" * max(1 if frac > 0 else 0, int(round(frac * bar_width)))
        out.append(f"[{lo:6.1f},{hi:6.1f})  {frac * 100:6.2f}%  {bar}")
    return "\n".join(out)


def save_report(path, text):
    """Append a rendered block to a results file (and return the text)."""
    with open(path, "a") as fh:
        fh.write(text)
        fh.write("\n\n")
    return text
