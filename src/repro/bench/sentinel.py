"""Perf-regression sentinel: gate a bench run against the ledger.

``repro bench --sentinel`` compares the *current* bench payload
against the committed ``BENCH_pr*.json`` baselines (the same artifacts
the trajectory table merges, through the same
:data:`repro.bench.trajectory._METRICS` extractors) and produces a
machine-readable verdict.  A regression makes the CLI exit 1, which is
what turns the committed artifacts into a CI gate instead of a chart.

Tolerances are deliberately *wide* and direction-aware.  The committed
baselines were measured on full-resolution profiles on developer
hardware; CI reruns the bench on the smoke profile inside a container,
so a 30% delta is weather, not signal.  What the sentinel is built to
catch is the order-of-magnitude collapse — a cache that stopped
caching, a batcher that fell back to the loop, a serving tier whose
p99 exploded — while letting profile and hardware drift through:

* ``higher_better`` (speedups, rps, call reductions): regression when
  the current value falls below ``threshold`` (a ratio, default 0.25)
  times the baseline.
* ``lower_better`` (latencies): regression when the current value
  exceeds ``threshold`` (default 4.0) times the baseline.
* ``pct_ceiling`` (overhead percentages, which legitimately hover
  around zero so ratios are meaningless): regression when the current
  value exceeds ``threshold`` percentage points outright.

A metric missing from either side is recorded as skipped, never
failed: old artifacts predate newer schema sections, and a bench run
with a section disabled should not trip the gate.
"""

from __future__ import annotations

import json
import os

from repro.bench.report import format_table
from repro.bench.trajectory import _METRICS, discover_artifacts
from repro.errors import ReproError

#: Verdict schema tag.
SENTINEL_SCHEMA = "repro.sentinel.v1"

#: ``metric key -> (rule, threshold)``; see the module docstring for
#: rule semantics.  Keys follow :data:`repro.bench.trajectory._METRICS`.
DEFAULT_RULES = {
    "cache_speedup": ("higher_better", 0.25),
    "batched_sweep": ("higher_better", 0.25),
    "parallel_sweep": ("higher_better", 0.25),
    "wallclock": ("higher_better", 0.25),
    "tracing_overhead": ("pct_ceiling", 10.0),
    "lazy_ess_calls": ("higher_better", 0.25),
    "serving_rps": ("higher_better", 0.25),
    "serving_p99": ("lower_better", 4.0),
    "anytime_sampled": ("higher_better", 0.25),
    "anytime_history": ("higher_better", 0.25),
    "observability_overhead": ("pct_ceiling", 10.0),
}


def load_baselines(directory=None, exclude=None):
    """Committed baseline payloads, PR order: ``[(pr, name, payload)]``.

    ``exclude`` drops one artifact by path or basename — the artifact
    the current run just wrote must not serve as its own baseline.
    """
    skip = os.path.basename(exclude) if exclude else None
    baselines = []
    for pr, path in discover_artifacts(directory):
        if skip and os.path.basename(path) == skip:
            continue
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            continue
        baselines.append((pr, os.path.basename(path), payload))
    return baselines


def _latest_value(baselines, extract):
    """Newest baseline carrying the metric: ``(pr, raw value)``."""
    for pr, _name, payload in reversed(baselines):
        cell = extract(payload)
        if cell is not None and cell[0] is not None:
            return pr, float(cell[0])
    return None, None


def _apply_rule(rule, threshold, baseline, current):
    """``(status, limit)`` for one metric under one rule."""
    if rule == "higher_better":
        limit = baseline * threshold
        return ("regression" if current < limit else "ok"), limit
    if rule == "lower_better":
        limit = baseline * threshold
        return ("regression" if current > limit else "ok"), limit
    if rule == "pct_ceiling":
        return ("regression" if current > threshold else "ok"), threshold
    raise ReproError(f"unknown sentinel rule {rule!r}")


def evaluate_sentinel(current, baselines, rules=None):
    """Judge one bench payload against the baselines.

    Args:
        current: the current bench payload (the dict ``run_bench``
            returns / ``BENCH_prN.json`` holds).
        baselines: output of :func:`load_baselines`.
        rules: optional ``{metric: (rule, threshold)}`` override;
            defaults to :data:`DEFAULT_RULES`.

    Returns the verdict dict: ``ok`` (no regressions), ``regressions``
    (count) and one entry per ledger metric under ``checks`` with the
    baseline provenance, the applied band, and a status of ``ok`` /
    ``regression`` / ``skipped``.
    """
    rules = dict(DEFAULT_RULES if rules is None else rules)
    checks = []
    for key, label, extract in _METRICS:
        entry = {"metric": key, "label": label}
        rule, threshold = rules.get(key, (None, None))
        cell = extract(current)
        value = None if cell is None else cell[0]
        base_pr, base_value = _latest_value(baselines, extract)
        if rule is None:
            entry.update(status="skipped", reason="no rule")
        elif value is None:
            entry.update(status="skipped", reason="metric absent from "
                                                  "current run")
        elif base_value is None and rule != "pct_ceiling":
            # pct_ceiling bands are absolute, so they judge even a
            # brand-new metric with no committed baseline yet.
            entry.update(status="skipped", reason="no committed baseline")
        else:
            status, limit = _apply_rule(rule, threshold, base_value,
                                        float(value))
            entry.update(
                status=status,
                current=float(value),
                baseline=base_value,
                baseline_pr=base_pr,
                rule=rule,
                threshold=threshold,
                limit=limit,
            )
        checks.append(entry)
    regressions = sum(1 for c in checks if c["status"] == "regression")
    return {
        "schema": SENTINEL_SCHEMA,
        "ok": regressions == 0,
        "regressions": regressions,
        "checked": sum(1 for c in checks if c["status"] != "skipped"),
        "baselines": [{"pr": pr, "path": name}
                      for pr, name, _payload in baselines],
        "checks": checks,
    }


def run_sentinel(current, directory=None, exclude=None, rules=None):
    """Load baselines and judge ``current`` (payload dict or path)."""
    if isinstance(current, str):
        exclude = exclude or current
        try:
            with open(current, encoding="utf-8") as handle:
                current = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ReproError(
                f"cannot read bench artifact {current!r}: {exc}"
            ) from None
    baselines = load_baselines(directory, exclude=exclude)
    return evaluate_sentinel(current, baselines, rules=rules)


def render_sentinel(verdict):
    """The verdict as a printable table plus a one-line summary."""
    rows = []
    for check in verdict["checks"]:
        if check["status"] == "skipped":
            rows.append([check["label"], "skipped",
                         check.get("reason", ""), "", ""])
            continue
        band = (f"> {check['limit']:.3g}" if check["rule"] == "lower_better"
                else f"> {check['limit']:.3g} pts"
                if check["rule"] == "pct_ceiling"
                else f"< {check['limit']:.3g}")
        base = ("-" if check.get("baseline") is None
                else f"{check['baseline']:.3g} (PR{check['baseline_pr']})")
        rows.append([
            check["label"],
            check["status"].upper() if check["status"] == "regression"
            else check["status"],
            f"{check['current']:.3g}",
            base,
            f"regression when {band}",
        ])
    table = format_table(
        "perf-regression sentinel",
        ["measurement", "status", "current", "baseline", "band"],
        rows,
    )
    summary = (
        f"sentinel: OK — {verdict['checked']} metrics within tolerance"
        if verdict["ok"] else
        f"sentinel: REGRESSION — {verdict['regressions']} of "
        f"{verdict['checked']} metrics outside tolerance"
    )
    return f"{table}\n{summary}"
