"""Dependency-free SVG renderers for the paper's figures.

Static SVG files (no JS) rendered to ``results/figures/``; every figure
has its full data table in ``results/benchmark_report.txt`` (the table
view), and the charts follow fixed mark specs:

* bars ≤ 24px thick, 4px rounded data-end / square baseline, 2px
  surface gaps between adjacent bars;
* 2px lines with ≥8px markers ringed in the surface color;
* hairline one-step-off-surface gridlines, one y axis, clean ticks;
* categorical colors in fixed slot order (validated: worst adjacent
  CVD ΔE 47.2 on the light surface); series identity also carried by a
  legend, with selective direct labels on extremes only — values and
  text always in ink, never in series color.
"""

from __future__ import annotations

import math

#: Validated categorical slots (light surface), fixed order.
SERIES_COLORS = ("#2a78d6", "#1baf7a", "#eda100")

#: Extended slots for charts comparing more than three series (the
#: arena scatter plots six algorithms); the first three match
#: :data:`SERIES_COLORS` so shared series keep their identity.
EXTENDED_SERIES_COLORS = SERIES_COLORS + ("#d2495e", "#7a5cd6", "#5f6b76")
SURFACE = "#fcfcfb"
GRID = "#e7e6e2"
AXIS = "#b8b7b2"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
FONT = ("font-family=\"-apple-system, 'Segoe UI', Helvetica, Arial, "
        "sans-serif\"")

BAR_MAX_THICKNESS = 24
BAR_GAP = 2


def _esc(text):
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _fmt(value):
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.0f}"
    return f"{value:.2g}"


def _nice_ticks(top, count=5):
    """Clean round tick values from 0 to at least ``top``."""
    if top <= 0:
        return [0.0, 1.0]
    raw = top / count
    magnitude = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = magnitude * mult
        if step * count >= top:
            break
    ticks = []
    value = 0.0
    while value < top * (1 + 1e-9) or len(ticks) < 2:
        ticks.append(round(value, 10))
        value += step
        if len(ticks) > 12:
            break
    return ticks


class _Canvas:
    """Minimal SVG assembly helper."""

    def __init__(self, width, height, title):
        self.width = width
        self.height = height
        self.parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}" '
            f'role="img" aria-label="{_esc(title)}">',
            f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>',
        ]

    def rect(self, x, y, w, h, fill, rounded_top=0):
        if h <= 0 or w <= 0:
            return
        if rounded_top > 0 and h > rounded_top:
            r = min(rounded_top, w / 2)
            self.parts.append(
                f'<path d="M{x:.1f},{y + h:.1f} V{y + r:.1f} '
                f'Q{x:.1f},{y:.1f} {x + r:.1f},{y:.1f} H{x + w - r:.1f} '
                f'Q{x + w:.1f},{y:.1f} {x + w:.1f},{y + r:.1f} '
                f'V{y + h:.1f} Z" fill="{fill}"/>'
            )
        else:
            self.parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
                f'height="{h:.1f}" fill="{fill}"/>'
            )

    def line(self, x1, y1, x2, y2, stroke, width=1, dash=None):
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self.parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
            f'y2="{y2:.1f}" stroke="{stroke}" stroke-width="{width}"'
            f"{dash_attr}/>"
        )

    def polyline(self, points, stroke, width=2):
        coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}" stroke-linejoin="round" '
            f'stroke-linecap="round"/>'
        )

    def circle(self, x, y, r, fill, ring=True):
        if ring:
            self.parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r + 2:.1f}" '
                f'fill="{SURFACE}"/>'
            )
        self.parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r:.1f}" fill="{fill}"/>'
        )

    def text(self, x, y, content, size=12, fill=TEXT_SECONDARY,
             anchor="start", weight="normal"):
        self.parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'fill="{fill}" text-anchor="{anchor}" '
            f'font-weight="{weight}" {FONT}>{_esc(content)}</text>'
        )

    def render(self):
        return "\n".join(self.parts + ["</svg>"])


def _frame(canvas, left, top, right, bottom, ticks, y_of, y_label):
    """Gridlines, baseline, tick labels, y-axis caption."""
    for tick in ticks:
        y = y_of(tick)
        canvas.line(left, y, right, y, GRID, 1)
        canvas.text(left - 8, y + 4, _fmt(tick), size=11, anchor="end")
    canvas.line(left, bottom, right, bottom, AXIS, 1)
    if y_label:
        canvas.text(left, top - 10, y_label, size=11,
                    fill=TEXT_SECONDARY)


def _legend(canvas, x, y, series_names):
    for k, name in enumerate(series_names):
        color = SERIES_COLORS[k % len(SERIES_COLORS)]
        canvas.rect(x, y - 9, 12, 12, color, rounded_top=3)
        canvas.text(x + 18, y + 1, name, size=12, fill=TEXT_PRIMARY)
        x += 28 + 7 * len(name)


def grouped_bar_chart(title, categories, series, y_label="",
                      reference=None, width=860, height=380,
                      subtitle=""):
    """Grouped bars: one group per category, one bar per series.

    ``series`` is a list of ``(name, values)``; ``reference`` an
    optional ``(label, values)`` overlay drawn as a per-group dashed
    level (e.g. the 2D+2 line of Figure 13).
    """
    top = 76 if subtitle else 60
    left, right, bottom = 64, width - 20, height - 56
    canvas = _Canvas(width, height, title)
    canvas.text(left, 26, title, size=15, fill=TEXT_PRIMARY, weight="600")
    if subtitle:
        canvas.text(left, 44, subtitle, size=12)

    peak = max(max(values) for _, values in series)
    if reference:
        peak = max(peak, max(reference[1]))
    ticks = _nice_ticks(peak)
    span = ticks[-1]

    def y_of(value):
        return bottom - (value / span) * (bottom - top)

    _frame(canvas, left, top, right, bottom, ticks, y_of, y_label)

    num_groups = len(categories)
    num_series = len(series)
    slot = (right - left) / num_groups
    thickness = min(BAR_MAX_THICKNESS,
                    (slot * 0.72 - BAR_GAP * (num_series - 1)) / num_series)
    # Direct labels only on each series' extreme (selective labelling).
    extremes = [max(range(num_groups), key=lambda g: values[g])
                for _, values in series]

    for g, category in enumerate(categories):
        group_width = num_series * thickness + (num_series - 1) * BAR_GAP
        x0 = left + g * slot + (slot - group_width) / 2
        for k, (name, values) in enumerate(series):
            color = SERIES_COLORS[k % len(SERIES_COLORS)]
            x = x0 + k * (thickness + BAR_GAP)
            y = y_of(values[g])
            canvas.rect(x, y, thickness, bottom - y, color, rounded_top=4)
            if g == extremes[k]:
                canvas.text(x + thickness / 2, y - 5, _fmt(values[g]),
                            size=11, fill=TEXT_PRIMARY, anchor="middle")
        if reference:
            y = y_of(reference[1][g])
            canvas.line(x0 - 4, y, x0 + group_width + 4, y,
                        TEXT_SECONDARY, 1.5, dash="4,3")
        canvas.text(left + g * slot + slot / 2, bottom + 18, category,
                    size=11, anchor="middle")

    names = [name for name, _ in series]
    if reference:
        names = names + [f"{reference[0]} (dashed)"]
    _legend(canvas, left, height - 14, names[: len(series)])
    if reference:
        x = left + sum(28 + 7 * len(n) for n in names[: len(series)])
        canvas.line(x, height - 18, x + 16, height - 18, TEXT_SECONDARY,
                    1.5, dash="4,3")
        canvas.text(x + 22, height - 13, reference[0], size=12,
                    fill=TEXT_PRIMARY)
    return canvas.render()


def line_chart(title, x_values, series, x_label="", y_label="",
               width=720, height=380, subtitle=""):
    """Multi-series line chart with end markers and end labels."""
    top = 76 if subtitle else 60
    left, right, bottom = 64, width - 110, height - 56
    canvas = _Canvas(width, height, title)
    canvas.text(left, 26, title, size=15, fill=TEXT_PRIMARY, weight="600")
    if subtitle:
        canvas.text(left, 44, subtitle, size=12)

    peak = max(max(values) for _, values in series)
    ticks = _nice_ticks(peak)
    span = ticks[-1]
    xs = list(x_values)

    def x_of(idx):
        if len(xs) == 1:
            return (left + right) / 2
        return left + idx * (right - left) / (len(xs) - 1)

    def y_of(value):
        return bottom - (value / span) * (bottom - top)

    _frame(canvas, left, top, right, bottom, ticks, y_of, y_label)
    for idx, x_value in enumerate(xs):
        canvas.text(x_of(idx), bottom + 18, _fmt(float(x_value)), size=11,
                    anchor="middle")
    if x_label:
        canvas.text((left + right) / 2, bottom + 36, x_label, size=11,
                    anchor="middle")

    for k, (name, values) in enumerate(series):
        color = SERIES_COLORS[k % len(SERIES_COLORS)]
        points = [(x_of(i), y_of(v)) for i, v in enumerate(values)]
        canvas.polyline(points, color, 2)
        for x, y in points:
            canvas.circle(x, y, 4, color)
        end_x, end_y = points[-1]
        canvas.text(end_x + 10, end_y + 4, name, size=12,
                    fill=TEXT_PRIMARY)
    _legend(canvas, left, height - 14, [name for name, _ in series])
    return canvas.render()


def histogram_chart(title, edges, series, width=720, height=340,
                    subtitle=""):
    """Side-by-side histogram bars over shared bins.

    ``series`` is ``[(name, fractions), ...]`` with fractions per bin.
    """
    top = 76 if subtitle else 60
    left, right, bottom = 64, width - 20, height - 56
    canvas = _Canvas(width, height, title)
    canvas.text(left, 26, title, size=15, fill=TEXT_PRIMARY, weight="600")
    if subtitle:
        canvas.text(left, 44, subtitle, size=12)

    peak = max(max(f) for _, f in series)
    ticks = [t for t in (0, 0.25, 0.5, 0.75, 1.0) if t <= max(peak, 0.25) * 1.3 or t <= 1]

    def y_of(value):
        return bottom - (value / 1.0) * (bottom - top)

    for tick in ticks:
        y = y_of(tick)
        canvas.line(left, y, right, y, GRID, 1)
        canvas.text(left - 8, y + 4, f"{tick * 100:.0f}%", size=11,
                    anchor="end")
    canvas.line(left, bottom, right, bottom, AXIS, 1)

    bins = len(series[0][1])
    slot = (right - left) / bins
    num_series = len(series)
    thickness = min(BAR_MAX_THICKNESS,
                    (slot * 0.7 - BAR_GAP * (num_series - 1)) / num_series)
    for b in range(bins):
        group_width = num_series * thickness + (num_series - 1) * BAR_GAP
        x0 = left + b * slot + (slot - group_width) / 2
        for k, (name, fractions) in enumerate(series):
            color = SERIES_COLORS[k % len(SERIES_COLORS)]
            x = x0 + k * (thickness + BAR_GAP)
            y = y_of(fractions[b])
            canvas.rect(x, y, thickness, bottom - y, color, rounded_top=4)
            if fractions[b] == max(fractions):
                canvas.text(x + thickness / 2, y - 5,
                            f"{fractions[b] * 100:.0f}%", size=11,
                            fill=TEXT_PRIMARY, anchor="middle")
        label = f"[{_fmt(float(edges[b]))},{_fmt(float(edges[b + 1]))})"
        canvas.text(left + b * slot + slot / 2, bottom + 18, label,
                    size=10, anchor="middle")
    canvas.text((left + right) / 2, bottom + 34, "sub-optimality range",
                size=11, anchor="middle")
    _legend(canvas, left, height - 12, [name for name, _ in series])
    return canvas.render()


def step_trace_chart(title, waypoints, qa, width=560, height=520,
                     subtitle=""):
    """The Figure 7 Manhattan profile: qrun waypoints in log-log space."""
    top = 76 if subtitle else 60
    left, right, bottom = 76, width - 28, height - 64
    canvas = _Canvas(width, height, title)
    canvas.text(left, 26, title, size=15, fill=TEXT_PRIMARY, weight="600")
    if subtitle:
        canvas.text(left, 44, subtitle, size=12)

    xs = [p[0] for p in waypoints] + [qa[0]]
    ys = [p[1] for p in waypoints] + [qa[1]]
    lo_x, lo_y = min(xs), min(ys)

    def log_pos(value, lo, a, b):
        span = math.log10(1.0) - math.log10(lo)
        if span <= 0:
            return (a + b) / 2
        return a + (math.log10(max(value, lo)) - math.log10(lo)) / span * (b - a)

    def x_of(value):
        return log_pos(value, lo_x, left, right)

    def y_of(value):
        return log_pos(value, lo_y, bottom, top)

    # Log gridlines at decades.
    decade = 10 ** math.floor(math.log10(lo_x))
    while decade <= 1.0:
        if decade >= lo_x:
            x = x_of(decade)
            canvas.line(x, top, x, bottom, GRID, 1)
            canvas.text(x, bottom + 16, f"1e{int(math.log10(decade))}",
                        size=10, anchor="middle")
        decade *= 10
    decade = 10 ** math.floor(math.log10(lo_y))
    while decade <= 1.0:
        if decade >= lo_y:
            y = y_of(decade)
            canvas.line(left, y, right, y, GRID, 1)
            canvas.text(left - 8, y + 4, f"1e{int(math.log10(decade))}",
                        size=10, anchor="end")
        decade *= 10
    canvas.line(left, bottom, right, bottom, AXIS, 1)
    canvas.line(left, top, left, bottom, AXIS, 1)
    canvas.text((left + right) / 2, bottom + 34, "epp 1 selectivity",
                size=11, anchor="middle")
    canvas.text(18, (top + bottom) / 2, "epp 2 selectivity", size=11,
                anchor="middle")

    color = SERIES_COLORS[0]
    points = [(x_of(px), y_of(py)) for px, py in waypoints]
    # Manhattan profile: axis-parallel moves between waypoints.
    for (x1, y1), (x2, y2) in zip(points, points[1:]):
        canvas.line(x1, y1, x2, y1, color, 2)
        canvas.line(x2, y1, x2, y2, color, 2)
    for x, y in points:
        canvas.circle(x, y, 4, color)
    qa_x, qa_y = x_of(qa[0]), y_of(qa[1])
    canvas.circle(qa_x, qa_y, 5, SERIES_COLORS[2])
    canvas.text(qa_x + 10, qa_y + 4, "qa", size=12, fill=TEXT_PRIMARY)
    canvas.text(points[0][0] + 8, points[0][1] - 8, "origin", size=11)
    return canvas.render()


def scatter_chart(title, series, x_label="", y_label="", width=720,
                  height=420, subtitle=""):
    """Multi-series scatter: one marker per observation.

    ``series`` is ``[(name, [(x, y), ...]), ...]`` — e.g. the arena's
    per-workload (ASO, MSO) pairs, one series per algorithm.  Colors
    come from :data:`EXTENDED_SERIES_COLORS` so up to six algorithms
    stay distinguishable.
    """
    top = 76 if subtitle else 60
    left, right, bottom = 64, width - 20, height - 56
    canvas = _Canvas(width, height, title)
    canvas.text(left, 26, title, size=15, fill=TEXT_PRIMARY, weight="600")
    if subtitle:
        canvas.text(left, 44, subtitle, size=12)

    points = [(x, y) for _, pts in series for x, y in pts]
    x_peak = max((x for x, _ in points), default=1.0)
    y_peak = max((y for _, y in points), default=1.0)
    x_ticks = _nice_ticks(x_peak)
    y_ticks = _nice_ticks(y_peak)
    x_span, y_span = x_ticks[-1], y_ticks[-1]

    def x_of(value):
        return left + (value / x_span) * (right - left)

    def y_of(value):
        return bottom - (value / y_span) * (bottom - top)

    _frame(canvas, left, top, right, bottom, y_ticks, y_of, y_label)
    for tick in x_ticks:
        x = x_of(tick)
        canvas.line(x, top, x, bottom, GRID, 1)
        canvas.text(x, bottom + 18, _fmt(tick), size=11, anchor="middle")
    if x_label:
        canvas.text((left + right) / 2, bottom + 36, x_label, size=11,
                    anchor="middle")

    for k, (name, pts) in enumerate(series):
        color = EXTENDED_SERIES_COLORS[k % len(EXTENDED_SERIES_COLORS)]
        for x, y in pts:
            canvas.circle(x_of(x), y_of(y), 4, color)

    x = left
    y = height - 14
    for k, (name, _) in enumerate(series):
        color = EXTENDED_SERIES_COLORS[k % len(EXTENDED_SERIES_COLORS)]
        canvas.circle(x + 6, y - 4, 5, color, ring=False)
        canvas.text(x + 18, y + 1, name, size=12, fill=TEXT_PRIMARY)
        x += 28 + 7 * len(name)
    return canvas.render()


def save_svg(path, svg_text):
    with open(path, "w") as fh:
        fh.write(svg_text)
    return path
