"""Cross-PR perf trajectory: one table over every BENCH artifact.

Each PR's ``repro bench --json BENCH_prN.json`` freezes that PR's
performance story at its own schema version (v1 parallel sweeps, v2
batched sweeps, v3 wallclock, v5 tracing + lazy ESS, v6 serving, v7
anytime priors, v8 arena, v9 request observability).  ``repro bench
--trajectory`` merges them into a
single measurement x PR table, so the repo's whole speedup history is
readable in one place — and a regression between PRs is visible as a
column-to-column drop instead of being buried in per-PR JSON.

Extractors are deliberately tolerant: every schema reads through
``.get`` chains, so an old artifact simply leaves its cell blank
rather than failing the merge, and a future schema only needs a new
extractor, never a migration of the frozen artifacts.
"""

from __future__ import annotations

import glob
import json
import os
import re

from repro.bench.report import format_table

#: ``BENCH_pr<N>.json`` — the per-PR artifact naming convention.
_PR_PATTERN = re.compile(r"^BENCH_pr(\d+)\.json$")


def _speedup(value, digits=1):
    if value is None:
        return None
    return float(value), f"{float(value):.{digits}f}x"


def _cache(payload):
    return _speedup(payload.get("cache", {}).get("speedup"))


def _best_batched_sweep(payload):
    """Best batched-vs-loop sweep speedup (v2+; v1 sweeps are parallel)."""
    if payload.get("schema_version", 0) < 2:
        return None
    best = None
    for algo, stats in payload.get("sweeps", {}).items():
        value = stats.get("speedup")
        if value is not None and (best is None or value > best[1]):
            best = (algo, float(value))
    if best is None:
        return None
    return best[1], f"{best[1]:.1f}x ({best[0]})"


def _parallel(payload):
    if payload.get("schema_version", 0) < 2:
        # v1 kept the fan-out numbers inside "sweeps".
        values = [s.get("speedup") for s in payload.get("sweeps", {}).values()
                  if s.get("speedup") is not None]
        if not values:
            return None
        best = max(float(v) for v in values)
        return best, f"{best:.2f}x"
    section = payload.get("parallel", {})
    for stats in section.values():
        if stats.get("skipped"):
            return None, f"skipped ({stats.get('skip_reason', '?')})"
        value = stats.get("speedup")
        if value is not None:
            return float(value), f"{float(value):.2f}x"
    return None


def _wallclock(payload):
    return _speedup(payload.get("wallclock", {}).get("speedup"))


def _tracing(payload):
    value = payload.get("tracing", {}).get("overhead_pct")
    if value is None:
        return None
    return float(value), f"{float(value):+.1f}%"


def _lazy_calls(payload):
    cells = payload.get("ess_build", {}).get("cells", [])
    values = [c.get("call_reduction") for c in cells
              if c.get("call_reduction") is not None]
    if not values:
        return None
    best = max(float(v) for v in values)
    return best, f"{best:.1f}x fewer calls"


def _serving_rps(payload):
    value = payload.get("serving", {}).get("loadgen", {}).get("rps")
    if value is None:
        return None
    return float(value), f"{float(value):.1f} rps"


def _serving_p99(payload):
    latency = (payload.get("serving", {}).get("loadgen", {})
               .get("latency_s", {}))
    value = latency.get("p99")
    if value is None:
        return None
    return float(value), f"{float(value) * 1000:.0f} ms"


def _observability_overhead(payload):
    value = payload.get("observability", {}).get("overhead_pct")
    if value is None:
        return None
    return float(value), f"{float(value):+.1f}%"


def _anytime(mode):
    def extract(payload):
        stats = payload.get("anytime", {}).get("modes", {}).get(mode, {})
        return _speedup(stats.get("speedup_mean"), digits=2)

    return extract


#: ``(key, table label, extractor)`` — one row per metric the ledger
#: tracks; an extractor returns ``(raw_value_or_None, display)`` or
#: None when the artifact's schema predates the metric.
_METRICS = (
    ("cache_speedup", "warm ESS load vs cold build", _cache),
    ("batched_sweep", "batched sweep vs loop (best)", _best_batched_sweep),
    ("parallel_sweep", "parallel sweep fan-out", _parallel),
    ("wallclock", "vector vs volcano engine", _wallclock),
    ("tracing_overhead", "sweep tracing overhead", _tracing),
    ("lazy_ess_calls", "lazy ESS optimizer calls", _lazy_calls),
    ("serving_rps", "serving throughput", _serving_rps),
    ("serving_p99", "serving p99 latency", _serving_p99),
    ("anytime_sampled", "sampled prior vs uniform", _anytime("sampled")),
    ("anytime_history", "history prior vs uniform", _anytime("history")),
    ("observability_overhead", "request tracing overhead",
     _observability_overhead),
)


def discover_artifacts(directory=None):
    """``[(pr_number, path)]`` for every BENCH artifact, PR order."""
    directory = directory or os.getcwd()
    found = []
    for path in glob.glob(os.path.join(directory, "BENCH_pr*.json")):
        match = _PR_PATTERN.match(os.path.basename(path))
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def build_trajectory(directory=None):
    """Merge every readable BENCH artifact into the trajectory dict.

    Returns ``{"artifacts": [...], "metrics": [...]}`` — artifacts in
    PR order with their schema versions, metrics as one entry per
    ledger row carrying raw values and display strings per PR.
    Unreadable artifacts are skipped (the merge never fails on one
    corrupt file); schemas missing a metric leave that cell absent.
    """
    artifacts = []
    for pr, path in discover_artifacts(directory):
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            continue
        artifacts.append({
            "pr": pr,
            "path": os.path.basename(path),
            "schema_version": payload.get("schema_version"),
            "payload": payload,
        })
    metrics = []
    for key, label, extract in _METRICS:
        per_pr = {}
        for art in artifacts:
            cell = extract(art["payload"])
            if cell is not None:
                per_pr[art["pr"]] = {"value": cell[0], "display": cell[1]}
        if per_pr:
            metrics.append({"metric": key, "label": label,
                            "per_pr": per_pr})
    return {
        "artifacts": [{k: a[k] for k in ("pr", "path", "schema_version")}
                      for a in artifacts],
        "metrics": metrics,
    }


def trajectory_rows(merged):
    """``(headers, rows)`` for the trajectory table."""
    prs = [art["pr"] for art in merged["artifacts"]]
    headers = ["measurement"] + [f"PR{pr}" for pr in prs]
    rows = []
    for entry in merged["metrics"]:
        row = [entry["label"]]
        for pr in prs:
            cell = entry["per_pr"].get(pr)
            row.append("-" if cell is None else cell["display"])
        rows.append(row)
    return headers, rows


def render_trajectory(merged):
    """The trajectory as a printable table."""
    headers, rows = trajectory_rows(merged)
    count = len(merged["artifacts"])
    return format_table(
        f"perf trajectory across {count} BENCH artifacts",
        headers, rows,
    )
