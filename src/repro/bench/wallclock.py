"""Setup for the actual-execution (wall-clock) experiment, Section 6.3.

The paper measures real response times for TPC-DS Q91 with four epps on
a 100 GB PostgreSQL instance.  We reproduce the *mechanics* at laptop
scale: a Q91-shaped 4-epp query over a generated star/branch schema
whose catalog cardinalities equal the generated row counts, so the cost
model, contour budgets, and engine cost meter all live on one scale.
Foreign keys are drawn with Zipf skew, which pushes the true join
selectivities away from any uniformity assumption — the error the
discovery algorithms must survive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.datagen import DataGenerator
from repro.catalog.schema import Column, ForeignKey, Schema, Table, fk_column, key_column
from repro.ess.contours import ContourSet
from repro.ess.grid import ESSGrid
from repro.ess.ocs import ESS
from repro.perf.timers import TIMERS
from repro.query.predicates import filter_pred, join
from repro.query.query import SPJQuery


@dataclass
class WallclockSetup:
    """Everything the wall-clock experiment needs."""

    schema: Schema
    query: SPJQuery
    generator: DataGenerator
    ess: ESS
    contours: ContourSet


def build_wallclock_setup(row_budget=40_000, seed=11, resolution=10):
    """Build the Q91-shaped engine experiment at a given data scale.

    Args:
        row_budget: approximate total generated rows (the fact table gets
            ~60% of it).
        seed: data-generation seed.
        resolution: ESS grid resolution per dimension.
    """
    fact_rows = max(2_000, int(row_budget * 0.6))
    cust_rows = max(400, int(row_budget * 0.25))
    addr_rows = max(200, cust_rows // 2)
    date_rows = max(100, int(row_budget * 0.01))
    demo_rows = max(200, cust_rows // 2)

    schema = Schema("wallclock_q91", tables=[
        Table("returns", fact_rows, [
            fk_column("r_date_id", date_rows, indexed=True),
            fk_column("r_customer_id", cust_rows, indexed=True),
            Column("r_amount", ndv=1_000),
        ]),
        Table("dates", date_rows, [
            key_column("dt_id", date_rows),
            Column("dt_month", ndv=12),
        ]),
        Table("customers", cust_rows, [
            key_column("cu_id", cust_rows),
            fk_column("cu_demo_id", demo_rows, indexed=True),
            fk_column("cu_addr_id", addr_rows, indexed=True),
        ]),
        Table("demographics", demo_rows, [
            key_column("de_id", demo_rows),
            Column("de_status", ndv=5),
        ]),
        Table("addresses", addr_rows, [
            key_column("ad_id", addr_rows),
            Column("ad_state", ndv=20),
        ]),
    ], foreign_keys=[
        ForeignKey("returns", "r_date_id", "dates", "dt_id"),
        ForeignKey("returns", "r_customer_id", "customers", "cu_id"),
        ForeignKey("customers", "cu_demo_id", "demographics", "de_id"),
        ForeignKey("customers", "cu_addr_id", "addresses", "ad_id"),
    ])

    generator = DataGenerator(schema, seed=seed)
    generator.generate_table("dates")
    generator.generate_table("demographics")
    generator.generate_table("addresses")
    generator.generate_table(
        "customers", fk_skew={"cu_demo_id": 1.1, "cu_addr_id": 0.7}
    )
    generator.generate_table(
        "returns", fk_skew={"r_date_id": 2.2, "r_customer_id": 1.4}
    )

    # Filter-correlated skew: the hottest referenced dimension rows get
    # the filtered attribute value.  A uniformity-based estimator then
    # under-estimates the filtered join selectivities by orders of
    # magnitude — the JOB-style correlation that makes these predicates
    # error-prone in the first place.
    import numpy as np

    returns = generator.table("returns")
    dates = generator.table("dates")
    ref_counts = np.bincount(returns.column("r_date_id"),
                             minlength=date_rows)
    hot_dates = np.argsort(-ref_counts)[: max(2, date_rows // 25)]
    months = dates.column("dt_month")
    months[months == 3] = 0          # only hot dates carry the target month
    months[hot_dates] = 3

    customers = generator.table("customers")
    demographics = generator.table("demographics")
    demo_refs = np.bincount(customers.column("cu_demo_id"),
                            minlength=demo_rows)
    hot_demos = np.argsort(-demo_refs)[: max(2, demo_rows // 10)]
    statuses = demographics.column("de_status")
    statuses[statuses == 2] = 0      # likewise for the status filter
    statuses[hot_demos] = 2

    # Placeholder true selectivities; the experiment *measures* the real
    # ones from the generated data (measured_location) — the discovery
    # algorithms never look at these values.
    query = SPJQuery("wallclock_4d", schema,
                     ["returns", "dates", "customers", "demographics",
                      "addresses"],
                     joins=[
                         join("returns", "r_date_id", "dates", "dt_id",
                              selectivity=1.0 / date_rows, error_prone=True,
                              name="j:r-dt"),
                         join("returns", "r_customer_id", "customers",
                              "cu_id", selectivity=1.0 / cust_rows,
                              error_prone=True, name="j:r-cu"),
                         join("customers", "cu_demo_id", "demographics",
                              "de_id", selectivity=1.0 / demo_rows,
                              error_prone=True, name="j:cu-de"),
                         join("customers", "cu_addr_id", "addresses",
                              "ad_id", selectivity=1.0 / addr_rows,
                              error_prone=True, name="j:cu-ad"),
                     ],
                     filters=[
                         filter_pred("dates", "dt_month", "=", 3,
                                     selectivity=1.0 / 12),
                         filter_pred("demographics", "de_status", "=", 2,
                                     selectivity=1.0 / 5),
                     ])

    grid = ESSGrid(
        query.num_epps,
        resolution=resolution,
        sel_min=[min(1e-4, p.selectivity / 5.0) for p in query.epps],
    )
    with TIMERS.phase("ess_build"):
        ess = ESS.build(query, grid)
    with TIMERS.phase("contour_build"):
        contours = ContourSet(ess)
    # The whole setup is deterministic in (row_budget, seed, resolution),
    # so sweep workers can rebuild it from these kwargs — this is what
    # lets evaluate_algorithm parallelize over wallclock-built ESSs.
    ess.provenance = {
        "kind": "wallclock",
        "build_kwargs": {
            "row_budget": row_budget,
            "seed": seed,
            "resolution": resolution,
        },
        "cost_ratio": contours.cost_ratio,
    }
    return WallclockSetup(
        schema=schema, query=query, generator=generator, ess=ess,
        contours=contours,
    )
