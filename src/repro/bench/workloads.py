"""Workload registry: cached ESS/contour instances for the experiments.

Building an ESS (an optimizer sweep over the grid) is the expensive
preprocessing step of the whole framework, so experiment runners share
instances through :func:`load`.  Grid resolution follows a *profile*:

* ``"paper"`` — the defaults of :mod:`repro.ess.grid` (exhaustive MSO
  sweeps at laptop scale, the profile EXPERIMENTS.md reports);
* ``"bench"`` — slightly coarser, keeping the full benchmark suite in
  the minutes range;
* ``"smoke"`` — tiny grids for unit tests.

Set ``REPRO_PROFILE=paper`` (or ``bench``/``smoke``) to override the
default ``bench`` profile used by the benchmark harness.

Instances are cached at two levels: an in-process registry (keyed by
name/profile/resolution/cost-ratio plus the cost model's *value*
fingerprint) and the persistent on-disk ESS archive cache of
:mod:`repro.perf.cache`, so repeated benchmark or test runs skip the
optimizer sweep entirely.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.catalog.job import q1a
from repro.catalog.tpcds import build_query, suite_names
from repro.errors import QueryError
from repro.ess.contours import DEFAULT_COST_RATIO
from repro.ess.grid import ESSGrid
from repro.ess.lazy import LazyESS, contours_for, resolve_ess_mode
from repro.ess.ocs import ESS
from repro.ess.persistence import ess_cache_key
from repro.optimizer.cost_model import DEFAULT_COST_MODEL
from repro.perf import cache as ess_cache
from repro.perf.timers import TIMERS

#: Per-dimension grid resolutions by profile and ESS dimensionality.
RESOLUTION_PROFILES = {
    "paper": {2: 32, 3: 16, 4: 10, 5: 7, 6: 6},
    "bench": {2: 24, 3: 12, 4: 8, 5: 6, 6: 5},
    "smoke": {2: 10, 3: 7, 4: 5, 5: 4, 6: 4},
}

#: Floor applied below each epp's true selectivity so the actual query
#: location always lies inside the grid.
_SEL_MIN_CAP = 1e-5


def active_profile():
    """The resolution profile selected via ``REPRO_PROFILE``."""
    profile = os.environ.get("REPRO_PROFILE", "bench")
    if profile not in RESOLUTION_PROFILES:
        raise QueryError(
            f"unknown REPRO_PROFILE {profile!r}; "
            f"choose from {sorted(RESOLUTION_PROFILES)}"
        )
    return profile


@dataclass
class WorkloadInstance:
    """A query together with its built discovery machinery."""

    name: str
    query: object
    ess: object
    contours: object

    @property
    def num_epps(self):
        return self.query.num_epps

    def qa_coords(self):
        """Grid coordinates of the query's true selectivity location."""
        return self.ess.grid.snap(self.query.true_location())


_CACHE = {}


def _sel_min(query):
    return [
        min(_SEL_MIN_CAP, pred.selectivity / 3.0) for pred in query.epps
    ]


def _make_query(name):
    if name.endswith("JOB1a"):
        num_epps = int(name.split("D_", 1)[0])
        return q1a(num_epps=num_epps)
    return build_query(name)


def _surface_spec(name, profile, resolution, cost_model):
    """Resolve a workload's query, grid and content key (no ESS build)."""
    query = _make_query(name)
    if resolution is None:
        resolution = RESOLUTION_PROFILES[profile].get(query.num_epps, 4)
    sel_min = _sel_min(query)
    grid = ESSGrid(query.num_epps, resolution=resolution, sel_min=sel_min)
    disk_key = ess_cache_key(
        query_name=query.name,
        resolution=grid.resolution,
        sel_min=sel_min,
        cost_fingerprint=cost_model.fingerprint(),
        left_deep=False,
    )
    return query, grid, disk_key, resolution


def surface_key(name, profile=None, resolution=None,
                cost_model=DEFAULT_COST_MODEL):
    """Content key and grid size of a workload's ESS — without building.

    The discovery server's single-flight surface tier keys its
    in-memory cache with this: two requests whose keys match are
    guaranteed to need the bit-identical surface, so one build can
    serve both.  Cheap (query parse + grid construction, no optimizer
    calls).  Returns ``(disk_key, num_points)``.
    """
    profile = profile or active_profile()
    _, grid, disk_key, _ = _surface_spec(name, profile, resolution,
                                         cost_model)
    return disk_key, int(grid.num_points)


def load(name, profile=None, resolution=None, cost_ratio=DEFAULT_COST_RATIO,
         cost_model=DEFAULT_COST_MODEL, ess_mode=None):
    """Load (build or fetch cached) a workload instance by name.

    Args:
        name: ``xD_Qz`` (TPC-DS) or ``xD_JOB1a``.
        profile: resolution profile; default from ``REPRO_PROFILE``.
        resolution: explicit per-dimension resolution (overrides profile).
        cost_ratio: contour spacing.
        cost_model: optimizer cost model (ablations pass perturbed ones).
        ess_mode: ``"eager"``/``"lazy"`` surface construction; default
            from ``REPRO_ESS`` (see :func:`repro.ess.lazy.resolve_ess_mode`).
    """
    profile = profile or active_profile()
    ess_mode = resolve_ess_mode(ess_mode)
    # Cost models key by value fingerprint, never by id(): ids are
    # recycled after garbage collection, so a perturbed-cost-model
    # ablation could silently hit a stale entry built for a dead model.
    key = (name, profile, resolution, cost_ratio, cost_model.fingerprint(),
           ess_mode)
    cached = _CACHE.get(key)
    if cached is not None:
        TIMERS.incr("workload_memory_hit")
        return cached
    query, grid, disk_key, resolution = _surface_spec(
        name, profile, resolution, cost_model
    )
    if ess_mode == "lazy":
        # The lazy surface's whole point is skipping the full sweep, so
        # it neither consults nor populates the archive cache; points
        # resolve on first touch instead.
        with TIMERS.phase("ess_build"):
            ess = LazyESS(query, grid, cost_model=cost_model)
    else:
        ess = ess_cache.fetch(disk_key, query, cost_model)
        if ess is None:
            with TIMERS.phase("ess_build"):
                ess = ESS.build(query, grid, cost_model=cost_model)
            ess_cache.store(ess, disk_key)
    with TIMERS.phase("contour_build"):
        contours = contours_for(ess, cost_ratio)
    # Build provenance lets the parallel-sweep engine rebuild this exact
    # ESS inside worker processes (through this very function, hence
    # through the persistent archive) instead of pickling plan trees;
    # the disk_key additionally lets the engine offer this surface to
    # workers over shared memory (repro.perf.shm).
    ess.provenance = {
        "kind": "workload",
        "build_kwargs": {
            "name": name,
            "profile": profile,
            "resolution": resolution,
            "cost_ratio": cost_ratio,
            "cost_model": cost_model,
            "ess_mode": ess_mode,
        },
        "cost_ratio": cost_ratio,
        "disk_key": disk_key,
    }
    instance = WorkloadInstance(name=name, query=query, ess=ess,
                                contours=contours)
    _CACHE[key] = instance
    return instance


def clear_cache():
    """Drop all cached instances (tests that tweak globals call this)."""
    _CACHE.clear()


def evaluation_suite():
    """Names of the paper's main TPC-DS evaluation suite (Fig. 8-13)."""
    return suite_names()
