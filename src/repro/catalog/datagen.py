"""Deterministic synthetic data generation for the execution engine.

The paper's wall-clock experiments run against a 100 GB TPC-DS database.
We reproduce those experiments on a generated, down-scaled instance whose
*selectivity structure* is controllable: join columns can be drawn with
Zipfian skew so that join selectivities deviate from the ``1/max(ndv)``
catalog estimate (that deviation is precisely what makes a predicate
"error-prone").

Generation is deterministic given a seed, so tests and benchmarks are
reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchemaError


def zipf_weights(n, skew):
    """Unnormalized Zipf weights ``1 / rank**skew`` for ``n`` ranks.

    ``skew=0`` degenerates to the uniform distribution.
    """
    ranks = np.arange(1, n + 1, dtype=float)
    return ranks ** (-float(skew))


class TableData:
    """Materialized columns for one table (column name -> numpy array)."""

    def __init__(self, name, columns):
        self.name = name
        self._columns = dict(columns)
        sizes = {len(arr) for arr in self._columns.values()}
        if len(sizes) > 1:
            raise SchemaError(f"table {name!r}: ragged columns {sizes}")
        self.num_rows = sizes.pop() if sizes else 0

    def column(self, name):
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"generated table {self.name!r} has no column {name!r}") from None

    @property
    def columns(self):
        return dict(self._columns)

    def __len__(self):
        return self.num_rows


class DataGenerator:
    """Generate table data that honours a schema's key structure.

    Primary-key columns are dense integer sequences ``0..n-1``.  Foreign-key
    columns are drawn from the parent key domain, optionally with Zipf skew
    (``skew > 0`` concentrates references on a few hot parents).  Other
    columns are uniform integers over their declared NDV.
    """

    def __init__(self, schema, seed=42):
        self.schema = schema
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._tables = {}

    def generate_table(self, table_name, num_rows=None, fk_skew=None):
        """Generate (and cache) data for one table.

        Args:
            table_name: which table.
            num_rows: override row count (defaults to catalog cardinality —
                usually too big; callers pass a scaled-down count).
            fk_skew: mapping of column name -> Zipf skew for FK columns.
        """
        table = self.schema.table(table_name)
        n = int(num_rows if num_rows is not None else table.cardinality)
        if n < 1:
            raise SchemaError(f"table {table_name!r}: need at least one row")
        fk_skew = fk_skew or {}
        fk_parents = {
            fk.child_column: (fk.parent_table, fk.parent_column)
            for fk in self.schema.foreign_keys
            if fk.child_table == table_name
        }

        columns = {}
        for col in table.columns.values():
            if col.is_key:
                columns[col.name] = np.arange(n, dtype=np.int64)
            elif col.name in fk_parents:
                parent_table, parent_column = fk_parents[col.name]
                domain = self._parent_domain(parent_table, parent_column)
                skew = fk_skew.get(col.name, 0.0)
                columns[col.name] = self._draw(domain, n, skew)
            else:
                ndv = max(1, min(col.ndv, n))
                columns[col.name] = self._rng.integers(0, ndv, size=n, dtype=np.int64)
        data = TableData(table_name, columns)
        self._tables[table_name] = data
        return data

    def table(self, table_name):
        """Return generated data, generating with defaults if missing."""
        if table_name not in self._tables:
            self.generate_table(table_name)
        return self._tables[table_name]

    def _parent_domain(self, parent_table, parent_column):
        """Key domain of a parent table (its generated key column)."""
        if parent_table in self._tables:
            return self._tables[parent_table].column(parent_column)
        # Parent not generated yet: use a dense domain of its catalog size.
        size = self.schema.table(parent_table).cardinality
        return np.arange(size, dtype=np.int64)

    def _draw(self, domain, n, skew):
        if skew <= 0:
            return self._rng.choice(domain, size=n, replace=True)
        weights = zipf_weights(len(domain), skew)
        weights = weights / weights.sum()
        return self._rng.choice(domain, size=n, replace=True, p=weights)


def scale_cardinalities(schema, budget_rows, floor=8):
    """Proportionally down-scale catalog cardinalities to a row budget.

    Returns a mapping table -> row count whose total is close to
    ``budget_rows`` while preserving relative table sizes on a log scale
    (tiny dimension tables keep at least ``floor`` rows so joins stay
    meaningful).
    """
    cards = {name: t.cardinality for name, t in schema.tables.items()}
    total = sum(cards.values())
    if total <= budget_rows:
        return cards
    ratio = budget_rows / total
    return {name: max(floor, int(round(card * ratio))) for name, card in cards.items()}
