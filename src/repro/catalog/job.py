"""Join Order Benchmark (JOB) schema subset and Query 1a.

Paper Section 6.5 evaluates on JOB [Leis et al., VLDB 2016], the
benchmark "specifically designed to provide challenging workloads for
current optimizers".  All JOB queries feature cyclic implicit join
predicates which would nullify the selectivity-independence assumption;
the paper's work-around — which we follow — is to shut those implicit
predicates off, leaving a tree-shaped join graph.

The IMDB cardinalities below are the real dataset's (May 2013 snapshot,
as used by JOB).  JOB's notorious difficulty comes from correlated,
highly skewed selectivities: the true epp selectivities sit far from any
uniformity-based estimate, which is what drives the native optimizer's
MSO above 6000 in the paper's experiment.
"""

from __future__ import annotations

from repro.catalog.schema import Column, Schema, Table, fk_column, key_column
from repro.query.predicates import filter_pred, join
from repro.query.query import SPJQuery


def job_schema():
    """The IMDB subset schema used by JOB Query 1a."""
    tables = [
        Table("company_type", 4, [
            key_column("ct_id", 4),
            Column("ct_kind", ndv=4),
        ]),
        Table("movie_companies", 2_609_129, [
            fk_column("mc_movie_id", 2_525_745, indexed=True),
            fk_column("mc_company_type_id", 4, indexed=True),
            Column("mc_note", ndv=133_000),
        ]),
        Table("title", 2_528_312, [
            key_column("t_id", 2_528_312),
            Column("t_production_year", ndv=133, indexed=True),
        ]),
        Table("movie_info_idx", 1_380_035, [
            fk_column("mi_movie_id", 2_525_745, indexed=True),
            fk_column("mi_info_type_id", 113, indexed=True),
            Column("mi_info", ndv=115_000),
        ]),
        Table("info_type", 113, [
            key_column("it_id", 113),
            Column("it_info", ndv=113),
        ]),
    ]
    return Schema("imdb_job", tables=tables)


_SCHEMA = None


def shared_schema():
    global _SCHEMA
    if _SCHEMA is None:
        _SCHEMA = job_schema()
    return _SCHEMA


def q1a(schema=None, num_epps=3):
    """JOB Query 1a (SPJ core, implicit cyclic predicates disabled).

    The chain is ``company_type - movie_companies - title -
    movie_info_idx - info_type``.  The true selectivities reflect JOB's
    skew: the ``top 250 rank`` info-type filter makes the
    title/movie_info_idx join orders of magnitude more selective than
    the uniform estimate, while the production-company filter leaves the
    company joins much *less* selective than estimated.
    """
    schema = schema or shared_schema()
    epp_flags = [True] * num_epps + [False] * (4 - num_epps)
    return SPJQuery(
        f"{num_epps}D_JOB1a", schema,
        ["company_type", "movie_companies", "title", "movie_info_idx",
         "info_type"],
        joins=[
            join("movie_companies", "mc_movie_id", "title", "t_id",
                 selectivity=4.0e-7, error_prone=epp_flags[0],
                 name="j:mc-t"),
            join("title", "t_id", "movie_info_idx", "mi_movie_id",
                 selectivity=7.0e-7, error_prone=epp_flags[1],
                 name="j:t-mi"),
            join("company_type", "ct_id", "movie_companies",
                 "mc_company_type_id", selectivity=0.36,
                 error_prone=epp_flags[2], name="j:ct-mc"),
            join("info_type", "it_id", "movie_info_idx", "mi_info_type_id",
                 selectivity=8.8e-3, error_prone=epp_flags[3],
                 name="j:it-mi"),
        ],
        filters=[
            filter_pred("company_type", "ct_kind", "=",
                        "production companies", selectivity=0.25),
            filter_pred("info_type", "it_info", "=", "top 250 rank",
                        selectivity=1.0 / 113),
            filter_pred("movie_companies", "mc_note", "=",
                        "(as Metro-Goldwyn-Mayer Pictures)",
                        selectivity=0.05),
            filter_pred("title", "t_production_year", ">", 1950,
                        selectivity=0.85),
        ],
    )
