"""Relational schema model: columns, tables, foreign keys.

The schema layer plays the role of the database catalog in a real engine.
It records table cardinalities (the paper's experiments run at TPC-DS scale
factor 100, which we represent through catalog row counts), column
properties needed by the cost model (number of distinct values, whether an
index exists), and the primary-key / foreign-key graph that the benchmark
queries join along.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError


@dataclass(frozen=True)
class Column:
    """A column of a relational table.

    Attributes:
        name: column name, unique within its table.
        ndv: number of distinct values (used for default join selectivity
            estimates, ``1 / max(ndv_left, ndv_right)``).
        indexed: whether a secondary index exists on this column.  Index
            availability gates the index-scan and index-nested-loop
            alternatives in the optimizer.
        is_key: whether the column is the table's primary key.
    """

    name: str
    ndv: int = 1
    indexed: bool = False
    is_key: bool = False

    def __post_init__(self):
        if self.ndv < 1:
            raise SchemaError(f"column {self.name!r}: ndv must be >= 1")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge ``child.column -> parent.column``."""

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str


class Table:
    """A table definition together with its catalog statistics."""

    def __init__(self, name, cardinality, columns, tuple_width=100):
        """Create a table.

        Args:
            name: table name, unique within a schema.
            cardinality: number of rows (catalog estimate; exact in our
                synthetic setting).
            columns: iterable of :class:`Column`.
            tuple_width: average tuple width in bytes; feeds the I/O part
                of the cost model.
        """
        if cardinality < 1:
            raise SchemaError(f"table {name!r}: cardinality must be >= 1")
        self.name = name
        self.cardinality = int(cardinality)
        self.tuple_width = tuple_width
        self._columns = {}
        for col in columns:
            if col.name in self._columns:
                raise SchemaError(f"table {name!r}: duplicate column {col.name!r}")
            self._columns[col.name] = col

    @property
    def columns(self):
        """Mapping of column name to :class:`Column`."""
        return dict(self._columns)

    def column(self, name):
        """Return the named column, raising :class:`SchemaError` if absent."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name):
        return name in self._columns

    @property
    def primary_key(self):
        """The primary-key column, or ``None`` if the table has none."""
        for col in self._columns.values():
            if col.is_key:
                return col
        return None

    def __repr__(self):
        return f"Table({self.name!r}, |R|={self.cardinality})"


class Schema:
    """A set of tables plus the foreign-key graph connecting them."""

    def __init__(self, name, tables=(), foreign_keys=()):
        self.name = name
        self._tables = {}
        self._foreign_keys = []
        for table in tables:
            self.add_table(table)
        for fk in foreign_keys:
            self.add_foreign_key(fk)

    def add_table(self, table):
        if table.name in self._tables:
            raise SchemaError(f"duplicate table {table.name!r}")
        self._tables[table.name] = table

    def add_foreign_key(self, fk):
        """Register a foreign key after validating both endpoints exist."""
        child = self.table(fk.child_table)
        parent = self.table(fk.parent_table)
        child.column(fk.child_column)
        parent.column(fk.parent_column)
        self._foreign_keys.append(fk)

    @property
    def tables(self):
        return dict(self._tables)

    @property
    def foreign_keys(self):
        return list(self._foreign_keys)

    def table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"schema {self.name!r} has no table {name!r}") from None

    def has_table(self, name):
        return name in self._tables

    def join_ndv(self, left_table, left_column, right_table, right_column):
        """Default join selectivity denominator, ``max(ndv_l, ndv_r)``.

        This mirrors the textbook (and PostgreSQL) estimate for an
        equi-join: ``sel = 1 / max(ndv(l), ndv(r))``.
        """
        left = self.table(left_table).column(left_column)
        right = self.table(right_table).column(right_column)
        return max(left.ndv, right.ndv)

    def __repr__(self):
        return f"Schema({self.name!r}, {len(self._tables)} tables)"


def key_column(name, ndv, indexed=True):
    """Shorthand for a primary-key column (indexed, all values distinct)."""
    return Column(name=name, ndv=ndv, indexed=indexed, is_key=True)


def fk_column(name, ndv, indexed=False):
    """Shorthand for a foreign-key column referencing ``ndv`` parents."""
    return Column(name=name, ndv=ndv, indexed=indexed)
