"""Catalog statistics: histograms and selectivity estimation.

A traditional optimizer estimates predicate selectivities from summary
statistics; those estimates are exactly what the paper's discovery
algorithms refuse to trust.  This module provides the estimation side:

* :class:`EquiDepthHistogram` — the classic per-column summary.
* :class:`StatisticsCatalog` — per-table statistics plus the estimation
  entry points used by the native-optimizer baseline.

Estimation error is a first-class citizen here: histograms are built from
samples, attribute-value-independence is assumed across predicates, and
join selectivities fall back to the ``1/max(ndv)`` rule — all of which are
the documented sources of the large errors the paper sets out to survive.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.errors import SchemaError


class EquiDepthHistogram:
    """An equi-depth (equi-height) histogram over a numeric column.

    Each of the ``num_buckets`` buckets holds approximately the same number
    of rows; bucket boundaries are the sample quantiles.  Selectivity of a
    range or equality predicate is estimated with the standard uniformity
    assumption inside each bucket.
    """

    def __init__(self, values, num_buckets=32):
        values = np.asarray(values)
        if values.size == 0:
            raise SchemaError("cannot build a histogram over an empty column")
        self.num_rows = int(values.size)
        self.num_buckets = int(min(num_buckets, values.size))
        quantiles = np.linspace(0.0, 1.0, self.num_buckets + 1)
        self.boundaries = np.quantile(values, quantiles).astype(float)
        # Distinct-value count per bucket supports equality estimates.
        sorted_vals = np.sort(values)
        self._ndv = int(len(np.unique(sorted_vals)))

    @property
    def min_value(self):
        return float(self.boundaries[0])

    @property
    def max_value(self):
        return float(self.boundaries[-1])

    @property
    def ndv(self):
        return self._ndv

    def selectivity_le(self, value):
        """Estimated selectivity of ``col <= value``."""
        bounds = self.boundaries
        if value < bounds[0]:
            return 0.0
        if value >= bounds[-1]:
            return 1.0
        # Find the bucket containing `value` and interpolate linearly.
        idx = bisect.bisect_right(list(bounds), value) - 1
        idx = min(max(idx, 0), self.num_buckets - 1)
        lo, hi = bounds[idx], bounds[idx + 1]
        frac = 0.5 if hi <= lo else (value - lo) / (hi - lo)
        return (idx + frac) / self.num_buckets

    def selectivity_range(self, low, high):
        """Estimated selectivity of ``low <= col <= high``."""
        if high < low:
            return 0.0
        return max(0.0, self.selectivity_le(high) - self.selectivity_le(low))

    def selectivity_eq(self, value):
        """Estimated selectivity of ``col = value`` (uniform over NDV)."""
        if value < self.min_value or value > self.max_value:
            return 0.0
        return 1.0 / max(self._ndv, 1)


class ColumnStats:
    """Statistics for one column: histogram plus scalar summaries."""

    def __init__(self, histogram):
        self.histogram = histogram

    @property
    def ndv(self):
        return self.histogram.ndv


class StatisticsCatalog:
    """Per-table, per-column statistics with estimation entry points.

    The catalog can be populated two ways:

    * :meth:`analyze` — scan actual column values (possibly a sample),
      the way ``ANALYZE`` does;
    * :meth:`set_column_ndv` — install synthetic NDV-only statistics when
      no data is materialized (the pure cost-model-simulation mode).
    """

    def __init__(self, schema):
        self.schema = schema
        self._column_stats = {}
        self._ndv_overrides = {}

    def analyze(self, table_name, column_name, values, num_buckets=32, sample=None, seed=0):
        """Build statistics for a column from its values.

        Args:
            table_name / column_name: which column.
            values: array of column values.
            num_buckets: histogram resolution.
            sample: if given, build the histogram from a random sample of
                this many rows (models the sampling error of ``ANALYZE``).
            seed: RNG seed for the sample draw.
        """
        self.schema.table(table_name).column(column_name)
        values = np.asarray(values)
        if sample is not None and sample < values.size:
            rng = np.random.default_rng(seed)
            values = rng.choice(values, size=sample, replace=False)
        hist = EquiDepthHistogram(values, num_buckets=num_buckets)
        self._column_stats[(table_name, column_name)] = ColumnStats(hist)

    def set_column_ndv(self, table_name, column_name, ndv):
        """Install an NDV estimate without materialized data."""
        self.schema.table(table_name).column(column_name)
        self._ndv_overrides[(table_name, column_name)] = int(ndv)

    def column_stats(self, table_name, column_name):
        return self._column_stats.get((table_name, column_name))

    def column_ndv(self, table_name, column_name):
        """NDV for a column: analyzed > overridden > schema-declared."""
        stats = self._column_stats.get((table_name, column_name))
        if stats is not None:
            return stats.ndv
        if (table_name, column_name) in self._ndv_overrides:
            return self._ndv_overrides[(table_name, column_name)]
        return self.schema.table(table_name).column(column_name).ndv

    # ------------------------------------------------------------------
    # Estimation entry points (the error-prone path the paper abandons).
    # ------------------------------------------------------------------

    def estimate_filter(self, table_name, column_name, low=None, high=None, value=None):
        """Estimate the selectivity of a filter predicate.

        Supports equality (``value``) and range (``low``/``high``)
        shapes.  Falls back to magic constants (as real engines do) when
        no histogram is available.
        """
        stats = self._column_stats.get((table_name, column_name))
        if value is not None:
            if stats is not None:
                return stats.histogram.selectivity_eq(value)
            return 1.0 / max(self.column_ndv(table_name, column_name), 1)
        if stats is not None:
            lo = stats.histogram.min_value if low is None else low
            hi = stats.histogram.max_value if high is None else high
            return stats.histogram.selectivity_range(lo, hi)
        # The classic "1/3 for an open range" magic default.
        return 1.0 / 3.0

    def estimate_join(self, left_table, left_column, right_table, right_column):
        """Estimate an equi-join selectivity via ``1 / max(ndv_l, ndv_r)``."""
        ndv_l = self.column_ndv(left_table, left_column)
        ndv_r = self.column_ndv(right_table, right_column)
        return 1.0 / max(ndv_l, ndv_r, 1)
