"""TPC-DS-shaped schema and the paper's benchmark query skeletons.

The paper's workload is "representative SPJ queries from the TPC-DS
benchmark, operating at the base size of 100 GB", with 4-10 relations,
chain/star/branch join geometries, and 2-6 error-prone join predicates
(Section 6.1).  We model that workload with:

* a TPC-DS subset schema whose catalog cardinalities follow the official
  scaling at SF=100;
* per-query SPJ skeletons for Q7, Q15, Q18, Q19, Q26, Q27, Q29, Q84,
  Q91 and Q96, keeping each query's relations, join structure and epp
  count (queries are simplified to their SPJ cores, as in the paper);
* the ``xD_Qz`` naming convention — ``build_query("4D_Q91")`` returns
  TPC-DS Q91 with four join predicates marked error-prone.

True selectivities on the predicates define the default ``qa`` for the
trace/wall-clock experiments; the MSO evaluations sweep the entire ESS
and do not depend on them.
"""

from __future__ import annotations

from repro.catalog.schema import Column, Schema, Table, fk_column, key_column
from repro.errors import QueryError
from repro.query.predicates import filter_pred, join
from repro.query.query import SPJQuery

#: TPC-DS scale factor the catalog cardinalities follow.
SCALE_FACTOR = 100


def tpcds_schema():
    """The TPC-DS subset schema at SF=100 (catalog cardinalities only)."""
    tables = [
        Table("store_sales", 288_000_000, [
            fk_column("ss_sold_date_sk", 73_049, indexed=True),
            fk_column("ss_sold_time_sk", 86_400, indexed=True),
            fk_column("ss_item_sk", 204_000, indexed=True),
            fk_column("ss_customer_sk", 2_000_000, indexed=True),
            fk_column("ss_cdemo_sk", 1_920_800, indexed=True),
            fk_column("ss_hdemo_sk", 7_200, indexed=True),
            fk_column("ss_store_sk", 402, indexed=True),
            fk_column("ss_promo_sk", 1_000, indexed=True),
            fk_column("ss_ticket_number", 24_000_000, indexed=True),
            Column("ss_quantity", ndv=100),
        ]),
        Table("store_returns", 28_800_000, [
            fk_column("sr_item_sk", 204_000, indexed=True),
            fk_column("sr_customer_sk", 2_000_000, indexed=True),
            fk_column("sr_cdemo_sk", 1_920_800, indexed=True),
            fk_column("sr_ticket_number", 24_000_000, indexed=True),
            fk_column("sr_returned_date_sk", 73_049, indexed=True),
            Column("sr_return_quantity", ndv=100),
        ]),
        Table("catalog_sales", 144_000_000, [
            fk_column("cs_sold_date_sk", 73_049, indexed=True),
            fk_column("cs_item_sk", 204_000, indexed=True),
            fk_column("cs_bill_customer_sk", 2_000_000, indexed=True),
            fk_column("cs_bill_cdemo_sk", 1_920_800, indexed=True),
            fk_column("cs_promo_sk", 1_000, indexed=True),
            Column("cs_quantity", ndv=100),
        ]),
        Table("catalog_returns", 14_400_000, [
            fk_column("cr_returned_date_sk", 73_049, indexed=True),
            fk_column("cr_returning_customer_sk", 2_000_000, indexed=True),
            fk_column("cr_call_center_sk", 30, indexed=True),
            fk_column("cr_item_sk", 204_000, indexed=True),
            Column("cr_return_amount", ndv=100_000),
        ]),
        Table("customer", 2_000_000, [
            key_column("c_customer_sk", 2_000_000),
            fk_column("c_current_cdemo_sk", 1_920_800, indexed=True),
            fk_column("c_current_hdemo_sk", 7_200, indexed=True),
            fk_column("c_current_addr_sk", 1_000_000, indexed=True),
            Column("c_birth_year", ndv=70),
        ]),
        Table("customer_address", 1_000_000, [
            key_column("ca_address_sk", 1_000_000),
            Column("ca_state", ndv=51, indexed=True),
            Column("ca_gmt_offset", ndv=6),
        ]),
        Table("customer_demographics", 1_920_800, [
            key_column("cd_demo_sk", 1_920_800),
            Column("cd_gender", ndv=2),
            Column("cd_marital_status", ndv=5),
            Column("cd_education_status", ndv=7),
        ]),
        # Second alias of customer_demographics (Q18 joins it twice).
        Table("customer_demographics_2", 1_920_800, [
            key_column("cd2_demo_sk", 1_920_800),
            Column("cd2_marital_status", ndv=5),
        ]),
        Table("household_demographics", 7_200, [
            key_column("hd_demo_sk", 7_200),
            fk_column("hd_income_band_sk", 20, indexed=True),
            Column("hd_buy_potential", ndv=6),
            Column("hd_dep_count", ndv=10),
        ]),
        Table("income_band", 20, [
            key_column("ib_income_band_sk", 20),
            Column("ib_lower_bound", ndv=20),
        ]),
        Table("date_dim", 73_049, [
            key_column("d_date_sk", 73_049),
            Column("d_year", ndv=200, indexed=True),
            Column("d_moy", ndv=12),
            Column("d_dom", ndv=31),
        ]),
        Table("time_dim", 86_400, [
            key_column("t_time_sk", 86_400),
            Column("t_hour", ndv=24, indexed=True),
        ]),
        Table("item", 204_000, [
            key_column("i_item_sk", 204_000),
            Column("i_category", ndv=10, indexed=True),
            Column("i_manufact_id", ndv=1_000),
        ]),
        Table("store", 402, [
            key_column("s_store_sk", 402),
            Column("s_state", ndv=9),
            Column("s_number_employees", ndv=100),
        ]),
        Table("call_center", 30, [
            key_column("cc_call_center_sk", 30),
            Column("cc_class", ndv=3),
        ]),
        Table("promotion", 1_000, [
            key_column("p_promo_sk", 1_000),
            Column("p_channel_email", ndv=2),
        ]),
    ]
    return Schema("tpcds_sf100", tables=tables)


_SCHEMA = None


def shared_schema():
    """Process-wide shared schema instance (schemas are read-only)."""
    global _SCHEMA
    if _SCHEMA is None:
        _SCHEMA = tpcds_schema()
    return _SCHEMA


# ----------------------------------------------------------------------
# Query skeletons.  Each builder returns the query with *all* its join
# predicates marked error-prone; `build_query("xD_Qz")` re-marks the
# paper's epp subset for the requested dimensionality.
# ----------------------------------------------------------------------

def q7(schema=None):
    """TPC-DS Q7: store_sales star over demographics/date/item/promo."""
    schema = schema or shared_schema()
    return SPJQuery(
        "Q7", schema,
        ["store_sales", "customer_demographics", "date_dim", "item", "promotion"],
        joins=[
            join("store_sales", "ss_cdemo_sk", "customer_demographics",
                 "cd_demo_sk", selectivity=5.2e-7, error_prone=True,
                 name="j:ss-cd"),
            join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk",
                 selectivity=7.0e-5, error_prone=True, name="j:ss-d"),
            join("store_sales", "ss_item_sk", "item", "i_item_sk",
                 selectivity=4.9e-6, error_prone=True, name="j:ss-i"),
            join("store_sales", "ss_promo_sk", "promotion", "p_promo_sk",
                 selectivity=1.0e-3, error_prone=True, name="j:ss-p"),
        ],
        filters=[
            filter_pred("customer_demographics", "cd_gender", "=", "M",
                        selectivity=0.5),
            filter_pred("date_dim", "d_year", "=", 2000, selectivity=0.005),
            filter_pred("promotion", "p_channel_email", "=", "N",
                        selectivity=0.5),
        ],
    )


def q15(schema=None):
    """TPC-DS Q15: catalog_sales -> customer -> address, plus date."""
    schema = schema or shared_schema()
    return SPJQuery(
        "Q15", schema,
        ["catalog_sales", "customer", "customer_address", "date_dim"],
        joins=[
            join("catalog_sales", "cs_bill_customer_sk", "customer",
                 "c_customer_sk", selectivity=5.0e-7, error_prone=True,
                 name="j:cs-c"),
            join("customer", "c_current_addr_sk", "customer_address",
                 "ca_address_sk", selectivity=1.0e-6, error_prone=True,
                 name="j:c-ca"),
            join("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk",
                 selectivity=1.4e-5, error_prone=True, name="j:cs-d"),
        ],
        filters=[
            filter_pred("customer_address", "ca_state", "=", "CA",
                        selectivity=0.02),
            filter_pred("date_dim", "d_year", "=", 2001, selectivity=0.005),
        ],
    )


def q18(schema=None):
    """TPC-DS Q18: catalog_sales branch over two demographics aliases."""
    schema = schema or shared_schema()
    return SPJQuery(
        "Q18", schema,
        ["catalog_sales", "customer_demographics", "customer",
         "customer_demographics_2", "customer_address", "date_dim", "item"],
        joins=[
            join("catalog_sales", "cs_bill_cdemo_sk", "customer_demographics",
                 "cd_demo_sk", selectivity=5.2e-7, error_prone=True,
                 name="j:cs-cd1"),
            join("catalog_sales", "cs_bill_customer_sk", "customer",
                 "c_customer_sk", selectivity=5.0e-7, error_prone=True,
                 name="j:cs-c"),
            join("customer", "c_current_cdemo_sk", "customer_demographics_2",
                 "cd2_demo_sk", selectivity=5.2e-7, error_prone=True,
                 name="j:c-cd2"),
            join("customer", "c_current_addr_sk", "customer_address",
                 "ca_address_sk", selectivity=1.0e-6, error_prone=True,
                 name="j:c-ca"),
            join("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk",
                 selectivity=1.4e-5, error_prone=True, name="j:cs-d"),
            join("catalog_sales", "cs_item_sk", "item", "i_item_sk",
                 selectivity=4.9e-6, error_prone=True, name="j:cs-i"),
        ],
        filters=[
            filter_pred("customer_demographics", "cd_gender", "=", "F",
                        selectivity=0.5),
            filter_pred("customer_demographics", "cd_education_status", "=",
                        "College", selectivity=0.14),
            filter_pred("date_dim", "d_year", "=", 1998, selectivity=0.005),
            filter_pred("item", "i_category", "=", "Home", selectivity=0.1),
        ],
    )


def q19(schema=None):
    """TPC-DS Q19: store_sales branch over date/item/customer/address/store."""
    schema = schema or shared_schema()
    return SPJQuery(
        "Q19", schema,
        ["store_sales", "date_dim", "item", "customer", "customer_address",
         "store"],
        joins=[
            join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk",
                 selectivity=1.4e-5, error_prone=True, name="j:ss-d"),
            join("store_sales", "ss_item_sk", "item", "i_item_sk",
                 selectivity=4.9e-6, error_prone=True, name="j:ss-i"),
            join("store_sales", "ss_customer_sk", "customer", "c_customer_sk",
                 selectivity=5.0e-7, error_prone=True, name="j:ss-c"),
            join("customer", "c_current_addr_sk", "customer_address",
                 "ca_address_sk", selectivity=1.0e-6, error_prone=True,
                 name="j:c-ca"),
            join("store_sales", "ss_store_sk", "store", "s_store_sk",
                 selectivity=2.5e-3, error_prone=True, name="j:ss-s"),
        ],
        filters=[
            filter_pred("item", "i_manufact_id", "=", 436, selectivity=0.001),
            filter_pred("date_dim", "d_moy", "=", 11, selectivity=0.083),
        ],
    )


def q26(schema=None):
    """TPC-DS Q26: catalog_sales star (the paper's Figure 4 plan)."""
    schema = schema or shared_schema()
    return SPJQuery(
        "Q26", schema,
        ["catalog_sales", "customer_demographics", "date_dim", "item",
         "promotion"],
        joins=[
            join("catalog_sales", "cs_bill_cdemo_sk", "customer_demographics",
                 "cd_demo_sk", selectivity=5.2e-7, error_prone=True,
                 name="j:cs-cd"),
            join("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk",
                 selectivity=1.4e-5, error_prone=True, name="j:cs-d"),
            join("catalog_sales", "cs_item_sk", "item", "i_item_sk",
                 selectivity=4.9e-6, error_prone=True, name="j:cs-i"),
            join("catalog_sales", "cs_promo_sk", "promotion", "p_promo_sk",
                 selectivity=1.0e-3, error_prone=True, name="j:cs-p"),
        ],
        filters=[
            filter_pred("customer_demographics", "cd_marital_status", "=",
                        "S", selectivity=0.2),
            filter_pred("date_dim", "d_year", "=", 2000, selectivity=0.005),
        ],
    )


def q27(schema=None):
    """TPC-DS Q27: store_sales star over demographics/date/store/item."""
    schema = schema or shared_schema()
    return SPJQuery(
        "Q27", schema,
        ["store_sales", "customer_demographics", "date_dim", "store", "item"],
        joins=[
            join("store_sales", "ss_cdemo_sk", "customer_demographics",
                 "cd_demo_sk", selectivity=5.2e-7, error_prone=True,
                 name="j:ss-cd"),
            join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk",
                 selectivity=1.4e-5, error_prone=True, name="j:ss-d"),
            join("store_sales", "ss_store_sk", "store", "s_store_sk",
                 selectivity=2.5e-3, error_prone=True, name="j:ss-s"),
            join("store_sales", "ss_item_sk", "item", "i_item_sk",
                 selectivity=4.9e-6, error_prone=True, name="j:ss-i"),
        ],
        filters=[
            filter_pred("customer_demographics", "cd_gender", "=", "F",
                        selectivity=0.5),
            filter_pred("date_dim", "d_year", "=", 1999, selectivity=0.005),
            filter_pred("store", "s_state", "=", "TN", selectivity=0.25),
        ],
    )


def q29(schema=None):
    """TPC-DS Q29: sales/returns chain across channels (branch graph)."""
    schema = schema or shared_schema()
    return SPJQuery(
        "Q29", schema,
        ["store_sales", "store_returns", "catalog_sales", "date_dim", "item",
         "store"],
        joins=[
            join("store_sales", "ss_ticket_number", "store_returns",
                 "sr_ticket_number", selectivity=4.2e-8, error_prone=True,
                 name="j:ss-sr"),
            join("store_returns", "sr_customer_sk", "catalog_sales",
                 "cs_bill_customer_sk", selectivity=5.0e-7, error_prone=True,
                 name="j:sr-cs"),
            join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk",
                 selectivity=1.4e-5, error_prone=True, name="j:ss-d"),
            join("store_sales", "ss_item_sk", "item", "i_item_sk",
                 selectivity=4.9e-6, error_prone=True, name="j:ss-i"),
            join("store_sales", "ss_store_sk", "store", "s_store_sk",
                 selectivity=2.5e-3, error_prone=True, name="j:ss-s"),
        ],
        filters=[
            filter_pred("date_dim", "d_moy", "=", 4, selectivity=0.083),
            filter_pred("item", "i_category", "=", "Books", selectivity=0.1),
        ],
    )


def q84(schema=None):
    """TPC-DS Q84: customer chain into income_band plus store_returns."""
    schema = schema or shared_schema()
    return SPJQuery(
        "Q84", schema,
        ["customer", "customer_address", "customer_demographics",
         "household_demographics", "income_band", "store_returns"],
        joins=[
            join("customer", "c_current_addr_sk", "customer_address",
                 "ca_address_sk", selectivity=1.0e-6, error_prone=True,
                 name="j:c-ca"),
            join("customer", "c_current_cdemo_sk", "customer_demographics",
                 "cd_demo_sk", selectivity=5.2e-7, error_prone=True,
                 name="j:c-cd"),
            join("customer", "c_current_hdemo_sk", "household_demographics",
                 "hd_demo_sk", selectivity=1.4e-4, error_prone=True,
                 name="j:c-hd"),
            join("household_demographics", "hd_income_band_sk", "income_band",
                 "ib_income_band_sk", selectivity=0.05, error_prone=True,
                 name="j:hd-ib"),
            join("customer_demographics", "cd_demo_sk", "store_returns",
                 "sr_cdemo_sk", selectivity=5.2e-7, error_prone=True,
                 name="j:cd-sr"),
        ],
        filters=[
            filter_pred("customer_address", "ca_state", "=", "IL",
                        selectivity=0.02),
            filter_pred("income_band", "ib_lower_bound", ">=", 30_000,
                        selectivity=0.5),
        ],
    )


def q91(schema=None):
    """TPC-DS Q91: the paper's running example (Figure 7, Table 3, Fig 9).

    A branch join graph over catalog_returns and customer, with six join
    predicates that can all be marked error-prone (D = 2..6 variants).
    """
    schema = schema or shared_schema()
    return SPJQuery(
        "Q91", schema,
        ["call_center", "catalog_returns", "date_dim", "customer",
         "customer_demographics", "household_demographics",
         "customer_address"],
        joins=[
            join("catalog_returns", "cr_returned_date_sk", "date_dim",
                 "d_date_sk", selectivity=0.04, error_prone=True,
                 name="j:cr-d"),
            join("catalog_returns", "cr_returning_customer_sk", "customer",
                 "c_customer_sk", selectivity=1.0e-5, error_prone=True,
                 name="j:cr-c"),
            join("customer", "c_current_cdemo_sk", "customer_demographics",
                 "cd_demo_sk", selectivity=2.0e-4, error_prone=True,
                 name="j:c-cd"),
            join("customer", "c_current_hdemo_sk", "household_demographics",
                 "hd_demo_sk", selectivity=3.0e-3, error_prone=True,
                 name="j:c-hd"),
            join("customer", "c_current_addr_sk", "customer_address",
                 "ca_address_sk", selectivity=0.1, error_prone=True,
                 name="j:c-ca"),
            join("catalog_returns", "cr_call_center_sk", "call_center",
                 "cc_call_center_sk", selectivity=0.03, error_prone=True,
                 name="j:cr-cc"),
        ],
        filters=[
            filter_pred("date_dim", "d_year", "=", 1998, selectivity=0.005),
            filter_pred("date_dim", "d_moy", "=", 11, selectivity=0.083),
            filter_pred("customer_demographics", "cd_marital_status", "=",
                        "M", selectivity=0.2),
            filter_pred("household_demographics", "hd_buy_potential", "=",
                        "Unknown", selectivity=0.17),
        ],
    )


def q96(schema=None):
    """TPC-DS Q96: store_sales star over household/time/store."""
    schema = schema or shared_schema()
    return SPJQuery(
        "Q96", schema,
        ["store_sales", "household_demographics", "time_dim", "store"],
        joins=[
            join("store_sales", "ss_hdemo_sk", "household_demographics",
                 "hd_demo_sk", selectivity=1.4e-4, error_prone=True,
                 name="j:ss-hd"),
            join("store_sales", "ss_sold_time_sk", "time_dim", "t_time_sk",
                 selectivity=1.2e-5, error_prone=True, name="j:ss-td"),
            join("store_sales", "ss_store_sk", "store", "s_store_sk",
                 selectivity=2.5e-3, error_prone=True, name="j:ss-s"),
        ],
        filters=[
            filter_pred("household_demographics", "hd_dep_count", "=", 7,
                        selectivity=0.1),
            filter_pred("time_dim", "t_hour", "=", 20, selectivity=0.042),
        ],
    )


def q3(schema=None):
    """TPC-DS Q3: the classic 3-relation star (extended workload)."""
    schema = schema or shared_schema()
    return SPJQuery(
        "Q3", schema, ["store_sales", "date_dim", "item"],
        joins=[
            join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk",
                 selectivity=1.4e-5, error_prone=True, name="j:ss-d"),
            join("store_sales", "ss_item_sk", "item", "i_item_sk",
                 selectivity=4.9e-6, error_prone=True, name="j:ss-i"),
        ],
        filters=[
            filter_pred("date_dim", "d_moy", "=", 11, selectivity=0.083),
            filter_pred("item", "i_manufact_id", "=", 128,
                        selectivity=0.001),
        ],
    )


def q42(schema=None):
    """TPC-DS Q42: store_sales with date, item and store (extended
    workload).  The store join only enters the ESS in the 3D instance
    (``EPP_SELECTIONS["3D_Q42"]``); the 2D instance keeps the original
    date/item pair."""
    schema = schema or shared_schema()
    return SPJQuery(
        "Q42", schema, ["store_sales", "date_dim", "item", "store"],
        joins=[
            join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk",
                 selectivity=1.4e-5, error_prone=True, name="j:ss-d"),
            join("store_sales", "ss_item_sk", "item", "i_item_sk",
                 selectivity=4.9e-6, error_prone=True, name="j:ss-i"),
            join("store_sales", "ss_store_sk", "store", "s_store_sk",
                 selectivity=2.5e-3, error_prone=True, name="j:ss-s"),
        ],
        filters=[
            filter_pred("date_dim", "d_year", "=", 2000, selectivity=0.005),
            filter_pred("item", "i_category", "=", "Music",
                        selectivity=0.1),
        ],
    )


def q52(schema=None):
    """TPC-DS Q52 (same SPJ core shape as Q42, different constants)."""
    schema = schema or shared_schema()
    return SPJQuery(
        "Q52", schema, ["store_sales", "date_dim", "item"],
        joins=[
            join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk",
                 selectivity=1.4e-5, error_prone=True, name="j:ss-d"),
            join("store_sales", "ss_item_sk", "item", "i_item_sk",
                 selectivity=4.9e-6, error_prone=True, name="j:ss-i"),
        ],
        filters=[
            filter_pred("date_dim", "d_moy", "=", 12, selectivity=0.083),
            filter_pred("item", "i_manufact_id", "=", 436,
                        selectivity=0.001),
        ],
    )


def q12(schema=None):
    """TPC-DS Q12 adapted to the store channel (extended workload)."""
    schema = schema or shared_schema()
    return SPJQuery(
        "Q12", schema, ["catalog_sales", "item", "date_dim"],
        joins=[
            join("catalog_sales", "cs_item_sk", "item", "i_item_sk",
                 selectivity=4.9e-6, error_prone=True, name="j:cs-i"),
            join("catalog_sales", "cs_sold_date_sk", "date_dim",
                 "d_date_sk", selectivity=1.4e-5, error_prone=True,
                 name="j:cs-d"),
        ],
        filters=[
            filter_pred("item", "i_category", "=", "Books",
                        selectivity=0.1),
            filter_pred("date_dim", "d_year", "=", 1999,
                        selectivity=0.005),
        ],
    )


def q55(schema=None):
    """TPC-DS Q55: brand revenue star (extended workload)."""
    schema = schema or shared_schema()
    return SPJQuery(
        "Q55", schema, ["store_sales", "date_dim", "item", "store"],
        joins=[
            join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk",
                 selectivity=1.4e-5, error_prone=True, name="j:ss-d"),
            join("store_sales", "ss_item_sk", "item", "i_item_sk",
                 selectivity=4.9e-6, error_prone=True, name="j:ss-i"),
            join("store_sales", "ss_store_sk", "store", "s_store_sk",
                 selectivity=2.5e-3, error_prone=True, name="j:ss-s"),
        ],
        filters=[
            filter_pred("date_dim", "d_moy", "=", 11, selectivity=0.083),
            filter_pred("item", "i_manufact_id", "=", 28,
                        selectivity=0.001),
        ],
    )


#: Builders keyed by base query number.
QUERY_BUILDERS = {
    "Q7": q7, "Q15": q15, "Q18": q18, "Q19": q19, "Q26": q26,
    "Q27": q27, "Q29": q29, "Q84": q84, "Q91": q91, "Q96": q96,
    # Extended workload (beyond the paper's evaluation suite).
    "Q3": q3, "Q12": q12, "Q42": q42, "Q52": q52, "Q55": q55,
}

#: The epp subset (join-predicate names, in ESS-dimension order) for each
#: ``xD_Qz`` instance of the paper's evaluation suite.
EPP_SELECTIONS = {
    "3D_Q15": ["j:cs-c", "j:c-ca", "j:cs-d"],
    "3D_Q96": ["j:ss-hd", "j:ss-td", "j:ss-s"],
    "4D_Q7": ["j:ss-cd", "j:ss-d", "j:ss-i", "j:ss-p"],
    "4D_Q26": ["j:cs-cd", "j:cs-d", "j:cs-i", "j:cs-p"],
    "4D_Q27": ["j:ss-cd", "j:ss-d", "j:ss-s", "j:ss-i"],
    "4D_Q91": ["j:cr-d", "j:cr-c", "j:c-cd", "j:c-ca"],
    "5D_Q19": ["j:ss-d", "j:ss-i", "j:ss-c", "j:c-ca", "j:ss-s"],
    "5D_Q29": ["j:ss-sr", "j:sr-cs", "j:ss-d", "j:ss-i", "j:ss-s"],
    "5D_Q84": ["j:c-ca", "j:c-cd", "j:c-hd", "j:hd-ib", "j:cd-sr"],
    "6D_Q18": ["j:cs-cd1", "j:cs-c", "j:c-cd2", "j:c-ca", "j:cs-d", "j:cs-i"],
    "6D_Q91": ["j:cr-d", "j:cr-c", "j:c-cd", "j:c-hd", "j:c-ca", "j:cr-cc"],
    # The Figure 7 / Figure 9 dimensionality variants of Q91.
    "2D_Q91": ["j:cr-d", "j:c-ca"],
    # Extended workload instances.
    "2D_Q3": ["j:ss-d", "j:ss-i"],
    "2D_Q12": ["j:cs-i", "j:cs-d"],
    "2D_Q42": ["j:ss-d", "j:ss-i"],
    "3D_Q42": ["j:ss-d", "j:ss-i", "j:ss-s"],
    "2D_Q52": ["j:ss-d", "j:ss-i"],
    "3D_Q55": ["j:ss-d", "j:ss-i", "j:ss-s"],
    "3D_Q91": ["j:cr-d", "j:cr-c", "j:c-ca"],
    "5D_Q91": ["j:cr-d", "j:cr-c", "j:c-cd", "j:c-hd", "j:c-ca"],
}


def build_query(name, schema=None):
    """Build an ``xD_Qz`` workload query (e.g. ``"4D_Q91"``).

    Also accepts a bare ``Qz`` name, which keeps every join error-prone.
    """
    if name in QUERY_BUILDERS:
        return QUERY_BUILDERS[name](schema)
    if name not in EPP_SELECTIONS:
        raise QueryError(f"unknown workload query {name!r}")
    base = name.split("_", 1)[1]
    query = QUERY_BUILDERS[base](schema)
    reduced = query.with_epps(EPP_SELECTIONS[name])
    # with_epps derives the canonical name; keep the requested label.
    reduced.name = name
    return reduced


def suite_names():
    """The paper's main evaluation suite, in figure order."""
    return [
        "3D_Q15", "3D_Q96", "4D_Q7", "4D_Q26", "4D_Q27", "4D_Q91",
        "5D_Q19", "5D_Q29", "5D_Q84", "6D_Q18", "6D_Q91",
    ]


def extended_suite_names():
    """Extra TPC-DS instances beyond the paper's figures — available to
    library users for broader studies."""
    return ["2D_Q3", "2D_Q12", "2D_Q42", "3D_Q42", "2D_Q52", "3D_Q55"]
