"""Command-line interface: ``python -m repro <command>``.

Gives the library's main flows a no-code entry point:

* ``list`` / ``describe`` — browse the benchmark workloads;
* ``guarantees`` — the closed-form bound table (any contour ratio);
* ``build`` — offline ESS construction, optionally persisted to .npz;
* ``run`` — one traced discovery run (pb / sb / ab / native);
* ``evaluate`` — exhaustive MSO/ASO over the ESS;
* ``experiment`` — regenerate a specific paper table/figure;
* ``wallclock`` — the Section 6.3 actual-execution experiment;
* ``advise`` — the native-vs-robust deployment advisor;
* ``bench`` — the perf-trajectory benchmark (ESS cache, loop vs
  batched sweep engines, fan-out decision), optionally written to a
  ``BENCH_*.json`` artifact;
* ``check`` — the guarantee-conformance suite: seeded randomized
  workloads through every algorithm and sweep engine under runtime
  invariant monitors, exiting nonzero on any violation;
* ``arena`` — the head-to-head arena: the guaranteed algorithms vs
  the fixed-plan rivals over shared workloads, MSO and ASO per cell,
  with an optional MSO-vs-ASO scatter SVG;
* ``trace`` — one traced discovery run exported as a JSONL span trace
  plus the budget-waterfall HTML viewer;
* ``stats`` — the metrics registry as Prometheus text exposition;
* ``serve`` — the long-running concurrent discovery server (asyncio
  front-end, process-pool back-end, single-flight surface cache);
* ``loadgen`` — a closed-loop load generator against a running server,
  reporting p50/p90/p99 latency and rps.

``repro run`` and ``repro wallclock`` accept ``--trace-out`` to write
a JSONL span trace of the command; ``REPRO_TRACE=1`` (optionally with
``REPRO_TRACE_OUT``) enables tracing for any command.
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import contextmanager

from repro.bench import harness, workloads
from repro.bench.report import format_histogram, format_table, format_value
from repro.core import bounds
from repro.core.aligned_bound import AlignedBound
from repro.core.mso import evaluate_algorithm
from repro.core.native import NativeOptimizer
from repro.core.plan_bouquet import PlanBouquet
from repro.core.spill_bound import SpillBound
from repro.errors import ReproError
from repro.prior import PRIOR_KINDS, make_prior

_ALGORITHMS = {
    "pb": lambda inst, prior=None: PlanBouquet(inst.ess, inst.contours,
                                               prior=prior),
    "sb": lambda inst, prior=None: SpillBound(inst.ess, inst.contours,
                                              prior=prior),
    "ab": lambda inst, prior=None: AlignedBound(inst.ess, inst.contours,
                                                prior=prior),
}

#: ESS surface modes the CLI accepts (validated with source attribution
#: before anything downstream runs).
ESS_CHOICES = ("eager", "lazy")

#: Execution engines ``repro wallclock`` accepts.
ENGINE_CHOICES = ("auto", "vector", "volcano")


def resolve_choice(value, flag, env, choices, default=None, what=None):
    """Resolve a flag/env-configurable choice with source attribution.

    ``value`` is the flag's parsed value (None = flag not given); the
    environment variable is consulted next, then ``default``.  Invalid
    values raise :class:`ReproError` naming the source they came from
    — the flag or the variable — so a stale export never masquerades
    as a typo on the command line.  The shared spelling for every
    knob of this shape (``--prior``/``REPRO_PRIOR``,
    ``--ess``/``REPRO_ESS``, ``--engine``/``REPRO_ENGINE``).
    """
    what = what or f"{flag.lstrip('-')} choice"
    source = flag
    if value is None:
        raw = os.environ.get(env, "").strip()
        if not raw:
            return default
        value, source = raw, env
    value = str(value).strip().lower()
    if value not in choices:
        raise ReproError(
            f"invalid {what} {value!r} (from {source}); "
            f"choose from {', '.join(choices)}"
        )
    return value


def _resolve_prior_kind(args):
    """The run's prior kind from ``--prior`` / ``REPRO_PRIOR``."""
    return resolve_choice(getattr(args, "prior", None), "--prior",
                          "REPRO_PRIOR", PRIOR_KINDS, default="uniform",
                          what="prior")


def _resolve_ess_mode(args):
    """The run's ESS mode from ``--ess`` / ``REPRO_ESS``."""
    return resolve_choice(getattr(args, "ess", None), "--ess",
                          "REPRO_ESS", ESS_CHOICES, default="eager",
                          what="ESS mode")

_EXPERIMENTS = (
    "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "table2", "table3", "table4", "job", "lower-bound",
)


def _parse_qa(text):
    return tuple(float(part) for part in text.split(","))


def _resolution_arg(text):
    """Argparse type for ``--resolution``: an integer grid side >= 2."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"grid resolution must be an integer, got {text!r}"
        ) from None
    if value < 2:
        raise argparse.ArgumentTypeError(
            f"grid resolution must be >= 2, got {value}"
        )
    return value


def _validate_trace_out(path):
    """A usable ``--trace-out`` file path, or :class:`ReproError`."""
    if os.path.isdir(path):
        raise ReproError(
            f"--trace-out {path!r} is a directory; give a file path"
        )
    directory = os.path.dirname(path)
    if directory:
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise ReproError(
                f"cannot create trace output directory {directory!r}: {exc}"
            ) from None


@contextmanager
def _trace_to(path):
    """Scope a fresh tracer over a command, flushing JSONL to ``path``.

    With a falsy path this is a no-op (tracing stays however the
    environment configured it).
    """
    if not path:
        yield None
        return
    from repro.obs.export import write_trace_jsonl
    from repro.obs.trace import Tracer, install_tracer

    _validate_trace_out(path)
    tracer = Tracer()
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)
        write_trace_jsonl(tracer, path)
        print(f"wrote {path}")


def cmd_list(args):
    print("TPC-DS evaluation suite:")
    for name in workloads.evaluation_suite():
        print(f"  {name}")
    print("Q91 dimensionality variants: 2D_Q91 3D_Q91 5D_Q91")
    print("JOB: 2D_JOB1a 3D_JOB1a 4D_JOB1a")
    return 0


def cmd_describe(args):
    instance = workloads.load(args.query, profile=args.profile)
    print(instance.query.describe())
    ess, contours = instance.ess, instance.contours
    print(f"\nESS grid {ess.grid.shape} ({ess.grid.num_points} locations)")
    print(f"POSP size {ess.posp_size}, cost span "
          f"[{ess.min_cost:.4g}, {ess.max_cost:.4g}]")
    print(f"{contours.num_contours} contours at ratio "
          f"{contours.cost_ratio}, max density rho = {contours.max_density}")
    return 0


def cmd_guarantees(args):
    rows = bounds.guarantee_table(ratio=args.ratio)
    print(format_table(
        f"MSO guarantees at contour ratio {args.ratio}",
        ["D", "PB (rho=3)", "SB", "SB @ ideal ratio", "ideal ratio",
         "AB aligned", "lower bound"],
        [[r["D"], r["pb"], r["sb"], r["sb_at_ideal_ratio"],
          r["ideal_ratio"], r["ab_aligned"], r["lower_bound"]]
         for r in rows],
    ))
    return 0


def cmd_build(args):
    instance = workloads.load(args.query, profile=args.profile)
    print(f"built ESS for {args.query}: {instance.ess}")
    if args.save:
        from repro.ess.persistence import save_ess

        save_ess(instance.ess, args.save)
        print(f"saved to {args.save}")
    return 0


def _record_history(instance, qa, prior_kind):
    """Persist a completed discovery's actual selectivities.

    Feeds the :class:`~repro.prior.HistoryPrior` sidecar so repeated
    workloads start future ladders near where past queries landed.
    Recording happens when the run itself used the history prior or
    when ``REPRO_PRIOR_STORE`` names an explicit store; it is
    best-effort — a read-only store never fails the discovery.
    """
    if prior_kind != "history" and not os.environ.get("REPRO_PRIOR_STORE"):
        return
    from repro.prior import HistoryStore, history_key

    try:
        HistoryStore().record(history_key(instance.query, instance.ess),
                              tuple(float(v) for v in qa))
    except OSError:
        pass


def cmd_run(args):
    prior_kind = _resolve_prior_kind(args)
    instance = workloads.load(args.query, profile=args.profile,
                              ess_mode=_resolve_ess_mode(args))
    qa = _parse_qa(args.qa) if args.qa else instance.query.true_location()
    if args.algorithm == "native":
        algorithm = NativeOptimizer(instance.ess)
    else:
        prior = make_prior(prior_kind, instance.query, instance.ess)
        algorithm = _ALGORITHMS[args.algorithm](instance, prior=prior)
    with _trace_to(args.trace_out):
        if args.trace_out:
            from repro.obs.runtrace import traced_run

            result, _ = traced_run(algorithm, qa, name=args.algorithm)
        else:
            result = algorithm.run(qa, trace=True)
    if args.algorithm != "native":
        _record_history(instance, qa, prior_kind)
    print(f"{args.algorithm} on {args.query} at qa={qa}")
    rows = []
    for record in result.executions:
        rows.append([
            record.contour, record.mode,
            "-" if record.spill_dim is None else f"e{record.spill_dim + 1}",
            record.plan_id, format_value(record.budget),
            format_value(record.charged),
            "yes" if record.completed else "no",
        ])
    print(format_table(
        "execution sequence",
        ["IC", "mode", "epp", "plan", "budget", "charged", "done"],
        rows,
    ))
    print(f"sub-optimality: {result.suboptimality:.2f}")
    return 0


def cmd_evaluate(args):
    prior_kind = _resolve_prior_kind(args)
    instance = workloads.load(args.query, profile=args.profile)
    prior = make_prior(prior_kind, instance.query, instance.ess)
    rows = []
    for key in args.algorithms.split(","):
        factory = _ALGORITHMS.get(key.strip())
        if factory is None:
            raise ReproError(
                f"unknown algorithm {key.strip()!r}; "
                f"choose from {', '.join(_ALGORITHMS)}"
            )
        algorithm = factory(instance, prior=prior)
        evaluation = evaluate_algorithm(algorithm)
        guarantee = algorithm.mso_guarantee()
        rows.append([key.strip(), evaluation.mso, evaluation.aso, guarantee])
    print(format_table(
        f"exhaustive evaluation of {args.query} "
        f"({instance.ess.grid.num_points} locations, "
        f"{prior_kind} prior)",
        ["algorithm", "MSOe", "ASO", "guarantee"],
        rows,
    ))
    return 0


def cmd_experiment(args):
    name = args.name
    if name == "fig7":
        data = harness.run_fig7(profile=args.profile)
        print(format_table(
            f"Figure 7 trace (sub-optimality {data['suboptimality']:.2f})",
            ["IC", "mode", "plan", "qrun"],
            [[r["contour"], r["mode"], r["plan"], str(r["qrun"])]
             for r in data["rows"]],
        ))
    elif name == "fig8":
        rows = harness.run_fig8(profile=args.profile)
        print(format_table("Figure 8", ["query", "D", "PB MSOg", "SB MSOg"],
                           [[r["query"], r["D"], r["pb_msog"], r["sb_msog"]]
                            for r in rows]))
    elif name == "fig9":
        rows = harness.run_fig9(profile=args.profile)
        print(format_table("Figure 9", ["D", "PB MSOg", "SB MSOg"],
                           [[r["D"], r["pb_msog"], r["sb_msog"]]
                            for r in rows]))
    elif name == "fig10":
        rows = harness.run_fig10(profile=args.profile)
        print(format_table("Figure 10", ["query", "PB MSOe", "SB MSOe"],
                           [[r["query"], r["pb_msoe"], r["sb_msoe"]]
                            for r in rows]))
    elif name == "fig11":
        rows = harness.run_fig11(profile=args.profile)
        print(format_table("Figure 11", ["query", "PB ASO", "SB ASO"],
                           [[r["query"], r["pb_aso"], r["sb_aso"]]
                            for r in rows]))
    elif name == "fig12":
        data = harness.run_fig12(profile=args.profile)
        for key in ("pb", "sb"):
            edges, fractions = data[key]
            print(format_histogram(f"Figure 12 ({key})", edges, fractions))
    elif name == "fig13":
        rows = harness.run_fig13(profile=args.profile)
        print(format_table("Figure 13", ["query", "SB MSOe", "AB MSOe"],
                           [[r["query"], r["sb_msoe"], r["ab_msoe"]]
                            for r in rows]))
    elif name == "table2":
        rows = harness.run_table2(profile=args.profile)
        print(format_table(
            "Table 2",
            ["query", "original %", "<=1.2", "<=1.5", "<=2.0", "max"],
            [[r["query"], r["original_pct"], r["pct_at_1.2"],
              r["pct_at_1.5"], r["pct_at_2.0"], r["max_penalty"]]
             for r in rows]))
    elif name == "table3":
        data = harness.run_table3(profile=args.profile)
        print(format_table(
            f"Table 3 (sub-optimality {data['suboptimality']:.2f})",
            ["IC", "epp", "plan", "learned", "cumulative"],
            [[r["contour"], r["epp"], r["plan"], r["learned_sel"],
              r["cumulative_cost"]] for r in data["rows"]]))
    elif name == "table4":
        rows = harness.run_table4(profile=args.profile)
        print(format_table("Table 4", ["query", "max penalty"],
                           [[r["query"], r["max_penalty"]] for r in rows]))
    elif name == "job":
        data = harness.run_job(profile=args.profile)
        print(format_table("JOB 1a", ["metric", "value"],
                           [[k, v] for k, v in data.items() if k != "query"]))
    elif name == "lower-bound":
        rows = harness.run_lower_bound()
        print(format_table("Theorem 4.6", ["D", "measured MSO"],
                           [[r["D"], r["measured_mso"]] for r in rows]))
    return 0


def cmd_wallclock(args):
    engine = resolve_choice(args.engine, "--engine", "REPRO_ENGINE",
                            ENGINE_CHOICES, default="auto",
                            what="execution engine")
    with _trace_to(args.trace_out):
        result = harness.run_wallclock(row_budget=args.rows, seed=args.seed,
                                       engine=engine,
                                       resolution=args.resolution)
    print(format_table(
        f"Section 6.3: engine-measured costs ({engine})",
        ["strategy", "cost", "vs oracle"],
        [["oracle", result["oracle_cost"], 1.0],
         ["native", result["native_cost"], result["native_subopt"]],
         ["SpillBound", result["sb_cost"], result["sb_subopt"]],
         ["AlignedBound", result["ab_cost"], result["ab_subopt"]]],
    ))
    return 0


def cmd_figures(args):
    from repro.bench.figures import render_all_figures

    paths = render_all_figures(args.outdir, profile=args.profile)
    for path in paths:
        print(path)
    return 0


def _cmd_bench_trajectory(args):
    """``repro bench --trajectory``: the cross-PR speedup ledger."""
    from repro.bench.trajectory import build_trajectory, render_trajectory

    merged = build_trajectory(args.trajectory_dir)
    if not merged["artifacts"]:
        print(f"no BENCH_*.json artifacts under "
              f"{args.trajectory_dir or os.getcwd()}")
        return 1
    print(render_trajectory(merged))
    if args.json:
        import json as json_module

        from repro.bench.perfbench import validate_artifact_path

        validate_artifact_path(args.json)
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(merged, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0


def _run_sentinel_gate(args, payload, exclude):
    """Judge ``payload`` against the committed baselines; exit status."""
    from repro.bench.sentinel import (evaluate_sentinel, load_baselines,
                                      render_sentinel)

    baselines = load_baselines(args.trajectory_dir, exclude=exclude)
    verdict = evaluate_sentinel(payload, baselines)
    print(render_sentinel(verdict))
    if args.sentinel_json:
        import json as json_module

        from repro.bench.perfbench import validate_artifact_path

        validate_artifact_path(args.sentinel_json)
        with open(args.sentinel_json, "w", encoding="utf-8") as handle:
            json_module.dump(verdict, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.sentinel_json}")
    return 0 if verdict["ok"] else 1


def cmd_bench(args):
    if args.trajectory:
        return _cmd_bench_trajectory(args)
    if args.sentinel and args.sentinel_artifact:
        # Judge an artifact that already exists — no fresh bench run.
        import json as json_module

        try:
            with open(args.sentinel_artifact, encoding="utf-8") as handle:
                payload = json_module.load(handle)
        except (OSError, ValueError) as exc:
            raise ReproError(
                f"cannot read bench artifact "
                f"{args.sentinel_artifact!r}: {exc}"
            ) from None
        return _run_sentinel_gate(args, payload,
                                  exclude=args.sentinel_artifact)
    from repro.bench.perfbench import run_bench

    payload = run_bench(
        json_path=args.json,
        query=args.query,
        profile=args.profile,
        workers=args.workers,
        resolution=args.resolution,
        ess_mode=_resolve_ess_mode(args),
        ess_big_cell=args.ess_big_cell,
        anytime_workloads=args.anytime_workloads,
    )
    cache = payload["cache"]
    rows = [["warm ESS load vs cold build", f"{cache['speedup']:.1f}x",
             "bit-identical" if cache["roundtrip_identical"] else "MISMATCH"]]
    for algo, stats in payload["sweeps"].items():
        rows.append([
            f"{algo} batched sweep vs loop",
            f"{stats['speedup']:.1f}x",
            "bit-identical" if stats["batch_identical"] else "MISMATCH",
        ])
    for algo, stats in payload["parallel"].items():
        if stats["skipped"]:
            rows.append([
                f"{algo} parallel sweep x{stats['workers_requested']}",
                "skipped",
                stats["skip_reason"],
            ])
        else:
            rows.append([
                f"{algo} parallel sweep x{stats['workers_effective']}",
                f"{stats['speedup']:.2f}x",
                f"max dev {stats['max_abs_deviation']:.2e}",
            ])
    wc = payload["wallclock"]
    rows.append([
        "wallclock vector vs volcano engine",
        f"{wc['speedup']:.1f}x",
        "bit-identical" if wc["identical"] else "MISMATCH",
    ])
    tr = payload["tracing"]
    rows.append([
        "batched sweep tracing on vs off",
        f"{tr['overhead_pct']:+.1f}%",
        "bit-identical" if tr["identical"] else "MISMATCH",
    ])
    eb = payload["ess_build"]
    ident = eb["sweep_identity"]
    rows.append([
        "lazy vs eager exhaustive sweep",
        f"MSO {ident['mso_lazy']:.2f}",
        "bit-identical" if ident["identical"] else "MISMATCH",
    ])
    for cell in eb["cells"]:
        label = (f"lazy build {cell['query']} "
                 f"res {cell['resolution']} ({cell['grid_points']} pts)")
        calls = f"{cell['call_reduction']:.1f}x fewer calls"
        eager = cell["eager"]
        if not eager["attempted"]:
            rows.append([label, calls, f"eager infeasible: "
                         f"{eager['reason']}"])
        else:
            rows.append([
                label, calls,
                "bit-identical" if cell["run_identical"] else "MISMATCH",
            ])
    sv = payload["serving"]
    flight = sv["single_flight"]
    latency = sv["loadgen"]["latency_s"]
    rows.append([
        f"serving burst x{sv['loadgen']['concurrency']} "
        f"({sv['loadgen']['requests']} requests)",
        f"{sv['loadgen']['rps']:.1f} rps",
        f"p50 {latency['p50'] * 1000:.0f} ms / "
        f"p99 {latency['p99'] * 1000:.0f} ms",
    ])
    rows.append([
        "serving single-flight",
        f"{flight['ess_builds']} builds / "
        f"{flight['unique_surfaces']} surfaces",
        (f"{flight['coalesced']} coalesced" if flight["ok"]
         else "EXTRA BUILDS"),
    ])
    rows.append([
        "serving vs solo runs",
        "bit-identical" if sv["all_identical"] else "MISMATCH",
        f"{sv['conformance']['violations']} conformance violations",
    ])
    an = payload["anytime"]
    for mode in ("sampled", "history"):
        stats = an["modes"][mode]
        rows.append([
            f"anytime {mode} prior vs uniform "
            f"({an['workloads']} workloads)",
            f"{stats['speedup_mean']:.2f}x",
            f"ASO {stats['aso_mean']:.2f}, "
            f"{an['violations']} violations",
        ])
    ob = payload["observability"]
    merged = ob["merged_trace"]
    rows.append([
        "request tracing on vs off",
        f"{ob['overhead_pct']:+.1f}%",
        "bit-identical" if ob["all_identical"] else "MISMATCH",
    ])
    rows.append([
        "merged multi-process trace",
        f"{merged.get('spans', 0)} spans / "
        f"{len(merged.get('pids', []))} pids",
        "single tree" if merged.get("ok") else "BROKEN",
    ])
    print(format_table(
        f"perf bench on {cache['query']} "
        f"({cache['grid_points']} locations, "
        f"{payload['hardware']['cpu_count']} CPUs)",
        ["measurement", "speedup", "fidelity"],
        rows,
    ))
    if args.json:
        print(f"wrote {args.json}")
    if args.sentinel:
        return _run_sentinel_gate(args, payload, exclude=args.json)
    return 0


def cmd_check(args):
    from repro.conformance.suite import INJECT_MODES, SUITE_ENGINES

    engines = tuple(e.strip() for e in args.engines.split(",") if e.strip())
    unknown = set(engines) - set(SUITE_ENGINES)
    if unknown:
        print(f"error: unknown engine(s) {sorted(unknown)}; "
              f"choose from {SUITE_ENGINES}", file=sys.stderr)
        return 2
    if args.inject is not None and args.inject not in INJECT_MODES:
        print(f"error: unknown injection {args.inject!r}; "
              f"choose from {INJECT_MODES}", file=sys.stderr)
        return 2

    def progress(done, total, outcome):
        if args.verbose:
            print(f"[{done}/{total}] seed {outcome.seed}: "
                  f"D={outcome.num_epps} res={outcome.resolution} "
                  f"ratio={outcome.cost_ratio} noise={outcome.cost_noise} "
                  f"align={outcome.alignment_fraction:.2f} "
                  f"{outcome.engines}")

    prior_kind = _resolve_prior_kind(args)
    report = harness.run_conformance(
        num_workloads=args.workloads,
        base_seed=args.base_seed,
        engines=engines,
        trace_samples=args.trace_samples,
        jsonl_path=args.jsonl,
        use_cache=not args.no_cache,
        inject=args.inject,
        progress=progress,
        ess_mode=_resolve_ess_mode(args),
        prior=None if prior_kind == "uniform" else prior_kind,
    )
    summary = report.summary()
    print(format_table(
        f"conformance suite ({summary['workloads']} workloads x pb/sb/ab, "
        f"{prior_kind} prior)",
        ["metric", "value"],
        [[key, value] for key, value in summary.items()],
    ))
    for violation in report.monitor.violations[:20]:
        print(f"VIOLATION [{violation.invariant}] "
              f"{violation.algorithm}/{violation.engine}: "
              f"{violation.message} {violation.details}")
    remaining = len(report.monitor.violations) - 20
    if remaining > 0:
        print(f"... and {remaining} more")
    if args.jsonl:
        print(f"wrote {args.jsonl}")
    if not report.ok:
        print(f"conformance FAILED: {summary['violations']} violation(s)")
        return 1
    print("conformance ok: zero violations, zero bit-identity mismatches")
    return 0


def cmd_arena(args):
    import json

    from repro.arena.profiles import PROFILE_KINDS, ErrorProfile
    from repro.arena.report import ARENA_ALGORITHMS, run_arena
    from repro.conformance.workloads import WORKLOAD_FAMILIES

    if args.family not in WORKLOAD_FAMILIES:
        print(f"error: unknown workload family {args.family!r}; "
              f"choose from {WORKLOAD_FAMILIES}", file=sys.stderr)
        return 2
    names = None
    if args.algorithms:
        names = tuple(a.strip() for a in args.algorithms.split(",")
                      if a.strip())
    if args.profile_kind not in PROFILE_KINDS:
        print(f"error: unknown error-profile kind "
              f"{args.profile_kind!r}; choose from {PROFILE_KINDS}",
              file=sys.stderr)
        return 2
    profile = ErrorProfile(width=args.profile_width,
                           spread=args.profile_spread,
                           kind=args.profile_kind)
    report = run_arena(
        num_workloads=args.workloads,
        base_seed=args.base_seed,
        family=args.family,
        algorithms=names,
        profile=profile,
        engine=args.engine,
        use_cache=not args.no_cache,
    )
    aggregates = report.by_algorithm()
    print(format_table(
        f"arena ({report.num_workloads} {report.family} workloads, "
        f"profile {profile.spec()})",
        ["algorithm", "worst MSO", "mean MSO", "mean ASO", "worst ASO"],
        [[name, agg["worst_mso"], agg["mean_mso"], agg["mean_aso"],
          agg["worst_aso"]] for name, agg in aggregates.items()],
    ))
    guaranteed = [name for name in report.algorithms
                  if name in ARENA_ALGORITHMS[:3]]
    if guaranteed:
        print(f"guaranteed: {', '.join(guaranteed)} "
              f"(bounds monitored; {report.num_violations} violation(s))")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_payload(), fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if args.svg:
        from repro.bench.svgfig import save_svg, scatter_chart

        save_svg(args.svg, scatter_chart(
            "MSO vs ASO, head to head",
            report.scatter_series(),
            x_label="ASO (mean sub-optimality)",
            y_label="MSO",
            subtitle=f"{report.num_workloads} shared {report.family} "
                     "workloads, one point per (workload, algorithm)",
        ))
        print(f"wrote {args.svg}")
    if report.num_violations:
        print(f"arena FAILED: {report.num_violations} conformance "
              "violation(s)")
        return 1
    return 0


#: ``repro trace`` export formats.
TRACE_FORMATS = ("all", "jsonl", "html")

#: ``repro stats`` export formats.
STATS_FORMATS = ("prom", "json")


def _cmd_trace_from_jsonl(args, out):
    """Render an existing (possibly multi-process) JSONL trace: the
    merged tree as text, plus the wall-clock timeline HTML."""
    from repro.obs.export import read_trace_jsonl, render_trace_tree
    from repro.obs.waterfall import write_trace_html

    try:
        meta, spans = read_trace_jsonl(args.from_jsonl)
    except (OSError, ValueError) as exc:
        raise ReproError(
            f"cannot read trace {args.from_jsonl!r}: {exc}"
        ) from None
    if not spans:
        raise ReproError(f"trace {args.from_jsonl!r} holds no spans")
    print(render_trace_tree(meta or {}, spans))
    if args.format in ("all", "html"):
        trace_id = (meta or {}).get("trace_id", "trace")
        path = write_trace_html(
            os.path.join(out, f"{trace_id}.timeline.html"),
            meta or {}, spans,
            title=f"trace {trace_id}",
        )
        print(f"wrote {path}")
    return 0


def cmd_trace(args):
    from repro.obs.export import write_trace_jsonl
    from repro.obs.runtrace import traced_run
    from repro.obs.trace import Tracer, install_tracer
    from repro.obs.waterfall import write_waterfall_html

    if args.format not in TRACE_FORMATS:
        raise ReproError(
            f"unknown export format {args.format!r}; "
            f"choose from {TRACE_FORMATS}"
        )
    out = args.out
    if os.path.isfile(out):
        raise ReproError(f"--out {out!r} exists and is not a directory")
    try:
        os.makedirs(out, exist_ok=True)
    except OSError as exc:
        raise ReproError(
            f"cannot create output directory {out!r}: {exc}"
        ) from None
    if args.from_jsonl:
        return _cmd_trace_from_jsonl(args, out)
    if not args.query:
        raise ReproError("give --query to trace a run, or --from-jsonl "
                         "to render an existing trace file")

    instance = workloads.load(args.query, profile=args.profile)
    qa = _parse_qa(args.qa) if args.qa else instance.query.true_location()
    if args.algorithm == "native":
        algorithm = NativeOptimizer(instance.ess)
    else:
        algorithm = _ALGORITHMS[args.algorithm](instance)
    tracer = Tracer()
    previous = install_tracer(tracer)
    try:
        result, rows = traced_run(algorithm, qa, name=args.algorithm)
    finally:
        install_tracer(previous)

    print(f"{args.algorithm} on {args.query}: "
          f"{result.num_executions} executions over "
          f"{result.contours_visited} contours, "
          f"sub-optimality {result.suboptimality:.2f}")
    base = os.path.join(out, f"{args.query}_{args.algorithm}")
    if args.format in ("all", "jsonl"):
        path = write_trace_jsonl(tracer, f"{base}.trace.jsonl")
        print(f"wrote {path}")
    if args.format in ("all", "html"):
        meta = {
            "query": args.query,
            "algorithm": args.algorithm,
            "qa": ",".join(f"{v:.4g}" for v in qa),
            "suboptimality": result.suboptimality,
            "total_cost": result.total_cost,
            "optimal_cost": result.optimal_cost,
            "executions": result.num_executions,
            "contours_visited": result.contours_visited,
        }
        path = write_waterfall_html(
            f"{base}.waterfall.html", rows, meta=meta,
            title=f"budget waterfall: {args.algorithm} on {args.query}",
        )
        print(f"wrote {path}")
    return 0


def cmd_stats(args):
    from repro.obs.export import prometheus_text
    from repro.obs.metrics import REGISTRY

    if args.format not in STATS_FORMATS:
        raise ReproError(
            f"unknown export format {args.format!r}; "
            f"choose from {STATS_FORMATS}"
        )
    if args.query:
        from repro.obs.runtrace import traced_run

        instance = workloads.load(args.query, profile=args.profile)
        algorithm = _ALGORITHMS[args.algorithm](instance)
        traced_run(algorithm, instance.query.true_location(),
                   name=args.algorithm)
    if args.format == "json":
        import json

        print(json.dumps(REGISTRY.summary(), indent=2, sort_keys=True))
    else:
        sys.stdout.write(prometheus_text(REGISTRY))
    return 0


def cmd_serve(args):
    import asyncio

    from repro.serve.server import ServeConfig, serve_forever

    config = ServeConfig.from_env(
        host=args.host, port=args.port, workers=args.workers,
        queue_limit=args.queue, tenant_quota=args.quota,
        cache_mb=args.cache_mb, profile=args.profile, ess_mode=args.ess,
        prior=_resolve_prior_kind(args),
        conformance=args.conformance, drain_timeout_s=args.drain_timeout,
        trace_every=args.trace_every, trace_dir=args.trace_dir,
        audit_path=args.audit, audit_threshold_s=args.audit_threshold,
        audit_every=args.audit_sample,
    )
    return asyncio.run(serve_forever(config))


def cmd_loadgen(args):
    from repro.bench.perfbench import validate_artifact_path
    from repro.serve.loadgen import run_loadgen

    validate_artifact_path(args.json)
    queries = [q.strip() for q in args.queries.split(",") if q.strip()]
    if not queries:
        raise ReproError("--queries must name at least one workload")
    tenants = [f"tenant-{i}" for i in range(max(1, args.tenants))]
    summary = run_loadgen(
        args.host, args.port, queries=queries, total=args.requests,
        concurrency=args.concurrency, algorithm=args.algorithm,
        kind=args.kind, tenants=tenants, sleep_s=args.sleep,
        trace_every=args.trace_every,
    )
    summary.pop("records", None)
    latency = summary["latency_s"]
    print(format_table(
        f"loadgen: {summary['requests']} requests x{args.concurrency} "
        f"against {args.host}:{args.port}",
        ["metric", "value"],
        [["rps", f"{summary['rps']:.1f}"],
         ["p50 latency", f"{latency['p50'] * 1000:.1f} ms"],
         ["p90 latency", f"{latency['p90'] * 1000:.1f} ms"],
         ["p99 latency", f"{latency['p99'] * 1000:.1f} ms"],
         ["max latency", f"{latency['max'] * 1000:.1f} ms"],
         ["traced", str(summary["traced"])],
         ["outcomes", str(summary["outcomes"])],
         ["status codes", str(summary["status_codes"])]],
    ))
    if args.json:
        import json as json_module

        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0 if summary["outcomes"].get("ok", 0) > 0 else 1


def cmd_advise(args):
    from repro.core.advisor import RobustnessAdvisor

    instance = workloads.load(args.query, profile=args.profile)
    advisor = RobustnessAdvisor(instance.ess)
    estimate = (_parse_qa(args.estimate) if args.estimate
                else instance.ess.grid.origin)
    advice = advisor.advise(estimate, args.radius)
    verdict = "robust discovery" if advice.use_robust else "native optimizer"
    print(f"recommendation for {args.query}: {verdict}")
    print(f"  {advice.reason}")
    return 0


def _add_prior_arg(parser):
    """``--prior uniform|sampled|history`` (validated with source
    attribution by :func:`resolve_choice`, like ``REPRO_PRIOR``)."""
    parser.add_argument("--prior", default=None, metavar="KIND",
                        help="selectivity prior guiding contour "
                        "scheduling: uniform (exact no-op), sampled "
                        "(catalog sampling) or history (observed "
                        "outcomes); default from REPRO_PRIOR, else "
                        "uniform")


def _add_ess_arg(parser):
    """``--ess eager|lazy`` (validated downstream so bad values raise
    :class:`ReproError` whether they come from the flag or ``REPRO_ESS``)."""
    parser.add_argument("--ess", default=None, metavar="MODE",
                        help="ESS surface mode: eager (full optimizer "
                        "sweep) or lazy (resolve on demand); default "
                        "from REPRO_ESS, else eager")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Platform-independent robust query processing",
    )
    parser.add_argument("--profile", default=None,
                        choices=[None, "smoke", "bench", "paper"],
                        help="grid-resolution profile")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workload queries")

    p = sub.add_parser("describe", help="describe a workload query")
    p.add_argument("query")

    p = sub.add_parser("guarantees", help="closed-form bound table")
    p.add_argument("--ratio", type=float, default=2.0)

    p = sub.add_parser("build", help="build (and optionally save) an ESS")
    p.add_argument("query")
    p.add_argument("--save", default=None, help="write the ESS to a .npz")

    p = sub.add_parser("run", help="one traced discovery run")
    p.add_argument("query")
    p.add_argument("--algorithm", default="sb",
                   choices=["pb", "sb", "ab", "native"])
    p.add_argument("--qa", default=None,
                   help="comma-separated actual selectivities")
    p.add_argument("--trace-out", default=None,
                   help="write a JSONL span trace of the run to this file")
    _add_ess_arg(p)
    _add_prior_arg(p)

    p = sub.add_parser("evaluate", help="exhaustive MSO/ASO evaluation")
    p.add_argument("query")
    p.add_argument("--algorithms", default="pb,sb,ab")
    _add_prior_arg(p)

    p = sub.add_parser("experiment", help="regenerate a paper artifact")
    p.add_argument("name", choices=_EXPERIMENTS)

    p = sub.add_parser("wallclock", help="the actual-execution experiment")
    p.add_argument("--rows", type=int, default=40_000)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--engine", default=None, metavar="ENGINE",
                   help="execution engine for every plan run: auto, "
                   "vector or volcano; default from REPRO_ENGINE, "
                   "else auto")
    p.add_argument("--resolution", type=_resolution_arg, default=None,
                   help="explicit grid resolution for the workload")
    p.add_argument("--trace-out", default=None,
                   help="write a JSONL span trace of the run to this file")

    p = sub.add_parser("trace", help="trace one discovery run "
                       "(JSONL + budget-waterfall HTML), or render an "
                       "existing JSONL trace with --from-jsonl")
    p.add_argument("--query", default=None)
    p.add_argument("--from-jsonl", default=None, metavar="PATH",
                   help="render an existing JSONL trace (e.g. one the "
                   "server spooled): merged multi-process tree as text "
                   "plus a wall-clock timeline HTML")
    p.add_argument("--algorithm", default="sb",
                   choices=["pb", "sb", "ab", "native"])
    p.add_argument("--qa", default=None,
                   help="comma-separated actual selectivities")
    p.add_argument("--out", default="trace",
                   help="output directory for the artifacts")
    p.add_argument("--format", default="all",
                   help="artifacts to emit: all, jsonl or html")

    p = sub.add_parser("stats", help="export the metrics registry "
                       "(Prometheus text exposition)")
    p.add_argument("--query", default=None,
                   help="first run one discovery on this workload "
                   "so the registry has run-level series")
    p.add_argument("--algorithm", default="sb", choices=["pb", "sb", "ab"])
    p.add_argument("--format", default="prom",
                   help="output format: prom or json")

    p = sub.add_parser("figures", help="render all figures as SVG")
    p.add_argument("--outdir", default="results/figures")

    p = sub.add_parser("bench", help="perf-trajectory benchmark")
    p.add_argument("--json", default=None,
                   help="write the BENCH artifact to this path")
    p.add_argument("--query", default="3D_Q91")
    p.add_argument("--workers", type=int, default=4,
                   help="process count for the parallel sweep")
    p.add_argument("--resolution", type=_resolution_arg, default=None,
                   help="explicit grid resolution for the bench workload")
    p.add_argument("--ess-big-cell", action="store_true",
                   help="also measure the 24M-point 5-epp build cell "
                   "that only the lazy surface can complete (minutes)")
    p.add_argument("--anytime-workloads", type=int, default=None,
                   help="randomized workloads for the anytime "
                   "prior-scheduling cell (default 100)")
    p.add_argument("--trajectory", action="store_true",
                   help="instead of benchmarking, merge every "
                   "BENCH_pr*.json artifact into the cross-PR "
                   "speedup trajectory table")
    p.add_argument("--trajectory-dir", default=None,
                   help="directory holding the BENCH artifacts "
                   "(default: current directory)")
    p.add_argument("--sentinel", action="store_true",
                   help="after benchmarking, judge the run against the "
                   "committed BENCH_pr*.json baselines and exit 1 on "
                   "any metric outside its tolerance band")
    p.add_argument("--sentinel-artifact", default=None, metavar="PATH",
                   help="with --sentinel: judge this existing artifact "
                   "instead of running a fresh bench")
    p.add_argument("--sentinel-json", default=None, metavar="PATH",
                   help="with --sentinel: write the machine-readable "
                   "verdict to this path")
    _add_ess_arg(p)

    p = sub.add_parser("check", help="guarantee-conformance suite")
    p.add_argument("--workloads", type=int, default=200,
                   help="number of seeded randomized workloads")
    p.add_argument("--base-seed", type=int, default=0)
    p.add_argument("--engines", default="loop,batch,parallel",
                   help="comma-separated sweep engines to exercise")
    p.add_argument("--trace-samples", type=int, default=3,
                   help="traced scalar runs per (workload, algorithm)")
    p.add_argument("--jsonl", default=None,
                   help="write violation records to this JSONL path")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the persistent ESS archive cache")
    p.add_argument("--inject", default=None, choices=["mso", "learning"],
                   help="inject a deliberate violation (negative test)")
    p.add_argument("--verbose", action="store_true",
                   help="print one line per workload")
    _add_ess_arg(p)
    _add_prior_arg(p)

    p = sub.add_parser("arena", help="head-to-head algorithm arena "
                       "(guaranteed algorithms vs fixed-plan rivals)")
    p.add_argument("--workloads", type=int, default=20,
                   help="number of shared seeded workloads")
    p.add_argument("--base-seed", type=int, default=0)
    p.add_argument("--family", default="random",
                   help="workload family: random or adversarial")
    p.add_argument("--algorithms", default=None,
                   help="comma-separated lineup override "
                   "(pb,sb,ab,penalty,regret,sampling)")
    p.add_argument("--engine", default="auto",
                   choices=["auto", "batch", "parallel", "loop"],
                   help="sweep engine for the exhaustive evaluations")
    p.add_argument("--profile-width", type=int, default=2,
                   help="error-profile half-width in grid steps")
    p.add_argument("--profile-spread", type=float, default=1.0,
                   help="error-profile spread (gaussian sigma)")
    p.add_argument("--profile-kind", default="gaussian",
                   help="error-profile kind: gaussian or uniform")
    p.add_argument("--json", default=None,
                   help="write the arena payload to this path")
    p.add_argument("--svg", default=None,
                   help="write the MSO-vs-ASO scatter to this path")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the persistent ESS archive cache")

    p = sub.add_parser("serve", help="run the concurrent discovery server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default REPRO_SERVE_WORKERS)")
    p.add_argument("--queue", type=int, default=None,
                   help="admitted-but-not-running request ceiling "
                   "(default REPRO_SERVE_QUEUE)")
    p.add_argument("--quota", type=int, default=None,
                   help="per-tenant in-flight ceiling "
                   "(default REPRO_SERVE_QUOTA)")
    p.add_argument("--cache-mb", type=int, default=None,
                   help="in-memory surface tier budget "
                   "(default REPRO_SERVE_CACHE_MB)")
    p.add_argument("--conformance", action="store_true",
                   help="run every request under the conformance monitor")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   help="seconds to wait for in-flight requests on drain")
    p.add_argument("--trace-every", type=int, default=None,
                   help="trace every Nth request (0 disables; default "
                   "REPRO_SERVE_TRACE); per-request 'trace' fields "
                   "override the sampling")
    p.add_argument("--trace-dir", default=None,
                   help="spool each traced request's merged JSONL trace "
                   "into this directory (default REPRO_SERVE_TRACE_DIR)")
    p.add_argument("--audit", default=None, metavar="PATH",
                   help="append slow/sampled request records to this "
                   "JSONL audit log (default REPRO_SERVE_AUDIT)")
    p.add_argument("--audit-threshold", type=float, default=None,
                   help="seconds beyond which a request is audited as "
                   "slow (default REPRO_SERVE_AUDIT_THRESHOLD_S, 1.0)")
    p.add_argument("--audit-sample", type=int, default=None,
                   help="also audit every Nth request (0 disables; "
                   "default REPRO_SERVE_AUDIT_SAMPLE)")
    _add_ess_arg(p)
    _add_prior_arg(p)

    p = sub.add_parser("loadgen", help="closed-loop load generator "
                       "against a running discovery server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--queries", default="2D_Q91,3D_Q91",
                   help="comma-separated workloads to round-robin over")
    p.add_argument("--requests", type=int, default=64,
                   help="total requests to complete")
    p.add_argument("--concurrency", type=int, default=8,
                   help="concurrent client connections")
    p.add_argument("--tenants", type=int, default=4,
                   help="tenant identities to round-robin over")
    p.add_argument("--algorithm", default="sb",
                   choices=["pb", "sb", "ab", "native"])
    p.add_argument("--kind", default="run", choices=["run", "evaluate"])
    p.add_argument("--sleep", type=float, default=0.0,
                   help="synthetic per-request service seconds")
    p.add_argument("--trace-every", type=int, default=0,
                   help="force tracing on every Nth request "
                   "(0: defer to the server's sampling policy)")
    p.add_argument("--json", default=None,
                   help="write the latency summary to this path")

    p = sub.add_parser("advise", help="native vs robust recommendation")
    p.add_argument("query")
    p.add_argument("--radius", type=float, default=10.0,
                   help="anticipated multiplicative estimation error")
    p.add_argument("--estimate", default=None,
                   help="comma-separated estimated selectivities")
    return parser


_HANDLERS = {
    "list": cmd_list,
    "describe": cmd_describe,
    "guarantees": cmd_guarantees,
    "build": cmd_build,
    "run": cmd_run,
    "evaluate": cmd_evaluate,
    "experiment": cmd_experiment,
    "wallclock": cmd_wallclock,
    "trace": cmd_trace,
    "stats": cmd_stats,
    "figures": cmd_figures,
    "advise": cmd_advise,
    "bench": cmd_bench,
    "check": cmd_check,
    "arena": cmd_arena,
    "serve": cmd_serve,
    "loadgen": cmd_loadgen,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        # REPRO_TRACE=1 + REPRO_TRACE_OUT=<path> without any flag.
        from repro.obs.trace import flush_env_tracer

        flush_env_tracer()


if __name__ == "__main__":
    sys.exit(main())
