"""Guarantee-conformance layer: runtime invariant monitors and the
randomized conformance suite (``repro check``).

Light by design: importing this package pulls in only the monitor
machinery (which the sweep engines and the discovery driver import for
their no-op-when-detached hooks); the suite and its workload generator
load lazily.
"""

from repro.conformance.monitors import (
    ConformanceMonitor,
    Violation,
    active_monitor,
    install_monitor,
    monitoring,
    observe_engine_report,
    observe_sweep,
)

__all__ = [
    "ConformanceMonitor",
    "Violation",
    "active_monitor",
    "install_monitor",
    "monitoring",
    "observe_engine_report",
    "observe_sweep",
]
