"""Runtime invariant monitors for the MSO guarantees.

The paper's value proposition is *provable* robustness — PlanBouquet's
behavioural ``MSO <= 4(1+lambda)rho`` (Dutt & Haritsa, TODS 2016) and
SpillBound's structural ``MSO <= D^2 + 3D`` (Karthik et al., TKDE 2019).
Both bounds rest on mechanically checkable per-execution invariants:
cost-budget doubling between contours, half-space pruning (Lemma 3.1:
each spill execution either learns an epp exactly or proves
``qa.j > q_max^j.j``), anorexic-reduction lambda accounting, and
repeat-execution counting (Lemma 4.4).  This module turns each of those
into a runtime check.

A :class:`ConformanceMonitor` is strictly *opt-in*: the sweep engines
and the discovery driver call the module-level ``observe_*`` hooks,
which are no-ops unless a monitor has been installed (via
:func:`install_monitor` or the :func:`monitoring` context manager).
Nothing in the normal production/test path pays more than a ``None``
check — and worlds that legitimately break a bound (e.g. the
SI-violating :class:`~repro.ess.dependence.CorrelatedSpillBound`)
are unaffected because they never install a monitor.

Violations are *recorded*, not raised: a conformance sweep should
report every broken invariant it finds, not die on the first one.
Each record is a structured :class:`Violation`; when the monitor is
constructed with a ``jsonl_path`` every record is also appended to
that file as one JSON line (the ``repro check`` artifact).

Invariant names used in records:

* ``contour-ladder`` — contour budgets form a geometric ladder at the
  configured cost ratio, capped at ``C_max`` (paper Section 2.5);
* ``mso-bound`` — a run's (or sweep's) sub-optimality exceeds the
  algorithm's own guarantee, or beats the oracle (``< 1``);
* ``lambda-accounting`` — a PlanBouquet execution budget differs from
  the anorexically inflated contour cost, executes a plan outside the
  reduced bouquet, or a contour runs more plans than ``rho``;
* ``halfspace`` — a spill execution that neither learnt its epp nor
  proved ``qa.j`` beyond the learnable bound, or a spill on an epp
  already learnt exactly;
* ``exact-learning`` — a completed spill execution whose learnt
  selectivity is not bit-exactly the grid selectivity at ``qa``;
* ``learned-monotonic`` — an epp's exact learning fell below a lower
  bound established by an earlier failed spill;
* ``budget-ladder`` — an execution budget inconsistent with the
  contour cost (times the replacement penalty for AlignedBound);
* ``charge-accounting`` — charges that disagree with the paper's
  accounting (killed runs charged their budget, completed runs their
  actual cost) or that do not sum to the reported total;
* ``repeat-bound`` — more than ``D(D-1)/2`` repeat executions
  (Lemma 4.4);
* ``sequence`` — out-of-order contours, a completion that is not the
  final execution, or no completion at all;
* ``bit-identity`` — two sweep engines disagree on the sub-optimality
  array (they must be bit-identical, ``np.array_equal``);
* ``engine-budget`` — an engine execution overspent its kill budget,
  or re-learnt an epp it had already learnt;
* ``ladder-start`` — a prior-scheduled run whose first execution sits
  above the contour band holding ``qa`` (skipping a rung that was not
  a guaranteed kill), or below the schedule's own starting contour;
* ``prior-inert`` — a run/sweep under the uniform prior that is not
  bit-identical (``np.array_equal``) to the plain no-prior path.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

#: Relative slack for the monitors' floating-point comparisons.  Wider
#: than :data:`repro.core.discovery.BUDGET_EPS` because totals are
#: re-summed here in a different association order than the run built
#: them in.
RTOL = 1e-6

#: Exact-comparison slack for quantities the algorithms compute through
#: one shared code path (budgets, penalties): any drift is a real bug.
STRICT_RTOL = 1e-9


def _close(a, b, rtol=STRICT_RTOL):
    a, b = float(a), float(b)
    return abs(a - b) <= rtol * max(abs(a), abs(b), 1e-300)


def _jsonable(value):
    """Coerce numpy scalars/arrays and tuples into JSON-safe values."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


def _algo_label(algorithm):
    """Short label (pb/sb/ab/class name) for a live algorithm object."""
    if algorithm is None:
        return ""
    from repro.core.aligned_bound import AlignedBound
    from repro.core.plan_bouquet import PlanBouquet
    from repro.core.spill_bound import SpillBound

    for label, cls in (("pb", PlanBouquet), ("ab", AlignedBound),
                       ("sb", SpillBound)):
        if type(algorithm) is cls:
            return label
    return type(algorithm).__name__


@dataclass
class Violation:
    """One broken invariant, with enough context to reproduce it."""

    invariant: str
    message: str
    algorithm: str = ""
    engine: str = ""
    details: dict = field(default_factory=dict)

    def to_record(self):
        record = {
            "invariant": self.invariant,
            "message": self.message,
            "algorithm": self.algorithm,
            "engine": self.engine,
        }
        record.update(_jsonable(self.details))
        return record


class ConformanceMonitor:
    """Collects invariant checks and their violations.

    Args:
        jsonl_path: optional path; every violation is appended to it as
            one JSON line.  The file is created (truncated) up front so
            a clean run leaves an empty artifact rather than none.
    """

    def __init__(self, jsonl_path=None):
        self.jsonl_path = jsonl_path
        self.violations = []
        self.counters = {}
        self._context = {}
        if jsonl_path:
            with open(jsonl_path, "w"):
                pass

    # -- bookkeeping ---------------------------------------------------

    @property
    def ok(self):
        return not self.violations

    def _count(self, key, n=1):
        self.counters[key] = self.counters.get(key, 0) + n

    @contextmanager
    def context(self, **kv):
        """Attach key/values (seed, workload name, ...) to every
        violation recorded inside the block."""
        previous = dict(self._context)
        self._context.update(kv)
        try:
            yield self
        finally:
            self._context = previous

    def record(self, invariant, message, algorithm=None, engine="",
               **details):
        merged = dict(self._context)
        merged.update(details)
        violation = Violation(
            invariant=invariant,
            message=message,
            algorithm=(algorithm if isinstance(algorithm, str)
                       else _algo_label(algorithm)),
            engine=engine,
            details=merged,
        )
        self.violations.append(violation)
        self._count("violations")
        self._count(f"violations[{invariant}]")
        if self.jsonl_path:
            with open(self.jsonl_path, "a") as fh:
                fh.write(json.dumps(violation.to_record(),
                                    sort_keys=True) + "\n")
        return violation

    def violations_by_invariant(self):
        out = {}
        for v in self.violations:
            out.setdefault(v.invariant, []).append(v)
        return out

    # -- invariant checks ----------------------------------------------

    def check_contour_ladder(self, contours, engine=""):
        """Paper Section 2.5: budgets are a geometric ladder at the
        configured ratio, first at ``C_min``, last capped at ``C_max``."""
        self._count("ladders")
        budgets = np.asarray(contours.budgets, dtype=float)
        ratio = float(contours.cost_ratio)
        ess = contours.ess
        m = len(budgets)
        if m == 0 or (np.diff(budgets) <= 0).any():
            self.record("contour-ladder",
                        "contour budgets are not strictly increasing",
                        engine=engine, budgets=budgets)
            return
        if m > 1 and not _close(budgets[0], ess.min_cost):
            self.record("contour-ladder",
                        "first contour budget is not C_min",
                        engine=engine, first=budgets[0],
                        min_cost=ess.min_cost)
        if not _close(budgets[-1], ess.max_cost):
            self.record("contour-ladder",
                        "last contour budget is not capped at C_max",
                        engine=engine, last=budgets[-1],
                        max_cost=ess.max_cost)
        for i in range(1, m - 1):
            if not _close(budgets[i], budgets[i - 1] * ratio):
                self.record(
                    "contour-ladder",
                    f"budget CC_{i + 1} is not {ratio} x CC_{i}",
                    engine=engine, contour=i + 1,
                    budget=budgets[i], previous=budgets[i - 1],
                )
        if m > 1 and budgets[-1] > budgets[-2] * ratio * (1.0 + STRICT_RTOL):
            self.record("contour-ladder",
                        "capped last contour exceeds the geometric step",
                        engine=engine, last=budgets[-1],
                        previous=budgets[-2])

    def check_sweep(self, suboptimality, algorithm, engine=""):
        """A sweep's sub-optimality array against the algorithm's own
        guarantee: every entry in ``[1, guarantee]`` (up to slack)."""
        self._count("sweeps")
        self._count(f"sweeps[{engine}]")
        sub = np.asarray(suboptimality, dtype=float)
        if sub.size == 0:
            return
        if not np.isfinite(sub).all():
            self.record("mso-bound", "non-finite sub-optimality in sweep",
                        algorithm, engine)
            return
        worst = int(np.argmax(sub))
        if sub.min() < 1.0 - RTOL:
            best = int(np.argmin(sub))
            self.record(
                "mso-bound", "sub-optimality below 1 (beats the oracle)",
                algorithm, engine,
                location=best, suboptimality=float(sub[best]),
            )
        guarantee = None
        if hasattr(algorithm, "mso_guarantee"):
            guarantee = float(algorithm.mso_guarantee())
            if sub[worst] > guarantee * (1.0 + RTOL):
                self.record(
                    "mso-bound",
                    f"sweep MSO {float(sub[worst]):.4g} exceeds the "
                    f"guarantee {guarantee:.4g}",
                    algorithm, engine,
                    location=worst, suboptimality=float(sub[worst]),
                    guarantee=guarantee,
                )

    def check_bit_identity(self, reference, other, algorithm,
                           engines=("loop", "other")):
        """Two sweep engines must agree bit-for-bit (np.array_equal)."""
        self._count("bit_identity")
        a = np.asarray(reference, dtype=float)
        b = np.asarray(other, dtype=float)
        if a.shape == b.shape and np.array_equal(a, b):
            return True
        if a.shape != b.shape:
            self.record("bit-identity",
                        f"{engines[1]} sweep shape {b.shape} != "
                        f"{engines[0]} shape {a.shape}",
                        algorithm, engine=engines[1])
            return False
        bad = np.flatnonzero(a != b)
        self.record(
            "bit-identity",
            f"{engines[1]} sweep differs from {engines[0]} at "
            f"{bad.size} location(s)",
            algorithm, engine=engines[1],
            num_mismatches=int(bad.size),
            first_mismatch=int(bad[0]),
            max_abs_deviation=float(np.abs(a - b).max()),
        )
        return False

    def check_run(self, result, algorithm, engine="run"):
        """All per-execution invariants of one traced discovery run.

        Algorithms without an ``mso_guarantee`` (the arena's fixed-plan
        rivals — that *is* their point) are exempt from the guarantee
        arm of ``mso-bound`` and from the contour-machinery checks:
        only the oracle floor (``sub >= 1``) and the generic sequence /
        charge accounting apply to them.
        """
        self._count("runs")
        sub = result.suboptimality
        if hasattr(algorithm, "mso_guarantee"):
            guarantee = float(algorithm.mso_guarantee())
            if not (1.0 - RTOL <= sub <= guarantee * (1.0 + RTOL)):
                self.record(
                    "mso-bound",
                    f"run sub-optimality {sub:.4g} outside "
                    f"[1, {guarantee:.4g}]",
                    algorithm, engine, qa=result.qa_coords,
                    suboptimality=float(sub), guarantee=guarantee,
                )
        elif sub < 1.0 - RTOL:
            self.record(
                "mso-bound",
                f"run sub-optimality {sub:.4g} beats the oracle",
                algorithm, engine, qa=result.qa_coords,
                suboptimality=float(sub),
            )
        records = result.executions
        if records is None:
            return
        self._check_sequence(result, records, algorithm, engine)
        self._check_ladder_start(result, records, algorithm, engine)
        from repro.core.plan_bouquet import PlanBouquet
        from repro.core.spill_bound import SpillBound

        if isinstance(algorithm, PlanBouquet):
            self._check_pb_records(result, records, algorithm, engine)
        elif isinstance(algorithm, SpillBound):
            self._check_spill_records(result, records, algorithm, engine)

    def check_prior_inertness(self, reference, uniform_sub, algorithm,
                              engine="batch"):
        """A uniform-prior sweep must be bit-identical to the plain one.

        ``UniformPrior`` is documented as an *exact no-op*; any float
        drift means a scheduling hook leaked into the inert path.
        """
        self._count("prior_inert")
        a = np.asarray(reference, dtype=float)
        b = np.asarray(uniform_sub, dtype=float)
        if a.shape == b.shape and np.array_equal(a, b):
            return True
        if a.shape != b.shape:
            self.record("prior-inert",
                        f"uniform-prior sweep shape {b.shape} != "
                        f"plain sweep shape {a.shape}",
                        algorithm, engine)
            return False
        bad = np.flatnonzero(a != b)
        self.record(
            "prior-inert",
            f"uniform-prior sweep differs from the plain sweep at "
            f"{bad.size} location(s)",
            algorithm, engine,
            num_mismatches=int(bad.size),
            first_mismatch=int(bad[0]),
            max_abs_deviation=float(np.abs(a - b).max()),
        )
        return False

    # -- per-record helpers --------------------------------------------

    def _check_ladder_start(self, result, records, algorithm, engine):
        """Ladder validity under a prior-scheduled starting contour.

        Only enforced when the algorithm carries an *active* prior
        schedule: without one, early contours may legitimately plan no
        steps (the walk crosses them without records), so a non-unit
        first contour proves nothing.  With one, the first charged
        execution must sit in ``[start, band(qa)]`` — above the band
        the scheduler would have skipped a rung that was not a
        guaranteed kill, breaking the bound's accounting.
        """
        schedule_of = getattr(algorithm, "prior_schedule", None)
        if schedule_of is None or not records:
            return
        schedule = schedule_of()
        if not schedule.active:
            return
        self._count("ladder_start")
        qa = result.qa_coords
        flat = algorithm.ess.grid.flat_index(qa)
        band = schedule.qa_band(flat)
        start = max(1, min(schedule.start_target, band))
        first = records[0].contour
        if first > band:
            self.record(
                "ladder-start",
                f"first execution on contour {first} above qa's band "
                f"{band} (a skipped rung was not a guaranteed kill)",
                algorithm, engine, qa=qa,
                first_contour=int(first), qa_band=int(band),
                start_target=int(schedule.start_target),
            )
        if first < start:
            self.record(
                "ladder-start",
                f"first execution on contour {first} below the "
                f"schedule's starting contour {start}",
                algorithm, engine, qa=qa,
                first_contour=int(first), start_contour=int(start),
            )

    def _check_sequence(self, result, records, algorithm, engine):
        """Algorithm-independent record accounting."""
        qa = result.qa_coords
        if not records:
            self.record("sequence", "traced run recorded no executions",
                        algorithm, engine, qa=qa)
            return
        total = 0.0
        for rec in records:
            total += rec.charged
        if not _close(total, result.total_cost, RTOL):
            self.record(
                "charge-accounting",
                "record charges do not sum to the reported total cost",
                algorithm, engine, qa=qa,
                sum_charged=total, total_cost=result.total_cost,
            )
        last = 0
        for k, rec in enumerate(records):
            if rec.contour < last:
                self.record(
                    "sequence",
                    f"contour order regressed ({last} -> {rec.contour})",
                    algorithm, engine, qa=qa, execution=k,
                )
            last = rec.contour
            if not rec.completed and not _close(rec.charged, rec.budget):
                self.record(
                    "charge-accounting",
                    "killed execution not charged its full budget",
                    algorithm, engine, qa=qa, execution=k,
                    charged=rec.charged, budget=rec.budget,
                )
            if rec.completed and rec.charged > rec.budget * (1.0 + RTOL):
                self.record(
                    "charge-accounting",
                    "completed execution charged beyond its budget",
                    algorithm, engine, qa=qa, execution=k,
                    charged=rec.charged, budget=rec.budget,
                )
        normal_done = [k for k, r in enumerate(records)
                       if r.completed and r.mode == "normal"]
        if records[-1].completed is False:
            self.record("sequence",
                        "run ended on a killed execution",
                        algorithm, engine, qa=qa)
        if len(normal_done) > 1:
            self.record(
                "sequence",
                f"{len(normal_done)} completed normal-mode executions "
                "(expected exactly one, the final result)",
                algorithm, engine, qa=qa,
            )

    def _check_pb_records(self, result, records, algorithm, engine):
        """PlanBouquet: anorexic lambda accounting (paper Section 2.6)."""
        qa = result.qa_coords
        reduced = {rc.index: rc for rc in algorithm.reduction.reduced}
        rho = algorithm.rho
        lam = algorithm.lam
        per_contour = {}
        for k, rec in enumerate(records):
            if rec.mode != "normal" or rec.spill_dim is not None:
                self.record("sequence",
                            "PlanBouquet recorded a spill execution",
                            algorithm, engine, qa=qa, execution=k)
                continue
            rc = reduced.get(rec.contour)
            if rc is None:
                self.record("lambda-accounting",
                            f"execution on unknown contour {rec.contour}",
                            algorithm, engine, qa=qa, execution=k)
                continue
            if not _close(rec.budget, rc.inflated_budget):
                self.record(
                    "lambda-accounting",
                    f"budget is not the (1+lambda) inflated contour cost "
                    f"(lambda={lam})",
                    algorithm, engine, qa=qa, execution=k,
                    budget=rec.budget, inflated=rc.inflated_budget,
                )
            if rec.plan_id not in rc.plan_ids:
                self.record(
                    "lambda-accounting",
                    f"plan {rec.plan_id} is not in the reduced bouquet "
                    f"of contour {rec.contour}",
                    algorithm, engine, qa=qa, execution=k,
                )
            per_contour[rec.contour] = per_contour.get(rec.contour, 0) + 1
        for contour, count in per_contour.items():
            if count > rho:
                self.record(
                    "lambda-accounting",
                    f"{count} executions on contour {contour} exceed the "
                    f"reduced density rho={rho}",
                    algorithm, engine, qa=qa, contour=contour,
                )

    def _check_spill_records(self, result, records, algorithm, engine):
        """SpillBound/AlignedBound: half-space pruning (Lemma 3.1),
        exact learning, learned-bound monotonicity, the budget ladder
        with replacement penalties, and Lemma 4.4 repeat accounting."""
        qa = result.qa_coords
        grid = algorithm.ess.grid
        contours = algorithm.contours
        d = algorithm.num_dims
        learned_exact = {}
        lower_bound = {}
        repeats = 0
        for k, rec in enumerate(records):
            cc = contours.budget(rec.contour)
            if rec.mode == "normal":
                # The 1-D PlanBouquet tail: plain contour budgets.
                if not _close(rec.budget, cc):
                    self.record(
                        "budget-ladder",
                        "1-D tail budget is not the contour cost",
                        algorithm, engine, qa=qa, execution=k,
                        budget=rec.budget, contour_cost=cc,
                    )
                continue
            dim = rec.spill_dim
            if not rec.fresh:
                repeats += 1
            if dim in learned_exact:
                self.record(
                    "halfspace",
                    f"spill execution on epp {dim} after it was learnt "
                    "exactly",
                    algorithm, engine, qa=qa, execution=k, dim=dim,
                )
                continue
            if rec.penalty < 1.0 - STRICT_RTOL:
                self.record("budget-ladder",
                            f"replacement penalty {rec.penalty} below 1",
                            algorithm, engine, qa=qa, execution=k)
            if not _close(rec.budget, rec.penalty * cc):
                self.record(
                    "budget-ladder",
                    "spill budget is not penalty x contour cost",
                    algorithm, engine, qa=qa, execution=k,
                    budget=rec.budget, penalty=rec.penalty,
                    contour_cost=cc,
                )
            qa_sel = float(grid.selectivity(dim, qa[dim]))
            if rec.completed:
                # Lemma 3.1, learning arm: the epp is learnt *exactly* —
                # through the same grid lookup, so bit-exactly.
                if float(rec.learned_selectivity) != qa_sel:
                    self.record(
                        "exact-learning",
                        "completed spill did not learn the epp exactly",
                        algorithm, engine, qa=qa, execution=k, dim=dim,
                        learned=rec.learned_selectivity, actual=qa_sel,
                    )
                if lower_bound.get(dim, 0.0) > qa_sel * (1.0 + STRICT_RTOL):
                    self.record(
                        "learned-monotonic",
                        "exact learning fell below an earlier failed-"
                        "spill lower bound",
                        algorithm, engine, qa=qa, execution=k, dim=dim,
                        learned=qa_sel, prior_bound=lower_bound[dim],
                    )
                learned_exact[dim] = qa_sel
            else:
                # Lemma 3.1, pruning arm: the kill proves qa.j beyond
                # the learnable bound q_max^j.j (strictly).
                bound = float(rec.learned_selectivity)
                if not qa_sel > bound * (1.0 - STRICT_RTOL):
                    self.record(
                        "halfspace",
                        "killed spill did not prove qa beyond its "
                        "learnable bound",
                        algorithm, engine, qa=qa, execution=k, dim=dim,
                        qa_selectivity=qa_sel, bound=bound,
                    )
                lower_bound[dim] = max(lower_bound.get(dim, 0.0), bound)
        if repeats != result.num_repeat_executions:
            self.record(
                "repeat-bound",
                "traced repeat count disagrees with the result counter",
                algorithm, engine, qa=qa,
                traced=repeats, counted=result.num_repeat_executions,
            )
        if result.num_repeat_executions > d * (d - 1) // 2:
            self.record(
                "repeat-bound",
                f"{result.num_repeat_executions} repeat executions exceed "
                f"the Lemma 4.4 bound D(D-1)/2 = {d * (d - 1) // 2}",
                algorithm, engine, qa=qa,
            )

    # -- engine-driven discovery ---------------------------------------

    def check_engine_report(self, report, simulator, engine="engine"):
        """Invariants of an engine-driven discovery run
        (:class:`~repro.engine.driver.EngineReport`): spend accounting,
        budget kills, contour order, and no re-learning."""
        self._count("engine_reports")
        total = 0.0
        last = 0
        learnt_epps = set()
        for k, step in enumerate(report.steps):
            total += step.cost_spent
            if step.contour < last:
                self.record(
                    "sequence",
                    f"engine contour order regressed ({last} -> "
                    f"{step.contour})",
                    simulator, engine, execution=k,
                )
            last = step.contour
            if step.cost_spent > step.budget * (1.0 + RTOL):
                self.record(
                    "engine-budget",
                    "engine execution overspent its kill budget",
                    simulator, engine, execution=k,
                    cost_spent=step.cost_spent, budget=step.budget,
                )
            if step.mode == "spill" and step.completed:
                if step.spill_epp in learnt_epps:
                    self.record(
                        "engine-budget",
                        f"epp {step.spill_epp} learnt twice",
                        simulator, engine, execution=k,
                    )
                learnt_epps.add(step.spill_epp)
        if not _close(total, report.total_cost, RTOL):
            self.record(
                "charge-accounting",
                "engine step spends do not sum to the reported total",
                simulator, engine,
                sum_spent=total, total_cost=report.total_cost,
            )
        if not report.completed_plan_key:
            self.record("sequence",
                        "engine discovery produced no completed plan",
                        simulator, engine)


# ----------------------------------------------------------------------
# Module-level attachment: the hooks the engines call
# ----------------------------------------------------------------------

_ACTIVE = None


def active_monitor():
    """The currently installed monitor, or None."""
    return _ACTIVE


def install_monitor(monitor):
    """Install ``monitor`` (or None to detach); returns the previous
    monitor so callers can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = monitor
    return previous


@contextmanager
def monitoring(jsonl_path=None, monitor=None):
    """Install a monitor for the duration of the block.

    Yields the monitor; the previously installed one (usually None) is
    restored on exit.
    """
    mon = monitor if monitor is not None else ConformanceMonitor(jsonl_path)
    previous = install_monitor(mon)
    try:
        yield mon
    finally:
        install_monitor(previous)


def observe_sweep(algorithm, suboptimality, engine):
    """Sweep-engine hook: check a finished sweep if a monitor is live."""
    if _ACTIVE is not None:
        _ACTIVE.check_sweep(suboptimality, algorithm, engine=engine)


def observe_engine_report(report, simulator):
    """Discovery-driver hook: check an engine run if a monitor is live."""
    if _ACTIVE is not None:
        _ACTIVE.check_engine_report(report, simulator)
