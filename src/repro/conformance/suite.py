"""The randomized conformance suite: every algorithm x every engine.

For each seeded workload (see :mod:`repro.conformance.workloads`) the
suite runs PlanBouquet, SpillBound and AlignedBound through all three
sweep engines and checks every runtime invariant through an installed
:class:`~repro.conformance.monitors.ConformanceMonitor`:

* the **loop** reference sweep (per-location ``run(qa)``) — observed by
  the :func:`~repro.core.mso.evaluate_algorithm` hook;
* the **batch** frontier engine — observed inside
  :func:`~repro.perf.batch.batched_suboptimality`, then compared
  bit-for-bit against the loop reference;
* the **parallel** multiprocess engine — invoked directly through its
  :class:`~repro.perf.parallel.SweepSpec` (bypassing the serial
  fallback so a skip is reported honestly, never silently replaced by
  the batch result), with ``REPRO_FORCE_PARALLEL=1`` so the cost guard
  does not veto the small grids on 1-CPU hosts, then compared
  bit-for-bit against the loop reference;
* a sample of **traced scalar runs** per algorithm, feeding the
  per-execution invariants (half-space pruning, exact learning,
  lambda accounting, budget ladders, Lemma 4.4 repeats).

``run_suite`` aggregates everything into a :class:`SuiteReport`; the
``repro check`` CLI renders it and exits nonzero on any violation.
``inject`` deliberately corrupts one observation (a sweep entry beyond
the MSO bound, or a tampered learned selectivity) so the negative path
— monitors actually firing, the CLI actually failing — stays tested.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

import numpy as np

from repro.conformance.monitors import ConformanceMonitor, install_monitor
from repro.conformance.workloads import build_conformance_instance
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span as obs_span
from repro.core.aligned_bound import AlignedBound, contour_alignment_stats
from repro.core.mso import evaluate_algorithm
from repro.core.plan_bouquet import PlanBouquet
from repro.core.spill_bound import SpillBound
from repro.prior import UniformPrior

#: Engines the suite can exercise.
SUITE_ENGINES = ("loop", "batch", "parallel")

#: Injection modes for negative testing.
INJECT_MODES = ("mso", "learning")

#: Worker-pool size for the forced parallel sweeps.
PARALLEL_WORKERS = 2


@dataclass
class WorkloadOutcome:
    """What the suite did for one seeded workload."""

    seed: int
    name: str
    num_epps: int
    resolution: int
    grid_points: int
    cost_ratio: float
    cost_noise: float
    alignment_fraction: float
    engines: dict = field(default_factory=dict)
    traced_runs: int = 0


@dataclass
class SuiteReport:
    """Aggregate result of a conformance-suite invocation."""

    outcomes: list
    monitor: ConformanceMonitor
    engines: tuple
    inject: str = None

    @property
    def ok(self):
        return self.monitor.ok

    def summary(self):
        """Flat metric dict for the CLI table / CI log."""
        counters = self.monitor.counters
        statuses = [
            status
            for outcome in self.outcomes
            for per_algo in outcome.engines.values()
            for status in per_algo.values()
        ]
        return {
            "workloads": len(self.outcomes),
            "engines": ",".join(self.engines),
            "traced_runs": counters.get("runs", 0),
            "sweeps_checked": counters.get("sweeps", 0),
            "loop_sweeps": counters.get("sweeps[loop]", 0),
            "batch_sweeps": counters.get("sweeps[batch]", 0),
            "parallel_sweeps": counters.get("sweeps[parallel]", 0),
            "parallel_skipped": statuses.count("skipped"),
            "bit_identity_checks": counters.get("bit_identity", 0),
            "bit_identity_mismatches":
                counters.get("violations[bit-identity]", 0),
            "violations": counters.get("violations", 0),
        }


def _forced_parallel_sweep(algorithm):
    """The multiprocess sweep through its spec, cost guard bypassed.

    Returns the sub-optimality array, or None when the parallel path is
    genuinely unavailable (no provenance, pool failure) — the caller
    records a skip instead of silently substituting another engine.
    """
    from repro.perf.parallel import parallel_suboptimality, spec_for

    spec = spec_for(algorithm)
    if spec is None:
        return None
    flats = list(range(algorithm.ess.grid.num_points))
    previous = os.environ.get("REPRO_FORCE_PARALLEL")
    os.environ["REPRO_FORCE_PARALLEL"] = "1"
    try:
        return parallel_suboptimality(spec, flats, PARALLEL_WORKERS)
    finally:
        if previous is None:
            os.environ.pop("REPRO_FORCE_PARALLEL", None)
        else:
            os.environ["REPRO_FORCE_PARALLEL"] = previous


def _algorithms(instance, prior=None):
    from repro.prior import make_prior

    built = make_prior(prior, instance.query, instance.ess)
    return {
        "pb": PlanBouquet(instance.ess, instance.contours, prior=built),
        "sb": SpillBound(instance.ess, instance.contours, prior=built),
        "ab": AlignedBound(instance.ess, instance.contours, prior=built),
    }


def run_workload(seed, monitor, engines=SUITE_ENGINES, trace_samples=3,
                 use_cache=True, ess_mode=None, prior=None):
    """Run one seeded workload through every algorithm and engine.

    The monitor is installed for the duration so the sweep-engine hooks
    fire; per-execution invariants come from explicitly traced runs at
    ``trace_samples`` seed-chosen locations (always including the
    grid terminus — the worst-case corner).

    With ``prior`` set (``"sampled"``/``"history"``) every algorithm
    runs under the prior-guided scheduler, so every invariant — the
    MSO bound included — is re-proved with aggressive scheduling on.
    Without it, a uniform-prior twin of each algorithm additionally
    runs one batched sweep that must be bit-identical to the plain
    loop reference (the ``prior-inert`` invariant).

    Returns a :class:`WorkloadOutcome`.
    """
    REGISTRY.incr("conformance_workloads")
    instance = build_conformance_instance(seed, use_cache=use_cache,
                                          ess_mode=ess_mode)
    ess, contours = instance.ess, instance.contours
    num_points = ess.grid.num_points
    outcome = WorkloadOutcome(
        seed=seed,
        name=instance.name,
        num_epps=instance.num_epps,
        resolution=instance.resolution,
        grid_points=num_points,
        cost_ratio=instance.cost_ratio,
        cost_noise=instance.cost_noise,
        alignment_fraction=contour_alignment_stats(
            ess, contours).fraction_aligned(1.0),
    )
    with obs_span("conformance.workload", seed=seed,
                  workload=instance.name, grid_points=num_points), \
            monitor.context(seed=seed, workload=instance.name):
        monitor.check_contour_ladder(contours)
        rng = np.random.default_rng([seed, 0xA11])
        samples = set()
        if trace_samples > 0:
            samples.add(num_points - 1)  # the terminus corner
            extra = rng.choice(num_points,
                               size=min(trace_samples, num_points),
                               replace=False)
            samples.update(int(f) for f in extra)
        previous = install_monitor(monitor)
        try:
            for label, algorithm in _algorithms(instance,
                                                prior=prior).items():
                per_engine = {}
                reference = evaluate_algorithm(
                    algorithm, engine="loop").suboptimality
                per_engine["loop"] = "checked"
                if prior is None and "batch" in engines:
                    # The uniform prior must be an exact no-op: a
                    # uniform-twin batched sweep vs the plain loop
                    # reference, bit-for-bit.
                    twin = type(algorithm)(ess, contours,
                                           prior=UniformPrior())
                    uniform_sub = evaluate_algorithm(
                        twin, engine="batch").suboptimality
                    inert = monitor.check_prior_inertness(
                        reference, uniform_sub, algorithm)
                    per_engine["uniform-prior"] = (
                        "inert" if inert else "mismatch")
                if "batch" in engines:
                    batch = evaluate_algorithm(
                        algorithm, engine="batch").suboptimality
                    identical = monitor.check_bit_identity(
                        reference, batch, algorithm, ("loop", "batch"))
                    per_engine["batch"] = (
                        "identical" if identical else "mismatch")
                if "parallel" in engines:
                    par = _forced_parallel_sweep(algorithm)
                    if par is None:
                        per_engine["parallel"] = "skipped"
                    else:
                        monitor.check_sweep(par, algorithm,
                                            engine="parallel")
                        identical = monitor.check_bit_identity(
                            reference, par, algorithm,
                            ("loop", "parallel"))
                        per_engine["parallel"] = (
                            "identical" if identical else "mismatch")
                for flat in sorted(samples):
                    result = algorithm.run(flat, trace=True)
                    monitor.check_run(result, algorithm, engine="loop")
                    outcome.traced_runs += 1
                outcome.engines[label] = per_engine
        finally:
            install_monitor(previous)
    return outcome


def _inject_violation(mode, monitor, instance):
    """Feed the monitor one deliberately corrupted observation."""
    sb = SpillBound(instance.ess, instance.contours)
    with monitor.context(seed=instance.seed, injected=mode):
        if mode == "mso":
            sub = np.ones(4, dtype=float)
            sub[0] = sb.mso_guarantee() * 4.0
            monitor.check_sweep(sub, sb, engine="injected")
        elif mode == "learning":
            result = sb.run(0, trace=True)
            tampered = []
            broken = False
            for rec in result.executions:
                if not broken and rec.mode == "spill" and rec.completed:
                    rec = dataclasses.replace(
                        rec, learned_selectivity=rec.learned_selectivity
                        * 7.0 + 1.0)
                    broken = True
                tampered.append(rec)
            result.executions = tampered
            monitor.check_run(result, sb, engine="injected")
        else:
            raise ValueError(
                f"unknown injection mode {mode!r}; "
                f"choose from {INJECT_MODES}"
            )


def run_suite(num_workloads=200, base_seed=0, engines=SUITE_ENGINES,
              trace_samples=3, jsonl_path=None, use_cache=True,
              inject=None, progress=None, ess_mode=None, prior=None):
    """Run the conformance suite over ``num_workloads`` seeds.

    Args:
        num_workloads: seeds ``base_seed .. base_seed+num_workloads-1``.
        engines: subset of :data:`SUITE_ENGINES` (loop always runs — it
            is the reference every other engine is compared against).
        trace_samples: traced scalar runs per (workload, algorithm).
        jsonl_path: violation JSONL artifact path (created even when
            empty, so CI always has a file to upload).
        use_cache: consult the persistent ESS archive cache.
        ess_mode: ``"eager"``/``"lazy"`` surface construction for every
            workload (default from ``REPRO_ESS``); the lazy mode must
            conform identically — resolved points are bit-identical.
        inject: ``"mso"`` or ``"learning"`` — corrupt one observation
            (negative testing; the report must come back not-ok).
        progress: optional ``callable(completed, total, outcome)``.
        prior: ``"sampled"``/``"history"`` runs every algorithm under
            the prior-guided scheduler (re-proving the invariants with
            aggressive scheduling on); None additionally checks the
            uniform prior's bit-exact inertness.

    Returns a :class:`SuiteReport`.
    """
    engines = tuple(engines)
    unknown = set(engines) - set(SUITE_ENGINES)
    if unknown:
        raise ValueError(
            f"unknown conformance engines {sorted(unknown)}; "
            f"choose from {SUITE_ENGINES}"
        )
    monitor = ConformanceMonitor(jsonl_path=jsonl_path)
    outcomes = []
    for k in range(num_workloads):
        seed = base_seed + k
        outcome = run_workload(seed, monitor, engines=engines,
                               trace_samples=trace_samples,
                               use_cache=use_cache, ess_mode=ess_mode,
                               prior=prior)
        outcomes.append(outcome)
        if progress is not None:
            progress(k + 1, num_workloads, outcome)
    if inject is not None:
        _inject_violation(inject, monitor,
                          build_conformance_instance(base_seed,
                                                     use_cache=use_cache,
                                                     ess_mode=ess_mode))
    return SuiteReport(outcomes=outcomes, monitor=monitor,
                       engines=engines, inject=inject)
