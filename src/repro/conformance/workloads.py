"""Seeded randomized workload instances for the conformance suite.

Every instance is derived deterministically from a single integer seed:
the query (schema, join tree, epp marking) comes from
:func:`repro.bench.randgen.random_workload`, and the discovery knobs —
grid resolution, contour cost ratio, and cost-function shape (a
constant-level perturbation of the default cost model) — are drawn from
a seed-keyed generator.  Together the knobs vary dimensionality (2-4
epps), resolution, cost-function shape and, through all of those, the
alignment degree of the resulting contours (reported per workload by
the suite via :func:`~repro.core.aligned_bound.contour_alignment_stats`).

Instances carry ESS build *provenance* of kind ``"conformance"`` so the
multiprocess sweep engine (:mod:`repro.perf.parallel`) can rebuild the
exact same ESS inside worker processes — which is itself part of what
the suite verifies (parallel sweeps must be bit-identical to the
reference loop).  Cost-model perturbations use
:meth:`~repro.optimizer.cost_model.CostModel.with_noise`, which scales
the model's *constants* (never per-location costs), so the perturbed
surface still satisfies the Plan Cost Monotonicity the guarantees rest
on, and its fingerprint keys distinct persistent-cache archives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.randgen import random_workload
from repro.ess.grid import ESSGrid
from repro.ess.lazy import LazyESS, contours_for, resolve_ess_mode
from repro.ess.ocs import ESS
from repro.ess.persistence import ess_cache_key
from repro.optimizer.cost_model import DEFAULT_COST_MODEL
from repro.perf import cache as ess_cache
from repro.perf.timers import TIMERS

#: Per-dimensionality (lo, hi) grid resolution ranges.  Small enough to
#: keep a 200-workload suite in the minutes range, large enough that
#: every algorithm crosses several contours.
RESOLUTION_RANGES = {2: (7, 10), 3: (5, 7), 4: (4, 5)}

#: Contour cost ratios the knob generator draws from (the paper's
#: default doubling plus the Section 4.2 alternatives).
COST_RATIOS = (1.8, 2.0, 2.5)

#: Cost-model noise deltas (0 twice: half the workloads keep the stock
#: model, the rest perturb its constants by up to 5% / 15%).
COST_NOISES = (0.0, 0.0, 0.05, 0.15)

#: Randomized queries draw 2..4 epps (one more than the fuzz tests'
#: default, so the suite also covers D=4).
MAX_EPPS = 4

#: Workload families the registry knows how to build.  ``"random"`` is
#: the seeded randomized generator below; ``"adversarial"`` routes to
#: the constructive Theorem 4.6 lower-bound family
#: (:mod:`repro.arena.adversarial`).
WORKLOAD_FAMILIES = ("random", "adversarial")

#: In-process instance memo (mirrors bench.workloads._CACHE).
_CACHE = {}


@dataclass
class ConformanceInstance:
    """One seeded workload with its built discovery machinery."""

    seed: int
    query: object
    ess: object
    contours: object
    resolution: int
    cost_ratio: float
    cost_noise: float

    @property
    def num_epps(self):
        return self.query.num_epps

    @property
    def name(self):
        return self.query.name


def knobs_for(seed, num_epps):
    """The deterministic (resolution, cost_ratio, cost_noise) draw."""
    rng = np.random.default_rng([0xC0F0, int(seed)])
    lo, hi = RESOLUTION_RANGES.get(num_epps, (4, 5))
    resolution = int(rng.integers(lo, hi + 1))
    cost_ratio = float(rng.choice(COST_RATIOS))
    cost_noise = float(rng.choice(COST_NOISES))
    return resolution, cost_ratio, cost_noise


def build_conformance_instance(seed, resolution=None, cost_ratio=None,
                               cost_noise=None, use_cache=True,
                               ess_mode=None, family="random"):
    """Build (or fetch) the conformance instance for a seed.

    Explicit ``resolution``/``cost_ratio``/``cost_noise`` override the
    seed-derived knobs — the parallel-sweep workers pass the resolved
    values back in through the provenance, so a worker rebuild is
    knob-for-knob identical regardless of generator evolution.

    Args:
        seed: workload seed (also seeds the knob draw and cost noise).
        use_cache: consult/populate the persistent ESS archive cache.
        ess_mode: ``"eager"``/``"lazy"`` surface construction; default
            from ``REPRO_ESS`` (see :func:`repro.ess.lazy.resolve_ess_mode`).
        family: workload family (one of :data:`WORKLOAD_FAMILIES`);
            ``"adversarial"`` builds the constructive Theorem 4.6
            lower-bound instance instead of a randomized one.
    """
    seed = int(seed)
    if family not in WORKLOAD_FAMILIES:
        from repro.errors import ReproError

        raise ReproError(
            f"unknown workload family {family!r}; "
            f"choose from {WORKLOAD_FAMILIES}"
        )
    if family == "adversarial":
        # Lazy import: the adversarial module imports ConformanceInstance
        # from here at module scope.
        from repro.arena.adversarial import build_adversarial_instance

        return build_adversarial_instance(seed, resolution=resolution)
    ess_mode = resolve_ess_mode(ess_mode)
    query = random_workload(seed, max_epps=MAX_EPPS)
    auto_res, auto_ratio, auto_noise = knobs_for(seed, query.num_epps)
    resolution = auto_res if resolution is None else int(resolution)
    cost_ratio = auto_ratio if cost_ratio is None else float(cost_ratio)
    cost_noise = auto_noise if cost_noise is None else float(cost_noise)

    key = (seed, resolution, cost_ratio, cost_noise, ess_mode)
    cached = _CACHE.get(key)
    if cached is not None:
        TIMERS.incr("conformance_memory_hit")
        return cached

    if cost_noise:
        cost_model = DEFAULT_COST_MODEL.with_noise(cost_noise, seed=seed)
    else:
        cost_model = DEFAULT_COST_MODEL
    sel_min = [min(1e-5, pred.selectivity / 2.0) for pred in query.epps]
    grid = ESSGrid(query.num_epps, resolution=resolution, sel_min=sel_min)
    disk_key = ess_cache_key(
        query_name=query.name,
        resolution=grid.resolution,
        sel_min=sel_min,
        cost_fingerprint=cost_model.fingerprint(),
        left_deep=False,
    )
    if ess_mode == "lazy":
        # Lazy surfaces bypass the archive cache entirely (fetching one
        # would defeat the point; storing one would force a full sweep).
        with TIMERS.phase("conformance_ess_build"):
            ess = LazyESS(query, grid, cost_model=cost_model)
    else:
        ess = (ess_cache.fetch(disk_key, query, cost_model)
               if use_cache else None)
        if ess is None:
            with TIMERS.phase("conformance_ess_build"):
                ess = ESS.build(query, grid, cost_model=cost_model)
            if use_cache:
                ess_cache.store(ess, disk_key)
    contours = contours_for(ess, cost_ratio)
    ess.provenance = {
        "kind": "conformance",
        "build_kwargs": {
            "seed": seed,
            "resolution": resolution,
            "cost_ratio": cost_ratio,
            "cost_noise": cost_noise,
            "ess_mode": ess_mode,
        },
        "cost_ratio": cost_ratio,
        "disk_key": disk_key,
    }
    instance = ConformanceInstance(
        seed=seed,
        query=query,
        ess=ess,
        contours=contours,
        resolution=resolution,
        cost_ratio=cost_ratio,
        cost_noise=cost_noise,
    )
    _CACHE[key] = instance
    return instance


def clear_cache():
    """Drop the in-process instance memo (cache-isolation tests)."""
    _CACHE.clear()
