"""Deployment aids (paper Section 7 and the stated future work).

Two pragmatic questions precede any deployment of the discovery
algorithms, and this module answers both:

1. **Which predicates are the epps?**  Section 7 suggests leveraging
   domain knowledge and query logs, "or simply be conservative".
   :func:`recommend_epps` ranks a query's join predicates by estimation
   *risk* — combining the coarseness of the ``1/max(ndv)`` rule, column
   skew visible in analyzed histograms, and (when available) query-log
   feedback of past estimate-vs-actual errors.
2. **Native optimizer or robust discovery?**  The conclusion lists an
   "automated assistant for guiding users in deciding whether to use
   the native query optimizer or our algorithms" as future work.
   :class:`RobustnessAdvisor` implements it over a built ESS: given an
   anticipated estimation-error radius, it compares the native
   optimizer's worst case within that radius against SpillBound's
   structural guarantee and recommends the safer choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.spill_bound import SpillBound
from repro.query.predicates import JoinPredicate


@dataclass(frozen=True)
class EppRecommendation:
    """One join predicate's estimation-risk assessment."""

    name: str
    risk: float
    reasons: tuple

    def __str__(self):
        return f"{self.name}: risk {self.risk:.2f} ({'; '.join(self.reasons)})"


def _skew_risk(catalog, table, column):
    """Risk contribution from visible column skew.

    An analyzed histogram whose hottest equality estimate exceeds the
    uniform ``1/ndv`` baseline reveals skew the ``1/max(ndv)`` join rule
    ignores.
    """
    stats = catalog.column_stats(table, column)
    if stats is None:
        return 0.0, None
    hist = stats.histogram
    if hist.ndv <= 1:
        return 0.0, None
    # Quantile boundaries repeat where mass concentrates: count repeats.
    boundaries = hist.boundaries
    repeats = len(boundaries) - len(np.unique(boundaries))
    if repeats == 0:
        return 0.0, None
    skew = repeats / max(len(boundaries) - 1, 1)
    return skew, f"{table}.{column} histogram shows skew ({skew:.0%})"


def recommend_epps(query, catalog, observed=None, max_epps=None,
                   min_risk=0.0):
    """Rank a query's join predicates by selectivity-estimation risk.

    Args:
        query: the :class:`~repro.query.query.SPJQuery`.
        catalog: a :class:`~repro.catalog.statistics.StatisticsCatalog`.
        observed: optional query-log feedback — mapping predicate name to
            the actually-observed selectivity of a past execution.
        max_epps: keep at most this many predicates (highest risk first).
        min_risk: drop predicates below this risk.

    Returns:
        list of :class:`EppRecommendation`, highest risk first.  Feed
        the names into :meth:`SPJQuery.with_epps` to derive the marked
        query.
    """
    observed = observed or {}
    recommendations = []
    for pred in query.joins:
        if not isinstance(pred, JoinPredicate):
            continue
        reasons = []
        risk = 0.0
        estimate = catalog.estimate_join(
            pred.left_table, pred.left_column,
            pred.right_table, pred.right_column,
        )
        # Baseline: every AVI/uniformity join estimate carries risk that
        # grows with the size of the joined relations (error compounds).
        big_side = max(
            query.schema.table(t).cardinality for t in pred.tables
        )
        risk += 0.2 * np.log10(max(big_side, 10)) / 9.0
        reasons.append("uniformity join estimate")

        for table in pred.tables:
            skew, reason = _skew_risk(catalog, table, pred.column_for(table))
            if reason:
                risk += skew
                reasons.append(reason)
            # Filters on the same table correlate with the join column in
            # the hard cases; flag them as compounding.
            if query.filters_on(table):
                risk += 0.15
                reasons.append(f"filtered relation {table}")

        if pred.name in observed:
            error = abs(np.log10(max(observed[pred.name], 1e-12))
                        - np.log10(max(estimate, 1e-12)))
            risk += error
            reasons.append(
                f"query log: past estimate off by 10^{error:.1f}"
            )
        recommendations.append(EppRecommendation(
            name=pred.name, risk=float(risk), reasons=tuple(reasons),
        ))
    recommendations.sort(key=lambda r: (-r.risk, r.name))
    recommendations = [r for r in recommendations if r.risk >= min_risk]
    if max_epps is not None:
        recommendations = recommendations[:max_epps]
    return recommendations


@dataclass
class Advice:
    """The advisor's verdict for one anticipated error radius."""

    error_radius: float
    native_worst_case: float
    spillbound_guarantee: float
    use_robust: bool
    reason: str = ""


class RobustnessAdvisor:
    """Decide between the native optimizer and robust discovery.

    The decision model of Section 1.4.1: if anticipated estimation
    errors are small, the native plan's worst case within the error
    neighbourhood may undercut SpillBound's guarantee; with larger
    anticipated errors, the discovery algorithms win.  "Error radius"
    is multiplicative: the actual selectivity of each epp is assumed to
    lie within a factor ``radius`` of the estimate.
    """

    def __init__(self, ess):
        self.ess = ess

    def native_worst_case(self, estimate_coords, error_radius):
        """Worst sub-optimality of the native plan if qa stays within a
        multiplicative ``error_radius`` of the estimate."""
        grid = self.ess.grid
        pid = int(self.ess.plan_ids[grid.flat_index(estimate_coords)])
        surface = self.ess.suboptimality_surface(pid)
        mask = np.ones(grid.num_points, dtype=bool)
        for dim in range(grid.num_dims):
            est = grid.selectivity(dim, estimate_coords[dim])
            sels = grid.sel_array(dim)
            mask &= (sels >= est / error_radius) & (sels <= est * error_radius)
        if not mask.any():
            return 1.0
        return float(surface[mask].max())

    def advise(self, estimate, error_radius):
        """Recommend native vs robust for one estimate and radius.

        Args:
            estimate: the optimizer's estimated epp selectivities
                (vector or grid coords).
            error_radius: anticipated multiplicative estimation error
                (e.g. 10 means "could be 10x off either way").
        """
        grid = self.ess.grid
        if all(isinstance(c, (int, np.integer)) for c in estimate):
            coords = tuple(int(c) for c in estimate)
        else:
            coords = grid.snap(estimate)
        native = self.native_worst_case(coords, error_radius)
        guarantee = SpillBound.mso_guarantee_for(grid.num_dims)
        use_robust = native > guarantee
        reason = (
            f"native worst case {native:.1f} "
            f"{'exceeds' if use_robust else 'stays below'} the "
            f"SpillBound guarantee {guarantee:.0f} within a "
            f"{error_radius:g}x error radius"
        )
        return Advice(
            error_radius=float(error_radius),
            native_worst_case=native,
            spillbound_guarantee=guarantee,
            use_robust=use_robust,
            reason=reason,
        )

    def crossover_radius(self, estimate, radii=(2, 5, 10, 100, 1e4, 1e6)):
        """The smallest tested radius at which robust processing wins."""
        for radius in radii:
            advice = self.advise(estimate, radius)
            if advice.use_robust:
                return radius
        return None
