"""The AlignedBound algorithm (paper Section 5).

AlignedBound narrows SpillBound's quadratic-to-linear MSO gap by
exploiting *alignment*:

* **Contour alignment** — a contour is aligned along dimension ``j``
  when an extreme-``j`` location's optimal plan spills on ``j``; then a
  *single* spill execution makes quantum progress (Lemma 3.3).
* **Induced alignment** — when alignment does not hold natively, the
  optimal plan at an extreme location may be *replaced* by the cheapest
  plan that spills on the wanted dimension, at a penalty
  ``Cost(replacement)/CC_i``.
* **Predicate-set alignment (PSA)** — the finer-grained version: a set
  ``T`` of epps satisfies PSA with leader ``j`` when every contour
  location spilling on a dimension in ``T`` has its ``j`` coordinate
  bounded by the leader location's.  A partition of the unlearned epps
  into PSA parts crosses the contour with one execution per part
  (Lemma 5.3), and the paper shows it suffices to search *partition*
  covers (Section 5.2.2).

Per contour, AlignedBound picks the partition with the minimum total
penalty ``pi*`` and executes one (possibly replacement) plan per part.
Its guarantee is ``MSO in [2D + 2, D^2 + 3D]``.

Replacement-plan pool: the paper adds an engine feature returning "a
least cost plan from optimizer which spills on a user-specified epp";
our simulation searches the POSP plan pool for the cheapest plan whose
spill order leads with the wanted dimension — the same plans the
bouquet machinery can execute (documented substitution, DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.discovery import (
    BUDGET_EPS,
    NORMAL,
    SPILL,
    DiscoveryResult,
    ExecutionRecord,
    normalize_location,
)
from repro.core.spill_bound import SpillBound, learnable_index
from repro.errors import DiscoveryError
from repro.ess.contours import DEFAULT_COST_RATIO

_EPS = BUDGET_EPS


def set_partitions(items):
    """Yield all set partitions of ``items`` (each a list of tuples).

    Standard recursive enumeration (Bell(6) = 203, so exhaustive search
    is cheap at the paper's dimensionalities).
    """
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partial in set_partitions(rest):
        # first joins an existing part...
        for k, part in enumerate(partial):
            yield partial[:k] + [(first,) + part] + partial[k + 1:]
        # ...or starts its own.
        yield [(first,)] + partial


@dataclass(frozen=True)
class PartStep:
    """One part of the chosen partition: a single spill execution.

    ``dims`` is the part ``T``; ``leader`` its leader dimension; the
    remaining fields mirror :class:`~repro.core.spill_bound.SpillStep`.
    ``native`` records whether PSA held without a plan replacement.
    """

    dims: tuple
    leader: int
    plan_id: int
    location: tuple
    budget: float
    learn_idx: int
    curve: np.ndarray
    penalty: float
    native: bool

    @property
    def exec_dim(self):
        """The dimension this execution learns (uniform step interface
        shared with SpillBound's :class:`~repro.core.spill_bound.SpillStep`)."""
        return self.leader


class AlignedBound(SpillBound):
    """AlignedBound executor/simulator (Algorithm 2).

    Shares SpillBound's state-cached contour machinery and 1-D tail;
    overrides the per-contour crossing strategy with the partition-cover
    search.
    """

    def __init__(self, ess, contour_set=None, cost_ratio=DEFAULT_COST_RATIO,
                 prior=None):
        super().__init__(ess, contour_set, cost_ratio, prior=prior)
        self._part_cache = {}
        self._partition_cache = {}
        self._spiller_pool_cache = {}
        #: Largest replacement penalty seen across all runs (Table 4).
        self.observed_max_penalty = 1.0

    # ------------------------------------------------------------------
    # Guarantees
    # ------------------------------------------------------------------

    def mso_guarantee(self):
        """Upper end of the AlignedBound range (``D^2 + 3D``)."""
        return SpillBound.mso_guarantee(self)

    def mso_guarantee_range(self):
        """The platform-independent range ``[2D + 2, D^2 + 3D]``
        (generalized to the contour ratio in use)."""
        from repro.core.bounds import ab_mso_bound_range

        return ab_mso_bound_range(self.num_dims, self.contours.cost_ratio)

    # ------------------------------------------------------------------
    # Replacement plan pool
    # ------------------------------------------------------------------

    def _local_plans(self, contour_index):
        """Plan ids optimal in the contour's cost neighbourhood.

        Replacement candidates are drawn from plans optimal in bands
        ``i-1 .. i+1``: a plan whose optimality region sits at this cost
        scale is the only kind whose replacement penalty can be small,
        and restricting the pool keeps the search tractable on large
        POSPs (the engine feature this simulates — "least cost plan that
        spills on a chosen epp" — is likewise a local re-optimization).
        """
        cached = self._spiller_pool_cache.get(("local", contour_index))
        if cached is None:
            ids = []
            lo = max(1, contour_index - 1)
            hi = min(self.contours.num_contours, contour_index + 1)
            for index in range(lo, hi + 1):
                for pid in self.contours.contour(index).unique_plan_ids():
                    if pid not in ids:
                        ids.append(pid)
            cached = ids
            self._spiller_pool_cache[("local", contour_index)] = cached
        return cached

    def _spiller_pool(self, dim, remaining_key, contour_index):
        """Contour-local plans whose spill order (under ``remaining``)
        leads with ``dim`` — the candidate replacements ``P_dim``."""
        key = (dim, remaining_key, contour_index)
        cached = self._spiller_pool_cache.get(key)
        if cached is None:
            remaining = list(remaining_key)
            cached = [
                pid for pid in self._local_plans(contour_index)
                if self.ess.spill_dimension(pid, remaining) == dim
            ]
            self._spiller_pool_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # PSA per part
    # ------------------------------------------------------------------

    def _seed_singleton_parts(self, contour_index, learned_key, active,
                              coords, plan_ids, point_spill):
        """Precompute every singleton part's step in one vectorized pass.

        A singleton part's PSA always holds natively (each member spills
        on the part's only dimension), so its step only needs the first
        extreme-coordinate member per dimension — one masked argmax over
        an ``(active, contour)`` matrix resolves all of them at once,
        instead of a mask/gather round-trip per part.  Seeds
        ``_part_cache`` so the partition enumeration's
        :meth:`_evaluate_part` calls hit for singletons.
        """
        if not active:
            return
        budget = self.contours.budget(contour_index)
        eq = point_spill[None, :] == np.asarray(active)[:, None]
        cols = coords[:, active].T
        first_rows = np.where(eq, cols, -1).argmax(axis=1)
        for k, dim in enumerate(active):
            key = (contour_index, learned_key, (dim,))
            if key in self._part_cache:
                continue
            row = int(first_rows[k])
            max_j = int(coords[row, dim])
            pid = int(plan_ids[row])
            location = tuple(int(c) for c in coords[row])
            curve = self.ess.spill_cost_curve(pid, dim, location)
            self._part_cache[key] = PartStep(
                dims=(dim,),
                leader=dim,
                plan_id=pid,
                location=location,
                budget=budget,
                learn_idx=learnable_index(curve, budget, max_j),
                curve=curve,
                penalty=1.0,
                native=True,
            )

    def _evaluate_part(self, contour_index, learned_key, part, context):
        """Best (leader, plan, penalty) for one candidate part ``T``.

        Returns a :class:`PartStep`, or ``None`` when no dimension of the
        part can act as leader (no native PSA and no replacement plan).
        """
        cache_key = (contour_index, learned_key, part)
        if cache_key in self._part_cache:
            return self._part_cache[cache_key]

        coords, plan_ids, point_spill, remaining_key = context
        budget = self.contours.budget(contour_index)
        in_part = point_spill == part[0]
        for dim in part[1:]:
            in_part |= point_spill == dim
        best = None
        if in_part.any():
            for leader in part:
                step = self._leader_step(
                    leader, part, in_part, coords, plan_ids, point_spill,
                    budget, remaining_key, contour_index,
                )
                if step is None:
                    continue
                if best is None or step.penalty < best.penalty - 1e-12 or (
                    abs(step.penalty - best.penalty) <= 1e-12
                    and step.leader < best.leader
                ):
                    best = step
        self._part_cache[cache_key] = best
        return best

    def _leader_step(self, leader, part, in_part, coords, plan_ids,
                     point_spill, budget, remaining_key, contour_index):
        """PSA for part ``T`` with a specific leader dimension."""
        lead_col = coords[:, leader]
        if len(part) == 1:
            # Every member of a singleton part spills on its only
            # dimension, so PSA always holds natively at the first
            # extreme-coordinate location (masked argmax returns the
            # first member row achieving the maximum).
            row = int(np.where(in_part, lead_col, -1).argmax())
            max_j = int(lead_col[row])
        else:
            max_j = int(np.where(in_part, lead_col, -1).max())
            # First part member at the extreme coordinate that spills on
            # the leader; a masked argmax over the leader-spillers gives
            # the first such row, valid only if it reaches max_j.
            cand = int(np.where(
                in_part & (point_spill == leader), lead_col, -1
            ).argmax())
            native = (point_spill[cand] == leader and in_part[cand]
                      and int(lead_col[cand]) == max_j)
            row = cand if native else -1
        if row >= 0:
            # PSA holds natively: the extreme location's plan already
            # spills on the leader.
            pid = int(plan_ids[row])
            location = tuple(int(c) for c in coords[row])
            curve = self.ess.spill_cost_curve(pid, leader, location)
            return PartStep(
                dims=part,
                leader=leader,
                plan_id=pid,
                location=location,
                budget=budget,
                learn_idx=learnable_index(curve, budget, max_j),
                curve=curve,
                penalty=1.0,
                native=True,
            )
        # Induce PSA: cheapest (plan in P_leader, location in S) pair,
        # where S is every contour location with the extreme leader
        # coordinate (Section 5.2.1).
        pool = self._spiller_pool(leader, remaining_key, contour_index)
        if not pool:
            return None
        s_rows = np.flatnonzero(coords[:, leader] == max_j)
        if len(s_rows) == 0:
            return None
        s_flat = coords[s_rows].astype(np.int64) @ np.asarray(
            self.ess.grid.strides, dtype=np.int64
        )
        costs = np.empty((len(pool), s_flat.size), dtype=float)
        if self.ess.grid.num_points <= self.ess.POINTWISE_EVAL_MIN_GRID:
            for k, pid in enumerate(pool):
                costs[k] = self._cost_surface(pid)[s_flat]
        else:
            for k, pid in enumerate(pool):
                costs[k] = self.ess.plan_cost_at_points(pid, s_flat)
        # Flat argmin scans row-major: first pool plan, then first
        # location, achieving the minimum — the scalar search's
        # tie-breaking order.
        flat_min = int(np.argmin(costs))
        best_cost = float(costs.flat[flat_min])
        best_pid = pool[flat_min // s_flat.size]
        best_row = int(s_rows[flat_min % s_flat.size])
        exec_budget = max(budget, best_cost)
        location = tuple(int(c) for c in coords[best_row])
        curve = self.ess.spill_cost_curve(best_pid, leader, location)
        return PartStep(
            dims=part,
            leader=leader,
            plan_id=best_pid,
            location=location,
            budget=exec_budget,
            learn_idx=learnable_index(curve, exec_budget, max_j),
            curve=curve,
            penalty=exec_budget / budget,
            native=False,
        )

    # ------------------------------------------------------------------
    # Partition-cover search (steps S0-S2 of Algorithm 2)
    # ------------------------------------------------------------------

    def _plan_partition(self, contour_index, learned):
        """The minimum-penalty partition's steps for a state (cached)."""
        learned_key = tuple(sorted(learned.items()))
        key = (contour_index, learned_key)
        cached = self._partition_cache.get(key)
        if cached is not None:
            return cached

        coords, plan_ids = self._effective_contour(contour_index, learned)
        steps = []
        if len(coords):
            remaining = [d for d in range(self.num_dims) if d not in learned]
            remaining_key = tuple(remaining)
            point_spill = self._point_spill(plan_ids, learned)
            active = sorted(set(point_spill.tolist()) - {-1})
            context = (coords, plan_ids, point_spill, remaining_key)
            self._seed_singleton_parts(
                contour_index, learned_key, active, coords, plan_ids,
                point_spill,
            )
            best_steps = None
            best_cost = np.inf
            for partition in set_partitions(active):
                parts = []
                cost = 0.0
                feasible = True
                for part in partition:
                    step = self._evaluate_part(
                        contour_index, learned_key, tuple(sorted(part)), context
                    )
                    if step is None:
                        feasible = False
                        break
                    parts.append(step)
                    cost += step.penalty
                if not feasible:
                    continue
                better = cost < best_cost - 1e-12 or (
                    abs(cost - best_cost) <= 1e-12
                    and best_steps is not None
                    and len(parts) < len(best_steps)
                )
                if best_steps is None or better:
                    best_cost = cost
                    best_steps = sorted(parts, key=lambda s: s.leader)
            # The all-singletons partition is always feasible (it is
            # SpillBound's own choice), so best_steps is never None here.
            if best_steps is None:
                raise DiscoveryError(
                    f"no feasible partition on contour {contour_index}"
                )
            steps = best_steps
        self._partition_cache[key] = steps
        return steps

    def contour_steps(self, contour_index, learned):
        """The chosen partition's steps (uniform step interface).

        Prior-guided schedules reorder the partition (a fresh list, so
        the cached partition is never mutated); inert schedules return
        the cached list untouched.
        """
        return self.prior_schedule().order_steps(
            self._plan_partition(contour_index, learned)
        )

    # ------------------------------------------------------------------
    # Discovery (Algorithm 2)
    # ------------------------------------------------------------------

    def _run_impl(self, qa, trace=False):
        grid = self.ess.grid
        coords, flat = normalize_location(grid, qa)
        optimal = float(self.ess.optimal_cost[flat])
        learned = {}
        executions = [] if trace else None
        total = 0.0
        num_exec = 0
        num_repeat = 0
        executed_on_contour = set()
        max_penalty = 1.0
        # Same prior-guided start as SpillBound: min(target, band(qa)).
        contour_index = self.prior_schedule().start_for(flat)

        while True:
            remaining = [d for d in range(self.num_dims) if d not in learned]
            if len(remaining) <= 1:
                if not remaining:
                    raise DiscoveryError("all epps learnt before the 1-D phase")
                tail_total, tail_exec, contour_index, plan_key = self._run_1d(
                    remaining[0], learned, contour_index, coords, flat,
                    trace, executions,
                )
                total += tail_total
                num_exec += tail_exec
                return DiscoveryResult(
                    qa_coords=coords,
                    total_cost=total,
                    optimal_cost=optimal,
                    executions=executions,
                    num_executions=num_exec,
                    num_repeat_executions=num_repeat,
                    contours_visited=contour_index,
                    completed_plan_key=plan_key,
                    max_penalty=max_penalty,
                )
            if contour_index > self.contours.num_contours:
                raise DiscoveryError(
                    f"AlignedBound ascended past the last contour at {coords}"
                )

            learnt_this_pass = False
            for step in self.contour_steps(contour_index, learned):
                dim = step.exec_dim
                fresh = (contour_index, dim) not in executed_on_contour
                executed_on_contour.add((contour_index, dim))
                if not fresh:
                    num_repeat += 1
                max_penalty = max(max_penalty, step.penalty)
                qa_idx = coords[dim]
                completed = qa_idx <= step.learn_idx
                charged = float(step.curve[qa_idx]) if completed else step.budget
                total += charged
                num_exec += 1
                if trace:
                    learnt_sel = grid.selectivity(
                        dim, qa_idx if completed else step.learn_idx
                    )
                    executions.append(ExecutionRecord(
                        contour=contour_index,
                        plan_id=step.plan_id,
                        plan_key=self.ess.plan_keys[step.plan_id],
                        mode=SPILL,
                        spill_dim=dim,
                        budget=step.budget,
                        charged=charged,
                        completed=completed,
                        learned_selectivity=learnt_sel,
                        fresh=fresh,
                        penalty=step.penalty,
                    ))
                if completed:
                    learned[dim] = qa_idx
                    learnt_this_pass = True
                    break
            if not learnt_this_pass:
                contour_index += 1

    def run(self, qa, trace=False):  # noqa: F811 - see _run_impl note
        result = self._run_impl(qa, trace)
        self.observed_max_penalty = max(self.observed_max_penalty,
                                        result.max_penalty)
        return result


# ----------------------------------------------------------------------
# Contour-alignment statistics (paper Table 2)
# ----------------------------------------------------------------------

@dataclass
class AlignmentStats:
    """Alignment profile of one query's contour set.

    ``fraction_aligned(threshold)`` gives the fraction of contours that
    are aligned when replacement penalties up to ``threshold`` are
    allowed (``threshold=1`` means natively aligned).  ``max_penalty`` is
    the smallest threshold making *every* contour aligned (``inf`` when
    some contour cannot be aligned at any price).
    """

    contour_penalties: list

    def fraction_aligned(self, threshold=1.0):
        if not self.contour_penalties:
            return 0.0
        hits = sum(1 for p in self.contour_penalties if p <= threshold + 1e-9)
        return hits / len(self.contour_penalties)

    @property
    def max_penalty(self):
        worst = max(self.contour_penalties, default=float("inf"))
        return worst


def contour_alignment_stats(ess, contour_set):
    """Per-contour minimum alignment penalty (Section 5.1 / Table 2).

    For each contour, over each dimension ``j``: if an extreme-``j``
    location's plan spills on ``j`` the contour is natively aligned
    (penalty 1); otherwise the cheapest replacement at an extreme-``j``
    location by a ``j``-spilling POSP plan prices the induction.  The
    contour's penalty is the minimum over dimensions.
    """
    num_dims = ess.grid.num_dims
    all_dims = list(range(num_dims))
    spillers = {
        dim: [
            pid for pid in range(ess.posp_size)
            if ess.spill_dimension(pid, all_dims) == dim
        ]
        for dim in all_dims
    }
    penalties = []
    for contour in contour_set:
        if len(contour.points) == 0:
            continue
        coords = contour.coords
        plan_ids = contour.plan_ids
        point_spill = np.fromiter(
            (ess.spill_dimension(int(pid), all_dims) for pid in plan_ids),
            dtype=np.int64,
            count=len(plan_ids),
        )
        best = np.inf
        for dim in all_dims:
            max_j = int(coords[:, dim].max())
            extreme = np.flatnonzero(coords[:, dim] == max_j)
            if (point_spill[extreme] == dim).any():
                best = 1.0
                break
            pool = spillers[dim]
            if not pool:
                continue
            ext_flat = np.fromiter(
                (ess.grid.flat_index(tuple(int(c) for c in coords[r]))
                 for r in extreme),
                dtype=np.int64,
                count=len(extreme),
            )
            for pid in pool:
                cost = float(ess.plan_cost_at_points(pid, ext_flat).min())
                best = min(best, max(1.0, cost / contour.budget))
        penalties.append(best)
    return AlignmentStats(contour_penalties=penalties)
