"""Closed-form MSO bound calculus for arbitrary contour cost ratios.

The paper states its guarantees for cost-doubling contours, with two
remarks about the ratio ``r`` between consecutive contour budgets:

* footnote 3: doubling *minimizes* PlanBouquet's guarantee;
* Section 4.2: doubling is *not* ideal for SpillBound — e.g. ``r = 1.8``
  improves the 2-epp bound from 10 to 9.9.

This module derives the bound as a function of ``r`` so both remarks
are reproducible (and the guarantee reported by the algorithm objects
stays correct when an ablation changes the ratio).

Derivations (all with ``qa`` between ``IC_k`` and ``IC_{k+1}``, so the
oracle pays at least ``CC_k = CC_1 r^(k-1)``):

**PlanBouquet** executes every reduced contour plan (at most ``rho``)
on contours ``1..k+1`` with budget ``(1+lambda) CC_i``::

    Total <= rho (1+lambda) CC_1 (r^(k+1) - 1)/(r - 1)
    MSO   <= rho (1+lambda) r^2 / (r - 1)

minimized at ``r = 2`` giving the familiar ``4 (1+lambda) rho``.

**SpillBound** (Theorem 4.5's accounting): at most ``D`` fresh
executions per contour on ``1..k+1`` plus at most ``D(D-1)/2`` repeat
executions, worst-cased at the costliest contour::

    MSO <= D r^2/(r - 1) + D(D-1) r / 2

At ``r = 2`` this is ``4D + D(D-1) = D^2 + 3D``.  Setting the
derivative to zero gives the closed-form ideal ratio::

    r*(D) = 1 + sqrt(2 / (D + 1))

which evaluates to ``1.8165`` at D=2 (the paper's "1.8"), with bound
``9.899`` (the paper's "9.9").

**AlignedBound** under full alignment (Theorem 5.1's accounting): one
execution per contour on ``1..k`` plus ``D`` executions at ``IC_{k+1}``::

    MSO <= r/(r - 1) + D r

which is ``2D + 2`` at ``r = 2``.
"""

from __future__ import annotations

import math

from repro.errors import DiscoveryError


def _check_ratio(ratio):
    if ratio <= 1.0:
        raise DiscoveryError("contour cost ratio must exceed 1")
    return float(ratio)


def pb_mso_bound(rho, lam=0.2, ratio=2.0):
    """PlanBouquet's guarantee for density ``rho`` at ratio ``ratio``."""
    ratio = _check_ratio(ratio)
    if rho < 0:
        raise DiscoveryError("contour density must be non-negative")
    return rho * (1.0 + lam) * ratio * ratio / (ratio - 1.0)


def sb_mso_bound(num_epps, ratio=2.0):
    """SpillBound's guarantee for ``D`` epps at ratio ``ratio``."""
    ratio = _check_ratio(ratio)
    d = int(num_epps)
    if d < 1:
        raise DiscoveryError("SpillBound needs at least one epp")
    fresh = d * ratio * ratio / (ratio - 1.0)
    repeats = d * (d - 1) / 2.0 * ratio
    return fresh + repeats


def ab_aligned_mso_bound(num_epps, ratio=2.0):
    """AlignedBound's guarantee when every contour is aligned."""
    ratio = _check_ratio(ratio)
    d = int(num_epps)
    if d < 1:
        raise DiscoveryError("AlignedBound needs at least one epp")
    return ratio / (ratio - 1.0) + d * ratio


def ab_mso_bound_range(num_epps, ratio=2.0):
    """AlignedBound's guarantee range ``[aligned, quadratic]``."""
    return (
        ab_aligned_mso_bound(num_epps, ratio),
        sb_mso_bound(num_epps, ratio),
    )


def optimal_ratio_pb():
    """The ratio minimizing PlanBouquet's bound (footnote 3): exactly 2.

    ``d/dr [r^2/(r-1)] = (r^2 - 2r)/(r-1)^2 = 0  =>  r = 2``.
    """
    return 2.0


def optimal_ratio_sb(num_epps):
    """The ratio minimizing SpillBound's bound (Section 4.2 remark).

    Minimizing ``D [r^2/(r-1) + (D-1) r / 2]`` gives
    ``r* = 1 + sqrt(2/(D+1))`` — about 1.8165 at D=2, approaching 1 as
    D grows (repeat executions at the top contour dominate, so finer
    ladders waste less).
    """
    d = int(num_epps)
    if d < 1:
        raise DiscoveryError("SpillBound needs at least one epp")
    return 1.0 + math.sqrt(2.0 / (d + 1))


def inflate_for_cost_error(bound, delta):
    """Section 7: a bounded cost-model error ``delta`` inflates any of
    the guarantees by ``(1 + delta)^2``."""
    if delta < 0:
        raise DiscoveryError("cost-model error bound must be >= 0")
    return bound * (1.0 + delta) ** 2


def guarantee_table(num_epps_range=(2, 3, 4, 5, 6), ratio=2.0, rho=3,
                    lam=0.2):
    """Convenience: all guarantees side by side for a range of D."""
    rows = []
    for d in num_epps_range:
        rows.append({
            "D": d,
            "pb": pb_mso_bound(rho, lam, ratio),
            "sb": sb_mso_bound(d, ratio),
            "sb_at_ideal_ratio": sb_mso_bound(d, optimal_ratio_sb(d)),
            "ideal_ratio": optimal_ratio_sb(d),
            "ab_aligned": ab_aligned_mso_bound(d, ratio),
            "lower_bound": float(d),
        })
    return rows
