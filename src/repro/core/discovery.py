"""Shared machinery for selectivity-discovery algorithms.

All three algorithms (PlanBouquet, SpillBound, AlignedBound) share the
same outer structure: ascend the iso-cost contours, run cost-budgeted
executions, account their charges, and stop when an execution completes
the query (or fully learns the last unknown selectivity).  This module
holds the common result/record types and the accounting conventions:

* a *failed* budgeted execution is charged its full budget (the engine
  kills it exactly at budget expiry);
* a *completed* execution is charged its actual cost (at most the
  budget).

Sub-optimality of a run is ``total charged / Cost(P_qa, qa)`` — the
paper's Equation (3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Execution modes.
SPILL = "spill"
NORMAL = "normal"

#: Relative slack for budget comparisons — floating point only, shared
#: by every discovery algorithm and by the batched sweep engine so both
#: paths make bit-identical completion decisions.
BUDGET_EPS = 1e-9


def budget_covers(cost, budget):
    """Whether a budgeted execution completes: ``cost <= budget`` up to
    the shared floating-point slack.  Works elementwise on arrays, so
    the scalar ``run(qa)`` walk and the vectorized sweep engine share
    one completion predicate."""
    return cost <= budget * (1.0 + BUDGET_EPS)


@dataclass(frozen=True)
class ExecutionRecord:
    """One budgeted (possibly spill-mode) plan execution.

    Attributes:
        contour: 1-based contour index the execution belongs to.
        plan_id: POSP plan identifier (``-1`` for synthetic plans).
        plan_key: canonical plan identity.
        mode: ``"spill"`` or ``"normal"``.
        spill_dim: ESS dimension spilled on (``None`` in normal mode).
        budget: the cost budget granted.
        charged: the cost actually accounted (budget if killed).
        completed: whether the execution finished within budget.
        learned_selectivity: selectivity value learnt for ``spill_dim``
            (exact on completion, a lower bound otherwise).
        fresh: paper Section 4.2 — first execution for this epp on this
            contour (repeats happen after another epp is fully learnt).
        penalty: AlignedBound's replacement penalty (1.0 when native).
    """

    contour: int
    plan_id: int
    plan_key: str
    mode: str
    spill_dim: object
    budget: float
    charged: float
    completed: bool
    learned_selectivity: float = float("nan")
    fresh: bool = True
    penalty: float = 1.0


@dataclass
class DiscoveryResult:
    """Outcome of one discovery run for a query located at ``qa``.

    Attributes:
        qa_coords: grid coordinates of the actual selectivity location.
        total_cost: sum of all charges along the execution sequence.
        optimal_cost: ``Cost(P_qa, qa)`` — the oracle cost.
        executions: per-execution records (``None`` unless traced).
        num_executions / num_repeat_executions: counters kept even in
            untraced runs (they feed the Lemma 4.4 property tests).
        contours_visited: how many contours the run ascended through.
        completed_plan_key: the plan whose full execution produced the
            query result.
    """

    qa_coords: tuple
    total_cost: float
    optimal_cost: float
    executions: object = None
    num_executions: int = 0
    num_repeat_executions: int = 0
    contours_visited: int = 0
    completed_plan_key: str = ""
    max_penalty: float = 1.0

    @property
    def suboptimality(self):
        """The run's sub-optimality (paper Equation 3)."""
        return self.total_cost / self.optimal_cost

    def waterfall_rows(self, query=None):
        """Flatten a traced run onto the cumulative cost timeline.

        Requires ``executions`` (run with ``trace=True``); see
        :func:`repro.obs.runtrace.run_records` for the row schema the
        budget-waterfall viewer consumes.
        """
        from repro.obs.runtrace import run_records

        return run_records(self, query)


def normalize_location(grid, qa):
    """Accept a flat index, an integer coords tuple, or a selectivity
    vector (floats — snapped to the nearest grid point).

    Returns ``(coords, flat)``.
    """
    if hasattr(qa, "__index__"):
        flat = int(qa)
        return grid.coords_of(flat), flat
    qa = tuple(qa)
    if qa and all(hasattr(c, "__index__") for c in qa):
        coords = tuple(int(c) for c in qa)
        return coords, grid.flat_index(coords)
    coords = grid.snap(qa)
    return coords, grid.flat_index(coords)
