"""The MSO lower bound for half-space pruning algorithms (Theorem 4.6).

The paper proves that *no* deterministic algorithm in the class ``E`` of
half-space pruning discovery algorithms can guarantee ``MSO < D``.  The
argument is adversarial, and this module implements it as a playable
game so the bound can be demonstrated against concrete strategies:

* The hidden location ``qa`` is one of ``D`` candidates ``q^(1)..q^(D)``,
  where ``q^(k)`` has selectivity 1 along dimension ``k`` and 0 along
  every other dimension.  The synthetic cost surface gives each
  candidate the same optimal cost ``C``.
* A half-space pruning *probe* spends some budget ``b`` spilling on one
  dimension ``j`` and learns only a threshold fact: whether
  ``qa.j <= s(b)``, where the learnable threshold ``s(b)`` reaches 1
  only when ``b >= C`` (learning a dimension to completion costs a full
  plan execution at the contour budget).
* The adversary answers probes so as to keep as many candidates alive
  as possible: a probe on dimension ``j`` eliminates only candidate
  ``q^(j)``.

A deterministic algorithm's probe order is fixed, so the adversary
places ``qa`` at the dimension probed *last*: the algorithm pays at
least ``D * C`` before it can finish, while the oracle pays ``C`` —
hence ``MSO >= D``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DiscoveryError


@dataclass
class ProbeRecord:
    """One probe: a budgeted spill execution on one dimension."""

    dim: int
    budget: float
    resolved: bool  # whether the probe fully learnt the dimension


class AdversarialGame:
    """The Theorem 4.6 adversary for ``D`` dimensions.

    Args:
        num_dims: D >= 2.
        contour_cost: the common optimal cost ``C`` of every candidate.

    The algorithm under test calls :meth:`probe` until :meth:`finished`;
    the adversary commits ``qa`` lazily (to the last surviving
    candidate), which is exactly the freedom a worst-case analysis has
    against a deterministic strategy.
    """

    def __init__(self, num_dims, contour_cost=1.0):
        if num_dims < 2:
            raise DiscoveryError("the lower bound needs D >= 2")
        self.num_dims = num_dims
        self.contour_cost = float(contour_cost)
        self.alive = set(range(num_dims))
        self.total_spent = 0.0
        self.probes = []

    def probe(self, dim, budget):
        """Spill-probe dimension ``dim`` with ``budget``.

        Returns ``True`` when the probe fully learns the dimension's
        selectivity (which, under adversarial play, means candidate
        ``q^(dim)`` is eliminated or confirmed).  Sub-budget probes learn
        nothing about the surviving candidates: every candidate other
        than ``q^(dim)`` has selectivity 0 along ``dim``, and the
        threshold below 1 cannot separate them.
        """
        if dim not in range(self.num_dims):
            raise DiscoveryError(f"probe dimension {dim} out of range")
        self.total_spent += min(budget, self.contour_cost)
        resolved = budget >= self.contour_cost - 1e-12
        if resolved and dim in self.alive and len(self.alive) > 1:
            # Adversary: qa is *not* the probed candidate while others
            # survive.
            self.alive.discard(dim)
        self.probes.append(ProbeRecord(dim=dim, budget=budget, resolved=resolved))
        return resolved

    @property
    def finished(self):
        """The algorithm can terminate once one candidate remains *and*
        that candidate's dimension has been resolved."""
        if len(self.alive) != 1:
            return False
        last = next(iter(self.alive))
        return any(p.dim == last and p.resolved for p in self.probes)

    def suboptimality(self):
        """Total spend over the oracle cost ``C``."""
        return self.total_spent / self.contour_cost


def play_round_robin(num_dims, contour_cost=1.0):
    """The canonical deterministic strategy: resolve dimensions in index
    order with full-budget probes.  Any deterministic order yields the
    same count under adversarial play."""
    game = AdversarialGame(num_dims, contour_cost)
    dim = 0
    while not game.finished:
        game.probe(dim % num_dims, contour_cost)
        dim += 1
        if dim > 4 * num_dims:
            raise DiscoveryError("strategy failed to converge")
    return game


def lower_bound_demonstration(num_dims):
    """Return the measured sub-optimality of the best-effort strategy.

    Theorem 4.6 asserts this is always >= D; the round-robin strategy
    achieves exactly D (each resolution costs one contour budget and D
    resolutions are forced).
    """
    return play_round_robin(num_dims).suboptimality()
