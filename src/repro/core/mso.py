"""Robustness metrics: MSO, ASO, and sub-optimality distributions.

Paper Section 2.3: the sub-optimality of a run is the ratio of its total
cost to the oracle cost, MSO is the worst case over the whole ESS, and
ASO (Equation 8) the average under a uniform prior over ``qa``.  The
histogram characterization of Figure 12 (counts of locations per
sub-optimality range) is also produced here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Evaluation:
    """Exhaustive sub-optimality profile of an algorithm over the ESS.

    Attributes:
        suboptimality: ``(N,)`` array, one entry per grid location
            (``qa`` candidate).
        mso: empirical MSO (the array's max).
        aso: empirical ASO (the array's mean).
        worst_location: flat index achieving the MSO.
    """

    suboptimality: np.ndarray
    mso: float
    aso: float
    worst_location: int

    def percentile(self, pct):
        return float(np.percentile(self.suboptimality, pct))

    def histogram(self, bin_width=5.0, max_bins=20):
        """Sub-optimality distribution (paper Figure 12).

        Returns ``(edges, fractions)`` — bin edges of width ``bin_width``
        starting at 0, with the final bin open-ended, and the fraction of
        ESS locations falling in each bin.
        """
        sub = self.suboptimality
        top = min(max_bins * bin_width, float(np.ceil(sub.max() / bin_width)) * bin_width)
        edges = np.arange(0.0, top + bin_width, bin_width)
        counts, _ = np.histogram(np.minimum(sub, top - 1e-9), bins=edges)
        return edges, counts / sub.size

    def fraction_below(self, threshold):
        """Fraction of ESS locations with sub-optimality below a value."""
        return float(np.mean(self.suboptimality < threshold))


def _parallel_sweep(algorithm, flats, workers):
    """Try the multiprocess sweep; None means "use the serial path"."""
    from repro.perf.parallel import parallel_suboptimality, spec_for

    spec = spec_for(algorithm)
    if spec is None:
        return None
    return parallel_suboptimality(spec, flats, workers)


def evaluate_algorithm(algorithm, points=None, workers=None):
    """Exhaustively evaluate a discovery algorithm over the ESS.

    Every grid location is treated in turn as the actual selectivity
    location ``qa`` (the paper's "explicitly and exhaustively considering
    each and every location", Section 6.2.3).

    When more than one worker is requested (the ``workers`` argument, or
    the ``REPRO_WORKERS`` environment knob) and the algorithm's ESS
    carries registry provenance, the sweep fans out across worker
    processes via :mod:`repro.perf.parallel`; the results are identical
    to the serial sweep, which remains the fallback for everything else.

    Args:
        algorithm: object exposing either ``evaluate_all() -> (N,) array``
            (fast vectorized path) or ``run(qa) -> DiscoveryResult``.
        points: optional iterable of flat indices to restrict the sweep
            (used by sampled ablations); default is the full grid.
        workers: worker-process count; default from ``REPRO_WORKERS``.

    Returns:
        :class:`Evaluation`.
    """
    from repro.perf.parallel import worker_count

    grid = algorithm.ess.grid
    flat_list = (
        list(range(grid.num_points)) if points is None else list(points)
    )
    workers = worker_count(workers)
    sub = None
    if workers > 1:
        sub = _parallel_sweep(algorithm, flat_list, workers)
    if sub is None:
        if points is None and hasattr(algorithm, "evaluate_all"):
            sub = np.asarray(algorithm.evaluate_all(), dtype=float)
        else:
            sub = np.empty(len(flat_list), dtype=float)
            for k, flat in enumerate(flat_list):
                sub[k] = algorithm.run(flat).suboptimality
    worst = int(flat_list[int(np.argmax(sub))])
    return Evaluation(
        suboptimality=sub,
        mso=float(sub.max()),
        aso=float(sub.mean()),
        worst_location=worst,
    )
