"""Robustness metrics: MSO, ASO, and sub-optimality distributions.

Paper Section 2.3: the sub-optimality of a run is the ratio of its total
cost to the oracle cost, MSO is the worst case over the whole ESS, and
ASO (Equation 8) the average under a uniform prior over ``qa``.  The
histogram characterization of Figure 12 (counts of locations per
sub-optimality range) is also produced here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Evaluation:
    """Exhaustive sub-optimality profile of an algorithm over the ESS.

    Attributes:
        suboptimality: ``(N,)`` array, one entry per grid location
            (``qa`` candidate).
        mso: empirical MSO (the array's max).
        aso: empirical ASO (the array's mean).
        worst_location: flat index achieving the MSO.
    """

    suboptimality: np.ndarray
    mso: float
    aso: float
    worst_location: int

    def percentile(self, pct):
        return float(np.percentile(self.suboptimality, pct))

    def histogram(self, bin_width=5.0, max_bins=20):
        """Sub-optimality distribution (paper Figure 12).

        Returns ``(edges, fractions)`` — bin edges of width ``bin_width``
        starting at 0, with the final bin open-ended, and the fraction of
        ESS locations falling in each bin.
        """
        sub = self.suboptimality
        top = min(max_bins * bin_width, float(np.ceil(sub.max() / bin_width)) * bin_width)
        edges = np.arange(0.0, top + bin_width, bin_width)
        counts, _ = np.histogram(np.minimum(sub, top - 1e-9), bins=edges)
        return edges, counts / sub.size

    def fraction_below(self, threshold):
        """Fraction of ESS locations with sub-optimality below a value."""
        return float(np.mean(self.suboptimality < threshold))


def _parallel_sweep(algorithm, flats, workers):
    """Try the multiprocess sweep; None means "use the serial path"."""
    from repro.perf.parallel import parallel_suboptimality, spec_for

    spec = spec_for(algorithm)
    if spec is None:
        return None
    sub = parallel_suboptimality(spec, flats, workers, ess=algorithm.ess)
    if sub is not None:
        from repro.conformance.monitors import observe_sweep

        observe_sweep(algorithm, sub, "parallel")
    return sub


def _batched_sweep(algorithm, points):
    """Try the frontier-batched engine; None means "not covered"."""
    from repro.perf.batch import batched_suboptimality

    return batched_suboptimality(algorithm, points)


#: Sweep-engine choices accepted by :func:`evaluate_algorithm`.
SWEEP_ENGINES = ("auto", "batch", "parallel", "loop")


def evaluate_algorithm(algorithm, points=None, workers=None, engine="auto"):
    """Exhaustively evaluate a discovery algorithm over the ESS.

    Every grid location is treated in turn as the actual selectivity
    location ``qa`` (the paper's "explicitly and exhaustively considering
    each and every location", Section 6.2.3).

    Three sweep engines exist (see ``docs/performance.md``): the
    frontier-batched engine of :mod:`repro.perf.batch` (visits each
    discovery state once, partitioning location sets with array
    arithmetic — bit-identical to the loop and preferred whenever it
    covers the algorithm), the multiprocess fan-out of
    :mod:`repro.perf.parallel` (workers chunk the location set and
    propagate each chunk through the shared state machine, so per-worker
    work scales with states touched, not points), and the per-location
    reference loop.

    Args:
        algorithm: object exposing either ``evaluate_all() -> (N,) array``
            (fast vectorized path) or ``run(qa) -> DiscoveryResult``.
        points: optional iterable of flat indices to restrict the sweep
            (used by sampled ablations); default is the full grid.
        workers: worker-process count; default from ``REPRO_WORKERS``.
        engine: ``"auto"`` (batched when covered, then multiprocess when
            its cost guard says fan-out can win, then serial),
            ``"batch"`` (batched or serial fallback), ``"parallel"``
            (force the fan-out attempt), or ``"loop"`` (force the
            per-location reference loop — the benchmark baseline).

    Returns:
        :class:`Evaluation`.
    """
    from repro.obs.metrics import REGISTRY
    from repro.obs.trace import span as obs_span
    from repro.perf.parallel import worker_count

    if engine not in SWEEP_ENGINES:
        raise ValueError(
            f"unknown sweep engine {engine!r}; choose from {SWEEP_ENGINES}"
        )
    grid = algorithm.ess.grid
    flat_list = (
        list(range(grid.num_points)) if points is None else list(points)
    )
    query_name = getattr(getattr(algorithm.ess, "query", None), "name", "")
    with obs_span("sweep.evaluate", engine=engine, points=len(flat_list),
                  query=query_name) as sweep_span:
        sub = None
        used = "loop"
        if engine in ("auto", "batch"):
            sub = _batched_sweep(
                algorithm, None if points is None else flat_list
            )
            if sub is not None:
                used = "batch"
        if sub is None and engine in ("auto", "parallel"):
            workers = worker_count(workers)
            if workers > 1:
                sub = _parallel_sweep(algorithm, flat_list, workers)
                if sub is not None:
                    used = "parallel"
        if sub is None:
            if (engine != "loop" and points is None
                    and hasattr(algorithm, "evaluate_all")):
                sub = np.asarray(algorithm.evaluate_all(), dtype=float)
                used = "vectorized"
            else:
                if not hasattr(algorithm, "run"):
                    from repro.errors import ReproError

                    raise ReproError(
                        f"no sweep engine covers "
                        f"{type(algorithm).__name__} and it has no "
                        "run() for the reference loop; register a "
                        "batch engine or algorithm factory, or "
                        "implement run(qa)"
                    )
                sub = np.empty(len(flat_list), dtype=float)
                for k, flat in enumerate(flat_list):
                    sub[k] = algorithm.run(flat).suboptimality
                # Batch/parallel sweeps are observed inside their own
                # engines; the reference loop is observed here.
                from repro.conformance.monitors import observe_sweep

                observe_sweep(algorithm, sub, "loop")
        REGISTRY.incr("sweeps", labels={"engine": used})
        REGISTRY.incr("sweep_points", len(flat_list),
                      labels={"engine": used})
        sweep_span.set_attr("engine_used", used)
    worst = int(flat_list[int(np.argmax(sub))])
    return Evaluation(
        suboptimality=sub,
        mso=float(sub.max()),
        aso=float(sub.mean()),
        worst_location=worst,
    )
