"""The traditional-optimizer baseline.

A native optimizer estimates a location ``qe`` from catalog statistics
and runs the single plan ``P_qe`` to completion, whatever ``qa`` turns
out to be.  Its sub-optimality profile over the ESS is the yardstick the
discovery algorithms are measured against (paper Sections 1, 6.3, 6.5 —
e.g. the JOB experiment where the native MSO exceeds 6000 while
SpillBound stays near 12).
"""

from __future__ import annotations

import numpy as np

from repro.core.discovery import (
    NORMAL,
    DiscoveryResult,
    ExecutionRecord,
    normalize_location,
)


class NativeOptimizer:
    """Estimate-then-execute baseline over a built ESS.

    The ESS already holds every POSP plan's cost surface, so the
    baseline's behaviour for *any* (estimate, actual) pair is a pair of
    array lookups.
    """

    def __init__(self, ess):
        self.ess = ess

    def plan_for_estimate(self, qe):
        """The plan id a traditional optimizer would pick at estimate qe."""
        _, flat = normalize_location(self.ess.grid, qe)
        return int(self.ess.plan_ids[flat])

    def estimate_location(self, catalog):
        """The estimate ``qe`` a traditional optimizer would produce.

        Each epp's selectivity comes from the statistics catalog
        (``1/max(ndv)`` for joins — the uniformity rule), snapped to the
        grid.  This is the realistic alternative to the optimistic
        origin default: the estimate a deployed engine would actually
        plan with.
        """
        estimates = []
        for pred in self.ess.query.epps:
            if hasattr(pred, "left_table"):
                estimates.append(catalog.estimate_join(
                    pred.left_table, pred.left_column,
                    pred.right_table, pred.right_column,
                ))
            else:
                estimates.append(catalog.estimate_filter(
                    pred.table, pred.column,
                    value=pred.value if pred.op == "=" else None,
                    high=pred.value if pred.op in ("<", "<=") else None,
                ))
        return self.ess.grid.snap(estimates)

    def suboptimality(self, qe, qa):
        """``SubOpt(qe, qa)`` — paper Equation (1)."""
        pid = self.plan_for_estimate(qe)
        _, qa_flat = normalize_location(self.ess.grid, qa)
        return float(
            self.ess.plan_cost_at(pid, qa_flat) / self.ess.optimal_cost[qa_flat]
        )

    def run(self, qa, qe=None, trace=False):
        """Execute with estimate ``qe`` (default: the ESS origin, the
        optimistic all-independent estimate) against actual ``qa``."""
        grid = self.ess.grid
        coords, flat = normalize_location(grid, qa)
        if qe is None:
            qe = grid.origin
        pid = self.plan_for_estimate(qe)
        cost = self.ess.plan_cost_at(pid, flat)
        optimal = float(self.ess.optimal_cost[flat])
        executions = None
        if trace:
            executions = [ExecutionRecord(
                contour=0,
                plan_id=pid,
                plan_key=self.ess.plan_keys[pid],
                mode=NORMAL,
                spill_dim=None,
                budget=float("inf"),
                charged=cost,
                completed=True,
            )]
        return DiscoveryResult(
            qa_coords=coords,
            total_cost=cost,
            optimal_cost=optimal,
            executions=executions,
            num_executions=1,
            contours_visited=0,
            completed_plan_key=self.ess.plan_keys[pid],
        )

    # ------------------------------------------------------------------
    # Exhaustive profiles
    # ------------------------------------------------------------------

    def suboptimality_for_estimate(self, qe):
        """``(N,)`` array: SubOpt(qe, qa) for every actual location."""
        pid = self.plan_for_estimate(qe)
        return self.ess.plan_cost_array(pid) / self.ess.optimal_cost

    def mso(self):
        """Worst case over *all* (qe, qa) pairs — paper Equation (2).

        Every POSP plan is optimal somewhere, so the max over plans of
        the plan's worst sub-optimality equals the max over estimates.
        """
        worst = 1.0
        for pid in range(self.ess.posp_size):
            surface = self.ess.suboptimality_surface(pid)
            worst = max(worst, float(surface.max()))
        return worst

    def aso(self, qe=None):
        """Average sub-optimality for a fixed estimate (default origin)."""
        grid = self.ess.grid
        if qe is None:
            qe = grid.origin
        return float(self.suboptimality_for_estimate(qe).mean())

    def worst_pair(self):
        """The ``(qe_coords, qa_coords, suboptimality)`` achieving MSO."""
        best = (None, None, 1.0)
        for pid in range(self.ess.posp_size):
            surface = self.ess.suboptimality_surface(pid)
            qa_flat = int(np.argmax(surface))
            value = float(surface[qa_flat])
            if value > best[2]:
                qe_flat = int(np.argmax(self.ess.plan_ids == pid))
                best = (
                    self.ess.grid.coords_of(qe_flat),
                    self.ess.grid.coords_of(qa_flat),
                    value,
                )
        return best
