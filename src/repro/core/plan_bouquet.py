"""The PlanBouquet algorithm [Dutt & Haritsa, TODS 2016].

The baseline the paper improves upon.  PlanBouquet ascends the iso-cost
contours and, on each contour, executes *every* (anorexically reduced)
contour plan in regular mode under the contour's (inflated) cost budget,
until one completes.  Its guarantee is *behavioural*:
``MSO <= 4 * (1 + lambda) * rho`` where ``rho`` is the densest reduced
contour — a quantity that depends on the optimizer and platform, which
is exactly the drawback SpillBound removes.
"""

from __future__ import annotations

import numpy as np

from repro.core.discovery import (
    BUDGET_EPS,
    NORMAL,
    DiscoveryResult,
    ExecutionRecord,
    budget_covers,
    normalize_location,
)
from repro.errors import DiscoveryError
from repro.ess.contours import DEFAULT_COST_RATIO, ContourSet
from repro.ess.reduction import DEFAULT_LAMBDA, AnorexicReduction

#: Relative slack for budget comparisons (floating point only).
_EPS = BUDGET_EPS


class PlanBouquet:
    """Contour-wise trial-and-error execution of the plan bouquet.

    Args:
        ess: the built :class:`~repro.ess.ocs.ESS`.
        contour_set: optional prebuilt contours (shared across algorithms).
        lam: anorexic-reduction threshold (paper default 0.2).
        cost_ratio: contour cost ratio (paper default 2 — optimal for
            PlanBouquet per [Dutt & Haritsa]).
    """

    def __init__(self, ess, contour_set=None, lam=DEFAULT_LAMBDA,
                 cost_ratio=DEFAULT_COST_RATIO, prior=None):
        from repro.prior import as_prior

        self.ess = ess
        self.contours = contour_set or ContourSet(ess, cost_ratio)
        self.reduction = AnorexicReduction(ess, self.contours, lam)
        self.lam = lam
        self.prior = as_prior(prior)
        self._prior_schedule = None

    def prior_schedule(self):
        """The prior discretized onto this surface's ladder (lazy)."""
        if self._prior_schedule is None:
            from repro.prior import PriorSchedule

            self._prior_schedule = PriorSchedule(
                self.prior, self.ess, self.contours
            )
        return self._prior_schedule

    def contour_plans(self, rc):
        """A reduced contour's plans in execution order.

        The uniform hook shared with the batched sweep engine: the
        reduction's deterministic order when the prior is inert, the
        prior's descending-mass order (cached inside the schedule)
        otherwise — a permutation of the same budget-executed set, so
        the ``4(1+lambda)rho`` accounting is untouched.
        """
        return self.prior_schedule().order_plan_ids(rc)

    # ------------------------------------------------------------------
    # Guarantees
    # ------------------------------------------------------------------

    @property
    def rho(self):
        """Reduced maximum contour density (the bound parameter)."""
        return self.reduction.rho

    def mso_guarantee(self):
        """The behavioural bound ``4 * (1 + lambda) * rho``."""
        return self.reduction.mso_guarantee()

    def bouquet_plan_ids(self):
        """All plans in the (reduced) bouquet."""
        ids = []
        for rc in self.reduction.reduced:
            for pid in rc.plan_ids:
                if pid not in ids:
                    ids.append(pid)
        return ids

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------

    def run(self, qa, trace=False):
        """Process a query whose actual location is ``qa``.

        Returns a :class:`~repro.core.discovery.DiscoveryResult`.
        """
        coords, flat = normalize_location(self.ess.grid, qa)
        optimal = float(self.ess.optimal_cost[flat])
        total = 0.0
        executions = [] if trace else None
        num_exec = 0
        # Prior-guided start at min(target, band(qa)): qa is itself a
        # point of the starting band, so the anorexic cover guarantees
        # a completion there, and the charges are a contiguous suffix
        # of the ladder sum the 4(1+lambda)rho proof already bounds.
        start = self.prior_schedule().start_for(flat)
        for rc in self.reduction.reduced:
            if rc.index < start:
                continue
            budget = rc.inflated_budget
            for pid in self.contour_plans(rc):
                cost_here = self.ess.plan_cost_at(pid, flat)
                completed = budget_covers(cost_here, budget)
                charged = cost_here if completed else budget
                total += charged
                num_exec += 1
                if trace:
                    executions.append(ExecutionRecord(
                        contour=rc.index,
                        plan_id=pid,
                        plan_key=self.ess.plan_keys[pid],
                        mode=NORMAL,
                        spill_dim=None,
                        budget=budget,
                        charged=charged,
                        completed=completed,
                    ))
                if completed:
                    return DiscoveryResult(
                        qa_coords=coords,
                        total_cost=total,
                        optimal_cost=optimal,
                        executions=executions,
                        num_executions=num_exec,
                        contours_visited=rc.index,
                        completed_plan_key=self.ess.plan_keys[pid],
                    )
        raise DiscoveryError(
            f"PlanBouquet failed to complete at {coords} — reduction cover "
            "does not reach the query's contour (inconsistent state)"
        )

    def evaluate_all(self, points=None):
        """Vectorized exhaustive sweep: sub-optimality for every ``qa``.

        Delegates to the batched sweep engine (:mod:`repro.perf.batch`):
        one pass per bouquet plan per contour, entirely in numpy — the
        completion test for a plan is just an array comparison of its
        (cached) cost surface against the contour budget.  Subclasses
        the engine does not cover fall back to the per-location loop.

        Args:
            points: optional flat indices restricting the sweep.
        """
        from repro.perf.batch import batched_suboptimality

        sub = batched_suboptimality(self, points)
        if sub is not None:
            return sub
        flats = (
            range(self.ess.grid.num_points) if points is None
            else list(points)
        )
        out = np.empty(len(flats), dtype=float)
        for k, flat in enumerate(flats):
            out[k] = self.run(flat).suboptimality
        return out
