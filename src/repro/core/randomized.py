"""Randomized contour crossing: a peek past Theorem 4.6.

The Omega(D) lower bound (Section 4.3) is proved for *deterministic*
half-space pruning algorithms: the adversary inspects the algorithm's
fixed probe order and hides ``qa`` behind the last-probed dimension.
A natural question is whether randomization helps — against the same
adversarial family, a uniformly random probe order finds the hidden
dimension after (D+1)/2 probes in expectation instead of D.

:class:`RandomizedSpillBound` makes the idea concrete inside the real
framework: it executes each contour's spill steps in a random order
(re-drawn per contour crossing) instead of ascending dimension order.
The worst-*case* guarantee is unchanged — every step still has to
respect Lemmas 3.1/4.3 — but the *expected* cost at locations where an
early dimension learns first can improve, and
:func:`expected_suboptimality` measures it.  The companion game
:func:`randomized_game_expectation` replays the Theorem 4.6 adversary
against the randomized strategy.
"""

from __future__ import annotations

import numpy as np

from repro.core.lower_bound import AdversarialGame
from repro.core.spill_bound import SpillBound


class RandomizedSpillBound(SpillBound):
    """SpillBound with a per-contour random spill-step order.

    Args:
        ess / contour_set / cost_ratio: as for :class:`SpillBound`.
        seed: RNG seed; runs are reproducible given (seed, qa) and the
            per-run ``sample`` index.
    """

    def __init__(self, ess, contour_set=None, cost_ratio=2.0, seed=0):
        super().__init__(ess, contour_set, cost_ratio)
        self.seed = int(seed)
        self._sample = 0

    def set_sample(self, sample):
        """Select the randomization stream for subsequent runs."""
        self._sample = int(sample)

    def _step_order(self, steps, contour_index):
        rng = np.random.default_rng(
            (self.seed, self._sample, contour_index, len(steps))
        )
        dims = sorted(steps)
        rng.shuffle(dims)
        return dims

    # The base class iterates `sorted(steps)`; override the run loop's
    # ordering by wrapping _plan_steps with an order-carrying dict.
    def run(self, qa, trace=False):
        original = SpillBound._plan_steps
        randomized_self = self

        def shuffled(self_, contour_index, learned):
            steps = original(self_, contour_index, learned)
            order = randomized_self._step_order(steps, contour_index)
            return {position: steps[dim]
                    for position, dim in enumerate(order)}

        # Rebind the step planner for the duration of this run only.
        self._plan_steps = shuffled.__get__(self, type(self))
        try:
            return super().run(qa, trace)
        finally:
            del self._plan_steps

    def evaluate_all(self):
        n = self.ess.grid.num_points
        sub = np.empty(n, dtype=float)
        for flat in range(n):
            sub[flat] = self.run(flat).suboptimality
        return sub


def expected_suboptimality(ess, contour_set, qa, samples=16, seed=0):
    """Monte-Carlo expected sub-optimality of the randomized variant."""
    algorithm = RandomizedSpillBound(ess, contour_set, seed=seed)
    values = []
    for sample in range(samples):
        algorithm.set_sample(sample)
        values.append(algorithm.run(qa).suboptimality)
    return float(np.mean(values)), float(np.max(values))


def randomized_game_expectation(num_dims, samples=200, seed=0):
    """The Theorem 4.6 game against a random probe order.

    Returns the empirical expected sub-optimality — approaching
    ``(D+1)/2 + 1/... `` style savings versus the deterministic D —
    illustrating that the Omega(D) bound is specifically a bound on
    *deterministic* strategies.
    """
    rng = np.random.default_rng(seed)
    total = 0.0
    for _ in range(samples):
        game = AdversarialGame(num_dims)
        order = rng.permutation(num_dims)
        # The adversary commits qa uniformly at random *before* seeing
        # the (random) order — against randomized strategies it cannot
        # adapt to the realized order.
        hidden = int(rng.integers(num_dims))
        spent = 0.0
        for dim in order:
            game.probe(int(dim), 1.0)
            spent += 1.0
            if int(dim) == hidden:
                break
        total += spent
    return total / samples
