"""A deployment session: the paper's Section 7 workflow, assembled.

:class:`RobustSession` is the piece a database integration would
actually host.  For each *canned query* it:

1. builds (or loads from its on-disk cache) the ESS and contours —
   the offline preprocessing §7 recommends;
2. asks the :class:`~repro.core.advisor.RobustnessAdvisor` whether the
   native optimizer is safe for the anticipated estimation-error radius
   or robust discovery should run;
3. executes accordingly (simulated or, given a data provider, on the
   real engine), and
4. records the discovered selectivities into a **query-log feedback
   store**, which sharpens both subsequent epp recommendations and the
   error-radius estimate — discovery pays for itself across a workload.

The session is deliberately stateful-but-transparent: everything it
learns is inspectable (``feedback``, ``decisions``), and the cache is
plain ``.npz`` files keyed by query name.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.advisor import RobustnessAdvisor
from repro.core.aligned_bound import AlignedBound
from repro.core.native import NativeOptimizer
from repro.core.spill_bound import SpillBound
from repro.errors import DiscoveryError
from repro.ess.contours import ContourSet
from repro.ess.grid import ESSGrid
from repro.ess.ocs import ESS
from repro.ess.persistence import load_ess, save_ess

_ALGORITHMS = {"sb": SpillBound, "ab": AlignedBound}


@dataclass
class SessionDecision:
    """One routed query execution and its outcome."""

    query_name: str
    route: str                 # "native" | "sb" | "ab"
    reason: str
    suboptimality: float
    total_cost: float
    learned: dict = field(default_factory=dict)


class RobustSession:
    """Route queries between the native optimizer and robust discovery.

    Args:
        cache_dir: directory for persisted ESS archives (``None``
            disables persistence).
        algorithm: which discovery algorithm to route to ("sb" or "ab").
        error_radius: anticipated multiplicative estimation error used
            by the advisor until query-log feedback refines it.
        resolution: ESS grid resolution per dimension.
    """

    def __init__(self, cache_dir=None, algorithm="ab", error_radius=10.0,
                 resolution=None):
        if algorithm not in _ALGORITHMS:
            raise DiscoveryError(f"unknown algorithm {algorithm!r}")
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir else None
        if self.cache_dir:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.algorithm = algorithm
        self.base_error_radius = float(error_radius)
        self.resolution = resolution
        self._instances = {}
        #: predicate name -> list of observed selectivities (query log).
        self.feedback = {}
        #: chronological routing record.
        self.decisions = []

    # ------------------------------------------------------------------
    # Preparation (offline per canned query)
    # ------------------------------------------------------------------

    def prepare(self, query):
        """Build or load the query's ESS + contours (cached)."""
        cached = self._instances.get(query.name)
        if cached is not None:
            return cached
        archive = (self.cache_dir / f"{query.name}.npz"
                   if self.cache_dir else None)
        ess = None
        if archive is not None and archive.exists():
            ess = load_ess(archive, query)
        if ess is None:
            sel_min = [min(1e-5, p.selectivity / 3.0) for p in query.epps]
            grid = ESSGrid(query.num_epps, resolution=self.resolution,
                           sel_min=sel_min)
            ess = ESS.build(query, grid)
            if archive is not None:
                save_ess(ess, archive)
        bundle = {
            "ess": ess,
            "contours": ContourSet(ess),
            "advisor": RobustnessAdvisor(ess),
        }
        bundle["discovery"] = _ALGORITHMS[self.algorithm](
            ess, bundle["contours"]
        )
        self._instances[query.name] = bundle
        return bundle

    # ------------------------------------------------------------------
    # Query-log feedback
    # ------------------------------------------------------------------

    def record_feedback(self, predicate_name, observed_selectivity):
        self.feedback.setdefault(predicate_name, []).append(
            float(observed_selectivity)
        )

    def error_radius_for(self, query, estimate_sels):
        """Anticipated error radius, sharpened by the query log.

        With history for a predicate, the radius is the worst observed
        estimate/actual log-ratio (plus slack); without history, the
        session default.
        """
        radius = 0.0
        seen_any = False
        for pred, estimate in zip(query.epps, estimate_sels):
            history = self.feedback.get(pred.name)
            if not history:
                continue
            seen_any = True
            for observed in history:
                ratio = max(observed / estimate, estimate / max(observed, 1e-300))
                radius = max(radius, ratio)
        if not seen_any:
            return self.base_error_radius
        return max(radius * 2.0, 2.0)  # slack: errors repeat and grow

    # ------------------------------------------------------------------
    # Routing and execution
    # ------------------------------------------------------------------

    def execute(self, query, qa=None, catalog=None):
        """Route and (simulated-)execute one query instance.

        Args:
            query: the canned :class:`SPJQuery`.
            qa: actual selectivities (defaults to the query's declared
                true location).
            catalog: statistics for the native estimate (defaults to
                the grid origin — the optimistic estimate).

        Returns a :class:`SessionDecision`; the discovered selectivities
        are folded into the query-log feedback automatically.
        """
        bundle = self.prepare(query)
        ess = bundle["ess"]
        grid = ess.grid
        native = NativeOptimizer(ess)
        qe = (native.estimate_location(catalog) if catalog is not None
              else grid.origin)
        estimate_sels = [grid.selectivity(d, c) for d, c in enumerate(qe)]
        radius = self.error_radius_for(query, estimate_sels)
        advice = bundle["advisor"].advise(qe, radius)

        location = qa if qa is not None else query.true_location()
        if advice.use_robust:
            result = bundle["discovery"].run(location, trace=True)
            route = self.algorithm
            learned = {
                query.epps[r.spill_dim].name: r.learned_selectivity
                for r in result.executions
                if r.mode == "spill" and r.completed
            }
            for name, sel in learned.items():
                self.record_feedback(name, sel)
        else:
            result = native.run(location, qe=qe)
            route = "native"
            learned = {}
            # Even a native run yields feedback: the observed actual
            # location (a deployed engine monitors cardinalities).
            coords, _ = (result.qa_coords, None)
            for dim, pred in enumerate(query.epps):
                self.record_feedback(
                    pred.name, grid.selectivity(dim, coords[dim])
                )
        decision = SessionDecision(
            query_name=query.name,
            route=route,
            reason=advice.reason,
            suboptimality=result.suboptimality,
            total_cost=result.total_cost,
            learned=learned,
        )
        self.decisions.append(decision)
        return decision

    def summary(self):
        """Aggregate session behaviour: routes taken, mean sub-optimality."""
        if not self.decisions:
            return {"queries": 0}
        subopts = [d.suboptimality for d in self.decisions]
        routes = {}
        for decision in self.decisions:
            routes[decision.route] = routes.get(decision.route, 0) + 1
        return {
            "queries": len(self.decisions),
            "routes": routes,
            "mean_suboptimality": float(np.mean(subopts)),
            "worst_suboptimality": float(np.max(subopts)),
            "feedback_predicates": len(self.feedback),
        }
