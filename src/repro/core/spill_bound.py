"""The SpillBound algorithm (paper Sections 3 and 4).

SpillBound keeps PlanBouquet's contour-wise discovery skeleton but
crosses each contour with at most ``|EPP|`` *spill-mode* executions:

1. For every unlearned epp ``j``, find — among the contour locations
   whose optimal plan spills on ``j`` — the location ``q_max^j`` with
   the largest ``j`` coordinate; its plan is ``P_max^j``
   (Section 3.2, Figure 5).
2. Execute each ``P_max^j`` in spill mode with the contour budget.  By
   half-space pruning (Lemma 3.1) each execution either *fully learns*
   the epp's selectivity or proves ``qa.j > q_max^j.j``; if all fail,
   ``qa`` lies beyond the contour (Lemma 3.2 / 4.3) and the search jumps.
3. When a single epp remains, the problem is 1-D and the classic
   PlanBouquet takes over from the current contour (spilling weakens
   the bound in 1-D, Section 4.1).

The resulting guarantee is *structural*: ``MSO <= D^2 + 3D``,
independent of optimizer and platform.

Implementation notes
--------------------
The per-``qa`` simulation is driven by *discovery states*
``(contour index, learned-coordinates)``.  Everything an execution's
outcome depends on — the chosen plan, the budget, and the spill-subtree
cost curve along the spilled dimension — is a function of the state
alone, so states are computed once and cached; exhaustive MSO evaluation
over the whole grid then reduces to cheap threshold comparisons per
location.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.discovery import (
    BUDGET_EPS,
    NORMAL,
    SPILL,
    DiscoveryResult,
    ExecutionRecord,
    budget_covers,
    normalize_location,
)
from repro.errors import DiscoveryError
from repro.ess.contours import DEFAULT_COST_RATIO, ContourSet

_EPS = BUDGET_EPS


def band_trials(bands, plan_ids):
    """Trial order of the 1-D bouquet along effective lines (vectorized).

    The classic tail executes, per contour in ascending order, each plan
    optimal somewhere in that contour's slice of the line — ordered by
    the plan's first position along the line, each plan tried once per
    contour.  This function derives exactly that (band, plan) trial
    sequence for ``S`` lines at once.

    Args:
        bands: ``(S, R)`` int array, 0-based contour band per position.
        plan_ids: ``(S, R)`` int array, optimal plan per position.

    Returns:
        ``(line, band, pid)`` int64 arrays in trial order: line-major,
        then band-major, then first-occurrence position within the band.
        Both the scalar tail's per-contour plan lists
        (:meth:`SpillBound._line_plans`) and the batched engine's global
        tail drain are derived from this single implementation.
    """
    bands = np.ascontiguousarray(bands, dtype=np.int64)
    plan_ids = np.ascontiguousarray(plan_ids, dtype=np.int64)
    num_lines, length = bands.shape
    flat_bands = bands.reshape(-1)
    flat_pids = plan_ids.reshape(-1)
    line = np.repeat(np.arange(num_lines, dtype=np.int64), length)
    num_bands = int(flat_bands.max()) + 1 if flat_bands.size else 1
    num_pids = int(flat_pids.max()) + 1 if flat_pids.size else 1
    # Stable sort on (line, band, pid) keeps position order within each
    # key, so dropping duplicate keys keeps each plan's first position.
    key = (line * num_bands + flat_bands) * num_pids + flat_pids
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    keep = np.empty(sorted_key.size, dtype=bool)
    if keep.size:
        keep[0] = True
        keep[1:] = sorted_key[1:] != sorted_key[:-1]
    first = order[keep]
    # Re-rank the surviving trials by position within (line, band).
    final = first[np.lexsort((first % length, flat_bands[first], line[first]))]
    return line[final], flat_bands[final], flat_pids[final]


@dataclass(frozen=True)
class SpillStep:
    """A planned spill-mode execution for one epp on one contour.

    Attributes:
        dim: the ESS dimension to learn.
        plan_id: the chosen ``P_max^dim``.
        qstar_coords: the ``q_max^dim`` location (full coords tuple).
        budget: execution budget (the contour cost, or more for
            AlignedBound replacements).
        learn_idx: the largest grid index along ``dim`` whose spill
            subtree cost fits the budget — execution completes iff
            ``qa``'s index is <= this (and then the epp is fully learnt).
        curve: spill-subtree cost per grid index along ``dim`` (the
            charge on completion).
        penalty: replacement penalty (always 1.0 for SpillBound).
    """

    dim: int
    plan_id: int
    qstar_coords: tuple
    budget: float
    learn_idx: int
    curve: np.ndarray
    penalty: float = 1.0

    @property
    def exec_dim(self):
        """The dimension this execution learns (uniform step interface
        shared with AlignedBound's :class:`PartStep`)."""
        return self.dim


def learnable_index(curve, budget, floor_idx):
    """Largest grid index whose spill cost fits ``budget``.

    ``floor_idx`` enforces Lemma 3.1's guarantee: the spill cost at the
    chosen contour location itself is within the budget by construction,
    so learning reaches at least that coordinate (the clamp only absorbs
    floating-point slack).
    """
    idx = int(np.searchsorted(curve, budget * (1.0 + _EPS), side="right")) - 1
    return max(idx, int(floor_idx))


class SpillBound:
    """Per-query SpillBound executor/simulator.

    Args:
        ess: the built :class:`~repro.ess.ocs.ESS`.
        contour_set: optional prebuilt :class:`ContourSet`.
        cost_ratio: contour spacing when building contours here.
    """

    def __init__(self, ess, contour_set=None, cost_ratio=DEFAULT_COST_RATIO,
                 prior=None):
        from repro.prior import as_prior

        self.ess = ess
        self.contours = contour_set or ContourSet(ess, cost_ratio)
        self.prior = as_prior(prior)
        self._prior_schedule = None
        self._step_cache = {}
        self._line_cache = {}
        self._effective_cache = {}
        self._cost_surfaces = {}

    def prior_schedule(self):
        """The prior discretized onto this surface's ladder (lazy)."""
        if self._prior_schedule is None:
            from repro.prior import PriorSchedule

            self._prior_schedule = PriorSchedule(
                self.prior, self.ess, self.contours
            )
        return self._prior_schedule

    # ------------------------------------------------------------------
    # Guarantees
    # ------------------------------------------------------------------

    @property
    def num_dims(self):
        return self.ess.grid.num_dims

    def mso_guarantee(self):
        """The structural bound (Theorem 4.5), ratio-aware.

        ``D^2 + 3D`` for the default cost-doubling contours; for other
        ratios the generalized bound of :mod:`repro.core.bounds`.  Known
        by query inspection alone — no ESS preprocessing needed.
        """
        from repro.core.bounds import sb_mso_bound

        return sb_mso_bound(self.num_dims, self.contours.cost_ratio)

    @staticmethod
    def mso_guarantee_for(num_epps, cost_ratio=2.0):
        """``D^2 + 3D`` (at doubling) for an epp count, no ESS required."""
        from repro.core.bounds import sb_mso_bound

        return sb_mso_bound(num_epps, cost_ratio)

    # ------------------------------------------------------------------
    # Contour step planning (cached per discovery state)
    # ------------------------------------------------------------------

    def _state_key(self, contour_index, learned):
        return contour_index, tuple(sorted(learned.items()))

    def _effective_contour(self, contour_index, learned):
        """Contour locations matching the learnt coordinates exactly.

        Returns ``(coords_matrix, plan_ids)`` of the effective search
        space (paper Section 4.2), possibly empty.  Cached per state and
        computed incrementally — a state's arrays are the parent state's
        (one fewer learnt coordinate) masked by the newest constraint,
        so repeated exhaustive sweeps never re-mask the full contour.
        """
        if not learned:
            contour = self.contours.contour(contour_index)
            return contour.coords, contour.plan_ids
        items = tuple(sorted(learned.items()))
        key = (contour_index, items)
        cached = self._effective_cache.get(key)
        if cached is None:
            dim, idx = items[-1]
            coords, plan_ids = self._effective_contour(
                contour_index, dict(items[:-1])
            )
            if len(coords):
                mask = coords[:, dim] == idx
                coords = coords[mask]
                plan_ids = plan_ids[mask]
            cached = (coords, plan_ids)
            self._effective_cache[key] = cached
        return cached

    def _cost_surface(self, plan_id):
        """A plan's full-grid cost surface as a plain float array.

        Thin ref cache over :meth:`~repro.ess.ocs.ESS.plan_cost_array`:
        the replacement searches and the batched tail drain gather from
        these surfaces thousands of times per sweep, and the ESS cache's
        per-hit LRU bookkeeping dominated those lookups.
        """
        arr = self._cost_surfaces.get(plan_id)
        if arr is None:
            arr = np.asarray(self.ess.plan_cost_array(plan_id), dtype=float)
            self._cost_surfaces[plan_id] = arr
        return arr

    def _point_spill(self, plan_ids, learned):
        """First unlearned spill dimension per contour location.

        Vectorized equivalent of calling
        :meth:`~repro.ess.ocs.ESS.spill_dimension` per location
        (``-1`` where the plan's whole spill order is already learnt).
        """
        orders = self.ess.spill_order_matrix()[plan_ids]
        valid = orders >= 0
        for dim in learned:
            valid &= orders != dim
        first = valid.argmax(axis=1)
        rows = np.arange(len(orders))
        return np.where(valid[rows, first], orders[rows, first], -1)

    def _plan_steps(self, contour_index, learned):
        """The ``{dim: SpillStep}`` map for a discovery state (cached)."""
        key = self._state_key(contour_index, learned)
        cached = self._step_cache.get(key)
        if cached is not None:
            return cached

        coords, plan_ids = self._effective_contour(contour_index, learned)
        steps = {}
        if len(coords):
            remaining = [d for d in range(self.num_dims) if d not in learned]
            point_spill = self._point_spill(plan_ids, learned)
            budget = self.contours.budget(contour_index)
            for dim in remaining:
                candidates = np.flatnonzero(point_spill == dim)
                if len(candidates) == 0:
                    continue  # no plan on this contour spills on dim: skip
                best = candidates[int(np.argmax(coords[candidates, dim]))]
                qstar = tuple(int(c) for c in coords[best])
                pid = int(plan_ids[best])
                curve = self.ess.spill_cost_curve(pid, dim, qstar)
                steps[dim] = SpillStep(
                    dim=dim,
                    plan_id=pid,
                    qstar_coords=qstar,
                    budget=budget,
                    learn_idx=learnable_index(curve, budget, qstar[dim]),
                    curve=curve,
                )
        self._step_cache[key] = steps
        return steps

    def contour_steps(self, contour_index, learned):
        """The ordered budgeted executions crossing a contour in a state.

        The uniform step interface consumed by both the scalar
        :meth:`run` walk and the frontier-batched sweep engine
        (:mod:`repro.perf.batch`): each step exposes ``exec_dim``,
        ``budget``, ``learn_idx``, ``curve`` and ``penalty``, and an
        execution at actual location ``qa`` completes iff
        ``qa``'s ``exec_dim`` grid index is ``<= learn_idx`` (charging
        ``curve[idx]``; the budget otherwise).  AlignedBound overrides
        this with its partition-cover steps.
        """
        steps = self._plan_steps(contour_index, learned)
        ordered = [steps[key] for key in sorted(steps)]
        # Prior-guided within-contour ordering (a permutation of the
        # same charged set, so the MSO accounting is untouched); inert
        # schedules return the list unchanged.
        return self.prior_schedule().order_steps(ordered)

    # ------------------------------------------------------------------
    # The 1-D PlanBouquet tail
    # ------------------------------------------------------------------

    def _line_plans(self, free_dim, learned):
        """Per-contour plan lists along the 1-D effective line (cached).

        Returns a list indexed by 0-based contour: each entry is the list
        of plan ids optimal somewhere in that contour's slice of the
        line, ordered by ascending position (origin-first, the bouquet's
        ascending-cost execution order).
        """
        key = (free_dim, tuple(sorted(learned.items())))
        cached = self._line_cache.get(key)
        if cached is not None:
            return cached
        grid = self.ess.grid
        line = grid.line_indices(learned, free_dim)
        _, trial_bands, trial_pids = band_trials(
            self.contours.band[line][None, :],
            self.ess.plan_ids[line][None, :],
        )
        per_contour = [[] for _ in range(self.contours.num_contours)]
        for band, pid in zip(trial_bands.tolist(), trial_pids.tolist()):
            per_contour[band].append(pid)
        self._line_cache[key] = per_contour
        return per_contour

    def _run_1d(self, free_dim, learned, start_contour, coords, flat,
                trace, executions):
        """Classic PlanBouquet over the remaining single dimension.

        Returns ``(total_cost, num_executions, last_contour, plan_key)``.
        """
        per_contour = self._line_plans(free_dim, learned)
        total = 0.0
        num_exec = 0
        for index in range(start_contour, self.contours.num_contours + 1):
            budget = self.contours.budget(index)
            for pid in per_contour[index - 1]:
                cost_here = self.ess.plan_cost_at(pid, flat)
                completed = budget_covers(cost_here, budget)
                charged = cost_here if completed else budget
                total += charged
                num_exec += 1
                if trace:
                    executions.append(ExecutionRecord(
                        contour=index,
                        plan_id=pid,
                        plan_key=self.ess.plan_keys[pid],
                        mode=NORMAL,
                        spill_dim=None,
                        budget=budget,
                        charged=charged,
                        completed=completed,
                    ))
                if completed:
                    return total, num_exec, index, self.ess.plan_keys[pid]
        raise DiscoveryError(
            f"1-D bouquet failed to terminate (dim {free_dim}, qa {coords})"
        )

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------

    def run(self, qa, trace=False):
        """Process a query located at ``qa`` (Algorithm 1).

        Returns a :class:`~repro.core.discovery.DiscoveryResult`.
        """
        grid = self.ess.grid
        coords, flat = normalize_location(grid, qa)
        optimal = float(self.ess.optimal_cost[flat])
        learned = {}
        executions = [] if trace else None
        total = 0.0
        num_exec = 0
        num_repeat = 0
        executed_on_contour = set()  # (contour, dim) pairs, for repeats
        # Prior-guided starting contour: min(target, band(qa)) — never
        # above the band holding qa, so only guaranteed kills are
        # skipped and the ladder accounting above is verbatim (1 when
        # the prior is inert).
        contour_index = self.prior_schedule().start_for(flat)

        while True:
            remaining = [d for d in range(self.num_dims) if d not in learned]
            if len(remaining) <= 1:
                if not remaining:
                    raise DiscoveryError("all epps learnt before the 1-D phase")
                tail_total, tail_exec, contour_index, plan_key = self._run_1d(
                    remaining[0], learned, contour_index, coords, flat,
                    trace, executions,
                )
                total += tail_total
                num_exec += tail_exec
                return DiscoveryResult(
                    qa_coords=coords,
                    total_cost=total,
                    optimal_cost=optimal,
                    executions=executions,
                    num_executions=num_exec,
                    num_repeat_executions=num_repeat,
                    contours_visited=contour_index,
                    completed_plan_key=plan_key,
                )
            if contour_index > self.contours.num_contours:
                # Unreachable under the SI analysis (the effective-slice
                # terminus always completes by the top contour); the
                # dependent-selectivity extension overrides this hook.
                extra, plan_key = self._on_ladder_exhausted(coords, flat,
                                                            learned)
                total += extra
                num_exec += 1
                return DiscoveryResult(
                    qa_coords=coords,
                    total_cost=total,
                    optimal_cost=optimal,
                    executions=executions,
                    num_executions=num_exec,
                    num_repeat_executions=num_repeat,
                    contours_visited=contour_index,
                    completed_plan_key=plan_key,
                )

            learnt_this_pass = False
            for step in self.contour_steps(contour_index, learned):
                dim = step.exec_dim  # steps carry their own dimension
                fresh = (contour_index, dim) not in executed_on_contour
                executed_on_contour.add((contour_index, dim))
                if not fresh:
                    num_repeat += 1
                qa_idx = coords[dim]
                completed = qa_idx <= step.learn_idx
                charged = float(step.curve[qa_idx]) if completed else step.budget
                total += charged
                num_exec += 1
                if trace:
                    learnt_sel = grid.selectivity(
                        dim, qa_idx if completed else step.learn_idx
                    )
                    executions.append(ExecutionRecord(
                        contour=contour_index,
                        plan_id=step.plan_id,
                        plan_key=self.ess.plan_keys[step.plan_id],
                        mode=SPILL,
                        spill_dim=dim,
                        budget=step.budget,
                        charged=charged,
                        completed=completed,
                        learned_selectivity=learnt_sel,
                        fresh=fresh,
                    ))
                if completed:
                    learned[dim] = qa_idx
                    learnt_this_pass = True
                    break  # re-plan this contour with the smaller EPP set
            if not learnt_this_pass:
                contour_index += 1  # Lemma 4.3: qa lies beyond this contour

    def _on_ladder_exhausted(self, coords, flat, learned):
        """Hook invoked if discovery ascends past the last contour.

        Under selectivity independence this cannot happen (Lemma 3.2 /
        the slice-terminus argument), so the default raises; subclasses
        modelling SI violations override it with a forced completion.
        Returns ``(extra_charge, completed_plan_key)``.
        """
        raise DiscoveryError(
            f"SpillBound ascended past the last contour at {coords}"
        )

    def evaluate_all(self, points=None):
        """Exhaustive sweep: sub-optimality for every grid location.

        Prefers the frontier-batched engine (:mod:`repro.perf.batch`),
        which visits each discovery state once and partitions location
        *sets* with array arithmetic; subclasses the engine does not
        cover fall back to the per-location reference loop.

        Args:
            points: optional flat indices restricting the sweep;
                default is the full grid.
        """
        from repro.perf.batch import batched_suboptimality

        sub = batched_suboptimality(self, points)
        if sub is not None:
            return sub
        flats = (
            range(self.ess.grid.num_points) if points is None
            else list(points)
        )
        out = np.empty(len(flats), dtype=float)
        for k, flat in enumerate(flats):
            out[k] = self.run(flat).suboptimality
        return out
