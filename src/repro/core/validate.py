"""Runtime invariant validation for built artifacts.

Downstream users (and our own fuzz tests) can hand any built ESS,
contour set, or discovery result to these checkers and get either a
clean bill of health or a precise description of the violated
invariant.  The invariants are the ones the MSO analysis rests on
(DESIGN.md §6).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DiscoveryError


class ValidationError(DiscoveryError):
    """A structural invariant does not hold."""


def validate_ess(ess, sample_plans=8):
    """Check a built ESS: PCM, optimality, plan-region consistency.

    Args:
        ess: the built :class:`~repro.ess.ocs.ESS`.
        sample_plans: how many POSP plans to check in depth (all plans'
            regions are always checked for optimality).

    Raises :class:`ValidationError` on the first violation; returns a
    summary dict on success.
    """
    grid = ess.grid
    shape = grid.shape
    surface = ess.optimal_cost.reshape(shape)

    # PCM of the optimal surface along every axis.
    for axis in range(grid.num_dims):
        if not (np.diff(surface, axis=axis) > 0).all():
            raise ValidationError(
                f"optimal cost surface not strictly increasing on axis {axis}"
            )

    # Optimality: each plan matches the surface on its own region and
    # never undercuts it elsewhere.
    check_ids = list(range(ess.posp_size))
    deep_ids = check_ids[:: max(1, len(check_ids) // max(sample_plans, 1))]
    for pid in deep_ids:
        cost = ess.plan_cost_array(pid)
        if (cost < ess.optimal_cost * (1 - 1e-9)).any():
            raise ValidationError(
                f"plan {pid} undercuts the optimal surface somewhere"
            )
        region = np.flatnonzero(ess.plan_ids == pid)
        if len(region) and not np.allclose(
            cost[region], ess.optimal_cost[region], rtol=1e-9
        ):
            raise ValidationError(
                f"plan {pid} is labelled optimal where it is not"
            )
        # Per-plan PCM.
        plan_surface = cost.reshape(shape)
        for axis in range(grid.num_dims):
            if not (np.diff(plan_surface, axis=axis) > 0).all():
                raise ValidationError(
                    f"plan {pid} violates PCM on axis {axis}"
                )

    # Spill orders must cover every dimension for every plan.
    for pid in deep_ids:
        order = ess.spill_order(pid)
        if sorted(order) != list(range(grid.num_dims)):
            raise ValidationError(
                f"plan {pid} spill order {order} does not cover all epps"
            )

    return {
        "grid_points": grid.num_points,
        "posp_size": ess.posp_size,
        "plans_checked": len(deep_ids),
        "cost_span": (ess.min_cost, ess.max_cost),
    }


def validate_contours(contour_set):
    """Check a contour set: geometric budgets, band partition, nesting."""
    ess = contour_set.ess
    budgets = contour_set.budgets
    if not (np.diff(budgets) > 0).all():
        raise ValidationError("contour budgets are not increasing")
    ratio = contour_set.cost_ratio
    for i in range(1, len(budgets) - 1):
        if not np.isclose(budgets[i], budgets[i - 1] * ratio, rtol=1e-9):
            raise ValidationError(
                f"budget ladder breaks the ratio at contour {i + 1}"
            )
    total = 0
    for contour in contour_set:
        total += len(contour.points)
        if len(contour.points) == 0:
            continue
        costs = ess.optimal_cost[contour.points]
        if (costs > contour.budget * (1 + 1e-9)).any():
            raise ValidationError(
                f"contour {contour.index} holds a location above its budget"
            )
        if contour.index > 1:
            lower = contour_set.budget(contour.index - 1)
            if (costs <= lower * (1 - 1e-9)).any():
                raise ValidationError(
                    f"contour {contour.index} holds a location below the "
                    "previous budget"
                )
    if total != ess.grid.num_points:
        raise ValidationError("contour bands do not partition the grid")
    return {"num_contours": contour_set.num_contours,
            "max_density": contour_set.max_density}


def validate_discovery_result(result, algorithm):
    """Check one discovery run against its algorithm's guarantee."""
    if result.total_cost <= 0:
        raise ValidationError("non-positive total cost")
    if result.suboptimality < 1.0 - 1e-9:
        raise ValidationError(
            f"sub-optimality {result.suboptimality} below 1 — the oracle "
            "was beaten, which is impossible"
        )
    guarantee = algorithm.mso_guarantee()
    if result.suboptimality > guarantee * (1 + 1e-9):
        raise ValidationError(
            f"sub-optimality {result.suboptimality:.3f} exceeds the "
            f"guarantee {guarantee:.3f}"
        )
    if result.executions is not None:
        charged = sum(r.charged for r in result.executions)
        if not np.isclose(charged, result.total_cost, rtol=1e-9):
            raise ValidationError("trace charges do not sum to total cost")
        contours = [r.contour for r in result.executions]
        if contours != sorted(contours):
            raise ValidationError("executions are not contour-ordered")
        for record in result.executions:
            if record.charged > record.budget * (1 + 1e-9):
                raise ValidationError(
                    f"execution charged {record.charged} over its budget "
                    f"{record.budget}"
                )
    return {"suboptimality": result.suboptimality, "guarantee": guarantee}
