"""The execution engine: budgeted, spillable, monitored plan runs.

Two interchangeable engines sit behind
:func:`~repro.engine.spill.execute_plan`: the tuple-at-a-time Volcano
interpreter (:mod:`repro.engine.iterators`, ground truth) and the
columnar vector engine (:mod:`repro.engine.vector`), charge-equivalent
to it — identical :class:`~repro.engine.executor.ExecutionOutcome` on
completed and budget-killed runs alike.  ``engine="auto"`` resolves via
the ``REPRO_ENGINE`` environment variable (default: vector).
"""

from repro.engine.spill import ENGINES, execute_plan, resolve_engine

__all__ = ["ENGINES", "execute_plan", "resolve_engine"]
