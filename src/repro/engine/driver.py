"""Engine-driven discovery: the wall-clock experiment machinery.

Paper Section 6.3 measures actual response times: the native optimizer's
plan runs 14.3x slower than the oracle's on 4D Q91, SpillBound cuts
that to 5.6x and AlignedBound to 3.8x.  This module reproduces the
mechanics on generated data: the contour/plan machinery still comes from
the cost model (as it does in the real system, where contours are
pre-computed through the optimizer), but every budgeted/spilled
execution actually runs on the iterator engine, is killed on budget
expiry, and learns selectivities from the run-time monitors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from weakref import WeakKeyDictionary

import numpy as np

from repro.core.spill_bound import SpillBound
from repro.engine.spill import execute_plan, spill_root_key
from repro.errors import DiscoveryError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span as obs_span

#: Memo for measured selectivities: data provider -> {(query name, pred
#: name): selectivity}.  Keyed weakly on the provider so dropping a
#: DataGenerator frees its entries; repeated wall-clock runs over the
#: same instance then recover qa without re-scanning the joins.
_MEASURED_CACHE = WeakKeyDictionary()


def measured_join_selectivity(data_provider, query, pred):
    """The *true* normalized selectivity of a join over generated data.

    ``|L_f JOIN R_f| / (|L_f| * |R_f|)`` with the query's filters applied
    to both sides — the quantity the ESS axes range over.  Results are
    memoized per (data provider, query, predicate).
    """
    try:
        memo = _MEASURED_CACHE.setdefault(data_provider, {})
    except TypeError:  # provider not weak-referenceable: skip the memo
        memo = {}
    memo_key = (query.name, pred.name)
    if memo_key in memo:
        return memo[memo_key]
    counts = []
    sizes = []
    for table in pred.tables:
        data = data_provider.table(table)
        column = data.column(pred.column_for(table))
        mask = np.ones(len(column), dtype=bool)
        for f in query.filters_on(table):
            values = data.column(f.column)
            if f.op == "=":
                mask &= values == f.value
            elif f.op == "<":
                mask &= values < f.value
            elif f.op == "<=":
                mask &= values <= f.value
            elif f.op == ">":
                mask &= values > f.value
            elif f.op == ">=":
                mask &= values >= f.value
            else:
                low, high = f.value
                mask &= (values >= low) & (values <= high)
        kept = column[mask]
        sizes.append(len(kept))
        uniques, freq = np.unique(kept, return_counts=True)
        counts.append(dict(zip(uniques.tolist(), freq.tolist())))
    if 0 in sizes:
        memo[memo_key] = 0.0
        return 0.0
    small, large = sorted(counts, key=len)
    matches = sum(freq * large.get(key, 0) for key, freq in small.items())
    selectivity = matches / (sizes[0] * sizes[1])
    memo[memo_key] = selectivity
    return selectivity


def measured_location(data_provider, query):
    """The true epp selectivity vector of a generated instance."""
    return tuple(
        measured_join_selectivity(data_provider, query, pred)
        for pred in query.epps
    )


@dataclass
class EngineStep:
    """One engine execution within a discovery run."""

    contour: int
    plan_key: str
    mode: str
    spill_epp: str
    budget: float
    cost_spent: float
    completed: bool
    learned_selectivity: float = float("nan")


@dataclass
class EngineReport:
    """Outcome of an engine-driven discovery run.

    ``total_cost`` sums the engine's actual metered spend (killed
    executions cost exactly their budget).
    """

    steps: list = field(default_factory=list)
    total_cost: float = 0.0
    rows_out: int = 0
    completed_plan_key: str = ""

    @property
    def num_steps(self):
        return len(self.steps)


class EngineDiscoveryDriver:
    """Run a contour-discovery algorithm against the real engine.

    Args:
        simulator: a :class:`~repro.core.spill_bound.SpillBound` (or
            :class:`~repro.core.aligned_bound.AlignedBound`) instance —
            supplies contour structure and per-state plan choices.
        data_provider: ``table(name) -> TableData``.
        engine: execution engine selector passed to every
            :func:`~repro.engine.spill.execute_plan` call.
    """

    def __init__(self, simulator, data_provider, engine="auto"):
        self.simulator = simulator
        self.data_provider = data_provider
        self.engine = engine
        self.ess = simulator.ess
        self.query = simulator.ess.query

    def _steps_for_state(self, contour_index, learned):
        sim = self.simulator
        if hasattr(sim, "_plan_partition"):
            return sim._plan_partition(contour_index, learned)
        steps = sim._plan_steps(contour_index, learned)
        return [steps[dim] for dim in sorted(steps)]

    def _spill_once(self, step, contour_index, learned, report):
        """One budgeted spill-mode engine execution; updates ``learned``."""
        dim = getattr(step, "leader", None)
        if dim is None:
            dim = step.dim
        epp_name = self.query.epps[dim].name
        plan = self.ess.plans[step.plan_id]
        outcome = execute_plan(
            plan, self.query, self.data_provider, self.ess.cost_model,
            budget=step.budget, spill_epp=epp_name, engine=self.engine,
        )
        learned_sel = float("nan")
        if outcome.completed:
            REGISTRY.incr("engine_learned_selectivities",
                          labels={"epp": epp_name})
            learned_sel = outcome.selectivity_of(spill_root_key(plan, epp_name))
            grid = self.ess.grid
            logs = np.log(grid.values[dim])
            idx = int(np.argmin(np.abs(logs - np.log(max(learned_sel, grid.values[dim][0])))))
            learned[dim] = idx
        report.total_cost += outcome.cost_spent
        report.steps.append(EngineStep(
            contour=contour_index,
            plan_key=plan.key,
            mode="spill",
            spill_epp=epp_name,
            budget=step.budget,
            cost_spent=outcome.cost_spent,
            completed=outcome.completed,
            learned_selectivity=learned_sel,
        ))
        return outcome.completed

    def _run_1d_engine(self, free_dim, learned, start_contour, report):
        per_contour = self.simulator._line_plans(free_dim, learned)
        contours = self.simulator.contours
        for index in range(start_contour, contours.num_contours + 1):
            budget = contours.budget(index)
            for pid in per_contour[index - 1]:
                plan = self.ess.plans[pid]
                outcome = execute_plan(
                    plan, self.query, self.data_provider,
                    self.ess.cost_model, budget=budget, engine=self.engine,
                )
                report.total_cost += outcome.cost_spent
                report.steps.append(EngineStep(
                    contour=index,
                    plan_key=plan.key,
                    mode="normal",
                    spill_epp="",
                    budget=budget,
                    cost_spent=outcome.cost_spent,
                    completed=outcome.completed,
                ))
                if outcome.completed:
                    report.rows_out = outcome.rows_out
                    report.completed_plan_key = plan.key
                    return True
        return False

    def run(self):
        """Drive discovery to completion on the engine."""
        from repro.conformance.monitors import observe_engine_report

        with obs_span("engine.discovery", query=self.query.name,
                      engine=self.engine) as run_span:
            report = self._drive()
            run_span.set_attr("steps", report.num_steps)
            run_span.set_attr("total_cost", report.total_cost)
        REGISTRY.incr("engine_discovery_runs")
        observe_engine_report(report, self.simulator)
        return report

    def _drive(self):
        learned = {}
        report = EngineReport()
        num_dims = self.ess.grid.num_dims
        contour_index = 1
        max_rounds = 4 * self.simulator.contours.num_contours * num_dims + 16
        for _ in range(max_rounds):
            remaining = [d for d in range(num_dims) if d not in learned]
            if len(remaining) <= 1 and remaining:
                if self._run_1d_engine(remaining[0], learned, contour_index,
                                       report):
                    return report
                break  # fall through to the unbudgeted safety net
            if contour_index > self.simulator.contours.num_contours:
                break
            steps = self._steps_for_state(contour_index, learned)
            learnt = False
            for step in steps:
                if self._spill_once(step, contour_index, learned, report):
                    learnt = True
                    break
            if not learnt:
                contour_index += 1
        # Safety net (possible only under cost-model/engine divergence):
        # run the optimal plan at the learnt location without a budget.
        coords = tuple(learned.get(d, self.ess.grid.terminus[d])
                       for d in range(num_dims))
        flat = self.ess.grid.flat_index(coords)
        plan = self.ess.plans[int(self.ess.plan_ids[flat])]
        outcome = execute_plan(plan, self.query, self.data_provider,
                               self.ess.cost_model, engine=self.engine)
        report.total_cost += outcome.cost_spent
        report.rows_out = outcome.rows_out
        report.completed_plan_key = plan.key
        report.steps.append(EngineStep(
            contour=contour_index, plan_key=plan.key, mode="normal",
            spill_epp="", budget=float("inf"),
            cost_spent=outcome.cost_spent, completed=True,
        ))
        return report


def oracle_run(ess, data_provider, qa_selectivities, engine="auto"):
    """Execute the oracle's plan (optimal at the true location) fully."""
    coords = ess.grid.snap(qa_selectivities)
    flat = ess.grid.flat_index(coords)
    plan = ess.plans[int(ess.plan_ids[flat])]
    return execute_plan(plan, ess.query, data_provider, ess.cost_model,
                        engine=engine)


def native_run(ess, data_provider, qe=None, engine="auto"):
    """Execute the native optimizer's plan (chosen at estimate ``qe``,
    default the ESS origin) fully, whatever the data holds."""
    grid = ess.grid
    flat = grid.flat_index(qe if qe is not None else grid.origin)
    plan = ess.plans[int(ess.plan_ids[flat])]
    return execute_plan(plan, ess.query, data_provider, ess.cost_model,
                        engine=engine)
