"""Budgeted plan execution: the cost meter and outcome records.

The paper's engine modifications (Section 6.1) are (1) time-limited
execution of plans, (2) abstract-plan execution (run exactly the plan
the discovery algorithm chose), (3) spilling, and (4) run-time
selectivity monitoring.  Our engine mirrors them with *cost-limited*
execution: every operator charges the shared :class:`CostMeter` in the
same abstract units as the optimizer's cost model, and the meter kills
the execution the moment the budget is exhausted — the discovery
algorithms then account the full budget for the failed attempt, exactly
as the simulators do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BudgetExhausted
from repro.obs.metrics import REGISTRY


class CostMeter:
    """Accumulates execution cost and enforces an optional budget."""

    def __init__(self, budget=None):
        self.budget = budget
        self.spent = 0.0

    def charge(self, amount):
        """Charge ``amount`` cost units; raise on budget exhaustion.

        On exhaustion the recorded spend is clamped to the budget — a
        killed execution costs exactly what it was granted.
        """
        self.spent += amount
        if self.budget is not None and self.spent > self.budget:
            spent = self.spent
            self.spent = self.budget
            REGISTRY.incr("budget_kill_executions",
                          labels={"engine": "volcano"})
            REGISTRY.observe("budget_kill_cost", self.budget)
            raise BudgetExhausted(self.budget, spent)


@dataclass
class OperatorStats:
    """Run-time monitor counters for one plan operator.

    The observed join selectivity ``rows_out / (rows_outer * rows_inner)``
    is exact once the operator has consumed its inputs completely and
    its output has been fully drained — the condition under which a
    spilled epp is "fully learnt" (paper Section 3.1.3).
    """

    node_key: str
    rows_outer: int = 0
    rows_inner: int = 0
    rows_out: int = 0
    exhausted: bool = False

    @property
    def observed_selectivity(self):
        denom = self.rows_outer * self.rows_inner
        if denom == 0:
            return 0.0
        return self.rows_out / denom


@dataclass
class ExecutionOutcome:
    """Result of one (possibly budgeted, possibly spilled) execution.

    Attributes:
        completed: whether the plan drained before the budget expired.
        rows_out: result rows produced (spill-mode discards them but
            still counts).
        cost_spent: cost units actually charged.
        budget: the granted budget (None = unbounded).
        stats: per-operator monitors keyed by node key.
        spilled_epp: the epp the execution spilled on, if any.
    """

    completed: bool
    rows_out: int
    cost_spent: float
    budget: object
    stats: dict = field(default_factory=dict)
    spilled_epp: str = ""

    def selectivity_of(self, node_key):
        """Observed selectivity of a monitored operator."""
        return self.stats[node_key].observed_selectivity
