"""Demand-driven iterator operators over generated data.

The classic Volcano execution model (paper Section 3.1.1): each operator
is an iterator pulling rows from its children.  Rows are plain tuples;
each operator knows its output column layout as a tuple of
``(table, column)`` pairs.  Every operator charges the shared
:class:`~repro.engine.executor.CostMeter` with the *same constants* the
optimizer's cost model uses, so engine spend and plan cost estimates
live on one scale — that is what lets contour budgets derived from the
cost model bound real executions.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.errors import ExecutionError


def _filter_passes(op, value, constant):
    if op == "=":
        return value == constant
    if op == "<":
        return value < constant
    if op == "<=":
        return value <= constant
    if op == ">":
        return value > constant
    if op == ">=":
        return value >= constant
    if op == "between":
        low, high = constant
        return low <= value <= high
    raise ExecutionError(f"unsupported filter op {op!r}")


class Operator:
    """Base iterator operator.

    Subclasses implement :meth:`rows` (a generator).  ``columns`` is the
    output layout; :meth:`column_index` resolves a ``(table, column)``
    reference to a tuple position.
    """

    def __init__(self, columns, stats, meter):
        self.columns = columns
        self.stats = stats
        self.meter = meter

    def column_index(self, table, column):
        try:
            return self.columns.index((table, column))
        except ValueError:
            raise ExecutionError(
                f"operator {self.stats.node_key}: no column {table}.{column}"
            ) from None

    def rows(self):
        raise NotImplementedError


class SeqScan(Operator):
    """Sequential scan with on-the-fly filtering."""

    def __init__(self, table_name, table_data, filters, model, stats, meter):
        columns = tuple((table_name, c) for c in table_data.columns)
        super().__init__(columns, stats, meter)
        self.table_name = table_name
        self.table_data = table_data
        self.filters = filters
        self.model = model

    def rows(self):
        self.meter.charge(self.model.startup)
        data = self.table_data
        names = list(data.columns)
        arrays = [data.column(n) for n in names]
        filter_idx = [
            (names.index(f.column), f.op, f.value) for f in self.filters
        ]
        for i in range(data.num_rows):
            self.meter.charge(self.model.seq_tuple)
            self.stats.rows_outer += 1
            row = tuple(arr[i] for arr in arrays)
            if all(_filter_passes(op, row[k], v) for k, op, v in filter_idx):
                self.meter.charge(self.model.output_tuple)
                self.stats.rows_out += 1
                yield row


class IndexScan(SeqScan):
    """Index scan driven by the first indexed filter.

    The index is modelled as a value -> row-ids map built outside the
    metered execution (indexes pre-exist in a database).
    """

    def rows(self):
        self.meter.charge(self.model.startup)
        data = self.table_data
        names = list(data.columns)
        arrays = [data.column(n) for n in names]
        indexed = [f for f in self.filters if f.op == "=" and f.column in names]
        if not indexed:
            yield from super().rows()
            return
        lead = indexed[0]
        lead_idx = names.index(lead.column)
        index = defaultdict(list)
        for i, value in enumerate(arrays[lead_idx]):
            index[value].append(i)
        residual = [
            (names.index(f.column), f.op, f.value)
            for f in self.filters if f is not lead
        ]
        self.meter.charge(
            self.model.index_lookup * math.log2(max(data.num_rows, 2))
        )
        for i in index.get(lead.value, ()):
            self.meter.charge(self.model.index_fetch)
            self.stats.rows_outer += 1
            row = tuple(arr[i] for arr in arrays)
            if all(_filter_passes(op, row[k], v) for k, op, v in residual):
                self.meter.charge(self.model.output_tuple)
                self.stats.rows_out += 1
                yield row


class HashJoin(Operator):
    """Build on the inner child, probe with the outer child."""

    def __init__(self, outer, inner, key_pairs, model, stats, meter):
        super().__init__(outer.columns + inner.columns, stats, meter)
        self.outer = outer
        self.inner = inner
        self.model = model
        self.outer_keys = [outer.column_index(t, c) for t, c in key_pairs[0]]
        self.inner_keys = [inner.column_index(t, c) for t, c in key_pairs[1]]

    def rows(self):
        self.meter.charge(self.model.startup)
        table = defaultdict(list)
        for row in self.inner.rows():
            self.meter.charge(self.model.hash_build)
            self.stats.rows_inner += 1
            table[tuple(row[k] for k in self.inner_keys)].append(row)
        for row in self.outer.rows():
            self.meter.charge(self.model.hash_probe)
            self.stats.rows_outer += 1
            for match in table.get(tuple(row[k] for k in self.outer_keys), ()):
                self.meter.charge(self.model.output_tuple)
                self.stats.rows_out += 1
                yield row + match


class MergeJoin(Operator):
    """Sort-merge join; both inputs materialized and sorted."""

    def __init__(self, outer, inner, key_pairs, model, stats, meter):
        super().__init__(outer.columns + inner.columns, stats, meter)
        self.outer = outer
        self.inner = inner
        self.model = model
        self.outer_keys = [outer.column_index(t, c) for t, c in key_pairs[0]]
        self.inner_keys = [inner.column_index(t, c) for t, c in key_pairs[1]]

    def _sorted_side(self, child, keys, inner_side):
        rows = []
        for row in child.rows():
            if inner_side:
                self.stats.rows_inner += 1
            else:
                self.stats.rows_outer += 1
            rows.append(row)
        per_row = self.model.sort_unit * math.log2(max(len(rows), 2))
        self.meter.charge(per_row * len(rows))
        rows.sort(key=lambda r: tuple(r[k] for k in keys))
        return rows

    def rows(self):
        self.meter.charge(self.model.startup)
        left = self._sorted_side(self.outer, self.outer_keys, False)
        right = self._sorted_side(self.inner, self.inner_keys, True)
        self.meter.charge(self.model.merge_unit * (len(left) + len(right)))
        i = j = 0
        while i < len(left) and j < len(right):
            lk = tuple(left[i][k] for k in self.outer_keys)
            rk = tuple(right[j][k] for k in self.inner_keys)
            if lk < rk:
                i += 1
            elif lk > rk:
                j += 1
            else:
                j_end = j
                while j_end < len(right) and tuple(
                    right[j_end][k] for k in self.inner_keys
                ) == rk:
                    j_end += 1
                while i < len(left) and tuple(
                    left[i][k] for k in self.outer_keys
                ) == lk:
                    for jj in range(j, j_end):
                        self.meter.charge(self.model.output_tuple)
                        self.stats.rows_out += 1
                        yield left[i] + right[jj]
                    i += 1
                j = j_end


class NestedLoopJoin(Operator):
    """Tuple nested loops; the inner child is materialized once."""

    def __init__(self, outer, inner, key_pairs, model, stats, meter):
        super().__init__(outer.columns + inner.columns, stats, meter)
        self.outer = outer
        self.inner = inner
        self.model = model
        self.outer_keys = [outer.column_index(t, c) for t, c in key_pairs[0]]
        self.inner_keys = [inner.column_index(t, c) for t, c in key_pairs[1]]

    def rows(self):
        self.meter.charge(self.model.startup)
        inner_rows = []
        for row in self.inner.rows():
            self.stats.rows_inner += 1
            inner_rows.append(row)
        for row in self.outer.rows():
            self.stats.rows_outer += 1
            key = tuple(row[k] for k in self.outer_keys)
            for match in inner_rows:
                self.meter.charge(self.model.nl_pair)
                if tuple(match[k] for k in self.inner_keys) == key:
                    self.meter.charge(self.model.output_tuple)
                    self.stats.rows_out += 1
                    yield row + match


class IndexNLJoin(Operator):
    """Index nested loops into a base relation's (pre-built) index."""

    def __init__(self, outer, inner_table, table_data, join_columns,
                 inner_filters, model, stats, meter):
        inner_names = list(table_data.columns)
        columns = outer.columns + tuple((inner_table, c) for c in inner_names)
        super().__init__(columns, stats, meter)
        self.outer = outer
        self.model = model
        outer_cols, inner_col = join_columns
        self.outer_keys = [outer.column_index(t, c) for t, c in outer_cols]
        arrays = [table_data.column(n) for n in inner_names]
        key_idx = inner_names.index(inner_col)
        self._index = defaultdict(list)
        for i, value in enumerate(arrays[key_idx]):
            self._index[value].append(tuple(arr[i] for arr in arrays))
        self._filters = [
            (inner_names.index(f.column), f.op, f.value) for f in inner_filters
        ]
        self._descend = model.index_lookup * math.log2(
            max(table_data.num_rows, 2)
        ) * 0.25
        # The selectivity denominator is the *filtered* inner cardinality
        # (join selectivities are normalized over filtered inputs); count
        # it once, unmetered, like the pre-built index itself.
        self._inner_filtered = sum(
            1
            for rows in self._index.values()
            for match in rows
            if all(_filter_passes(op, match[k], v)
                   for k, op, v in self._filters)
        )

    def rows(self):
        self.meter.charge(self.model.startup)
        self.stats.rows_inner = self._inner_filtered
        for row in self.outer.rows():
            self.stats.rows_outer += 1
            self.meter.charge(self._descend)
            key = row[self.outer_keys[0]] if len(self.outer_keys) == 1 else \
                tuple(row[k] for k in self.outer_keys)
            for match in self._index.get(key, ()):
                self.meter.charge(self.model.index_fetch)
                if all(_filter_passes(op, match[k], v)
                       for k, op, v in self._filters):
                    self.meter.charge(self.model.output_tuple)
                    self.stats.rows_out += 1
                    yield row + match
