"""Plan-to-iterator translation, spill surgery, and budgeted runs.

This module is the engine's front door: it turns an optimizer
:class:`~repro.optimizer.plans.PlanNode` tree into the iterator pipeline
of :mod:`repro.engine.iterators`, optionally *truncated at a spill node*
(paper Section 3.1.2: keep only the subtree rooted at the epp's node,
discard its output), runs it under a cost budget, and returns the
monitored outcome.

Two interchangeable engines sit behind :func:`execute_plan`: the
row-at-a-time Volcano interpreter (ground truth) and the columnar
vector engine of :mod:`repro.engine.vector`, which is charge-equivalent
to it — identical :class:`~repro.engine.executor.ExecutionOutcome` on
completed and budget-killed runs alike.  ``engine="auto"`` resolves via
the ``REPRO_ENGINE`` environment variable (default: vector); whenever
the vector engine declines an execution it falls back to Volcano, so
callers never see a behavioral difference.
"""

from __future__ import annotations

import os

from repro.engine.executor import CostMeter, ExecutionOutcome, OperatorStats
from repro.engine.iterators import (
    HashJoin,
    IndexNLJoin,
    IndexScan,
    MergeJoin,
    NestedLoopJoin,
    SeqScan,
)
from repro.errors import BudgetExhausted, ExecutionError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span as obs_span
from repro.optimizer import plans as planlib
from repro.perf.timers import TIMERS

#: Engine names accepted by :func:`execute_plan`.
ENGINES = ("auto", "vector", "volcano")


def _join_key_pairs(node):
    """Per-side ``(table, column)`` key lists for a join node."""
    outer_tables = node.outer.tables
    outer_keys, inner_keys = [], []
    for pred in node.applied_preds:
        left, right = pred.tables
        if left in outer_tables:
            outer_keys.append((left, pred.column_for(left)))
            inner_keys.append((right, pred.column_for(right)))
        else:
            outer_keys.append((right, pred.column_for(right)))
            inner_keys.append((left, pred.column_for(left)))
    return outer_keys, inner_keys


def _build_operator(node, query, data_provider, model, meter, stats_sink):
    stats = OperatorStats(node_key=node.key)
    stats_sink[node.key] = stats
    if isinstance(node, planlib.ScanNode):
        table_data = data_provider.table(node.table)
        cls = IndexScan if node.method == planlib.INDEX_SCAN else SeqScan
        return cls(node.table, table_data, node.applied_preds, model, stats, meter)

    outer = _build_operator(node.outer, query, data_provider, model, meter,
                            stats_sink)
    key_pairs = _join_key_pairs(node)
    if node.op == planlib.INDEX_NL_JOIN:
        if len(node.applied_preds) != 1:
            raise ExecutionError(
                "index nested-loop join supports a single join predicate"
            )
        inner_table = next(iter(node.inner.tables))
        pred = node.applied_preds[0]
        return IndexNLJoin(
            outer=outer,
            inner_table=inner_table,
            table_data=data_provider.table(inner_table),
            join_columns=(key_pairs[0], pred.column_for(inner_table)),
            inner_filters=query.filters_on(inner_table),
            model=model,
            stats=stats,
            meter=meter,
        )
    inner = _build_operator(node.inner, query, data_provider, model, meter,
                            stats_sink)
    if node.op == planlib.HASH_JOIN:
        return HashJoin(outer, inner, key_pairs, model, stats, meter)
    if node.op == planlib.MERGE_JOIN:
        return MergeJoin(outer, inner, key_pairs, model, stats, meter)
    if node.op == planlib.NL_JOIN:
        return NestedLoopJoin(outer, inner, key_pairs, model, stats, meter)
    raise ExecutionError(f"unknown join operator {node.op!r}")


def resolve_engine(engine):
    """Resolve an engine selector to a concrete engine name.

    ``"auto"`` (or None) defers to the ``REPRO_ENGINE`` environment
    variable and defaults to the vector engine; unknown values of the
    *argument* are an error, unknown values of the environment variable
    silently mean the default (so a stale env never breaks runs).
    """
    if engine is None:
        engine = "auto"
    if engine not in ENGINES:
        raise ExecutionError(
            f"unknown engine {engine!r} (expected one of {ENGINES})"
        )
    if engine == "auto":
        engine = os.environ.get("REPRO_ENGINE", "vector")
        if engine not in ("vector", "volcano"):
            engine = "vector"
    return engine


def execute_plan(plan, query, data_provider, cost_model, budget=None,
                 spill_epp=None, engine="auto"):
    """Run a plan over generated data, optionally spilled and budgeted.

    Args:
        plan: the physical plan tree (from the optimizer).
        query: its :class:`~repro.query.query.SPJQuery`.
        data_provider: object with ``table(name) -> TableData`` (e.g. a
            :class:`~repro.catalog.datagen.DataGenerator`).
        cost_model: the shared :class:`~repro.optimizer.cost_model.CostModel`.
        budget: optional cost budget; exceeding it kills the run.
        spill_epp: epp *name* to spill on — the execution then runs only
            the subtree rooted at that epp's node and discards output.
        engine: ``"auto"`` / ``"vector"`` / ``"volcano"`` — both
            non-auto engines produce identical outcomes; auto resolves
            via ``REPRO_ENGINE`` (default vector).

    Returns:
        :class:`~repro.engine.executor.ExecutionOutcome`; when spilled
        and completed, ``outcome.selectivity_of(root.key)`` is the epp's
        exact observed selectivity.
    """
    root = plan
    if spill_epp is not None:
        root = planlib.find_epp_node(plan, spill_epp)
        if root is None:
            raise ExecutionError(
                f"plan {plan.key} does not apply epp {spill_epp!r}"
            )
    resolved = resolve_engine(engine)
    REGISTRY.incr("engine_executions", labels={"engine": resolved})
    if spill_epp is not None:
        REGISTRY.incr("engine_spill_executions")
    with obs_span("engine.execute", engine=resolved, plan=plan.key,
                  spill_epp=spill_epp or "",
                  budgeted=budget is not None) as exec_span:
        if resolved == "vector":
            from repro.engine import vector

            try:
                outcome = vector.execute_vectorized(
                    root, query, data_provider, cost_model, budget=budget,
                    spilled_epp=spill_epp or "",
                )
                exec_span.set_attr("completed", outcome.completed)
                return outcome
            except vector.VectorFallback:
                TIMERS.incr("vector_fallback")
                exec_span.set_attr("vector_fallback", True)
        meter = CostMeter(budget)
        stats_sink = {}
        operator = _build_operator(root, query, data_provider, cost_model,
                                   meter, stats_sink)
        rows_out = 0
        completed = True
        try:
            for _ in operator.rows():
                rows_out += 1  # spill mode: produced, counted, discarded
        except BudgetExhausted:
            completed = False
        exec_span.set_attr("completed", completed)
        return ExecutionOutcome(
            completed=completed,
            rows_out=rows_out,
            cost_spent=meter.spent,
            budget=budget,
            stats=stats_sink,
            spilled_epp=spill_epp or "",
        )


def spill_root_key(plan, epp_name):
    """Canonical key of the node a spill on ``epp_name`` would drain."""
    node = planlib.find_epp_node(plan, epp_name)
    if node is None:
        raise ExecutionError(f"plan {plan.key} does not apply {epp_name!r}")
    return node.key
