"""Columnar vectorized execution: the charge-equivalent batch engine.

The Volcano interpreter in :mod:`repro.engine.iterators` charges the
shared :class:`~repro.engine.executor.CostMeter` once per tuple from
pure Python — after PR 1 made ESS builds cached and PR 2 made discovery
sweeps frontier-batched, that per-row interpreter dominates the
Section 6.3 wall-clock experiment.  This module executes the same plans
over numpy column arrays instead of Python tuples, with one hard
guarantee: **charge equivalence**.  For any plan, budget, and spill
mode, the vectorized engine returns an
:class:`~repro.engine.executor.ExecutionOutcome` identical to the
Volcano engine's — same ``completed`` flag, same ``rows_out``, the same
``cost_spent`` to the last bit, and the same per-operator
:class:`~repro.engine.executor.OperatorStats`, on completed *and*
budget-killed runs alike.

How: instead of metering as it goes, the engine reconstructs the exact
*micro-charge stream* the Volcano interpreter would emit — every
``meter.charge(...)`` call, in pull order — as one flat float64 array,
assembled compositionally:

* each operator contributes its own charges plus, for every row a child
  yields, a consumption block spliced in at the yield position
  (:func:`_splice` computes the interleaving with cumsum arithmetic);
* every run-time monitor increment becomes a *stat event* carrying the
  number of completed charges required before it fires;
* budget enforcement is a cumulative sum over the stream (numpy's
  ``cumsum`` accumulates sequentially, so partial sums are bit-identical
  to the meter's one-at-a-time additions) plus a ``searchsorted`` for
  the first crossing; stats and the top-level row count are truncated at
  that exact micro-charge, reproducing the mid-row abort points of the
  row-at-a-time meter.

Budgeted runs stop *constructing* the stream shortly past the budget:
every truncation keeps an **exact prefix** of the true charge sequence
(probe phases are cut at an outer-yield boundary, never mid-splice), so
whenever the kill point falls inside the built prefix the truncated
stats are exact.  The cut heuristics use a 1%-plus-constant margin over
the budget; in the (defensive) case where a truncated stream turns out
not to contain the kill, or a stream would exceed
``REPRO_VECTOR_MAX_CHARGES``, the engine raises :class:`VectorFallback`
and the caller re-runs on the Volcano interpreter — correctness never
depends on the vector path being taken.
"""

from __future__ import annotations

import math
import os

import numpy as np

from repro.engine.executor import ExecutionOutcome, OperatorStats
from repro.errors import ExecutionError
from repro.obs.metrics import REGISTRY
from repro.optimizer import plans as planlib
from repro.perf.timers import TIMERS

#: Ceiling on the number of micro-charges the engine will materialize
#: for one execution; streams that would exceed it (quadratic
#: nested-loop blowups, astronomically large budgets) fall back to the
#: Volcano interpreter instead of exhausting memory.
MAX_CHARGES = int(os.environ.get("REPRO_VECTOR_MAX_CHARGES", 1 << 25))

#: Pair-expansion chunk size for nested-loop joins: outer rows are
#: processed in morsels of about this many candidate pairs so the
#: boolean match matrix never exceeds a few MB at a time.
MORSEL_PAIRS = 1 << 22

#: Kill-scan chunk: the budget crossing search cumsums the stream in
#: morsels of this many charges (with an exact scalar carry between
#: chunks) so killed runs stop scanning shortly past the budget.
MORSEL_CHARGES = 1 << 20


class VectorFallback(Exception):
    """The vector engine declined this execution; use Volcano instead."""


def _cumsum0(values):
    """Exclusive cumulative sum with a leading zero (length ``n + 1``)."""
    out = np.zeros(len(values) + 1, dtype=np.int64)
    np.cumsum(values, out=out[1:])
    return out


class _Stream:
    """The reconstructed micro-charge stream of one operator subtree.

    Attributes:
        charges: float64 array, one entry per ``meter.charge`` call, in
            exact Volcano pull order.
        yields: int64 array, strictly increasing; ``yields[i]`` is the
            number of completed charges at which output row ``i`` is
            handed to the consumer.
        events: list of ``(node_key, field, reqs, deltas)`` stat events;
            the counter gains ``deltas[j]`` (1 each when ``deltas`` is
            None) once ``reqs[j]`` charges have completed.
        columns: list of numpy arrays, the output rows (only the rows
            yielded before any truncation point).
        layout: tuple of ``(table, column)`` pairs naming ``columns``.
        truncated: True when construction stopped early because the
            budget cap was crossed — the stream is then an exact
            *prefix* of the true charge sequence, expected (but not
            required) to contain the kill point.
    """

    __slots__ = ("charges", "yields", "events", "columns", "layout",
                 "truncated")

    def __init__(self, charges, yields, events, columns, layout,
                 truncated=False):
        self.charges = charges
        self.yields = yields
        self.events = events
        self.columns = columns
        self.layout = layout
        self.truncated = truncated


class _BuildContext:
    """Tracks the charge mass built so far and enforces the ceilings.

    ``cap`` is the budget inflated by a 1%-plus-constant safety margin
    (float cumsum error over any realistic stream is orders of magnitude
    smaller): once a prefix's mass exceeds it, the budget crossing
    provably lies inside that prefix and construction may stop.
    ``MAX_CHARGES`` bounds memory regardless of budget.
    """

    __slots__ = ("cap", "spent", "count")

    def __init__(self, budget):
        self.cap = (float("inf") if budget is None
                    else float(budget) * 1.01 + 256.0)
        self.spent = 0.0
        self.count = 0

    def add(self, total, count):
        self.spent += float(total)
        self.count += int(count)
        if self.count > MAX_CHARGES:
            raise VectorFallback(
                f"charge stream exceeds {MAX_CHARGES} micro-charges"
            )

    def check_count(self, extra):
        if self.count + int(extra) > MAX_CHARGES:
            raise VectorFallback(
                f"charge stream would exceed {MAX_CHARGES} micro-charges"
            )

    def row_cut(self, per_row_charges, base):
        """Leading rows to keep of a contiguous per-row charge phase.

        ``base`` is a lower bound on the true mass preceding the phase
        (see :func:`_probe_cut` for why a lower bound is the safe
        direction).  Returns the full length when the cap is never
        crossed; otherwise the crossing row is included so the kept
        prefix mass strictly exceeds the cap.
        """
        n = len(per_row_charges)
        if self.cap == float("inf") or n == 0:
            return n
        mass = np.cumsum(per_row_charges) + base
        if mass[-1] <= self.cap:
            return n
        return int(np.searchsorted(mass, self.cap, side="right")) + 1


def _probe_cut(ctx, local_before, outer_s, per_row):
    """Row cut for a probe phase interleaved with the outer's charges.

    ``local_before`` is the mass of this node's own stream preceding the
    probe segment — startup plus any build/materialization phases.
    Ancestor charges that will precede this subtree once it is spliced
    into the final stream are unknown during bottom-up construction and
    are deliberately *not* estimated: under-estimating the preceding
    mass only lengthens the kept prefix (the budget crossing stays
    inside it), whereas over-estimating — e.g. counting sibling-subtree
    mass that actually lands *after* this phase — could cut the prefix
    short of the kill point and force a Volcano fallback.
    """
    n = int(len(per_row))
    if ctx.cap == float("inf") or n == 0:
        return n
    out_cum = np.concatenate(([0.0], np.cumsum(outer_s.charges)))
    mass = local_before + out_cum[outer_s.yields] + np.cumsum(per_row)
    if mass[-1] <= ctx.cap:
        return n
    return int(np.searchsorted(mass, ctx.cap, side="right")) + 1


# ----------------------------------------------------------------------
# Stream composition
# ----------------------------------------------------------------------

def _splice(child, block_sizes, blocks_flat, offset):
    """Insert per-yield consumption blocks into a child's stream.

    The consumer receives child row ``i`` after ``child.yields[i]``
    charges and immediately issues ``block_sizes[i]`` charges of its own
    (``blocks_flat`` holds them row-major).  Returns the combined charge
    segment plus, in final-stream coordinates (``offset`` = number of
    charges preceding the segment):

    * ``block_starts`` — index of each block's first charge;
    * ``map_req`` — maps a child-coordinate stat requirement to its
      final-stream value (events with ``req == yields[i]`` fire before
      block ``i``, exactly as the interpreter's post-charge increments
      precede the consumer's resumption).
    """
    y = child.yields
    b = np.asarray(block_sizes, dtype=np.int64)
    prefix_b = _cumsum0(b)
    m = child.charges.size
    out = np.empty(m + int(prefix_b[-1]), dtype=np.float64)
    if m:
        # yields_before[j] = #{i : y[i] <= j}, the searchsorted result,
        # via a linear bincount scan (y is strictly increasing in [1, m]).
        yields_before = np.cumsum(np.bincount(y, minlength=m + 1))[:m]
        out[np.arange(m, dtype=np.int64)
            + prefix_b[yields_before]] = child.charges
    block_starts = y + prefix_b[:-1]
    if blocks_flat.size:
        within = (np.arange(blocks_flat.size, dtype=np.int64)
                  - np.repeat(prefix_b[:-1], b))
        out[np.repeat(block_starts, b) + within] = blocks_flat

    def map_req(req):
        return req + prefix_b[np.searchsorted(y, req, side="left")] + offset

    return out, block_starts + offset, map_req


def _mapped_events(events, map_req):
    return [(key, field, map_req(reqs), deltas)
            for key, field, reqs, deltas in events]


def _shifted_events(events, offset):
    return [(key, field, reqs + offset, deltas)
            for key, field, reqs, deltas in events]


def _col_index(layout, node_key, table, column):
    try:
        return layout.index((table, column))
    except ValueError:
        raise ExecutionError(
            f"operator {node_key}: no column {table}.{column}"
        ) from None


def _join_key_indices(node, outer_layout, inner_layout):
    """Per-side column positions for a join node's key pairs."""
    outer_tables = node.outer.tables
    outer_idx, inner_idx = [], []
    for pred in node.applied_preds:
        left, right = pred.tables
        if left in outer_tables:
            o_ref, i_ref = (left, pred.column_for(left)), \
                (right, pred.column_for(right))
        else:
            o_ref, i_ref = (right, pred.column_for(right)), \
                (left, pred.column_for(left))
        outer_idx.append(_col_index(outer_layout, node.key, *o_ref))
        inner_idx.append(_col_index(inner_layout, node.key, *i_ref))
    return outer_idx, inner_idx


# ----------------------------------------------------------------------
# Vectorized predicates and key grouping
# ----------------------------------------------------------------------

def _filter_mask(op, values, constant):
    if op == "=":
        return values == constant
    if op == "<":
        return values < constant
    if op == "<=":
        return values <= constant
    if op == ">":
        return values > constant
    if op == ">=":
        return values >= constant
    if op == "between":
        low, high = constant
        return (values >= low) & (values <= high)
    raise ExecutionError(f"unsupported filter op {op!r}")


def _apply_filters(arrays, names, filters, num_rows):
    mask = np.ones(num_rows, dtype=bool)
    for f in filters:
        mask &= _filter_mask(f.op, arrays[names.index(f.column)], f.value)
    return mask


def _group_ids(left_cols, right_cols):
    """Consistent group ids: equal key tuples share an id across sides."""
    n_left = left_cols[0].size
    if len(left_cols) == 1:
        combined = np.concatenate((left_cols[0], right_cols[0]))
        _, inverse = np.unique(combined, return_inverse=True)
    else:
        combined = np.stack(
            [np.concatenate((a, b)) for a, b in zip(left_cols, right_cols)],
            axis=1,
        )
        _, inverse = np.unique(combined, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1).astype(np.int64, copy=False)
    return inverse[:n_left], inverse[n_left:]


def _match_counts(gid_probe, gid_build):
    """Per probe row: how many build rows share its key (plus lookup
    tables for the row-major expansion)."""
    n_groups = int(max(gid_probe.max(initial=-1),
                       gid_build.max(initial=-1))) + 1
    build_order = np.argsort(gid_build, kind="stable")
    group_counts = np.bincount(gid_build, minlength=max(n_groups, 1))
    group_starts = _cumsum0(group_counts)[:-1]
    counts = (group_counts[gid_probe].astype(np.int64, copy=False)
              if gid_probe.size else np.zeros(0, dtype=np.int64))
    return counts, group_starts, build_order


def _expand_matches(gid_probe, counts, group_starts, build_order):
    """Row-major ``(probe_row, build_row)`` match pairs, build rows in
    original (insertion) order within each probe row — the hash-table
    bucket order of the interpreter."""
    total = int(counts.sum())
    rep = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        _cumsum0(counts)[:-1], counts)
    flat = build_order[group_starts[gid_probe[rep]] + within]
    return rep, within, flat


# ----------------------------------------------------------------------
# Operator stream builders
# ----------------------------------------------------------------------

def _empty_columns(layout):
    return [np.empty(0, dtype=np.int64) for _ in layout]


def _seq_scan_stream(table_name, data, filters, model, ctx, key):
    names = list(data.columns)
    arrays = [data.column(n) for n in names]
    n = data.num_rows
    ctx.check_count(1 + 2 * n)
    mask = _apply_filters(arrays, names, filters, n)
    n_pass = int(mask.sum())
    passes_before = np.cumsum(mask) - mask  # exclusive per-row pass count
    seq_pos = 1 + np.arange(n, dtype=np.int64) + passes_before
    total = 1 + n + n_pass
    charges = np.empty(total, dtype=np.float64)
    charges[0] = model.startup
    charges[seq_pos] = model.seq_tuple
    out_pos = seq_pos[mask] + 1
    charges[out_pos] = model.output_tuple
    yields = out_pos + 1
    events = [
        (key, "rows_outer", seq_pos + 1, None),
        (key, "rows_out", out_pos + 1, None),
    ]
    ctx.add(model.startup + model.seq_tuple * n + model.output_tuple * n_pass,
            total)
    columns = [arr[mask] for arr in arrays]
    layout = tuple((table_name, c) for c in names)
    return _Stream(charges, yields, events, columns, layout)


def _index_scan_stream(table_name, data, filters, model, ctx, key):
    names = list(data.columns)
    arrays = [data.column(n) for n in names]
    indexed = [f for f in filters if f.op == "=" and f.column in names]
    if not indexed:
        # The interpreter's fallback re-enters SeqScan.rows(), which
        # charges its own startup — the double charge is reproduced.
        ctx.add(model.startup, 1)
        sub = _seq_scan_stream(table_name, data, filters, model, ctx, key)
        charges = np.concatenate(([model.startup], sub.charges))
        return _Stream(charges, sub.yields + 1, _shifted_events(sub.events, 1),
                       sub.columns, sub.layout, sub.truncated)
    lead = indexed[0]
    matches = np.flatnonzero(arrays[names.index(lead.column)] == lead.value)
    residual = [f for f in filters if f is not lead]
    gathered = [arr[matches] for arr in arrays]
    m = matches.size
    ctx.check_count(2 + 2 * m)
    mask = _apply_filters(gathered, names, residual, m)
    n_pass = int(mask.sum())
    descend = model.index_lookup * math.log2(max(data.num_rows, 2))
    passes_before = np.cumsum(mask) - mask
    fetch_pos = 2 + np.arange(m, dtype=np.int64) + passes_before
    total = 2 + m + n_pass
    charges = np.empty(total, dtype=np.float64)
    charges[0] = model.startup
    charges[1] = descend
    charges[fetch_pos] = model.index_fetch
    out_pos = fetch_pos[mask] + 1
    charges[out_pos] = model.output_tuple
    yields = out_pos + 1
    events = [
        (key, "rows_outer", fetch_pos + 1, None),
        (key, "rows_out", out_pos + 1, None),
    ]
    ctx.add(model.startup + descend + model.index_fetch * m
            + model.output_tuple * n_pass, total)
    columns = [arr[mask] for arr in gathered]
    layout = tuple((table_name, c) for c in names)
    return _Stream(charges, yields, events, columns, layout)


def _hash_join_stream(node, outer_s, inner_s, model, ctx, key):
    layout = outer_s.layout + inner_s.layout
    outer_idx, inner_idx = _join_key_indices(node, outer_s.layout,
                                             inner_s.layout)
    ctx.add(model.startup, 1)

    # Build phase: one hash_build charge per inner row, at its yield.
    n_inner = inner_s.yields.size
    build_blocks = np.full(n_inner, model.hash_build)
    ctx.add(model.hash_build * n_inner, n_inner)
    build_seg, build_starts, map_inner = _splice(
        inner_s, np.ones(n_inner, dtype=np.int64), build_blocks, 1)
    events = _mapped_events(inner_s.events, map_inner)
    events.append((key, "rows_inner", build_starts + 1, None))
    local_before = model.startup + float(build_seg.sum())
    if inner_s.truncated or local_before > ctx.cap:
        charges = np.concatenate(([model.startup], build_seg))
        return _Stream(charges, np.empty(0, dtype=np.int64), events,
                       _empty_columns(layout), layout, truncated=True)

    # Probe phase: per outer row a hash_probe then an output_tuple per
    # bucket match (insertion order = inner row order).
    probe_offset = 1 + build_seg.size
    n_outer = outer_s.yields.size
    gid_outer, gid_inner = _group_ids(
        [outer_s.columns[i] for i in outer_idx],
        [inner_s.columns[i] for i in inner_idx],
    )
    counts, group_starts, build_order = _match_counts(gid_outer, gid_inner)
    per_row = model.hash_probe + model.output_tuple * counts
    cut = _probe_cut(ctx, local_before, outer_s, per_row)
    truncated = outer_s.truncated or cut < n_outer
    counts = counts.copy()
    counts[cut:] = 0
    block_sizes = 1 + counts
    block_sizes[cut:] = 0
    flat_total = int(block_sizes.sum())
    ctx.check_count(flat_total)
    blocks = np.full(flat_total, model.output_tuple)
    blocks[_cumsum0(block_sizes)[:-1][:cut]] = model.hash_probe
    ctx.add(float(per_row[:cut].sum()), flat_total)
    probe_seg, probe_starts, map_outer = _splice(
        outer_s, block_sizes, blocks, probe_offset)
    if cut < n_outer:
        # Cut at the yield of the first dropped row so the stream stays
        # an exact prefix (the true stream has a probe block there).
        probe_seg = probe_seg[:int(outer_s.yields[cut]) + flat_total]
    events.extend(_mapped_events(outer_s.events, map_outer))
    events.append((key, "rows_outer", probe_starts[:cut] + 1, None))
    rep, within, flat_inner = _expand_matches(
        gid_outer[:cut], counts[:cut], group_starts, build_order)
    out_req = probe_starts[rep] + within + 2
    events.append((key, "rows_out", out_req, None))
    charges = np.concatenate(([model.startup], build_seg, probe_seg))
    columns = ([arr[rep] for arr in outer_s.columns]
               + [arr[flat_inner] for arr in inner_s.columns])
    return _Stream(charges, out_req, events, columns, layout, truncated)


def _merge_join_stream(node, outer_s, inner_s, model, ctx, key):
    layout = outer_s.layout + inner_s.layout
    outer_idx, inner_idx = _join_key_indices(node, outer_s.layout,
                                             inner_s.layout)
    segments = [np.array([model.startup])]
    events = []
    offset = 1
    local = model.startup  # this node's stream mass built so far
    ctx.add(model.startup, 1)
    sorted_sides = []
    for child, idx, field in (
            (outer_s, outer_idx, "rows_outer"),
            (inner_s, inner_idx, "rows_inner")):
        # Drain (uncharged per row, monitored at each yield), then one
        # sort charge covering the whole materialized side.
        segments.append(child.charges)
        events.extend(_shifted_events(child.events, offset))
        events.append((key, field, child.yields + offset, None))
        offset += child.charges.size
        local += float(child.charges.sum())
        if child.truncated:
            return _Stream(np.concatenate(segments),
                           np.empty(0, dtype=np.int64), events,
                           _empty_columns(layout), layout, truncated=True)
        n_side = child.yields.size
        per_row = model.sort_unit * math.log2(max(n_side, 2))
        sort_charge = per_row * n_side
        segments.append(np.array([sort_charge]))
        ctx.add(sort_charge, 1)
        offset += 1
        local += sort_charge
        order = (np.lexsort(tuple(child.columns[i] for i in reversed(idx)))
                 if n_side else np.empty(0, dtype=np.int64))
        sorted_sides.append((child, order))
        if local > ctx.cap:
            return _Stream(np.concatenate(segments),
                           np.empty(0, dtype=np.int64), events,
                           _empty_columns(layout), layout, truncated=True)

    (left, left_order), (right, right_order) = sorted_sides
    merge_charge = model.merge_unit * (left_order.size + right_order.size)
    segments.append(np.array([merge_charge]))
    ctx.add(merge_charge, 1)
    offset += 1
    local += merge_charge
    if local > ctx.cap:
        return _Stream(np.concatenate(segments),
                       np.empty(0, dtype=np.int64), events,
                       _empty_columns(layout), layout, truncated=True)

    gid_left, gid_right = _group_ids(
        [left.columns[i][left_order] for i in outer_idx],
        [right.columns[i][right_order] for i in inner_idx],
    )
    counts, group_starts, build_order = _match_counts(gid_left, gid_right)
    cut = ctx.row_cut(model.output_tuple * counts, local)
    truncated = cut < counts.size
    rep, _, flat_right = _expand_matches(
        gid_left[:cut], counts[:cut], group_starts, build_order)
    total_out = rep.size
    ctx.check_count(total_out)
    segments.append(np.full(total_out, model.output_tuple))
    ctx.add(model.output_tuple * total_out, total_out)
    yields = offset + 1 + np.arange(total_out, dtype=np.int64)
    events.append((key, "rows_out", yields.copy(), None))
    columns = ([arr[left_order][rep] for arr in left.columns]
               + [arr[right_order][flat_right] for arr in right.columns])
    return _Stream(np.concatenate(segments), yields, events, columns, layout,
                   truncated)


def _nl_join_stream(node, outer_s, inner_s, model, ctx, key):
    layout = outer_s.layout + inner_s.layout
    outer_idx, inner_idx = _join_key_indices(node, outer_s.layout,
                                             inner_s.layout)
    ctx.add(model.startup, 1)
    # Inner side is materialized uncharged, monitored at each yield.
    events = _shifted_events(inner_s.events, 1)
    events.append((key, "rows_inner", inner_s.yields + 1, None))
    probe_offset = 1 + inner_s.charges.size
    local_before = model.startup + float(inner_s.charges.sum())
    if inner_s.truncated or local_before > ctx.cap:
        charges = np.concatenate(([model.startup], inner_s.charges))
        return _Stream(charges, np.empty(0, dtype=np.int64), events,
                       _empty_columns(layout), layout, truncated=True)

    n_outer = outer_s.yields.size
    n_inner = inner_s.yields.size
    gid_outer, gid_inner = _group_ids(
        [outer_s.columns[i] for i in outer_idx],
        [inner_s.columns[i] for i in inner_idx],
    )
    counts, _, _ = _match_counts(gid_outer, gid_inner)
    per_row = model.nl_pair * n_inner + model.output_tuple * counts
    cut = _probe_cut(ctx, local_before, outer_s, per_row)
    truncated = outer_s.truncated or cut < n_outer
    counts = counts.copy()
    counts[cut:] = 0
    block_sizes = np.full(n_outer, n_inner, dtype=np.int64) + counts
    block_sizes[cut:] = 0
    flat_total = int(block_sizes.sum())
    ctx.check_count(flat_total)
    ctx.add(float(per_row[:cut].sum()), flat_total)

    # Pair expansion in morsels: per kept outer row, one nl_pair charge
    # per inner row with an output_tuple spliced in after each match.
    blocks = np.empty(flat_total, dtype=np.float64)
    rel_starts = _cumsum0(block_sizes)[:-1]
    out_rel_chunks, out_row_chunks, out_inner_chunks = [], [], []
    step = max(1, MORSEL_PAIRS // max(n_inner, 1))
    for lo in range(0, cut, step):
        hi = min(cut, lo + step)
        match = gid_outer[lo:hi, None] == gid_inner[None, :]
        pair_rel = (np.arange(n_inner, dtype=np.int64)[None, :]
                    + np.cumsum(match, axis=1) - match)
        base = rel_starts[lo:hi, None]
        blocks[(base + pair_rel).ravel()] = model.nl_pair
        rows_m, inner_m = np.nonzero(match)
        out_rel = base[rows_m, 0] + pair_rel[rows_m, inner_m] + 1
        blocks[out_rel] = model.output_tuple
        out_rel_chunks.append(out_rel)
        out_row_chunks.append(rows_m + lo)
        out_inner_chunks.append(inner_m)
    empty = np.empty(0, dtype=np.int64)
    out_rel = np.concatenate(out_rel_chunks) if out_rel_chunks else empty
    out_rows = np.concatenate(out_row_chunks) if out_row_chunks else empty
    out_inner = np.concatenate(out_inner_chunks) if out_inner_chunks else empty

    probe_seg, probe_starts, map_outer = _splice(
        outer_s, block_sizes, blocks, probe_offset)
    if cut < n_outer:
        probe_seg = probe_seg[:int(outer_s.yields[cut]) + flat_total]
    events.extend(_mapped_events(outer_s.events, map_outer))
    # rows_outer increments *before* any pair charge of its block.
    events.append((key, "rows_outer", probe_starts[:cut], None))
    delta = probe_starts - rel_starts - probe_offset  # per-row splice shift
    out_abs = out_rel + probe_offset + delta[out_rows]
    yields = out_abs + 1
    events.append((key, "rows_out", yields.copy(), None))
    charges = np.concatenate(([model.startup], inner_s.charges, probe_seg))
    columns = ([arr[out_rows] for arr in outer_s.columns]
               + [arr[out_inner] for arr in inner_s.columns])
    return _Stream(charges, yields, events, columns, layout, truncated)


def _index_nl_join_stream(node, outer_s, query, data_provider, model, ctx,
                          key):
    pred = node.applied_preds[0]
    inner_table = next(iter(node.inner.tables))
    data = data_provider.table(inner_table)
    names = list(data.columns)
    arrays = [data.column(n) for n in names]
    layout = outer_s.layout + tuple((inner_table, c) for c in names)
    left, right = pred.tables
    outer_ref = ((left, pred.column_for(left)) if left in node.outer.tables
                 else (right, pred.column_for(right)))
    outer_key = _col_index(outer_s.layout, key, *outer_ref)
    inner_col = pred.column_for(inner_table)
    inner_filters = query.filters_on(inner_table)
    residual_mask = _apply_filters(arrays, names, inner_filters,
                                   data.num_rows)
    inner_filtered = int(residual_mask.sum())
    descend = model.index_lookup * math.log2(max(data.num_rows, 2)) * 0.25

    ctx.add(model.startup, 1)
    # rows_inner is *assigned* (not incremented) right after startup;
    # the stats record starts at zero so a one-shot delta is identical.
    events = [(key, "rows_inner", np.array([1], dtype=np.int64),
               np.array([inner_filtered], dtype=np.int64))]
    n_outer = outer_s.yields.size
    gid_outer, gid_table = _group_ids(
        [outer_s.columns[outer_key]],
        [arrays[names.index(inner_col)]],
    )
    counts, group_starts, table_order = _match_counts(gid_outer, gid_table)
    pass_by_group = np.bincount(gid_table[residual_mask],
                                minlength=max(group_starts.size, 1))
    out_counts = (pass_by_group[gid_outer].astype(np.int64, copy=False)
                  if gid_outer.size else np.zeros(0, dtype=np.int64))

    per_row = descend + model.index_fetch * counts \
        + model.output_tuple * out_counts
    cut = _probe_cut(ctx, model.startup, outer_s, per_row)
    truncated = outer_s.truncated or cut < n_outer
    counts = counts.copy()
    counts[cut:] = 0
    out_counts = out_counts.copy()
    out_counts[cut:] = 0
    block_sizes = 1 + counts + out_counts
    block_sizes[cut:] = 0
    flat_total = int(block_sizes.sum())
    ctx.check_count(flat_total)
    ctx.add(float(per_row[:cut].sum()), flat_total)

    rep, within, flat_tbl = _expand_matches(
        gid_outer[:cut], counts[:cut], group_starts, table_order)
    passes = (residual_mask[flat_tbl] if flat_tbl.size
              else np.empty(0, dtype=bool))
    # Per candidate: exclusive count of earlier passing candidates in
    # the same outer row's block (each added one output_tuple charge).
    pass_all = _cumsum0(passes)
    row_starts_in_exp = _cumsum0(counts[:cut])[:-1]
    row_base = pass_all[row_starts_in_exp]
    pass_before = pass_all[:-1] - np.repeat(row_base, counts[:cut])
    rel_starts = _cumsum0(block_sizes)[:-1]
    fetch_rel = 1 + within + pass_before  # after the descend charge
    blocks = np.empty(flat_total, dtype=np.float64)
    blocks[rel_starts[:cut]] = descend
    blocks[rel_starts[rep] + fetch_rel] = model.index_fetch
    blocks[rel_starts[rep[passes]] + fetch_rel[passes] + 1] = \
        model.output_tuple

    probe_seg, probe_starts, map_outer = _splice(
        outer_s, block_sizes, blocks, 1)
    if cut < n_outer:
        probe_seg = probe_seg[:int(outer_s.yields[cut]) + flat_total]
    events.extend(_mapped_events(outer_s.events, map_outer))
    # rows_outer increments before the descend charge of its block.
    events.append((key, "rows_outer", probe_starts[:cut], None))
    delta = probe_starts - rel_starts - 1
    out_abs = (rel_starts[rep[passes]] + fetch_rel[passes] + 2
               + delta[rep[passes]])
    yields = out_abs + 1
    events.append((key, "rows_out", yields.copy(), None))
    charges = np.concatenate(([model.startup], probe_seg))
    columns = ([arr[rep[passes]] for arr in outer_s.columns]
               + [arr[flat_tbl[passes]] for arr in arrays])
    return _Stream(charges, yields, events, columns, layout, truncated)


def _build_stream(node, query, data_provider, model, ctx, node_keys):
    """Mirror of ``spill._build_operator`` producing charge streams."""
    node_keys.append(node.key)
    if isinstance(node, planlib.ScanNode):
        data = data_provider.table(node.table)
        builder = (_index_scan_stream if node.method == planlib.INDEX_SCAN
                   else _seq_scan_stream)
        return builder(node.table, data, node.applied_preds, model, ctx,
                       node.key)

    outer = _build_stream(node.outer, query, data_provider, model, ctx,
                          node_keys)
    if node.op == planlib.INDEX_NL_JOIN:
        if len(node.applied_preds) != 1:
            raise ExecutionError(
                "index nested-loop join supports a single join predicate"
            )
        return _index_nl_join_stream(node, outer, query, data_provider,
                                     model, ctx, node.key)
    inner = _build_stream(node.inner, query, data_provider, model, ctx,
                          node_keys)
    if node.op == planlib.HASH_JOIN:
        return _hash_join_stream(node, outer, inner, model, ctx, node.key)
    if node.op == planlib.MERGE_JOIN:
        return _merge_join_stream(node, outer, inner, model, ctx, node.key)
    if node.op == planlib.NL_JOIN:
        return _nl_join_stream(node, outer, inner, model, ctx, node.key)
    raise ExecutionError(f"unknown join operator {node.op!r}")


# ----------------------------------------------------------------------
# Budget enforcement and outcome assembly
# ----------------------------------------------------------------------

def _kill_index(charges, budget):
    """First micro-charge whose cumulative sum exceeds the budget.

    Returns ``(kill, final_spent)``; ``kill`` is None for completed
    runs.  The scan cumsums in morsels with an exact scalar carry, so
    partial sums are bit-identical to the meter's sequential additions
    and killed runs stop scanning shortly past the budget.
    """
    carry = 0.0
    n = charges.size
    for lo in range(0, n, MORSEL_CHARGES):
        cum = np.cumsum(
            np.concatenate(([carry], charges[lo:lo + MORSEL_CHARGES])))[1:]
        if budget is not None and cum[-1] > budget:
            return lo + int(np.searchsorted(cum, budget, side="right")), None
        carry = float(cum[-1])
    return None, carry


def execute_vectorized(root, query, data_provider, cost_model, budget=None,
                       spilled_epp=""):
    """Run one (sub)plan on the vector engine.

    Args:
        root: plan subtree to execute (spill surgery already applied by
            the caller).
        query / data_provider / cost_model / budget: as in
            :func:`repro.engine.spill.execute_plan`.
        spilled_epp: label recorded on the outcome.

    Returns:
        An :class:`ExecutionOutcome` identical to the Volcano engine's.

    Raises:
        VectorFallback: when the execution is better served by the
            interpreter — the charge stream would exceed
            ``REPRO_VECTOR_MAX_CHARGES``, or (defensively) a truncated
            stream turned out not to contain the budget crossing.
    """
    ctx = _BuildContext(budget)
    node_keys = []
    stream = _build_stream(root, query, data_provider, cost_model, ctx,
                           node_keys)
    kill, spent = _kill_index(stream.charges, budget)
    if kill is None and stream.truncated:
        # The cap margin makes this nearly unreachable; fall back rather
        # than ever reporting a truncated stream as completed.
        raise VectorFallback("truncated stream completed under budget")

    stats = {k: OperatorStats(node_key=k) for k in node_keys}
    for k, field, reqs, deltas in stream.events:
        if kill is None:
            count = int(reqs.size) if deltas is None else int(deltas.sum())
        else:
            idx = int(np.searchsorted(reqs, kill, side="right"))
            count = idx if deltas is None else int(deltas[:idx].sum())
        record = stats[k]
        setattr(record, field, getattr(record, field) + count)
    if kill is None:
        rows_out = int(stream.yields.size)
    else:
        rows_out = int(np.searchsorted(stream.yields, kill, side="right"))
    TIMERS.incr("vector_exec_killed" if kill is not None
                else "vector_exec_completed")
    if kill is not None:
        REGISTRY.incr("budget_kill_executions", labels={"engine": "vector"})
        REGISTRY.observe("budget_kill_cost", budget)
    return ExecutionOutcome(
        completed=kill is None,
        rows_out=rows_out,
        cost_spent=budget if kill is not None else float(spent),
        budget=budget,
        stats=stats,
        spilled_epp=spilled_epp,
    )
