"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema definition is inconsistent (unknown table/column, bad key)."""


class QueryError(ReproError):
    """A query is malformed (disconnected join graph, unknown predicate)."""


class OptimizerError(ReproError):
    """The optimizer could not produce a plan for the query."""


class ExecutionError(ReproError):
    """A runtime failure inside the execution engine."""


class BudgetExhausted(ExecutionError):
    """Raised by the budgeted executor when a plan exceeds its cost budget.

    This is the mechanism behind the paper's "time-limited execution":
    the partially-computed results are discarded and the discovery
    algorithm moves on to its next budgeted execution.
    """

    def __init__(self, budget, spent):
        super().__init__(f"cost budget {budget:.1f} exhausted (spent {spent:.1f})")
        self.budget = budget
        self.spent = spent


class DiscoveryError(ReproError):
    """A selectivity-discovery algorithm reached an inconsistent state."""
