"""Iso-cost contours over the Optimal Cost Surface.

Paper Section 2.5: the OCS is sliced by ``m`` cost hyperplanes — the
first at ``C_min``, each subsequent at ``ratio`` times the previous, the
last capped at ``C_max``.  On the discretized grid a contour ``IC_i`` is
the *band* of locations whose optimal cost lies in
``(CC_{i-1}, CC_i]`` — the standard discretization used by the
PlanBouquet implementation.  The plans optimal somewhere inside band
``i`` are the contour's plan set ``PL_i``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import DiscoveryError

#: Cost-doubling is the paper's default ratio (footnote 3: it minimizes
#: PlanBouquet's guarantee; Section 4.2 notes ~1.8 is marginally better
#: for SpillBound — an ablation benchmark sweeps this).
DEFAULT_COST_RATIO = 2.0


class Contour:
    """One iso-cost contour band.

    Attributes:
        index: 1-based contour number (``IC_index``).
        budget: the contour cost ``CC_index`` — also the execution budget
            granted to each plan executed while crossing this contour.
        points: flat grid indices of the band's locations.
        coords: ``(P, D)`` int matrix of the same locations.
        plan_ids: ``(P,)`` POSP plan id per location.
    """

    def __init__(self, index, budget, points, coords, plan_ids,
                 plan_keys=None):
        self.index = index
        self.budget = budget
        self.points = points
        self.coords = coords
        self.plan_ids = plan_ids
        self._plan_keys = plan_keys

    @property
    def density(self):
        """Number of distinct plans on the contour (the paper's density)."""
        return len(np.unique(self.plan_ids)) if len(self.plan_ids) else 0

    def unique_plan_ids(self):
        """Distinct plan ids on the contour, in plan-*key* order.

        Plan ids are surface-local: the eager build numbers plans by
        globally sorted key, the lazy surface in resolution order.  Key
        order is the mode-invariant one, so every consumer that iterates
        (and tie-breaks) over contour plans sees the same sequence on
        both surfaces.  On an eager surface id order *is* key order, so
        this changes nothing there.
        """
        ids = [int(p) for p in np.unique(self.plan_ids)]
        if self._plan_keys is not None:
            ids.sort(key=lambda pid: self._plan_keys[pid])
        return ids

    def __repr__(self):
        return (
            f"Contour(IC{self.index}, CC={self.budget:.3g}, "
            f"|points|={len(self.points)}, density={self.density})"
        )


class ContourSet:
    """All iso-cost contours of an ESS.

    Args:
        ess: the built :class:`~repro.ess.ocs.ESS`.
        cost_ratio: geometric spacing between consecutive contour costs.
    """

    #: Relative slack applied to costs before the band search, so a cost
    #: sitting exactly on a budget lands in the contour it caps.  Shared
    #: with :class:`~repro.ess.lazy.LazyContourSet`, whose on-demand band
    #: views must be bit-identical to this eager assignment.
    BAND_EPS = 1e-12

    def __init__(self, ess, cost_ratio=DEFAULT_COST_RATIO):
        if cost_ratio <= 1.0:
            raise DiscoveryError("contour cost ratio must exceed 1")
        self.ess = ess
        self.cost_ratio = float(cost_ratio)
        cmin, cmax = ess.min_cost, ess.max_cost
        if cmax < cmin:
            raise DiscoveryError("OCS violates PCM: max cost below min cost")
        span = cmax / cmin
        steps = max(0, math.ceil(math.log(span, cost_ratio) - 1e-12))
        self.num_contours = steps + 1
        budgets = [cmin * cost_ratio**i for i in range(self.num_contours)]
        budgets[-1] = cmax  # cap the last contour at C_max (paper Sec 2.5)
        self.budgets = np.asarray(budgets, dtype=float)
        self._contours = [None] * self.num_contours
        self._init_band()

    def _init_band(self):
        """Band assignment: first contour whose budget covers the cost.

        The lazy subclass overrides this with an on-demand view instead
        of a full-grid array (:mod:`repro.ess.lazy`).
        """
        self.band = self.band_of_costs(self.ess.optimal_cost)

    def band_of_costs(self, costs):
        """0-based contour band per entry of an optimal-cost array.

        The single band formula both the eager and lazy surfaces use —
        keeping it in one place is what makes lazy band views
        bit-identical to the eager precomputed array.
        """
        band = np.searchsorted(
            self.budgets, costs * (1.0 - self.BAND_EPS), side="left"
        )
        return np.minimum(band, self.num_contours - 1).astype(np.int32)

    def budget(self, index):
        """The cost ``CC_index`` of a 1-based contour index."""
        return float(self.budgets[index - 1])

    def contour(self, index):
        """The 1-based contour ``IC_index`` (built lazily)."""
        if not 1 <= index <= self.num_contours:
            raise DiscoveryError(
                f"contour index {index} outside [1, {self.num_contours}]"
            )
        cached = self._contours[index - 1]
        if cached is None:
            points = self._band_members(index - 1)
            grid = self.ess.grid
            coords = np.column_stack(
                [grid.coords_at(d, points).astype(np.int32)
                 for d in range(grid.num_dims)]
            ) if len(points) else np.empty((0, grid.num_dims), dtype=np.int32)
            plan_ids = self.ess.plan_ids[points]
            cached = Contour(index, self.budget(index), points, coords,
                             plan_ids, plan_keys=self.ess.plan_keys)
            self._contours[index - 1] = cached
        return cached

    def _band_members(self, band):
        """Flat indices of one 0-based band, in ascending grid order."""
        return np.flatnonzero(self.band == band).astype(np.int64)

    def __iter__(self):
        return (self.contour(i) for i in range(1, self.num_contours + 1))

    def band_of(self, flat):
        """1-based contour index of a grid location's band."""
        return int(self.band[flat]) + 1

    @property
    def max_density(self):
        """The paper's rho: plan cardinality of the densest contour."""
        return max(c.density for c in self)

    def densities(self):
        return [c.density for c in self]

    def __repr__(self):
        return (
            f"ContourSet(m={self.num_contours}, ratio={self.cost_ratio}, "
            f"rho={self.max_density})"
        )
