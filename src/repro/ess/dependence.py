"""Dependent selectivities: the paper's stated future work, implemented.

The framework assumes selectivity independence (SI, Section 2.4): the
cardinality of a subtree applying several epps is the product of their
selectivities.  Real data violates this — correlated predicates make the
joint selectivity deviate from the product — and both the paper's
conclusion and Section 2.4 flag the extension to dependent selectivities
as future work.

This module models the violation and measures its impact:

* **Correlation model.**  For a correlated pair of epps ``(a, b)`` with
  strength ``theta`` in [0, 1], the joint selectivity is the fuzzy-AND
  interpolation ``(s_a * s_b)^(1-theta) * min(s_a, s_b)^theta`` —
  ``theta = 0`` is independence, ``theta = 1`` full correlation (the
  PostgreSQL-style bound).  The joint is monotone in each marginal, so
  the corrected costs still satisfy PCM.
* **Discovery under violation.**  The *machinery* (POSP, contours, plan
  choices) is still built under SI — that is what a deployed system
  would do, since it cannot see the dependency — but execution outcomes
  (completions, learnt thresholds, charges) follow the *corrected*
  costs.  :class:`CorrelatedSpillBound` runs exactly that scenario, so
  the degradation of the MSO guarantee under SI violation becomes a
  measurable quantity (see the dependence ablation benchmark).

SI violation is exactly a structured cost-model error, so Section 7's
``(1 + delta)^2`` analysis gives the reference envelope: with the
correction factor bounded in ``[1/(1+delta), 1+delta]`` on the explored
region, the corrected MSO stays within ``(D^2 + 3D)(1+delta)^2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.spill_bound import SpillBound, learnable_index
from repro.errors import DiscoveryError, QueryError
from repro.optimizer.plans import (
    ScanNode,
    _node_cost,
    find_epp_node,
    predicate_selectivity,
)
from repro.optimizer.plans import JoinNode, INDEX_NL_JOIN

_EPS = 1e-9


@dataclass(frozen=True)
class CorrelationSpec:
    """A pairwise dependency between two ESS dimensions."""

    dim_a: int
    dim_b: int
    theta: float

    def __post_init__(self):
        if self.dim_a == self.dim_b:
            raise QueryError("a correlation needs two distinct dimensions")
        if not 0.0 <= self.theta <= 1.0:
            raise QueryError("correlation strength must lie in [0, 1]")

    @property
    def dims(self):
        return frozenset((self.dim_a, self.dim_b))


def joint_correction(sel_a, sel_b, theta):
    """Multiplicative correction to the SI product for one pair.

    ``joint = product * correction`` with
    ``correction = (min / product)^theta >= 1``.
    """
    product = np.asarray(sel_a, dtype=float) * np.asarray(sel_b, dtype=float)
    smallest = np.minimum(sel_a, sel_b)
    return (smallest / np.maximum(product, 1e-300)) ** theta


def _correlated_cardinalities(plan, query, env, specs):
    """Per-node output cardinalities with joint corrections applied.

    The correction for a pair activates at the node where the *second*
    predicate of the pair is applied — the first point where the joint
    materializes — and propagates upward like any cardinality.
    """
    by_pair = {spec.dims: spec for spec in specs}
    cards = {}

    def walk(node):
        if isinstance(node, ScanNode):
            card = float(query.schema.table(node.table).cardinality)
            dims_below = set()
            for f in node.applied_preds:
                card = card * predicate_selectivity(f, query, env)
                if f.error_prone:
                    dims_below.add(query.epp_dimension(f.name))
            cards[id(node)] = card
            return card, dims_below
        outer_card, outer_dims = walk(node.outer)
        inner_card, inner_dims = walk(node.inner)
        card = outer_card * inner_card
        dims_below = outer_dims | inner_dims
        for pred in node.applied_preds:
            card = card * predicate_selectivity(pred, query, env)
            if not pred.error_prone:
                continue
            dim = query.epp_dimension(pred.name)
            for other in dims_below:
                spec = by_pair.get(frozenset((dim, other)))
                if spec is not None:
                    card = card * joint_correction(
                        env[dim], env[other], spec.theta
                    )
            dims_below.add(dim)
        cards[id(node)] = card
        return card, dims_below

    walk(plan)
    return cards


def correlated_plan_cost(plan, query, cost_model, env, specs):
    """``Cost(P, q)`` under the corrected (dependent) cardinalities."""
    cards = _correlated_cardinalities(plan, query, env, specs)
    inl_inner = {
        id(node.inner)
        for node in plan.iter_nodes()
        if isinstance(node, JoinNode) and node.op == INDEX_NL_JOIN
    }
    total = 0.0
    for node in plan.iter_nodes():
        total = total + _node_cost(node, query, cost_model, env, cards,
                                   inl_inner)
    return total


def correlated_subtree_cost(plan, query, cost_model, env, epp_name, specs):
    """Spill-subtree cost under corrected cardinalities."""
    node = find_epp_node(plan, epp_name)
    if node is None:
        raise DiscoveryError(f"plan {plan.key} does not apply {epp_name!r}")
    cards = _correlated_cardinalities(node, query, env, specs)
    inl_inner = {
        id(sub.inner)
        for sub in node.iter_nodes()
        if isinstance(sub, JoinNode) and sub.op == INDEX_NL_JOIN
    }
    total = 0.0
    for sub in node.iter_nodes():
        total = total + _node_cost(sub, query, cost_model, env, cards,
                                   inl_inner)
    return total


class CorrelatedWorld:
    """Corrected-cost oracle over a (SI-built) ESS."""

    def __init__(self, ess, specs):
        self.ess = ess
        self.specs = tuple(specs)
        self._cost_cache = {}
        self._optimal = None

    def plan_cost_array(self, plan_id):
        cached = self._cost_cache.get(plan_id)
        if cached is None:
            env = self.ess.grid.environment()
            cached = np.broadcast_to(
                np.asarray(
                    correlated_plan_cost(
                        self.ess.plans[plan_id], self.ess.query,
                        self.ess.cost_model, env, self.specs,
                    ),
                    dtype=float,
                ),
                (self.ess.grid.num_points,),
            )
            self._cost_cache[plan_id] = cached
        return cached

    def optimal_cost(self):
        """Best corrected cost achievable by any POSP plan, per location.

        (The true correlated optimum could use non-POSP plans; the POSP
        pool is the executable set, so this is the relevant oracle.)
        """
        if self._optimal is None:
            best = None
            for pid in range(self.ess.posp_size):
                cost = self.plan_cost_array(pid)
                best = cost.copy() if best is None else np.minimum(best, cost)
            self._optimal = best
        return self._optimal


class CorrelatedSpillBound(SpillBound):
    """SpillBound executing in a world that violates SI.

    Plan choices, contours and budgets come from the SI machinery (the
    deployed system cannot see the dependency); execution outcomes and
    charges follow the corrected costs.  The structural guarantee no
    longer formally applies — measuring how far the empirical MSO drifts
    is the extension experiment.
    """

    def __init__(self, ess, specs, contour_set=None, cost_ratio=2.0):
        super().__init__(ess, contour_set, cost_ratio)
        self.world = CorrelatedWorld(ess, specs)
        self._corr_curve_cache = {}

    def _plan_steps(self, contour_index, learned):
        """SI plan choices with corrected learning thresholds."""
        key = ("corr", contour_index, tuple(sorted(learned.items())))
        cached = self._corr_curve_cache.get(key)
        if cached is not None:
            return cached
        steps = dict(super()._plan_steps(contour_index, learned))
        for dim, step in list(steps.items()):
            curve = self._corrected_curve(step, dim)
            # No Lemma 3.1 floor clamp: under SI violation the budget
            # need not cover the corrected spill cost at q*, and the
            # possibility of under-learning is part of the phenomenon.
            steps[dim] = type(step)(
                dim=step.dim,
                plan_id=step.plan_id,
                qstar_coords=step.qstar_coords,
                budget=step.budget,
                learn_idx=learnable_index(curve, step.budget, 0),
                curve=curve,
            )
        self._corr_curve_cache[key] = steps
        return steps

    def _corrected_curve(self, step, dim):
        grid = self.ess.grid
        env = {
            d: grid.selectivity(d, step.qstar_coords[d])
            for d in range(grid.num_dims)
        }
        env[dim] = grid.values[dim]
        curve = correlated_subtree_cost(
            self.ess.plans[step.plan_id], self.ess.query,
            self.ess.cost_model, env, self.ess.query.epps[dim].name,
            self.world.specs,
        )
        return np.broadcast_to(
            np.asarray(curve, dtype=float), (grid.resolution[dim],)
        )

    def _run_1d(self, free_dim, learned, start_contour, coords, flat,
                trace, executions):
        """1-D bouquet tail under corrected plan costs, with a safety
        ladder extension (the SI band of qa no longer guarantees
        completion)."""
        per_contour = self._line_plans(free_dim, learned)
        total = 0.0
        num_exec = 0
        last_budget = self.contours.budget(self.contours.num_contours)
        for index in range(start_contour, self.contours.num_contours + 8):
            if index <= self.contours.num_contours:
                budget = self.contours.budget(index)
                plan_ids = per_contour[index - 1]
            else:
                # Ladder extension: retry the top contour's plans with
                # doubled budgets until the corrected cost fits.
                budget = last_budget * (
                    self.contours.cost_ratio
                    ** (index - self.contours.num_contours)
                )
                plan_ids = per_contour[-1] or [int(self.ess.plan_ids[flat])]
            for pid in plan_ids:
                cost_here = float(self.world.plan_cost_array(pid)[flat])
                completed = cost_here <= budget * (1.0 + _EPS)
                total += cost_here if completed else budget
                num_exec += 1
                if completed:
                    return total, num_exec, index, self.ess.plan_keys[pid]
        raise DiscoveryError("correlated 1-D tail failed to terminate")

    def _on_ladder_exhausted(self, coords, flat, learned):
        """Forced completion: run the SI-optimal plan for the learnt
        location to the end, paying its corrected cost."""
        pid = int(self.ess.plan_ids[flat])
        return float(self.world.plan_cost_array(pid)[flat]), \
            self.ess.plan_keys[pid]

    def run(self, qa, trace=False):
        result = super().run(qa, trace)
        # Re-judge against the corrected oracle.
        flat = self.ess.grid.flat_index(result.qa_coords)
        result.optimal_cost = float(self.world.optimal_cost()[flat])
        return result

    def evaluate_all(self):
        n = self.ess.grid.num_points
        sub = np.empty(n, dtype=float)
        for flat in range(n):
            sub[flat] = self.run(flat).suboptimality
        return sub
