"""Plan-diagram analysis.

The plan diagram — the partition of the selectivity space by optimal
plan — is the object the whole bouquet line of work is built on
[Harish, Darera & Haritsa, VLDB 2007].  This module computes the
standard diagnostics:

* region statistics (per-plan areas, the Gini skew of areas — real
  diagrams are dominated by a few large plans plus a fringe of slivers);
* switching profiles (how often the optimal plan changes along an axis
  — the source of contour plan density);
* the anorexic reduction curve (reduced diagram cardinality as the
  cost-bloat threshold grows — the "10% bloat suffices" observation).
"""

from __future__ import annotations

import numpy as np

from repro.ess.reduction import AnorexicReduction


def gini_coefficient(values):
    """Gini coefficient of a non-negative distribution (0 = uniform)."""
    values = np.sort(np.asarray(values, dtype=float))
    if values.size == 0 or values.sum() == 0:
        return 0.0
    n = values.size
    ranks = np.arange(1, n + 1)
    return float((2 * (ranks * values).sum()) / (n * values.sum()) - (n + 1) / n)


def plan_diagram_stats(ess):
    """Region statistics of the POSP plan diagram.

    Returns a dict with the plan count, per-plan region fractions, the
    largest plan's share, the Gini skew of region areas, and the count
    of "sliver" plans (< 1% of the space) — the population anorexic
    reduction exists to swallow.
    """
    total = ess.grid.num_points
    counts = np.bincount(ess.plan_ids, minlength=ess.posp_size)
    fractions = counts / total
    return {
        "num_plans": int(ess.posp_size),
        "fractions": fractions,
        "largest_share": float(fractions.max()),
        "gini": gini_coefficient(counts),
        "sliver_plans": int(np.sum((fractions > 0) & (fractions < 0.01))),
    }


def switching_profile(ess):
    """Plan switches along each axis of the diagram.

    Returns, per dimension, the mean number of optimal-plan changes
    encountered while sweeping that axis (all other coordinates fixed).
    High switch counts along a dimension mean dense contours — and a
    harder time for PlanBouquet's behavioural bound.
    """
    grid = ess.grid
    ids = ess.plan_ids.reshape(grid.shape)
    profile = []
    for axis in range(grid.num_dims):
        moved = np.moveaxis(ids, axis, -1)
        switches = np.sum(moved[..., 1:] != moved[..., :-1], axis=-1)
        profile.append(float(switches.mean()))
    return profile


def reduction_curve(ess, contour_set, lams=(0.0, 0.05, 0.1, 0.2, 0.5, 1.0)):
    """Reduced max contour density as a function of the bloat threshold.

    The anorexic-reduction observation: small cost-bloat allowances
    collapse plan diagrams dramatically.  Returns a list of
    ``{"lam": ..., "rho": ..., "bouquet_size": ...}`` rows.
    """
    rows = []
    for lam in lams:
        reduction = AnorexicReduction(ess, contour_set, lam=lam)
        bouquet = set()
        for reduced in reduction.reduced:
            bouquet.update(reduced.plan_ids)
        rows.append({
            "lam": float(lam),
            "rho": reduction.rho,
            "bouquet_size": len(bouquet),
        })
    return rows
