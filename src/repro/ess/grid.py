"""The discretized Error-prone Selectivity Space (ESS).

The ESS is the D-dimensional hypercube of epp selectivities
(paper Section 2.1).  "In practice, an appropriately discretized grid
version of [0,1]^D is considered as the ESS" — this module is that grid:
geometrically (log) spaced selectivity values per dimension, mirroring
the log-scaled axes of the paper's plan/contour diagrams.

Locations are handled in three interchangeable forms:

* *flat index* — an integer in ``[0, N)``; the canonical form for
  vectorized sweeps.
* *coords* — a tuple of per-dimension grid indices.
* *selectivities* — the tuple of actual selectivity values.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError

#: Default per-dimension grid resolution, chosen so that exhaustive
#: enumeration of the ESS stays laptop-friendly as D grows (the paper
#: evaluates D = 2..6).
DEFAULT_RESOLUTIONS = {1: 64, 2: 32, 3: 16, 4: 10, 5: 7, 6: 6}

DEFAULT_MIN_SELECTIVITY = 1e-5


def default_resolution(num_dims):
    """Per-dimension resolution default for a ``num_dims``-D ESS."""
    return DEFAULT_RESOLUTIONS.get(num_dims, 5)


class ESSGrid:
    """A log-spaced grid over ``[sel_min, 1]^D``.

    Args:
        num_dims: ESS dimensionality ``D``.
        resolution: points per dimension — an int (same for every
            dimension) or a sequence of per-dimension ints.
        sel_min: smallest selectivity per dimension — a float or a
            sequence.  The largest value is always 1.0 (the terminus has
            all coordinates 1, paper Section 2.1).
    """

    def __init__(self, num_dims, resolution=None, sel_min=DEFAULT_MIN_SELECTIVITY):
        if num_dims < 1:
            raise QueryError("ESS needs at least one dimension")
        self.num_dims = int(num_dims)
        if resolution is None:
            resolution = default_resolution(num_dims)
        if np.isscalar(resolution):
            resolution = [int(resolution)] * num_dims
        if len(resolution) != num_dims:
            raise QueryError("resolution list must have one entry per dimension")
        if any(r < 2 for r in resolution):
            raise QueryError("each dimension needs at least two grid points")
        if np.isscalar(sel_min):
            sel_min = [float(sel_min)] * num_dims
        if len(sel_min) != num_dims:
            raise QueryError("sel_min list must have one entry per dimension")

        self.resolution = tuple(int(r) for r in resolution)
        self.values = [
            np.geomspace(lo, 1.0, num=r)
            for lo, r in zip(sel_min, self.resolution)
        ]
        self.shape = tuple(self.resolution)
        self.num_points = int(np.prod(self.shape))
        # Row-major strides in points (dimension 0 varies slowest).
        strides = []
        acc = 1
        for r in reversed(self.shape):
            strides.append(acc)
            acc *= r
        self.strides = tuple(reversed(strides))
        self._sel_arrays = None
        self._coord_arrays = None
        self._log_values = None

    def invalidate_caches(self):
        """Drop derived arrays after ``values`` is mutated in place.

        Persistence restores grid values directly; all lazily-built
        views (selectivity arrays, per-dimension log arrays) must be
        rebuilt from the new values.
        """
        self._sel_arrays = None
        self._coord_arrays = None
        self._log_values = None

    def log_values(self, dim):
        """``np.log`` of one dimension's grid values (cached).

        :meth:`snap` runs once per discovery step; recomputing the log
        array each call dominated its cost.
        """
        if self._log_values is None:
            self._log_values = [np.log(v) for v in self.values]
        return self._log_values[dim]

    # ------------------------------------------------------------------
    # Flat <-> coords <-> selectivities
    # ------------------------------------------------------------------

    def flat_index(self, coords):
        """Flat index of a coords tuple."""
        return int(sum(int(c) * s for c, s in zip(coords, self.strides)))

    def coords_of(self, flat):
        """Coords tuple of a flat index."""
        return tuple(int(c) for c in np.unravel_index(int(flat), self.shape))

    def selectivities_of(self, flat):
        """Selectivity tuple at a flat index."""
        coords = self.coords_of(flat)
        return tuple(float(self.values[d][c]) for d, c in enumerate(coords))

    def selectivity(self, dim, coord):
        """Selectivity value of one grid index along one dimension."""
        return float(self.values[dim][int(coord)])

    def snap(self, selectivities):
        """Coords of the grid point nearest (in log space) to a vector."""
        if len(selectivities) != self.num_dims:
            raise QueryError(
                f"expected {self.num_dims} selectivities, got {len(selectivities)}"
            )
        coords = []
        for dim, sel in enumerate(selectivities):
            sel = min(max(float(sel), self.values[dim][0]), 1.0)
            logs = self.log_values(dim)
            coords.append(int(np.argmin(np.abs(logs - np.log(sel)))))
        return tuple(coords)

    # ------------------------------------------------------------------
    # Vectorized views
    # ------------------------------------------------------------------

    def coord_array(self, dim):
        """``(N,)`` int array: grid index along ``dim`` for every point."""
        if self._coord_arrays is None:
            indices = np.indices(self.shape).reshape(self.num_dims, -1)
            self._coord_arrays = [indices[d].astype(np.int32) for d in range(self.num_dims)]
        return self._coord_arrays[dim]

    def sel_array(self, dim):
        """``(N,)`` float array: selectivity along ``dim`` for every point."""
        if self._sel_arrays is None:
            self._sel_arrays = [
                self.values[d][self.coord_array(d)] for d in range(self.num_dims)
            ]
        return self._sel_arrays[dim]

    def environment(self):
        """The full-grid selectivity environment for the optimizer."""
        return {d: self.sel_array(d) for d in range(self.num_dims)}

    def coords_at(self, dim, flats):
        """Grid indices along ``dim`` for an array of flat indices.

        Pure stride arithmetic — O(len(flats)) regardless of grid size,
        unlike :meth:`coord_array` which materializes all ``N`` points.
        The lazy ESS resolves scattered point sets on grids where the
        full-grid views would dominate memory.
        """
        flats = np.asarray(flats, dtype=np.int64)
        return (flats // self.strides[dim]) % self.resolution[dim]

    def environment_at(self, flats):
        """Selectivity environment restricted to an array of flats."""
        return {
            d: self.values[d][self.coords_at(d, flats)]
            for d in range(self.num_dims)
        }

    def box_flats(self, lo, hi):
        """Flat indices of the axis-aligned box ``[lo, hi]`` (inclusive).

        Returned in ascending (grid) order, matching the slice the same
        box occupies inside a full-grid enumeration.
        """
        flat = np.zeros(1, dtype=np.int64)
        for dim in range(self.num_dims):
            axis = self.strides[dim] * np.arange(
                int(lo[dim]), int(hi[dim]) + 1, dtype=np.int64
            )
            flat = (flat[:, None] + axis[None, :]).reshape(-1)
        return flat

    def line_indices(self, fixed_coords, free_dim):
        """Flat indices of the 1-D line varying ``free_dim``.

        ``fixed_coords`` maps every other dimension to its grid index —
        this is the 1-D effective search space left once all but one epp
        have been learned.
        """
        base = 0
        for dim in range(self.num_dims):
            if dim == free_dim:
                continue
            base += int(fixed_coords[dim]) * self.strides[dim]
        return base + self.strides[free_dim] * np.arange(
            self.resolution[free_dim], dtype=np.int64
        )

    # ------------------------------------------------------------------
    # Dominance (paper Section 2.1)
    # ------------------------------------------------------------------

    def dominates(self, coords_a, coords_b):
        """Whether location a dominates b: ``a.j >= b.j`` for all j, a != b."""
        if tuple(coords_a) == tuple(coords_b):
            return False
        return all(ca >= cb for ca, cb in zip(coords_a, coords_b))

    @property
    def origin(self):
        return (0,) * self.num_dims

    @property
    def terminus(self):
        """The all-ones corner of the ESS."""
        return tuple(r - 1 for r in self.resolution)

    def __repr__(self):
        return f"ESSGrid(D={self.num_dims}, shape={self.shape})"
