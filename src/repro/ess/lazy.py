"""Lazy, contour-adaptive ESS construction.

The eager :meth:`~repro.ess.ocs.ESS.build` pays ``resolution^D``
optimizer evaluations up front — exponential in the number of
error-prone predicates, and the wall blocking 5-6 epp / resolution-30
scenarios (ROADMAP item 2).  Yet the discovery algorithms only ever
consult costs at points their contour walk actually touches, so most of
that grid is wasted work.

:class:`LazyESS` keeps the eager interface (same :class:`~repro.ess.ocs.ESS`
base class, same ``optimal_cost`` / ``plan_ids`` indexing, same contour
membership through :class:`LazyContourSet`) but resolves optimizer calls
on demand, memoized per grid point:

* ``optimal_cost`` and ``plan_ids`` become array-like *views* whose
  ``__getitem__`` resolves exactly the requested flats before gathering;
  whole-array consumers (``np.asarray``, arithmetic, ``reshape``) force
  full materialization, which degrades gracefully to the eager build.
* Contour membership is located by monotone **box pruning** on the cost
  surface instead of exhaustive enumeration: Plan Cost Monotonicity
  (paper Section 2.3) makes the optimal cost non-decreasing along every
  grid axis, so a box whose low corner already exceeds a contour budget
  contains no members, a box whose high corner fits is resolved wholesale,
  and everything else splits — degenerating to per-gridline bisection on
  1-D boxes.  Locating contour ``b`` costs ``|sublevel(b)|`` resolutions
  plus ``O(surface * log resolution)`` probes, not ``resolution^D``.

**Bit-identity.**  The vectorized optimizer DP is elementwise per grid
point (per-lane float ops, strict ``<`` tie-breaking over a static
alternative order), so resolving any subset of points yields exactly the
costs and plan *choices* the full-grid sweep assigns those points; the
differential suite (``tests/test_lazy_ess.py``) asserts this bit-for-bit.
The one permitted difference is plan-*id* numbering: eager ids follow
globally sorted plan keys, lazy ids are assigned in resolution order
(sorted within each batch), so cross-surface comparisons go through plan
keys, never raw ids.

Correctness of the pruning (not of resolved values, which are always
exact) rests on PCM holding in floating point — the same assumption the
MSO guarantees themselves rest on, monitored by the PR-4 conformance
suite.

Knobs: ``REPRO_ESS=eager|lazy`` selects the default surface for
``repro run`` / ``repro bench`` / workload builds (see
:func:`resolve_ess_mode`); the ``--ess`` CLI flag overrides per command.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ReproError
from repro.ess.contours import ContourSet
from repro.ess.grid import ESSGrid
from repro.ess.ocs import ESS
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span as obs_span
from repro.optimizer.cost_model import DEFAULT_COST_MODEL
from repro.optimizer.optimizer import Optimizer

#: Valid surface modes for :func:`resolve_ess_mode`.
ESS_MODES = ("eager", "lazy")


def resolve_ess_mode(mode=None):
    """Validate an ESS surface mode, defaulting from ``REPRO_ESS``.

    Args:
        mode: ``"eager"``/``"lazy"`` or None to consult the
            ``REPRO_ESS`` environment variable (empty → ``"eager"``).

    Raises:
        ReproError: unknown mode (explicit or from the environment).
    """
    source = "--ess"
    if mode is None:
        mode = os.environ.get("REPRO_ESS", "").strip() or "eager"
        source = "REPRO_ESS"
    mode = str(mode).strip().lower()
    if mode not in ESS_MODES:
        raise ReproError(
            f"invalid ESS mode {mode!r} (from {source}); "
            f"choose from {', '.join(ESS_MODES)}"
        )
    return mode


def ess_class(mode):
    """The surface class implementing a resolved ESS mode."""
    return LazyESS if resolve_ess_mode(mode) == "lazy" else ESS


def contour_class(mode):
    """The contour-set class matching a resolved ESS mode."""
    return LazyContourSet if resolve_ess_mode(mode) == "lazy" else ContourSet


def contours_for(ess, cost_ratio):
    """Contours of the kind matching the surface (lazy ESS → lazy set)."""
    cls = LazyContourSet if getattr(ess, "is_lazy", False) else ContourSet
    return cls(ess, cost_ratio)


def _index_flats(index, num_points):
    """Flat indices touched by a ``__getitem__`` index, or None for all.

    Handles the access patterns the discovery algorithms actually use:
    scalars, integer ndarrays of any shape, boolean masks, and lists.
    Slices and anything unrecognized return None (materialize).
    """
    if isinstance(index, (int, np.integer)):
        flat = int(index)
        return np.asarray([flat + num_points if flat < 0 else flat],
                          dtype=np.int64)
    if isinstance(index, slice):
        return None
    arr = np.asarray(index)
    if arr.dtype == np.bool_:
        return np.flatnonzero(arr)
    if not np.issubdtype(arr.dtype, np.integer):
        return None
    flats = arr.reshape(-1).astype(np.int64, copy=False)
    if flats.size and flats.min() < 0:
        flats = np.where(flats < 0, flats + num_points, flats)
    return flats


class _LazySurfaceView:
    """Array-like view over one lazily-resolved per-point surface.

    Indexing resolves exactly the touched grid points, then gathers from
    the backing array; coercion to a real ndarray (``np.asarray``,
    arithmetic, ``reshape``) resolves the whole grid.  ``bounds``, when
    given, names the (argmin, argmax) corner flats under PCM so
    ``min()``/``max()`` resolve two points instead of the grid.
    """

    def __init__(self, ess, backing, bounds=None):
        self._ess = ess
        self._backing = backing
        self._bounds = bounds

    @property
    def shape(self):
        return self._backing.shape

    @property
    def dtype(self):
        return self._backing.dtype

    @property
    def size(self):
        return self._backing.size

    def __len__(self):
        return len(self._backing)

    def __getitem__(self, index):
        flats = _index_flats(index, self._ess.grid.num_points)
        if flats is None:
            self._ess.resolve_all()
        else:
            self._ess.resolve(flats)
        return self._backing[index]

    def __array__(self, dtype=None, copy=None):
        self._ess.resolve_all()
        arr = self._backing
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        return arr

    def reshape(self, *shape):
        return np.asarray(self).reshape(*shape)

    def astype(self, dtype, **kwargs):
        self._ess.resolve_all()
        return self._backing.astype(dtype, **kwargs)

    def copy(self):
        return np.asarray(self).copy()

    def min(self):
        if self._bounds is not None:
            lo = self._bounds[0]
            self._ess.resolve([lo])
            return self._backing[lo]
        return np.asarray(self).min()

    def max(self):
        if self._bounds is not None:
            hi = self._bounds[1]
            self._ess.resolve([hi])
            return self._backing[hi]
        return np.asarray(self).max()

    # Comparisons and arithmetic force materialization; numpy coerces
    # the view through __array__ for the reflected (ndarray-first) side.
    def __eq__(self, other):
        return np.asarray(self) == other

    def __ne__(self, other):
        return np.asarray(self) != other

    __hash__ = None

    def __lt__(self, other):
        return np.asarray(self) < other

    def __le__(self, other):
        return np.asarray(self) <= other

    def __gt__(self, other):
        return np.asarray(self) > other

    def __ge__(self, other):
        return np.asarray(self) >= other

    def __add__(self, other):
        return np.asarray(self) + other

    __radd__ = __add__

    def __sub__(self, other):
        return np.asarray(self) - other

    def __rsub__(self, other):
        return other - np.asarray(self)

    def __mul__(self, other):
        return np.asarray(self) * other

    __rmul__ = __mul__

    def __truediv__(self, other):
        return np.asarray(self) / other

    def __rtruediv__(self, other):
        return other / np.asarray(self)

    def __repr__(self):
        resolved = self._ess.num_resolved
        return (
            f"LazySurfaceView(dtype={self._backing.dtype}, "
            f"resolved={resolved}/{self._backing.size})"
        )


class LazyESS(ESS):
    """An :class:`~repro.ess.ocs.ESS` that resolves points on demand.

    Construction costs two optimizer calls (origin and terminus — the
    PCM extremes that define ``C_min``/``C_max`` and the contour
    budgets); everything else resolves when a consumer first touches it.
    ``plans`` / ``plan_keys`` grow append-only as resolution discovers
    new POSP members, so plan ids are stable once assigned.
    """

    is_lazy = True

    def __init__(self, query, grid=None, cost_model=DEFAULT_COST_MODEL,
                 resolution=None, left_deep=False):
        if grid is None:
            grid = ESSGrid(query.num_epps, resolution=resolution)
        n = grid.num_points
        self._costs = np.full(n, np.nan, dtype=float)
        self._pids = np.full(n, -1, dtype=np.int32)
        self._resolved_mask = np.zeros(n, dtype=bool)
        self._plan_index = {}
        self._optimizer = Optimizer(query, cost_model, left_deep=left_deep)
        origin = grid.flat_index(grid.origin)
        terminus = grid.flat_index(grid.terminus)
        super().__init__(
            query=query,
            grid=grid,
            cost_model=cost_model,
            optimal_cost=None,
            plan_ids=None,
            plans=[],
        )
        self.optimal_cost = _LazySurfaceView(
            self, self._costs, bounds=(origin, terminus)
        )
        self.plan_ids = _LazySurfaceView(self, self._pids)
        self.resolve([origin, terminus])

    @classmethod
    def build(cls, query, grid=None, cost_model=DEFAULT_COST_MODEL,
              resolution=None, left_deep=False):
        """Drop-in for :meth:`ESS.build` — no sweep, just the corners."""
        return cls(query, grid=grid, cost_model=cost_model,
                   resolution=resolution, left_deep=left_deep)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    @property
    def num_resolved(self):
        """Grid points whose optimal plan/cost have been resolved."""
        return int(self._resolved_mask.sum())

    def resolve(self, flats):
        """Ensure every flat index in ``flats`` is resolved.

        Missing points are evaluated in one vectorized optimizer sweep
        restricted to those points — bit-identical per point to the
        full-grid sweep because the DP is elementwise.  Returns the
        number of newly resolved points.
        """
        flats = np.atleast_1d(np.asarray(flats, dtype=np.int64)).reshape(-1)
        if flats.size == 0:
            return 0
        missing = flats[~self._resolved_mask[flats]]
        if missing.size == 0:
            return 0
        missing = np.unique(missing)
        grid = self.grid
        with REGISTRY.phase("ess_lazy_resolve"):
            with obs_span("ess.lazy.resolve", points=int(missing.size)):
                result = self._optimizer.optimize(
                    grid.environment_at(missing), num_points=missing.size
                )
                keys, pool = result.plans()
        new_keys = sorted(k for k in pool if k not in self._plan_index)
        if new_keys:
            for key in new_keys:
                self._plan_index[key] = len(self.plans)
                self.plans.append(pool[key])
                self.plan_keys.append(key)
            # POSP grew: the (|POSP|, D) spill-order matrix is stale.
            self._spill_order_matrix = None
        index = self._plan_index
        self._costs[missing] = np.asarray(result.optimal_cost, dtype=float)
        self._pids[missing] = np.fromiter(
            (index[k] for k in keys), dtype=np.int32, count=len(keys)
        )
        self._resolved_mask[missing] = True
        self.optimizer_calls += int(missing.size)
        REGISTRY.incr("ess_optimizer_calls", int(missing.size))
        REGISTRY.incr("ess_lazy_resolves")
        return int(missing.size)

    def resolve_all(self):
        """Materialize the remaining grid (the eager-equivalent state)."""
        if self._resolved_mask.all():
            return 0
        with obs_span("ess.lazy.materialize",
                      points=int((~self._resolved_mask).sum())):
            return self.resolve(np.flatnonzero(~self._resolved_mask))

    def optimal_cost_at(self, flats):
        """Optimal costs at an array of flats (resolving as needed)."""
        flats = np.asarray(flats, dtype=np.int64)
        self.resolve(flats)
        return self._costs[flats].astype(float, copy=True)

    def __repr__(self):
        return (
            f"LazyESS({self.query.name!r}, grid={self.grid.shape}, "
            f"resolved={self.num_resolved}/{self.grid.num_points}, "
            f"|POSP|>={self.posp_size})"
        )


class _LazyBandView:
    """On-demand contour-band assignment over a :class:`LazyESS`.

    ``band[flats]`` resolves the touched points and applies the shared
    :meth:`~repro.ess.contours.ContourSet.band_of_costs` formula, so
    every value is bit-identical to the eager precomputed band array.
    """

    def __init__(self, contours):
        self._contours = contours

    @property
    def shape(self):
        return (self._contours.ess.grid.num_points,)

    @property
    def dtype(self):
        return np.dtype(np.int32)

    def __len__(self):
        return self._contours.ess.grid.num_points

    def __getitem__(self, index):
        contours = self._contours
        ess = contours.ess
        flats = _index_flats(index, ess.grid.num_points)
        if flats is None:
            return np.asarray(self)[index]
        ess.resolve(flats)
        return contours.band_of_costs(ess._costs[index])

    def __array__(self, dtype=None, copy=None):
        contours = self._contours
        contours.ess.resolve_all()
        band = contours.band_of_costs(contours.ess._costs)
        if dtype is not None:
            band = band.astype(dtype, copy=False)
        return band

    def __eq__(self, other):
        return np.asarray(self) == other

    def __ne__(self, other):
        return np.asarray(self) != other

    __hash__ = None


class LazyContourSet(ContourSet):
    """Contours over a :class:`LazyESS`, located by monotone box pruning.

    Enumerating contour ``b`` needs exactly the points of band ``b``; by
    PCM those lie in ``sublevel(b) = {q : band(q) <= b}``, whose boundary
    the box recursion finds without touching the rest of the grid:

    * low corner's band > ``b`` → no members inside, prune;
    * high corner's band <= ``b`` → every point is a member, resolve all;
    * otherwise split the longest axis — 1-D boxes binary-search the
      band boundary along their gridline (per-gridline bisection).

    Sublevel resolution is incremental and memoized
    (``_sublevel_done``), so walking contours in budget order — what
    every discovery run does — pays for each shell once.
    """

    def _init_band(self):
        self.band = _LazyBandView(self)
        self._bands_done = set()

    def _band_members(self, band):
        self._ensure_band(band)
        ess = self.ess
        flats = np.flatnonzero(ess._resolved_mask)
        bands = self.band_of_costs(ess._costs[flats])
        return flats[bands == band].astype(np.int64)

    def _band_at(self, flat):
        """Band of one already-resolved flat index."""
        return int(self.band_of_costs(
            self.ess._costs[np.asarray([flat], dtype=np.int64)]
        )[0])

    def _ensure_band(self, target):
        """Resolve every grid point whose band equals ``target``.

        The recursion keeps only boxes that can intersect the band's
        shell: a box wholly above (low corner's band > ``target``) or
        wholly below (high corner's band < ``target``) is pruned without
        resolving its interior, so enumerating one band never pays for
        the sublevel volume beneath it.
        """
        if target in self._bands_done:
            return
        ess = self.ess
        grid = ess.grid
        with obs_span("ess.lazy.contour_shell", band=int(target)):
            boxes = [(grid.origin, grid.terminus)]
            segments = []
            while boxes:
                corners = []
                for lo, hi in boxes:
                    corners.append(grid.flat_index(lo))
                    corners.append(grid.flat_index(hi))
                ess.resolve(np.asarray(corners, dtype=np.int64))
                nxt = []
                for (lo, hi), lo_flat, hi_flat in zip(
                    boxes, corners[0::2], corners[1::2]
                ):
                    band_lo = self._band_at(lo_flat)
                    band_hi = self._band_at(hi_flat)
                    # PCM: bands inside the box lie in [band_lo, band_hi].
                    if band_lo > target or band_hi < target:
                        continue
                    if band_lo == target and band_hi == target:
                        ess.resolve(grid.box_flats(lo, hi))
                        continue
                    free = [d for d in range(grid.num_dims)
                            if hi[d] > lo[d]]
                    if len(free) == 1:
                        segments.append(
                            (lo, hi, free[0], band_lo, band_hi)
                        )
                        continue
                    d = max(free, key=lambda dim: hi[dim] - lo[dim])
                    mid = (lo[d] + hi[d]) // 2
                    hi_left = tuple(
                        mid if k == d else hi[k]
                        for k in range(grid.num_dims)
                    )
                    lo_right = tuple(
                        mid + 1 if k == d else lo[k]
                        for k in range(grid.num_dims)
                    )
                    nxt.append((lo, hi_left))
                    nxt.append((lo_right, hi))
                boxes = nxt
            self._bisect_segments(segments, target)
        self._bands_done.add(target)

    def _bisect_segments(self, segments, target):
        """Batched per-gridline bisection of one band's two boundaries.

        Each segment is a gridline stretch known to straddle the band:
        its low end's band is <= ``target`` <= its high end's band.  Two
        monotone binary searches locate the first index whose band
        reaches ``target`` and the last index not beyond it; the stretch
        between them is the band's intersection with the line (possibly
        empty when the band jumps past ``target`` on that line).  All
        segments advance one probe per round, so the optimizer sees
        ``O(log resolution)`` batched calls instead of one per line.
        """
        if not segments:
            return
        ess = self.ess
        grid = ess.grid
        n = len(segments)
        base = np.empty(n, dtype=np.int64)
        stride = np.empty(n, dtype=np.int64)
        start = np.empty(n, dtype=np.int64)
        stop = np.empty(n, dtype=np.int64)
        band_lo = np.empty(n, dtype=np.int64)
        band_hi = np.empty(n, dtype=np.int64)
        for i, (lo, hi, d, blo, bhi) in enumerate(segments):
            stride[i] = grid.strides[d]
            base[i] = grid.flat_index(lo) - lo[d] * stride[i]
            start[i] = lo[d]
            stop[i] = hi[d]
            band_lo[i] = blo
            band_hi[i] = bhi

        def _search(predicate, tighten_low):
            """Converge (low, high) to adjacent indices; the predicate
            holds at ``high`` end iff ``tighten_low`` picks low moves."""
            low = start.copy()
            high = stop.copy()
            while True:
                gap = (high - low) > 1
                if not gap.any():
                    break
                mid = (low[gap] + high[gap]) // 2
                flats = base[gap] + mid * stride[gap]
                ess.resolve(flats)
                hit = predicate(self.band_of_costs(ess._costs[flats]))
                lo_new = low[gap]
                hi_new = high[gap]
                if tighten_low:
                    lo_new[hit] = mid[hit]
                    hi_new[~hit] = mid[~hit]
                else:
                    hi_new[hit] = mid[hit]
                    lo_new[~hit] = mid[~hit]
                low[gap] = lo_new
                high[gap] = hi_new
            return low, high

        # First index whose band reaches target (band(start) may already).
        _, upper = _search(lambda b: b >= target, tighten_low=False)
        first = np.where(band_lo >= target, start, upper)
        # Last index whose band has not passed target.
        lower, _ = _search(lambda b: b <= target, tighten_low=True)
        last = np.where(band_hi <= target, stop, lower)
        spans = [
            base[i] + stride[i] * np.arange(first[i], last[i] + 1,
                                            dtype=np.int64)
            for i in range(n)
            if first[i] <= last[i]
        ]
        if spans:
            ess.resolve(np.concatenate(spans))
