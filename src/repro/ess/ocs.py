"""The Optimal Cost Surface and the POSP plan pool.

Building the ESS means calling the optimizer at every grid location and
recording (a) the optimal cost — the OCS of paper Section 2.5 — and
(b) the optimal plan's identity — whose union over the grid is the
Parametric Optimal Set of Plans (POSP).  The :class:`ESS` object bundles
that with lazily-cached per-plan cost arrays (``Cost(P, q)`` over the
whole grid) and per-plan spill orderings, which every discovery
algorithm consumes.
"""

from __future__ import annotations

import numpy as np

from repro.ess.grid import ESSGrid
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span as obs_span
from repro.optimizer.cost_model import DEFAULT_COST_MODEL
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.plans import epp_total_order, plan_cost, spill_subtree_cost


class ESS:
    """The explored selectivity space for one query.

    Attributes:
        query: the :class:`~repro.query.query.SPJQuery`.
        grid: the :class:`~repro.ess.grid.ESSGrid`.
        optimal_cost: ``(N,)`` array, ``Cost(P_q, q)`` per location.
        plan_ids: ``(N,)`` int array of POSP plan identifiers.
        plans: list of plan trees; ``plans[i]`` has identifier ``i``.
        plan_keys: canonical identity strings, parallel to ``plans``.
    """

    #: Whether the surface resolves points on demand (overridden by
    #: :class:`repro.ess.lazy.LazyESS`).
    is_lazy = False

    def __init__(self, query, grid, cost_model, optimal_cost, plan_ids, plans):
        self.query = query
        self.grid = grid
        self.cost_model = cost_model
        self.optimal_cost = optimal_cost
        self.plan_ids = plan_ids
        self.plans = plans
        self.plan_keys = [p.key for p in plans]
        #: Optimizer point evaluations spent building this surface (the
        #: full grid for :meth:`build`, 0 for archive loads, and the
        #: running resolved count for lazy surfaces).
        self.optimizer_calls = 0
        self._cost_arrays = {}
        self._point_costs = {}
        self._spill_orders = {}
        self._spill_order_matrix = None
        self._subtree_costs = {}
        self._subtree_dim_cache = {}

    @classmethod
    def build(cls, query, grid=None, cost_model=DEFAULT_COST_MODEL,
              resolution=None, left_deep=False):
        """Sweep the optimizer over the grid and assemble the surface.

        ``left_deep=True`` restricts the plan search to the classical
        left-deep space (search-space ablation).
        """
        if grid is None:
            grid = ESSGrid(query.num_epps, resolution=resolution)
        optimizer = Optimizer(query, cost_model, left_deep=left_deep)
        with obs_span("ess.build", points=grid.num_points):
            result = optimizer.optimize(grid.environment(),
                                        num_points=grid.num_points)
            keys, pool = result.plans()
        REGISTRY.incr("ess_optimizer_calls", grid.num_points)
        plan_keys = sorted(pool)
        index = {key: i for i, key in enumerate(plan_keys)}
        plan_ids = np.fromiter((index[k] for k in keys), dtype=np.int32, count=len(keys))
        plans = [pool[k] for k in plan_keys]
        ess = cls(
            query=query,
            grid=grid,
            cost_model=cost_model,
            optimal_cost=np.asarray(result.optimal_cost, dtype=float),
            plan_ids=plan_ids,
            plans=plans,
        )
        ess.optimizer_calls = grid.num_points
        return ess

    # ------------------------------------------------------------------
    # Derived, cached per-plan data
    # ------------------------------------------------------------------

    @property
    def posp_size(self):
        """Number of distinct POSP plans over the grid."""
        return len(self.plans)

    # ------------------------------------------------------------------
    # Lazy-resolution protocol (no-ops on the fully materialized surface;
    # repro.ess.lazy.LazyESS overrides all three)
    # ------------------------------------------------------------------

    @property
    def num_resolved(self):
        """Grid points with known optimal plan/cost (all, when eager)."""
        return self.grid.num_points

    def resolve(self, flats):
        """Ensure the given flats are resolved (eager: already are)."""
        return 0

    def resolve_all(self):
        """Ensure the whole grid is resolved (eager: already is)."""
        return 0

    def optimal_cost_at(self, flats):
        """Optimal costs at an array of flats, resolving if lazy.

        The engine-facing gather: restricted sweeps call this instead of
        materializing ``optimal_cost``, so a lazy surface resolves only
        the requested points.
        """
        flats = np.asarray(flats, dtype=np.int64)
        return np.asarray(self.optimal_cost[flats], dtype=float)

    @property
    def min_cost(self):
        """``C_min`` — the optimal cost at the origin (PCM minimum)."""
        return float(self.optimal_cost.min())

    @property
    def max_cost(self):
        """``C_max`` — the optimal cost at the terminus (PCM maximum)."""
        return float(self.optimal_cost.max())

    #: Cap on cached per-plan cost surfaces; recomputation is a cheap
    #: vectorized tree walk, so a bounded cache trades a little CPU for
    #: predictable memory on queries with large POSPs.
    COST_CACHE_LIMIT = 512

    def _cost_array_hit(self, plan_id):
        """Cache lookup with an LRU recency refresh on hit.

        Eviction pops the dict's first entry, so hits must move their
        key to the end — otherwise the cache degrades to FIFO and
        AlignedBound's revisit-heavy replacement searches thrash on
        plans that were inserted early but stay hot.
        """
        cached = self._cost_arrays.get(plan_id)
        if cached is not None:
            del self._cost_arrays[plan_id]
            self._cost_arrays[plan_id] = cached
        return cached

    def plan_cost_array(self, plan_id):
        """``Cost(P, q)`` for a fixed plan, over the whole grid (cached)."""
        cached = self._cost_array_hit(plan_id)
        if cached is None:
            plan = self.plans[plan_id]
            cached = np.broadcast_to(
                np.asarray(
                    plan_cost(plan, self.query, self.cost_model, self.grid.environment()),
                    dtype=float,
                ),
                (self.grid.num_points,),
            )
            if len(self._cost_arrays) >= self.COST_CACHE_LIMIT:
                self._cost_arrays.pop(next(iter(self._cost_arrays)))
            self._cost_arrays[plan_id] = cached
        return cached

    def plan_cost_at(self, plan_id, flat):
        """``Cost(P, q)`` for a plan at one grid location.

        Routed through :meth:`plan_cost_at_points` so large grids take
        the point-wise memo path instead of materializing a full-grid
        cost array for a single lookup (identical values either way —
        the cost expressions are elementwise).
        """
        return float(
            self.plan_cost_at_points(plan_id, np.asarray([flat]))[0]
        )

    #: Grids at or below this many points always evaluate plan costs as
    #: one full-grid vectorized pass (amortized across every later
    #: lookup of the same plan) instead of the point-wise memo path.
    POINTWISE_EVAL_MIN_GRID = 1 << 18

    def plan_cost_at_points(self, plan_id, flat_indices):
        """``Cost(P, q)`` at a restricted set of locations.

        On small grids this is a gather from the plan's cached full-grid
        cost array — one vectorized evaluation serves every later lookup
        of the same plan, which is what AlignedBound's replacement-plan
        searches do thousands of times per sweep.  Above
        :data:`POINTWISE_EVAL_MIN_GRID` points the plan's cost
        expression is evaluated over just the requested points —
        O(len(flat_indices)) instead of a full-grid sweep — which keeps
        large-POSP queries (6-D) tractable.  Point-wise results are
        memoized in a flat ndarray plus a validity mask (the searches
        revisit heavily-overlapping point sets across discovery states),
        so both the hit and miss paths are single vectorized gathers
        instead of per-element dict round-trips.
        """
        cached = self._cost_array_hit(plan_id)
        if cached is not None:
            return np.asarray(cached[flat_indices], dtype=float)
        if self.grid.num_points <= self.POINTWISE_EVAL_MIN_GRID:
            return np.asarray(
                self.plan_cost_array(plan_id)[flat_indices], dtype=float
            )
        flats = np.asarray(flat_indices, dtype=np.int64)
        memo = self._point_costs.get(plan_id)
        if memo is None:
            memo = (
                np.empty(self.grid.num_points, dtype=float),
                np.zeros(self.grid.num_points, dtype=bool),
            )
            self._point_costs[plan_id] = memo
        values, valid = memo
        missing = flats[~valid[flats]]
        if missing.size:
            grid = self.grid
            miss = np.unique(missing)
            # environment_at is pure stride arithmetic — O(len(miss)),
            # no full-grid selectivity views on these large grids.
            env = grid.environment_at(miss)
            cost = plan_cost(self.plans[plan_id], self.query,
                             self.cost_model, env)
            values[miss] = np.broadcast_to(
                np.asarray(cost, dtype=float), (miss.size,)
            )
            valid[miss] = True
        return values[flats].astype(float, copy=True)

    def spill_order(self, plan_id):
        """The plan's epp total order as a list of ESS dimensions."""
        cached = self._spill_orders.get(plan_id)
        if cached is None:
            names = epp_total_order(self.plans[plan_id], self.query)
            cached = [self.query.epp_dimension(n) for n in names]
            self._spill_orders[plan_id] = cached
        return cached

    def spill_dimension(self, plan_id, remaining_dims):
        """First unlearned dimension in the plan's spill order, or None."""
        remaining = set(remaining_dims)
        for dim in self.spill_order(plan_id):
            if dim in remaining:
                return dim
        return None

    def spill_order_matrix(self):
        """All spill orders as one ``(|POSP|, D)`` int matrix (cached).

        Row ``pid`` holds :meth:`spill_order` padded with ``-1``; the
        batched sweep engines resolve "first unlearned dimension in the
        spill order" for whole contours with a couple of array ops
        instead of a per-location Python loop.
        """
        if self._spill_order_matrix is None:
            matrix = np.full(
                (self.posp_size, self.grid.num_dims), -1, dtype=np.int64
            )
            for pid in range(self.posp_size):
                order = self.spill_order(pid)
                matrix[pid, : len(order)] = order
            self._spill_order_matrix = matrix
        return self._spill_order_matrix

    def spill_cost_curve(self, plan_id, dim, fixed_coords):
        """Spill-subtree cost of a plan as a function of one epp.

        Returns the ``(resolution[dim],)`` array of the cost of executing
        only the subtree rooted at the ``dim`` epp's node, as the epp's
        selectivity sweeps its grid values with every *other* dimension
        pinned at ``fixed_coords`` (a full coords tuple; the entry for
        ``dim`` itself is ignored).  Cached on (plan, dim, relevant
        coords): only coordinates of epps inside the spilled subtree can
        influence the curve, so the cache key keeps just those.
        """
        plan = self.plans[plan_id]
        query = self.query
        epp_name = query.epps[dim].name
        relevant = tuple(
            (d, int(fixed_coords[d]))
            for d in self._subtree_dims(plan_id, dim)
            if d != dim
        )
        cache_key = (plan_id, dim, relevant)
        cached = self._subtree_costs.get(cache_key)
        if cached is None:
            env = {
                d: self.grid.selectivity(d, fixed_coords[d])
                for d in range(self.grid.num_dims)
            }
            env[dim] = self.grid.values[dim]
            cached = np.asarray(
                spill_subtree_cost(plan, query, self.cost_model, env, epp_name),
                dtype=float,
            )
            cached = np.broadcast_to(cached, (self.grid.resolution[dim],))
            self._subtree_costs[cache_key] = cached
        return cached

    def _subtree_dims(self, plan_id, dim):
        """ESS dimensions of the epps inside the spilled subtree (cached:
        :meth:`spill_cost_curve` rebuilds its cache key from this on
        every call, and the plan-tree walk dominated that lookup)."""
        cached = self._subtree_dim_cache.get((plan_id, dim))
        if cached is not None:
            return cached
        from repro.optimizer.plans import find_epp_node  # local to avoid cycle

        plan = self.plans[plan_id]
        epp_name = self.query.epps[dim].name
        node = find_epp_node(plan, epp_name)
        dims = set()
        for sub in node.iter_nodes():
            for pred in sub.applied_preds:
                if pred.error_prone:
                    dims.add(self.query.epp_dimension(pred.name))
        dims = tuple(sorted(dims))
        self._subtree_dim_cache[(plan_id, dim)] = dims
        return dims

    def suboptimality_surface(self, plan_id):
        """``Cost(P, q) / Cost(P_q, q)`` over the grid for a fixed plan."""
        return self.plan_cost_array(plan_id) / self.optimal_cost

    def __repr__(self):
        return (
            f"ESS({self.query.name!r}, grid={self.grid.shape}, "
            f"|POSP|={self.posp_size})"
        )
