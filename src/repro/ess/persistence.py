"""Offline ESS persistence.

Paper Section 7: "the construction of the contours in the ESS is
certainly a computationally intensive task ... for canned queries, it
may be feasible to carry out an offline enumeration".  This module is
that offline path: a built ESS (the optimizer-sweep outputs — optimal
costs, plan identities, grid geometry) is saved to a single ``.npz``
archive and reloaded without re-invoking the optimizer.

Plan *trees* are reconstructed from their canonical identity strings,
so the archive stays plain arrays + strings; reconstruction is exact
because the identity grammar is unambiguous.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile

import numpy as np

from repro.errors import OptimizerError, QueryError
from repro.ess.grid import ESSGrid
from repro.ess.ocs import ESS
from repro.optimizer.plans import (
    HASH_JOIN,
    INDEX_NL_JOIN,
    MERGE_JOIN,
    NL_JOIN,
    JoinNode,
    ScanNode,
)

#: Current archive format.  Version 2 adds the content cache key
#: (query name, grid resolution, sel_min, cost-model fingerprint,
#: left_deep) so the persistent workload cache can verify that an
#: archive matches the exact build parameters before trusting it.
#: Version 3 (``save_ess(..., mmap=True)``) moves the two large arrays
#: — ``optimal_cost`` and ``plan_ids`` — out of the compressed ``.npz``
#: into uncompressed ``.npy`` sidecars that loads map with
#: ``np.load(..., mmap_mode="r")``: a warm load pages cost data in on
#: demand instead of decompressing the whole grid up front.  Sidecar
#: file names embed a content digest, so rewriting an archive never
#: mutates a sidecar a concurrent (or already-mmapped) reader may hold.
#: Versions 1 and 2 are still readable.
_FORMAT_VERSION = 2
_MMAP_FORMAT_VERSION = 3
_READABLE_VERSIONS = (1, 2, 3)

_JOIN_OPS = {HASH_JOIN, MERGE_JOIN, NL_JOIN, INDEX_NL_JOIN}
_KEY_TOKEN = re.compile(r"([A-Z]+)\[([^\]]*)\]\(|([A-Z]+)\(([^()]*)\)|[(),]")


def parse_plan_key(key, query):
    """Rebuild a plan tree from its canonical identity string.

    The grammar is the one :class:`~repro.optimizer.plans.PlanNode`
    emits::

        scan := METHOD(table)
        join := OP[pred,...](node,node)
    """
    pos = 0

    def parse_node():
        nonlocal pos
        match = re.match(r"([A-Z]+)\[([^\]]*)\]\(", key[pos:])
        if match:
            op, pred_names = match.group(1), match.group(2).split(",")
            if op not in _JOIN_OPS:
                raise OptimizerError(f"unknown join op {op!r} in {key!r}")
            pos += match.end()
            outer = parse_node()
            if key[pos] != ",":
                raise OptimizerError(f"malformed plan key {key!r}")
            pos += 1
            inner = parse_node()
            if key[pos] != ")":
                raise OptimizerError(f"malformed plan key {key!r}")
            pos += 1
            by_name = {p.name: p for p in query.joins}
            try:
                preds = [by_name[name] for name in pred_names]
            except KeyError as missing:
                raise QueryError(
                    f"plan key references unknown predicate {missing}"
                ) from None
            return JoinNode(op, outer, inner, preds)
        match = re.match(r"([A-Z]+)\(([^()]*)\)", key[pos:])
        if match:
            method, table = match.group(1), match.group(2)
            pos += match.end()
            return ScanNode(table, method, tuple(query.filters_on(table)))
        raise OptimizerError(f"malformed plan key {key!r} at offset {pos}")

    node = parse_node()
    if pos != len(key):
        raise OptimizerError(f"trailing garbage in plan key {key!r}")
    if node.key != key:
        raise OptimizerError(
            f"plan key round-trip mismatch: {node.key!r} != {key!r}"
        )
    return node


def ess_cache_key(query_name, resolution, sel_min, cost_fingerprint,
                  left_deep=False):
    """The canonical content key identifying one ESS build.

    Every parameter that shapes the optimizer sweep participates: the
    query (by name — the workload registry rebuilds queries
    deterministically from names), the grid geometry (per-dimension
    resolution and sel_min floors), the cost model (by value
    fingerprint, see :meth:`~repro.optimizer.cost_model.CostModel.fingerprint`)
    and the plan-search space (bushy vs left-deep).
    """
    return {
        "query_name": str(query_name),
        "resolution": [int(r) for r in resolution],
        "sel_min": [float(s) for s in sel_min],
        "cost_fingerprint": str(cost_fingerprint),
        "left_deep": bool(left_deep),
    }


def _sidecar_names(base_path, token):
    """Content-addressed sidecar file names for a v3 archive."""
    base = os.path.basename(base_path)
    return {
        "optimal_cost": f"{base}.{token}.cost.npy",
        "plan_ids": f"{base}.{token}.pids.npy",
    }


def _write_sidecar(directory, name, array):
    """Atomically write one ``.npy`` sidecar (tmp file + ``os.replace``)."""
    final = os.path.join(directory, name)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".npy.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.save(handle, array)
        os.replace(tmp, final)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def save_ess(ess, path, cache_key=None, mmap=False, sidecar_base=None):
    """Persist a built ESS to a ``.npz`` archive.

    Args:
        ess: the built :class:`~repro.ess.ocs.ESS` (a lazy surface is
            fully materialized by the array coercion).
        path: destination ``.npz`` path.
        cache_key: optional :func:`ess_cache_key` dict recorded in the
            archive so loads can verify build-parameter identity.
        mmap: write format v3 — the big arrays go to uncompressed
            ``.npy`` sidecars (each written atomically) that
            :func:`load_ess` memory-maps.
        sidecar_base: path whose directory/basename name the sidecars;
            defaults to ``path``.  The persistent cache writes the
            ``.npz`` to a temp file before renaming it into place, and
            passes the *final* path here so sidecar names survive the
            rename.
    """
    grid = ess.grid
    meta = {
        "format_version": _MMAP_FORMAT_VERSION if mmap else _FORMAT_VERSION,
        "query_name": ess.query.name,
        "num_dims": grid.num_dims,
        "resolution": list(grid.resolution),
        "cost_fingerprint": ess.cost_model.fingerprint(),
        "cache_key": cache_key,
    }
    arrays = {
        "optimal_cost": np.asarray(ess.optimal_cost, dtype=float),
        "plan_ids": np.asarray(ess.plan_ids, dtype=np.int32),
    }
    payload = {
        "plan_keys": np.array(ess.plan_keys, dtype=object),
        "grid_values": np.array(
            [grid.values[d] for d in range(grid.num_dims)], dtype=object
        ),
    }
    if mmap:
        token = hashlib.sha256(
            arrays["optimal_cost"].tobytes() + arrays["plan_ids"].tobytes()
        ).hexdigest()[:12]
        base = sidecar_base or path
        directory = os.path.dirname(os.path.abspath(base))
        sidecars = _sidecar_names(base, token)
        for field, name in sidecars.items():
            _write_sidecar(directory, name, arrays[field])
        meta["sidecars"] = sidecars
    else:
        payload.update(arrays)
    np.savez_compressed(path, meta=json.dumps(meta), **payload)


def archive_sidecars(path):
    """Sidecar file names referenced by an archive (empty for v1/v2)."""
    with np.load(path, allow_pickle=True) as archive:
        meta = json.loads(str(archive["meta"]))
    return list(meta.get("sidecars", {}).values())


def read_cache_key(path):
    """The :func:`ess_cache_key` recorded in an archive (None for v1)."""
    with np.load(path, allow_pickle=True) as archive:
        meta = json.loads(str(archive["meta"]))
    if meta.get("format_version") not in _READABLE_VERSIONS:
        raise OptimizerError(
            f"unsupported ESS archive version {meta.get('format_version')}"
        )
    return meta.get("cache_key")


def load_ess(path, query, cost_model=None, expected_key=None):
    """Load a persisted ESS for the (identical) query it was built from.

    Args:
        path: the ``.npz`` archive.
        query: the query object; its name must match the archive and
            its predicates must resolve every stored plan key.
        cost_model: cost model for re-costing; defaults to the library
            default (must match the one used at build time for costs to
            be coherent).
        expected_key: optional :func:`ess_cache_key` dict; when given,
            the archive must be format v2 and record exactly this key
            (the persistent-cache integrity check).
    """
    from repro.optimizer.cost_model import DEFAULT_COST_MODEL

    with np.load(path, allow_pickle=True) as archive:
        meta = json.loads(str(archive["meta"]))
        if meta["format_version"] not in _READABLE_VERSIONS:
            raise OptimizerError(
                f"unsupported ESS archive version {meta['format_version']}"
            )
        if expected_key is not None and meta.get("cache_key") != expected_key:
            raise OptimizerError(
                f"ESS archive {path!s} does not match the expected cache "
                f"key (stored {meta.get('cache_key')!r})"
            )
        if meta["query_name"] != query.name:
            raise QueryError(
                f"archive was built for query {meta['query_name']!r}, "
                f"not {query.name!r}"
            )
        if meta["num_dims"] != query.num_epps:
            raise QueryError("archive dimensionality mismatch")
        grid = ESSGrid(meta["num_dims"], resolution=meta["resolution"])
        for dim, values in enumerate(archive["grid_values"]):
            grid.values[dim] = np.asarray(values, dtype=float)
        grid.invalidate_caches()  # rebuilt lazily from restored values
        plans = [
            parse_plan_key(str(key), query) for key in archive["plan_keys"]
        ]
        if meta.get("sidecars"):
            optimal_cost, plan_ids = _load_sidecars(path, meta, grid)
        else:
            optimal_cost = np.asarray(archive["optimal_cost"], dtype=float)
            plan_ids = np.asarray(archive["plan_ids"], dtype=np.int32)
        return ESS(
            query=query,
            grid=grid,
            cost_model=cost_model or DEFAULT_COST_MODEL,
            optimal_cost=optimal_cost,
            plan_ids=plan_ids,
            plans=plans,
        )


def _load_sidecars(path, meta, grid):
    """Memory-map a v3 archive's cost/plan arrays (read-only).

    ``np.asarray`` on a matching-dtype memmap is a no-op, so the
    returned arrays stay lazily paged; every validation failure raises
    (the cache layer treats any exception as a miss and rebuilds).
    """
    directory = os.path.dirname(os.path.abspath(path))
    sidecars = meta["sidecars"]
    optimal_cost = np.load(
        os.path.join(directory, sidecars["optimal_cost"]), mmap_mode="r"
    )
    plan_ids = np.load(
        os.path.join(directory, sidecars["plan_ids"]), mmap_mode="r"
    )
    expected = (grid.num_points,)
    if (
        optimal_cost.shape != expected
        or plan_ids.shape != expected
        or optimal_cost.dtype != np.float64
        or plan_ids.dtype != np.int32
    ):
        raise OptimizerError(
            f"ESS archive {path!s} sidecars do not match its grid"
        )
    return optimal_cost, plan_ids
