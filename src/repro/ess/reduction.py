"""Anorexic reduction of contour plan sets.

PlanBouquet's guarantee ``MSO <= 4 * (1 + lambda) * rho`` depends on the
plan density ``rho`` of the densest contour *after* anorexic reduction
[Harish, Darera & Haritsa, VLDB 2007]: a plan may swallow a neighbouring
plan's optimality region if it is at most a ``(1 + lambda)`` factor more
expensive everywhere in that region.  We implement the reduction as a
greedy set cover per contour: find a small set of plans such that every
contour location is covered by some plan whose cost there stays within
``(1 + lambda)`` of the contour budget.  Greedy set cover is the
standard heuristic (the exact problem is NP-hard) and is what keeps the
reduction "anorexic" — small plan cardinalities at tiny cost penalties.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DiscoveryError

#: The default replacement threshold used throughout the paper's
#: PlanBouquet experiments (Section 6.2).
DEFAULT_LAMBDA = 0.2


class ReducedContour:
    """A contour's reduced plan set, in execution order."""

    def __init__(self, index, budget, plan_ids, inflated_budget):
        self.index = index
        self.budget = budget
        self.plan_ids = list(plan_ids)
        self.inflated_budget = inflated_budget

    @property
    def density(self):
        return len(self.plan_ids)


class AnorexicReduction:
    """Greedy per-contour reduction of the plan bouquet.

    Attributes:
        reduced: list of :class:`ReducedContour`, one per contour.
        rho: max reduced density over contours — PlanBouquet's bound
            parameter.
    """

    def __init__(self, ess, contour_set, lam=DEFAULT_LAMBDA):
        if lam < 0:
            raise DiscoveryError("anorexic reduction threshold must be >= 0")
        self.ess = ess
        self.contour_set = contour_set
        self.lam = float(lam)
        self.reduced = [self._reduce_contour(c) for c in contour_set]

    def _reduce_contour(self, contour):
        inflated = contour.budget * (1.0 + self.lam)
        points = contour.points
        if len(points) == 0:
            return ReducedContour(contour.index, contour.budget, [], inflated)
        candidates = contour.unique_plan_ids()
        coverage = {}
        for pid in candidates:
            costs = self.ess.plan_cost_array(pid)[points]
            coverage[pid] = costs <= inflated * (1.0 + 1e-12)

        uncovered = np.ones(len(points), dtype=bool)
        chosen = []
        while uncovered.any():
            best_pid, best_gain = None, -1
            for pid in candidates:
                if pid in chosen:
                    continue
                gain = int(np.count_nonzero(coverage[pid] & uncovered))
                if gain > best_gain:
                    best_pid, best_gain = pid, gain
            if best_pid is None or best_gain <= 0:
                # Every point is optimal under some candidate, so full
                # coverage is always reachable; this is unreachable in a
                # consistent state but guards against fp pathologies.
                raise DiscoveryError(
                    f"contour {contour.index}: greedy cover stalled"
                )
            chosen.append(best_pid)
            uncovered &= ~coverage[best_pid]

        # Execute cheaper-region plans first: order by the minimum
        # coordinate sum of the points each plan covers (origin-first),
        # a deterministic stand-in for the bouquet's plan ordering.  The
        # tie-break is the plan *key*, not the id — ids are surface-local
        # (eager numbers by sorted key, lazy by resolution order), and on
        # an eager surface key order equals id order, so this is the
        # mode-invariant spelling of the same ordering.
        order_keys = {}
        coord_sum = contour.coords.sum(axis=1)
        for pid in chosen:
            covered = coverage[pid]
            order_keys[pid] = (
                int(coord_sum[covered].min()), self.ess.plan_keys[pid]
            )
        chosen.sort(key=lambda pid: order_keys[pid])
        return ReducedContour(contour.index, contour.budget, chosen, inflated)

    @property
    def rho(self):
        return max((rc.density for rc in self.reduced), default=0)

    def contour(self, index):
        """The 1-based reduced contour."""
        return self.reduced[index - 1]

    def mso_guarantee(self):
        """PlanBouquet's behavioural bound ``4 * (1 + lambda) * rho``
        (generalized to the contour ratio in use)."""
        from repro.core.bounds import pb_mso_bound

        return pb_mso_bound(self.rho, self.lam, self.contour_set.cost_ratio)

    def __repr__(self):
        return f"AnorexicReduction(lambda={self.lam}, rho={self.rho})"
