"""Unified observability: span tracing, metrics, exporters, viewer.

Layering (no cycles):

* :mod:`repro.obs.trace` / :mod:`repro.obs.metrics` — pure stdlib,
  importable from anywhere (including multiprocess sweep workers);
* :mod:`repro.obs.export` — JSONL traces + Prometheus text exposition;
* :mod:`repro.obs.runtrace` — discovery-run records → spans + metrics;
* :mod:`repro.obs.waterfall` — the budget-waterfall HTML/SVG viewer.

Tracing is off by default (``REPRO_TRACE=0``); the metrics registry is
always on (counter bumps are one dict update, the same deal the old
``TIMERS`` had).  See ``docs/observability.md`` for the catalog.
"""

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import (
    TraceContext,
    Tracer,
    active_tracer,
    child_tracer,
    current_context,
    enabled,
    install_tracer,
    span,
)

__all__ = [
    "REGISTRY",
    "MetricsRegistry",
    "TraceContext",
    "Tracer",
    "active_tracer",
    "child_tracer",
    "current_context",
    "enabled",
    "install_tracer",
    "span",
]
