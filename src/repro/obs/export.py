"""Exporters: JSONL trace files and Prometheus text exposition.

Two stable wire formats sit in this module:

* **JSONL traces** (``repro.trace.v1``) — one JSON object per line;
  the first line is the tracer's ``meta`` header, every following line
  one span record (see :meth:`repro.obs.trace.Span.to_record`).  The
  format round-trips through :func:`read_trace_jsonl`, which the
  budget-waterfall viewer and the tests both rely on.

* **Prometheus text exposition** (version 0.0.4) — the format
  ``repro stats`` emits and a Prometheus scraper ingests.  Counters
  export as ``repro_<name>_total``, gauges as ``repro_<name>``,
  histograms as the standard ``_bucket``/``_sum``/``_count`` triple,
  and phase timings as a pair of phase-labelled counters
  (``repro_phase_seconds_total`` / ``repro_phase_runs_total``).
"""

from __future__ import annotations

import json
import math
import os
import re

#: Prefix for every exported metric family.
NAMESPACE = "repro"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_FIX = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name):
    """Coerce an internal counter name into a legal Prometheus name."""
    name = _NAME_FIX.sub("_", str(name))
    if not name or not _NAME_OK.match(name):
        name = f"_{name}"
    return name


def _escape_label_value(value):
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _render_labels(labels, extra=None):
    pairs = list(labels or ())
    if extra:
        pairs.extend(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{_LABEL_FIX.sub("_", str(k))}="{_escape_label_value(v)}"'
        for k, v in pairs
    )
    return "{" + inner + "}"


def _fmt_value(value):
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_exemplar(exemplar):
    """OpenMetrics exemplar suffix: ``# {labels} value timestamp``."""
    labels = _render_labels(sorted(exemplar.get("labels", {}).items()))
    ts = exemplar.get("timestamp_s")
    suffix = f" # {labels or '{}'} {_fmt_value(exemplar['value'])}"
    if ts is not None:
        suffix += f" {ts:.3f}"
    return suffix


def prometheus_text(registry, exemplars=False):
    """Render a registry's series as Prometheus text exposition.

    With ``exemplars=True`` the ``+Inf`` bucket line of any histogram
    that recorded an exemplar gains an OpenMetrics-style
    ``# {trace_id="..."} value ts`` suffix.  This is opt-in because
    plain text-format consumers (including our own loadgen scraper)
    split sample lines on the last space; the default output stays
    strict 0.0.4.
    """
    counters, gauges, histograms, phases = registry.series()
    lines = []

    families = {}
    for (name, labels), value in sorted(counters.items()):
        metric = f"{NAMESPACE}_{sanitize_metric_name(name)}_total"
        families.setdefault((metric, "counter"), []).append(
            f"{metric}{_render_labels(labels)} {_fmt_value(value)}"
        )
    for (name, labels), value in sorted(gauges.items()):
        metric = f"{NAMESPACE}_{sanitize_metric_name(name)}"
        families.setdefault((metric, "gauge"), []).append(
            f"{metric}{_render_labels(labels)} {_fmt_value(value)}"
        )
    for (name, labels), dump in sorted(histograms.items()):
        metric = f"{NAMESPACE}_{sanitize_metric_name(name)}"
        rows = families.setdefault((metric, "histogram"), [])
        cumulative = 0
        for bound, count in zip(dump["buckets"], dump["counts"]):
            cumulative = count
            rows.append(
                f"{metric}_bucket"
                f"{_render_labels(labels, [('le', _fmt_value(bound))])} "
                f"{cumulative}"
            )
        inf_line = (
            f"{metric}_bucket{_render_labels(labels, [('le', '+Inf')])} "
            f"{dump['count']}"
        )
        if exemplars and dump.get("exemplar"):
            inf_line += _render_exemplar(dump["exemplar"])
        rows.append(inf_line)
        rows.append(
            f"{metric}_sum{_render_labels(labels)} "
            f"{_fmt_value(dump['sum'])}"
        )
        rows.append(
            f"{metric}_count{_render_labels(labels)} {dump['count']}"
        )
    if phases:
        seconds = f"{NAMESPACE}_phase_seconds_total"
        runs = f"{NAMESPACE}_phase_runs_total"
        for name, (total, count) in sorted(phases.items()):
            label = [("phase", sanitize_metric_name(name))]
            families.setdefault((seconds, "counter"), []).append(
                f"{seconds}{_render_labels(None, label)} "
                f"{_fmt_value(total)}"
            )
            families.setdefault((runs, "counter"), []).append(
                f"{runs}{_render_labels(None, label)} {count}"
            )

    for (metric, kind), rows in sorted(families.items()):
        lines.append(f"# HELP {metric} repro observability metric")
        lines.append(f"# TYPE {metric} {kind}")
        lines.extend(rows)
    return "\n".join(lines) + "\n" if lines else "\n"


def write_trace_jsonl(tracer, path):
    """Write one tracer's spans as a JSONL trace file.

    Parent directories are created; output is UTF-8.  Returns the
    path written.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(tracer.meta(), handle, ensure_ascii=False,
                  sort_keys=True, default=_jsonable)
        handle.write("\n")
        for record in tracer.spans:
            json.dump(record.to_record(), handle, ensure_ascii=False,
                      sort_keys=True, default=_jsonable)
            handle.write("\n")
    return path


def read_trace_jsonl(path):
    """Load a JSONL trace: ``(meta, [span records])``."""
    meta = None
    spans = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "meta":
                meta = record
            else:
                spans.append(record)
    return meta, spans


def _jsonable(value):
    """JSON fallback for numpy scalars/arrays and other odd attrs."""
    if hasattr(value, "item"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)


# -- merged multi-process trace trees ---------------------------------


def span_tree(spans):
    """Arrange span records into parent→children order.

    Accepts the record dicts from :func:`read_trace_jsonl` (or
    ``Span.to_record()``), possibly spliced from several processes.
    Children sort by their ``time_unix_ns`` wall-clock anchor — the
    only clock comparable across processes — falling back to
    ``start_ns`` for legacy single-process traces.  Returns
    ``(roots, children)`` where ``children`` maps span_id → ordered
    child records; spans whose parent never shipped (e.g. dropped by
    the ring) surface as roots so nothing silently disappears.
    """
    by_id = {rec["span_id"]: rec for rec in spans}

    def sort_key(rec):
        return (rec.get("time_unix_ns") or 0, rec.get("start_ns") or 0)

    children = {}
    roots = []
    for rec in spans:
        parent = rec.get("parent_id") or ""
        if parent and parent in by_id:
            children.setdefault(parent, []).append(rec)
        else:
            roots.append(rec)
    for kids in children.values():
        kids.sort(key=sort_key)
    roots.sort(key=sort_key)
    return roots, children


def render_trace_tree(meta, spans, max_spans=200):
    """Plain-text rendering of a (possibly multi-process) trace tree.

    One line per span: indent by depth, name, duration, wall-clock
    offset from the earliest span, and the originating pid when the
    span carries one.  Used by ``repro trace --from-jsonl`` and the
    serve-smoke CI step to eyeball merged trees.
    """
    roots, children = span_tree(spans)
    anchors = [r.get("time_unix_ns") or 0 for r in spans]
    t0 = min((a for a in anchors if a), default=0)
    lines = []
    if meta:
        lines.append(
            f"trace {meta.get('trace_id', '?')} — {len(spans)} spans, "
            f"{meta.get('dropped', 0)} dropped"
        )
    emitted = 0

    def walk(rec, depth):
        nonlocal emitted
        if emitted >= max_spans:
            return
        emitted += 1
        dur_ms = (rec.get("end_ns", 0) - rec.get("start_ns", 0)) / 1e6
        anchor = rec.get("time_unix_ns") or 0
        offset_ms = (anchor - t0) / 1e6 if anchor and t0 else 0.0
        pid = (rec.get("attrs") or {}).get("pid")
        suffix = f"  [pid {pid}]" if pid is not None else ""
        lines.append(
            f"{'  ' * depth}{rec['name']}  {dur_ms:.3f} ms  "
            f"(+{offset_ms:.3f} ms){suffix}"
        )
        for kid in children.get(rec["span_id"], ()):
            walk(kid, depth + 1)

    for root in roots:
        walk(root, 0)
    if emitted < len(spans):
        lines.append(f"... {len(spans) - emitted} more spans elided")
    return "\n".join(lines)
