"""The metrics registry: counters, gauges, histograms, phase timings.

One process-global :data:`REGISTRY` absorbs everything the repo used to
scatter across ad-hoc counters: the ``perf/timers.py`` phase profile
(now a back-compat shim over this registry), run-level discovery
semantics (contours crossed, spill executions per epp, budget-kill
charges, learned-bound updates), infrastructure counters (ESS cache
hits/misses, engine fallbacks, worker fan-out), and anything future
subsystems report.  The registry stores plain data only — rendering
(Prometheus text exposition, JSON) lives in :mod:`repro.obs.export`.

Design constraints:

* **cheap** — a counter bump is one dict update, so instrumentation can
  stay enabled unconditionally (the same deal ``TIMERS`` always had);
* **mergeable** — :meth:`MetricsRegistry.merge` folds a plain-data
  :meth:`~MetricsRegistry.summary` from another process into this one,
  which is how multiprocess sweep workers report their phase timings
  and counters back to the parent (see :mod:`repro.perf.parallel`);
* **label-aware** — every instrument takes an optional ``labels`` dict;
  labelled series are stored per label-set and exported as proper
  Prometheus labels;
* **thread-safe** — every instrument, read accessor, and ``merge()``
  holds the registry lock for the whole mutation, so concurrent
  writers (the serving layer's single-flight coalescing and its
  pool-result merges run on multiple threads) never lose updates or
  observe a half-merged histogram.  :class:`Histogram` instances are
  *not* independently thread-safe; they are only ever touched under
  their owning registry's lock.  See ``docs/observability.md``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

#: Default histogram buckets: log-ish spacing wide enough for both
#: sub-optimality ratios (1..few hundred) and charge magnitudes.
DEFAULT_BUCKETS = (
    0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
    10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0, 100_000_000.0,
    1_000_000_000.0,
)


def _series_key(name, labels):
    """Canonical storage key for a series.

    Labels are sorted by key so insertion order never creates distinct
    series, and a brace-flattened name (``spills{epp=e1}`` — the form
    :func:`_flat_name` produces and ``merge()`` round-trips) is parsed
    back into (name, labels) rather than treated as an opaque metric
    family.  Both normalizations matter for exposition determinism:
    two processes that built the same logical series in different
    orders must render byte-identical scrapes after ``merge()``.
    """
    if "{" in name:
        base, embedded = _unflatten(name)
        if embedded:
            merged = dict(embedded)
            if labels:
                merged.update(labels)
            name, labels = base, merged
    if not labels:
        return (name, ())
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``counts[i]`` counts observations ``<= buckets[i]``; observations
    beyond the last bucket land only in the implicit ``+Inf`` bucket
    (``count`` minus the last cumulative entry).
    """

    __slots__ = ("buckets", "counts", "total", "count", "exemplar")

    def __init__(self, buckets=DEFAULT_BUCKETS):
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * len(self.buckets)
        self.total = 0.0
        self.count = 0
        #: Most recent exemplar: ``{"labels": {...}, "value": float,
        #: "timestamp_s": float}`` or None.  OpenMetrics-style — links
        #: one concrete observation (e.g. its ``trace_id``) to the
        #: aggregate so a scrape can jump from a latency histogram to
        #: the trace that produced an outlier.
        self.exemplar = None

    def observe(self, value, exemplar=None):
        value = float(value)
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
        if exemplar:
            self.exemplar = {
                "labels": {str(k): str(v) for k, v in exemplar.items()},
                "value": value,
                "timestamp_s": time.time(),
            }

    def merge(self, data):
        """Fold a plain-data dump (same bucket layout) into this one."""
        if tuple(data["buckets"]) != self.buckets:
            raise ValueError(
                f"histogram bucket mismatch: {data['buckets']} vs "
                f"{self.buckets}"
            )
        for i, c in enumerate(data["counts"]):
            self.counts[i] += int(c)
        self.total += float(data["sum"])
        self.count += int(data["count"])
        incoming = data.get("exemplar")
        if incoming and (
            self.exemplar is None
            or incoming.get("timestamp_s", 0.0)
            >= self.exemplar.get("timestamp_s", 0.0)
        ):
            self.exemplar = dict(incoming)

    def dump(self):
        out = {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }
        if self.exemplar is not None:
            out["exemplar"] = dict(self.exemplar)
        return out


class MetricsRegistry:
    """Counters, gauges, histograms and phase timings in one place."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._phases = {}

    # -- instruments ---------------------------------------------------

    def incr(self, name, amount=1, labels=None):
        """Bump a monotonically increasing counter."""
        key = _series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def counter(self, name, labels=None):
        with self._lock:
            return self._counters.get(_series_key(name, labels), 0)

    def gauge(self, name, value, labels=None):
        """Set a point-in-time value (last write wins)."""
        with self._lock:
            self._gauges[_series_key(name, labels)] = float(value)

    def gauge_value(self, name, labels=None, default=None):
        with self._lock:
            return self._gauges.get(_series_key(name, labels), default)

    def observe(self, name, value, labels=None, buckets=None, exemplar=None):
        """Record one observation into a fixed-bucket histogram.

        The bucket layout is fixed by the series' first observation;
        later ``buckets`` arguments for the same series are ignored.
        ``exemplar`` optionally attaches a label dict (e.g.
        ``{"trace_id": ...}``) linking this concrete observation to a
        trace; the series keeps the most recent one.
        """
        key = _series_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = Histogram(buckets or DEFAULT_BUCKETS)
                self._histograms[key] = hist
            hist.observe(value, exemplar=exemplar)

    def record_phase(self, name, seconds):
        """Add an externally measured duration to a named phase."""
        with self._lock:
            total, count = self._phases.get(name, (0.0, 0))
            self._phases[name] = (total + float(seconds), count + 1)

    @contextmanager
    def phase(self, name):
        """Time a block into a named phase (wall clock, accumulating)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_phase(name, time.perf_counter() - start)

    # -- aggregation ---------------------------------------------------

    def reset(self):
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._phases.clear()

    def summary(self):
        """Plain-data dump of everything in the registry.

        The ``phases``/``counters`` sections keep the exact shape the
        old ``PhaseTimer.summary()`` produced (label-free counters are
        flattened to their bare name) so ``BENCH_*.json`` artifacts and
        their consumers are unchanged; labelled counters, gauges and
        histograms ride along in their own sections.
        """
        with self._lock:
            counters = {}
            for (name, labels), value in self._counters.items():
                counters[_flat_name(name, labels)] = value
            gauges = {
                _flat_name(name, labels): value
                for (name, labels), value in self._gauges.items()
            }
            histograms = {
                _flat_name(name, labels): hist.dump()
                for (name, labels), hist in self._histograms.items()
            }
            return {
                "phases": {
                    name: {"total_s": total, "count": count}
                    for name, (total, count) in sorted(self._phases.items())
                },
                "counters": dict(sorted(counters.items())),
                "gauges": dict(sorted(gauges.items())),
                "histograms": dict(sorted(histograms.items())),
            }

    def merge(self, summary):
        """Fold another registry's :meth:`summary` into this one.

        Counters and phase totals add; histograms add bucket counts;
        gauges take the incoming value (last write wins, same as a
        local :meth:`gauge` call).  This is the worker-to-parent path
        for multiprocess sweeps: workers ship their summary home and
        nothing they measured is dropped.
        """
        for name, entry in summary.get("phases", {}).items():
            with self._lock:
                total, count = self._phases.get(name, (0.0, 0))
                self._phases[name] = (
                    total + float(entry["total_s"]),
                    count + int(entry["count"]),
                )
        for flat, value in summary.get("counters", {}).items():
            name, labels = _unflatten(flat)
            self.incr(name, value, labels=labels)
        for flat, value in summary.get("gauges", {}).items():
            name, labels = _unflatten(flat)
            self.gauge(name, value, labels=labels)
        for flat, dump in summary.get("histograms", {}).items():
            name, labels = _unflatten(flat)
            key = _series_key(name, labels)
            # The bucket-count merge must happen under the lock too: a
            # concurrent observe() on the same series mutates the same
            # count list, and interleaved read-modify-writes lose bumps.
            with self._lock:
                hist = self._histograms.get(key)
                if hist is None:
                    hist = Histogram(dump["buckets"])
                    self._histograms[key] = hist
                hist.merge(dump)

    # -- raw access for exporters -------------------------------------

    def series(self):
        """Snapshot of raw series for exporters: ``(counters, gauges,
        histograms, phases)`` with ``(name, label_pairs)`` keys."""
        with self._lock:
            return (
                dict(self._counters),
                dict(self._gauges),
                {key: hist.dump() for key, hist in self._histograms.items()},
                dict(self._phases),
            )


def _flat_name(name, labels):
    """Flatten a labelled series to one string key for summaries.

    ``("spills", (("epp","e1"),))`` becomes ``spills{epp=e1}`` — the
    same bracketed convention the conformance monitor counters already
    use — and round-trips through :func:`_unflatten` for merges.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _unflatten(flat):
    if not flat.endswith("}") or "{" not in flat:
        return flat, None
    name, _, inner = flat.partition("{")
    labels = {}
    for part in inner[:-1].split(","):
        if not part:
            continue
        key, _, value = part.partition("=")
        labels[key] = value
    return name, labels or None


#: The process-global registry every instrumented module reports into.
REGISTRY = MetricsRegistry()
