"""Run-level telemetry: execution records → spans, metrics, rows.

A traced discovery run (``algorithm.run(qa, trace=True)``) yields
:class:`~repro.core.discovery.ExecutionRecord` objects whose natural
axis is **charged cost**, not wall time — the paper's accounting charges
a killed execution its full budget and a completed one its actual cost.
This module derives the three downstream views from those records:

* :func:`run_records` — plain dicts with the cumulative *cost timeline*
  (``cost_start`` / ``cost_end``) and an ``outcome`` classification
  (``completed`` / ``budget-kill`` / ``spill-learned``), the input to
  the budget-waterfall viewer;
* :func:`publish_run_metrics` — run semantics into the metrics
  registry: contours crossed, spill executions per epp, budget-kill
  charges, learned-bound updates;
* :func:`traced_run` — runs an algorithm under a ``discovery.run`` span
  and emits one ``discovery.execution`` child span per record (marker
  spans: zero wall duration, the cost timeline rides in the attrs).
"""

from __future__ import annotations

import math

from repro.core.discovery import SPILL
from repro.obs import trace
from repro.obs.metrics import REGISTRY

#: Outcome classes (also the waterfall colour legend, in order).
OUTCOME_COMPLETED = "completed"
OUTCOME_BUDGET_KILL = "budget-kill"
OUTCOME_SPILL_LEARNED = "spill-learned"

OUTCOMES = (OUTCOME_COMPLETED, OUTCOME_BUDGET_KILL, OUTCOME_SPILL_LEARNED)


def classify_outcome(mode, completed):
    """Paper semantics for one budgeted execution:

    * a completed normal-mode execution produced the query result;
    * a completed spill-mode execution learnt its epp's exact
      selectivity (the contour-crossing discovery step);
    * anything killed at budget expiry is a budget-kill, charged its
      full budget.
    """
    if not completed:
        return OUTCOME_BUDGET_KILL
    if mode == SPILL:
        return OUTCOME_SPILL_LEARNED
    return OUTCOME_COMPLETED


def _epp_label(query, spill_dim):
    if spill_dim is None:
        return ""
    if query is not None and spill_dim < len(query.epps):
        return query.epps[spill_dim].name
    return f"e{spill_dim + 1}"


def run_records(result, query=None):
    """Flatten a traced ``DiscoveryResult`` into waterfall rows.

    Requires ``result.executions`` (run with ``trace=True``).  Each row
    carries the cumulative cost timeline: ``cost_start`` is the total
    charge before the execution began, ``cost_end`` after its own
    charge was accounted, so ``rows[-1]["cost_end"]`` equals
    ``result.total_cost``.
    """
    rows = []
    cumulative = 0.0
    for index, record in enumerate(result.executions or ()):
        start = cumulative
        cumulative += record.charged
        learned = record.learned_selectivity
        rows.append({
            "index": index,
            "contour": record.contour,
            "plan_id": record.plan_id,
            "plan_key": record.plan_key,
            "mode": record.mode,
            "epp": _epp_label(query, record.spill_dim),
            "budget": record.budget,
            "charged": record.charged,
            "completed": record.completed,
            "outcome": classify_outcome(record.mode, record.completed),
            "cost_start": start,
            "cost_end": cumulative,
            "learned_selectivity": (
                None if learned is None or math.isnan(learned) else learned
            ),
            "fresh": record.fresh,
            "penalty": record.penalty,
        })
    return rows


def publish_run_metrics(result, rows, algorithm="", registry=REGISTRY):
    """Publish one discovery run's semantics into the registry."""
    labels = {"algorithm": algorithm} if algorithm else None
    registry.incr("discovery_runs", labels=labels)
    registry.incr("contours_crossed", result.contours_visited, labels=labels)
    registry.incr("discovery_executions", result.num_executions,
                  labels=labels)
    registry.incr("repeat_executions", result.num_repeat_executions,
                  labels=labels)
    for row in rows:
        if row["mode"] == SPILL and row["epp"]:
            registry.incr("spill_executions", labels={"epp": row["epp"]})
        if row["outcome"] == OUTCOME_BUDGET_KILL:
            registry.incr("budget_kills", labels=labels)
            registry.observe("budget_kill_charge", row["charged"])
        if row["learned_selectivity"] is not None:
            registry.incr("learned_bound_updates", labels=labels)
    registry.observe("run_suboptimality", result.suboptimality)
    registry.gauge("last_run_total_cost", result.total_cost)
    registry.gauge("last_run_optimal_cost", result.optimal_cost)


def traced_run(algorithm, qa, name="", registry=REGISTRY):
    """One discovery run under a ``discovery.run`` span.

    Returns ``(result, rows)`` where ``rows`` is the
    :func:`run_records` flattening.  Each execution becomes a
    ``discovery.execution`` marker span: wall duration is meaningless
    for replayed cost accounting, so the span's value is its attrs —
    the cost timeline, outcome, plan and contour.
    """
    query = getattr(getattr(algorithm, "ess", None), "query", None)
    query_name = getattr(query, "name", "")
    with trace.span("discovery.run", algorithm=name,
                    query=query_name) as run_span:
        result = algorithm.run(qa, trace=True)
        rows = run_records(result, query)
        run_span.set_attr("qa_coords", list(result.qa_coords))
        run_span.set_attr("total_cost", result.total_cost)
        run_span.set_attr("optimal_cost", result.optimal_cost)
        run_span.set_attr("suboptimality", result.suboptimality)
        run_span.set_attr("contours_visited", result.contours_visited)
        run_span.set_attr("num_executions", result.num_executions)
        for row in rows:
            with trace.span("discovery.execution", **row):
                pass
    publish_run_metrics(result, rows, algorithm=name, registry=registry)
    return result, rows
