"""Span-based tracing with a zero-overhead disabled path.

A :class:`Tracer` produces :class:`Span` records — trace/span ids,
parent links, attributes, monotonic nanosecond timestamps — from
``with span("name", key=value):`` blocks placed throughout the
pipeline (sweep engines, cache loads, engine executions, conformance
workloads).  Spans nest through a thread-local stack, so the parent
link always reflects the dynamic call structure.

Tracing is **off by default**: the module-level :func:`span` function
returns a shared no-op context manager unless a tracer is installed,
so an instrumented call site costs one global load and a ``None``
check.  Enablement paths:

* ``REPRO_TRACE=1`` in the environment installs a process-global
  tracer at import time (``REPRO_TRACE_OUT=<path>`` additionally
  writes the JSONL trace there at exit via :func:`flush_env_tracer`);
* the CLI's ``repro trace`` subcommand and ``--trace-out`` flags
  install one explicitly for the duration of a command;
* tests install scoped tracers through :func:`install_tracer`.

Span timestamps are wall-clock-free (``perf_counter_ns``); the trace
carries one wall-clock anchor in its metadata so exporters can place
the timeline in real time.  Discovery-run spans additionally carry the
*cost timeline* (``cost_start`` / ``cost_end`` attributes) — for the
paper's algorithms the interesting axis is budgeted cost, not wall
time (see :mod:`repro.obs.runtrace`).
"""

from __future__ import annotations

import itertools
import os
import threading
import time

#: Hard cap on retained spans per tracer; beyond it spans are counted
#: (``tracer.dropped``) but not stored, so a traced exhaustive sweep
#: cannot exhaust memory.
MAX_SPANS = 200_000


class Span:
    """One finished (or in-flight) operation in a trace."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "attrs",
        "start_ns", "end_ns",
    )

    def __init__(self, trace_id, span_id, parent_id, name, attrs):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start_ns = 0
        self.end_ns = 0

    @property
    def duration_ns(self):
        return self.end_ns - self.start_ns

    def set_attr(self, key, value):
        self.attrs[key] = value

    def to_record(self):
        """Plain-data form used by the JSONL exporter."""
        return {
            "kind": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "attrs": self.attrs,
        }


class _NoopSpan:
    """Shared do-nothing span: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set_attr(self, key, value):
        pass


NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager that opens/closes one real span."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self.span = span

    def __enter__(self):
        self.span.start_ns = time.perf_counter_ns()
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb):
        self.span.end_ns = time.perf_counter_ns()
        if exc_type is not None:
            self.span.attrs["error"] = exc_type.__name__
        self._tracer._pop(self.span)
        return False


class Tracer:
    """Collects spans for one logical trace.

    Thread-safe: each thread nests spans on its own stack; finished
    spans land in one shared, bounded list in completion order.
    """

    def __init__(self, max_spans=MAX_SPANS):
        self.enabled = True
        self.max_spans = max_spans
        self.trace_id = os.urandom(8).hex()
        self.spans = []
        self.dropped = 0
        self.started_at = time.time()
        self._ids = itertools.count(1)
        self._local = threading.local()

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name, /, **attrs):
        """Open a child span of the current thread's active span.

        ``name`` is positional-only so an attribute may also be called
        ``name`` without colliding.
        """
        if not self.enabled:
            return NOOP_SPAN
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else ""
        record = Span(
            trace_id=self.trace_id,
            span_id=f"{next(self._ids):08x}",
            parent_id=parent_id,
            name=name,
            attrs=dict(attrs),
        )
        return _ActiveSpan(self, record)

    def current_span(self):
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, record):
        self._stack().append(record)

    def _pop(self, record):
        stack = self._stack()
        if stack and stack[-1] is record:
            stack.pop()
        if len(self.spans) < self.max_spans:
            self.spans.append(record)
        else:
            self.dropped += 1

    def meta(self):
        """Trace-level metadata (the JSONL header line)."""
        return {
            "kind": "meta",
            "schema": TRACE_SCHEMA,
            "trace_id": self.trace_id,
            "started_at_unix_s": self.started_at,
            "spans": len(self.spans),
            "dropped": self.dropped,
        }


#: Version tag carried in every JSONL trace header.
TRACE_SCHEMA = "repro.trace.v1"

#: The installed process-global tracer (None = tracing disabled).
_TRACER = None


def trace_enabled_by_env():
    """Whether ``REPRO_TRACE`` asks for tracing (default: no)."""
    return os.environ.get("REPRO_TRACE", "0").strip().lower() in (
        "1", "true", "on", "yes",
    )


def active_tracer():
    """The installed tracer, or None when tracing is disabled."""
    return _TRACER


def install_tracer(tracer):
    """Install (or with None, uninstall) the global tracer.

    Returns the previously installed tracer so scoped users (the CLI,
    tests) can restore it.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def enabled():
    tracer = _TRACER
    return tracer is not None and tracer.enabled


def span(name, /, **attrs):
    """Open a span on the global tracer — or do nothing, cheaply."""
    tracer = _TRACER
    if tracer is None or not tracer.enabled:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def current_span():
    """The active span on this thread, or None (also None when
    tracing is disabled — use through ``span(...).set_attr`` guards)."""
    tracer = _TRACER
    if tracer is None:
        return None
    return tracer.current_span()


def flush_env_tracer():
    """Write the env-installed tracer's spans to ``REPRO_TRACE_OUT``.

    A no-op unless tracing was enabled through the environment and an
    output path was given.  Called by the CLI main on exit so plain
    ``REPRO_TRACE=1 REPRO_TRACE_OUT=t.jsonl repro run ...`` works
    without any flag.
    """
    out = os.environ.get("REPRO_TRACE_OUT", "").strip()
    tracer = _TRACER
    if not out or tracer is None or not tracer.spans:
        return None
    from repro.obs.export import write_trace_jsonl

    return write_trace_jsonl(tracer, out)


if trace_enabled_by_env():  # pragma: no cover - exercised via subprocess
    _TRACER = Tracer()
