"""Span-based tracing with a zero-overhead disabled path.

A :class:`Tracer` produces :class:`Span` records — trace/span ids,
parent links, attributes, monotonic nanosecond timestamps — from
``with span("name", key=value):`` blocks placed throughout the
pipeline (sweep engines, cache loads, engine executions, conformance
workloads).  Spans nest through a thread-local stack, so the parent
link always reflects the dynamic call structure.

Tracing is **off by default**: the module-level :func:`span` function
returns a shared no-op context manager unless a tracer is installed,
so an instrumented call site costs one global load and a ``None``
check.  Enablement paths:

* ``REPRO_TRACE=1`` in the environment installs a process-global
  tracer at import time (``REPRO_TRACE_OUT=<path>`` additionally
  writes the JSONL trace there at exit via :func:`flush_env_tracer`);
* the CLI's ``repro trace`` subcommand and ``--trace-out`` flags
  install one explicitly for the duration of a command;
* tests install scoped tracers through :func:`install_tracer`.

Span durations are wall-clock-free (``perf_counter_ns``); since that
clock is not comparable across processes, every span additionally
records a ``time_unix_ns`` wall-clock anchor at entry so merged
multi-process timelines order correctly.  Discovery-run spans
additionally carry the *cost timeline* (``cost_start`` / ``cost_end``
attributes) — for the paper's algorithms the interesting axis is
budgeted cost, not wall time (see :mod:`repro.obs.runtrace`).

Cross-process propagation: :func:`current_context` captures a
serializable :class:`TraceContext` (trace id + parent span id +
wall-clock anchor), a worker process builds a :func:`child_tracer`
from its wire form, runs its work under it, and ships
``[s.to_record() for s in tracer.spans]`` home with the result
payload; the parent then :meth:`Tracer.splice`\\ s those records into
its own span list, producing one tree under one trace id.  Span ids
carry a per-tracer random prefix so ids minted in different processes
never collide.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import warnings

#: Hard cap on retained spans per tracer; beyond it spans are counted
#: (``tracer.dropped``) but not stored, so a traced exhaustive sweep
#: cannot exhaust memory.
MAX_SPANS = 200_000


class Span:
    """One finished (or in-flight) operation in a trace."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "attrs",
        "start_ns", "end_ns", "time_unix_ns",
    )

    def __init__(self, trace_id, span_id, parent_id, name, attrs):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start_ns = 0
        self.end_ns = 0
        self.time_unix_ns = 0

    @property
    def duration_ns(self):
        return self.end_ns - self.start_ns

    def set_attr(self, key, value):
        self.attrs[key] = value

    def to_record(self):
        """Plain-data form used by the JSONL exporter."""
        return {
            "kind": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "time_unix_ns": self.time_unix_ns,
            "attrs": self.attrs,
        }

    @classmethod
    def from_record(cls, record):
        """Rebuild a span from its :meth:`to_record` form (used when a
        parent splices records shipped home by a worker process)."""
        span = cls(
            trace_id=record["trace_id"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id", ""),
            name=record["name"],
            attrs=dict(record.get("attrs") or {}),
        )
        span.start_ns = record.get("start_ns", 0)
        span.end_ns = record.get("end_ns", 0)
        span.time_unix_ns = record.get("time_unix_ns", 0)
        return span


class _NoopSpan:
    """Shared do-nothing span: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set_attr(self, key, value):
        pass


NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager that opens/closes one real span."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer, span):
        self._tracer = tracer
        self.span = span

    def __enter__(self):
        self.span.time_unix_ns = time.time_ns()
        self.span.start_ns = time.perf_counter_ns()
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb):
        self.span.end_ns = time.perf_counter_ns()
        if exc_type is not None:
            self.span.attrs["error"] = exc_type.__name__
        self._tracer._pop(self.span)
        return False


class TraceContext:
    """Serializable handle that carries a trace across processes.

    Wire form (``to_wire``) is a plain JSON/pickle-safe dict so it can
    ride inside worker spec dicts and task tuples:

    ``{"trace_id": hex, "parent_span_id": hex, "anchor_unix_ns": int}``

    ``anchor_unix_ns`` is the parent's wall clock at capture time; a
    child process can compare it against its own ``time.time_ns()`` to
    sanity-check clock skew, and merged-timeline renderers use the
    spans' own ``time_unix_ns`` anchors for ordering.
    """

    __slots__ = ("trace_id", "parent_span_id", "anchor_unix_ns")

    def __init__(self, trace_id, parent_span_id="", anchor_unix_ns=0):
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.anchor_unix_ns = int(anchor_unix_ns)

    def to_wire(self):
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "anchor_unix_ns": self.anchor_unix_ns,
        }

    @classmethod
    def from_wire(cls, wire):
        if wire is None:
            return None
        if isinstance(wire, TraceContext):
            return wire
        return cls(
            trace_id=wire["trace_id"],
            parent_span_id=wire.get("parent_span_id", ""),
            anchor_unix_ns=wire.get("anchor_unix_ns", 0),
        )


class Tracer:
    """Collects spans for one logical trace.

    Thread-safe: each thread nests spans on its own stack; finished
    spans land in one shared, bounded list in completion order.

    ``trace_id``/``parent_span_id`` let a worker process join a trace
    started elsewhere (see :func:`child_tracer`): root spans opened on
    such a child tracer parent onto ``parent_span_id``, and the random
    per-tracer span-id prefix keeps ids minted in different processes
    from colliding even though each tracer counts from 1.
    """

    def __init__(self, max_spans=MAX_SPANS, trace_id=None, parent_span_id=""):
        self.enabled = True
        self.max_spans = max_spans
        self.trace_id = trace_id or os.urandom(8).hex()
        self.parent_span_id = parent_span_id
        self.spans = []
        self.dropped = 0
        self.started_at = time.time()
        self._ids = itertools.count(1)
        self._id_prefix = os.urandom(3).hex()
        self._local = threading.local()

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name, /, **attrs):
        """Open a child span of the current thread's active span.

        ``name`` is positional-only so an attribute may also be called
        ``name`` without colliding.
        """
        if not self.enabled:
            return NOOP_SPAN
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else self.parent_span_id
        record = Span(
            trace_id=self.trace_id,
            span_id=f"{self._id_prefix}{next(self._ids):08x}",
            parent_id=parent_id,
            name=name,
            attrs=dict(attrs),
        )
        return _ActiveSpan(self, record)

    def current_span(self):
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, record):
        self._stack().append(record)

    def _pop(self, record):
        stack = self._stack()
        if stack and stack[-1] is record:
            stack.pop()
        self._retain(record)

    def _retain(self, record):
        if len(self.spans) < self.max_spans:
            self.spans.append(record)
            return
        self.dropped += 1
        _count_drop(self)

    def splice(self, records):
        """Adopt span records shipped home by a child-process tracer.

        Records whose trace id does not match are ignored (a stale
        worker could ship spans from a previous request); the rest are
        appended under the same ``max_spans`` bound as locally produced
        spans.  Returns the number of spans adopted.
        """
        adopted = 0
        for record in records or ():
            if record.get("trace_id") != self.trace_id:
                continue
            self._retain(Span.from_record(record))
            adopted += 1
        return adopted

    def context(self):
        """A :class:`TraceContext` for handing work to another process,
        parented on this thread's active span (or this tracer's own
        parent when no span is open)."""
        current = self.current_span()
        parent = current.span_id if current is not None else self.parent_span_id
        return TraceContext(
            trace_id=self.trace_id,
            parent_span_id=parent,
            anchor_unix_ns=time.time_ns(),
        )

    def meta(self):
        """Trace-level metadata (the JSONL header line)."""
        return {
            "kind": "meta",
            "schema": TRACE_SCHEMA,
            "trace_id": self.trace_id,
            "started_at_unix_s": self.started_at,
            "spans": len(self.spans),
            "dropped": self.dropped,
        }


#: Version tag carried in every JSONL trace header.
TRACE_SCHEMA = "repro.trace.v1"

#: The installed process-global tracer (None = tracing disabled).
_TRACER = None

#: Guard so the ring-full warning fires once per process, not once per
#: dropped span.
_WARNED_DROP = False


def _count_drop(tracer):
    """Account one dropped span: bump the registry counter (satellite:
    ``repro_trace_spans_dropped_total``) and warn the first time any
    tracer's ring fills in this process."""
    global _WARNED_DROP
    from repro.obs.metrics import REGISTRY

    REGISTRY.incr("trace_spans_dropped")
    if not _WARNED_DROP:
        _WARNED_DROP = True
        warnings.warn(
            "trace ring full: tracer %s reached max_spans=%d; further "
            "spans are counted in repro_trace_spans_dropped_total but "
            "not stored" % (tracer.trace_id, tracer.max_spans),
            RuntimeWarning,
            stacklevel=4,
        )


def trace_enabled_by_env():
    """Whether ``REPRO_TRACE`` asks for tracing (default: no)."""
    return os.environ.get("REPRO_TRACE", "0").strip().lower() in (
        "1", "true", "on", "yes",
    )


def active_tracer():
    """The installed tracer, or None when tracing is disabled."""
    return _TRACER


def install_tracer(tracer):
    """Install (or with None, uninstall) the global tracer.

    Returns the previously installed tracer so scoped users (the CLI,
    tests) can restore it.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def enabled():
    tracer = _TRACER
    return tracer is not None and tracer.enabled


def span(name, /, **attrs):
    """Open a span on the global tracer — or do nothing, cheaply."""
    tracer = _TRACER
    if tracer is None or not tracer.enabled:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def current_span():
    """The active span on this thread, or None (also None when
    tracing is disabled — use through ``span(...).set_attr`` guards)."""
    tracer = _TRACER
    if tracer is None:
        return None
    return tracer.current_span()


def current_context():
    """A :class:`TraceContext` for the active trace, or None when
    tracing is disabled.  Capture this *inside* the span that should
    become the cross-process parent, then pass ``.to_wire()`` with the
    task payload."""
    tracer = _TRACER
    if tracer is None or not tracer.enabled:
        return None
    return tracer.context()


def child_tracer(wire, max_spans=MAX_SPANS):
    """Build a worker-side tracer joined to a parent trace.

    ``wire`` is a :class:`TraceContext` or its ``to_wire()`` dict (or
    None, returning None so callers can write
    ``tracer = child_tracer(spec.get("trace"))`` unconditionally).
    """
    ctx = TraceContext.from_wire(wire)
    if ctx is None:
        return None
    return Tracer(
        max_spans=max_spans,
        trace_id=ctx.trace_id,
        parent_span_id=ctx.parent_span_id,
    )


def flush_env_tracer():
    """Write the env-installed tracer's spans to ``REPRO_TRACE_OUT``.

    A no-op unless tracing was enabled through the environment and an
    output path was given.  Called by the CLI main on exit so plain
    ``REPRO_TRACE=1 REPRO_TRACE_OUT=t.jsonl repro run ...`` works
    without any flag.
    """
    out = os.environ.get("REPRO_TRACE_OUT", "").strip()
    tracer = _TRACER
    if not out or tracer is None or not tracer.spans:
        return None
    from repro.obs.export import write_trace_jsonl

    return write_trace_jsonl(tracer, out)


if trace_enabled_by_env():  # pragma: no cover - exercised via subprocess
    _TRACER = Tracer()
