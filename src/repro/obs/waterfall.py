"""The budget-waterfall trace viewer.

Renders one discovery run — the :func:`repro.obs.runtrace.run_records`
rows — as an SVG timeline of budgeted executions: one row per
execution in sequence order, bar length showing the charged cost on a
log axis (the contour budget ladder is geometric, so log space makes
the doubling visible as even steps), a tick marking each execution's
granted budget, and colour carrying the outcome:

* green — completed (produced the query result);
* amber — budget-kill (killed at expiry, charged the full budget);
* blue — spill-learned (completed in spill mode, selectivity learnt).

A secondary polyline overlays the cumulative charge after each
execution — the quantity whose final value, divided by the oracle
cost, is the run's sub-optimality.  The HTML wrapper embeds the SVG
with a per-execution table so the picture and the numbers travel in
one self-contained file.
"""

from __future__ import annotations

import math
import os

from repro.bench.svgfig import (
    AXIS,
    GRID,
    SERIES_COLORS,
    TEXT_PRIMARY,
    TEXT_SECONDARY,
    _Canvas,
    _esc,
    _fmt,
)

#: Outcome → colour, drawn from the validated categorical slots.
OUTCOME_COLORS = {
    "completed": SERIES_COLORS[1],
    "budget-kill": SERIES_COLORS[2],
    "spill-learned": SERIES_COLORS[0],
}

ROW_HEIGHT = 22
BAR_THICKNESS = 14
#: Rows beyond this are summarised, not drawn (keeps huge traces sane).
MAX_ROWS = 400


def _log_axis(rows):
    """The log-x window covering every charge and budget."""
    values = []
    for row in rows:
        for key in ("charged", "budget", "cost_end"):
            value = row.get(key)
            if value and value > 0 and not math.isinf(value):
                values.append(value)
    if not values:
        return 0.1, 1.0
    lo = min(values)
    hi = max(values)
    return lo / 2.0, hi * 1.2


def waterfall_svg(rows, title="budget waterfall", subtitle=""):
    """Render waterfall rows (see module docstring) to an SVG string."""
    drawn = rows[:MAX_ROWS]
    hidden = len(rows) - len(drawn)
    left, right_pad = 150, 30
    width = 860
    right = width - right_pad
    top = 92 if subtitle else 76
    bottom = top + max(len(drawn), 1) * ROW_HEIGHT
    height = bottom + 64
    canvas = _Canvas(width, height, title)
    canvas.text(left, 26, title, size=15, fill=TEXT_PRIMARY, weight="600")
    if subtitle:
        canvas.text(left, 44, subtitle, size=12)

    lo, hi = _log_axis(drawn)
    log_lo, log_hi = math.log10(lo), math.log10(hi)

    def x_of(value):
        if value <= lo:
            return left
        return left + (math.log10(value) - log_lo) / (log_hi - log_lo) * (
            right - left)

    # Decade gridlines over the cost axis.
    decade = 10.0 ** math.floor(log_lo)
    while decade <= hi:
        if decade >= lo:
            x = x_of(decade)
            canvas.line(x, top - 6, x, bottom, GRID, 1)
            canvas.text(x, bottom + 16, f"1e{int(math.log10(decade))}",
                        size=10, anchor="middle")
        decade *= 10
    canvas.line(left, bottom, right, bottom, AXIS, 1)
    canvas.text((left + right) / 2, bottom + 32, "charged cost (log)",
                size=11, anchor="middle")

    overlay = []
    for i, row in enumerate(drawn):
        y = top + i * ROW_HEIGHT
        y_bar = y + (ROW_HEIGHT - BAR_THICKNESS) / 2
        color = OUTCOME_COLORS.get(row["outcome"], TEXT_SECONDARY)
        epp = f" {row['epp']}" if row.get("epp") else ""
        canvas.text(left - 8, y + ROW_HEIGHT / 2 + 4,
                    f"IC{row['contour']} {row['mode']}{epp}",
                    size=10, anchor="end")
        bar_end = x_of(row["charged"])
        canvas.parts.append("<g>")
        canvas.rect(left, y_bar, max(bar_end - left, 2), BAR_THICKNESS,
                    color, rounded_top=0)
        canvas.parts.append(
            f"<title>{_esc(_tooltip(row))}</title></g>"
        )
        # Budget tick: where the engine's kill switch sat for this run.
        if row["budget"] and not math.isinf(row["budget"]):
            bx = x_of(row["budget"])
            canvas.line(bx, y_bar - 2, bx, y_bar + BAR_THICKNESS + 2,
                        TEXT_PRIMARY, 1.5)
        if row["cost_end"] > 0:
            overlay.append((x_of(row["cost_end"]), y + ROW_HEIGHT / 2))

    if len(overlay) >= 2:
        canvas.polyline(overlay, TEXT_SECONDARY, 1.5)
    if hidden > 0:
        canvas.text(left, bottom + 48, f"... {hidden} more executions "
                    f"not drawn", size=11)

    # Legend: the three outcomes, the budget tick, the cumulative line.
    x = left
    y = height - 14
    for outcome in ("completed", "budget-kill", "spill-learned"):
        canvas.rect(x, y - 9, 12, 12, OUTCOME_COLORS[outcome])
        canvas.text(x + 16, y + 1, outcome, size=11, fill=TEXT_PRIMARY)
        x += 30 + 6 * len(outcome)
    canvas.line(x, y - 9, x, y + 3, TEXT_PRIMARY, 1.5)
    canvas.text(x + 6, y + 1, "budget", size=11, fill=TEXT_PRIMARY)
    x += 60
    canvas.line(x, y - 3, x + 16, y - 3, TEXT_SECONDARY, 1.5)
    canvas.text(x + 22, y + 1, "cumulative charge", size=11,
                fill=TEXT_PRIMARY)
    return canvas.render()


def _tooltip(row):
    parts = [
        f"#{row['index']} contour {row['contour']} {row['mode']}",
        f"plan {row['plan_key'] or row['plan_id']}",
        f"budget {_fmt(row['budget'])}" if not math.isinf(row["budget"])
        else "unbudgeted",
        f"charged {_fmt(row['charged'])}",
        f"cumulative {_fmt(row['cost_end'])}",
        row["outcome"],
    ]
    if row.get("learned_selectivity") is not None:
        parts.append(f"learned {row['learned_selectivity']:.3g}")
    return " | ".join(parts)


_TABLE_COLUMNS = (
    ("index", "#"), ("contour", "IC"), ("mode", "mode"), ("epp", "epp"),
    ("plan_key", "plan"), ("budget", "budget"), ("charged", "charged"),
    ("cost_end", "cumulative"), ("outcome", "outcome"),
    ("learned_selectivity", "learned"),
)


def _cell(row, key):
    value = row.get(key)
    if value is None or value == "":
        return "-"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        return f"{value:.4g}"
    return str(value)


def waterfall_html(rows, meta=None, title="budget waterfall"):
    """Self-contained HTML: run header, the SVG, a per-execution table."""
    meta = dict(meta or {})
    subtitle_bits = []
    for key in ("query", "algorithm"):
        if meta.get(key):
            subtitle_bits.append(f"{key} {meta[key]}")
    if meta.get("suboptimality") is not None:
        subtitle_bits.append(f"sub-optimality {meta['suboptimality']:.2f}")
    subtitle = " · ".join(subtitle_bits)
    svg = waterfall_svg(rows, title=title, subtitle=subtitle)

    header_rows = "".join(
        f"<tr><th>{_esc(key)}</th><td>{_esc(value)}</td></tr>"
        for key, value in meta.items()
    )
    body = "".join(
        "<tr>" + "".join(
            f"<td>{_esc(_cell(row, key))}</td>"
            for key, _ in _TABLE_COLUMNS
        ) + "</tr>"
        for row in rows
    )
    head = "".join(f"<th>{_esc(label)}</th>" for _, label in _TABLE_COLUMNS)
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{_esc(title)}</title>
<style>
body {{ font-family: -apple-system, 'Segoe UI', Helvetica, Arial,
        sans-serif; margin: 24px; color: #0b0b0b; background: #fcfcfb; }}
table {{ border-collapse: collapse; margin-top: 18px; font-size: 13px; }}
th, td {{ border: 1px solid #e7e6e2; padding: 4px 10px;
          text-align: left; }}
th {{ background: #f3f2ef; }}
caption {{ text-align: left; font-weight: 600; padding: 6px 0; }}
</style>
</head>
<body>
<h1>{_esc(title)}</h1>
<table><caption>run</caption>{header_rows}</table>
{svg}
<table><caption>executions</caption>
<tr>{head}</tr>
{body}
</table>
</body>
</html>
"""


def write_waterfall_html(path, rows, meta=None, title="budget waterfall"):
    """Write the HTML viewer; creates parent directories, UTF-8."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(waterfall_html(rows, meta=meta, title=title))
    return path


# -- merged multi-process trace timeline ------------------------------


def _flatten_tree(spans):
    """Depth-first (root-first) rows: ``(record, depth)`` pairs, using
    the wall-clock ordering from :func:`repro.obs.export.span_tree`."""
    from repro.obs.export import span_tree

    roots, children = span_tree(spans)
    rows = []

    def walk(rec, depth):
        rows.append((rec, depth))
        for kid in children.get(rec["span_id"], ()):
            walk(kid, depth + 1)

    for root in roots:
        walk(root, 0)
    return rows


def trace_timeline_svg(spans, title="trace timeline", subtitle=""):
    """Gantt-style SVG of a merged multi-process trace.

    One row per span in tree order (indented by depth); bars are
    positioned on the shared wall-clock axis (``time_unix_ns``) so
    front-end, pool-worker and sweep-worker spans line up correctly
    even though their ``perf_counter_ns`` durations come from
    different processes.  Bar colour identifies the originating pid.
    """
    rows = _flatten_tree(spans)[:MAX_ROWS]
    hidden = max(len(spans) - len(rows), 0)
    anchors = [r.get("time_unix_ns") or 0 for r, _ in rows]
    t0 = min((a for a in anchors if a), default=0)
    ends = [
        (r.get("time_unix_ns") or 0)
        + max(r.get("end_ns", 0) - r.get("start_ns", 0), 0)
        for r, _ in rows
    ]
    span_ns = max((e - t0 for e in ends), default=1) or 1

    left, right_pad = 250, 30
    width = 960
    right = width - right_pad
    top = 92 if subtitle else 76
    bottom = top + max(len(rows), 1) * ROW_HEIGHT
    height = bottom + 64
    canvas = _Canvas(width, height, title)
    canvas.text(left, 26, title, size=15, fill=TEXT_PRIMARY, weight="600")
    if subtitle:
        canvas.text(left, 44, subtitle, size=12)

    def x_of(anchor_ns):
        return left + (anchor_ns - t0) / span_ns * (right - left)

    # Time gridlines: quarters of the total window.
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        x = left + frac * (right - left)
        canvas.line(x, top - 6, x, bottom, GRID, 1)
        canvas.text(x, bottom + 16, f"{frac * span_ns / 1e6:.1f} ms",
                    size=10, anchor="middle")
    canvas.line(left, bottom, right, bottom, AXIS, 1)
    canvas.text((left + right) / 2, bottom + 32,
                "wall clock since first span", size=11, anchor="middle")

    pids = []
    for rec, _ in rows:
        pid = (rec.get("attrs") or {}).get("pid")
        if pid is not None and pid not in pids:
            pids.append(pid)
    pid_color = {
        pid: SERIES_COLORS[i % len(SERIES_COLORS)]
        for i, pid in enumerate(pids)
    }

    for i, (rec, depth) in enumerate(rows):
        y = top + i * ROW_HEIGHT
        y_bar = y + (ROW_HEIGHT - BAR_THICKNESS) / 2
        anchor = rec.get("time_unix_ns") or t0
        dur_ns = max(rec.get("end_ns", 0) - rec.get("start_ns", 0), 0)
        pid = (rec.get("attrs") or {}).get("pid")
        color = pid_color.get(pid, TEXT_SECONDARY)
        label = f"{'· ' * depth}{rec['name']}"
        canvas.text(left - 8, y + ROW_HEIGHT / 2 + 4, label[:40],
                    size=10, anchor="end")
        x = x_of(anchor)
        bar_w = max(dur_ns / span_ns * (right - left), 2)
        canvas.parts.append("<g>")
        canvas.rect(x, y_bar, bar_w, BAR_THICKNESS, color, rounded_top=0)
        tip = (
            f"{rec['name']} | {dur_ns / 1e6:.3f} ms | "
            f"+{(anchor - t0) / 1e6:.3f} ms"
            + (f" | pid {pid}" if pid is not None else "")
        )
        canvas.parts.append(f"<title>{_esc(tip)}</title></g>")

    if hidden > 0:
        canvas.text(left, bottom + 48, f"... {hidden} more spans not drawn",
                    size=11)

    # Legend: one swatch per process.
    x = left
    y = height - 14
    for pid in pids[:8]:
        canvas.rect(x, y - 9, 12, 12, pid_color[pid])
        canvas.text(x + 16, y + 1, f"pid {pid}", size=11, fill=TEXT_PRIMARY)
        x += 40 + 7 * len(str(pid))
    return canvas.render()


def trace_timeline_html(meta, spans, title="trace timeline"):
    """Self-contained HTML wrapper for the merged trace timeline."""
    meta = dict(meta or {})
    pids = sorted({
        (r.get("attrs") or {}).get("pid")
        for r in spans
        if (r.get("attrs") or {}).get("pid") is not None
    })
    subtitle = (
        f"trace {meta.get('trace_id', '?')} · {len(spans)} spans · "
        f"{len(pids) or 1} process(es)"
    )
    svg = trace_timeline_svg(spans, title=title, subtitle=subtitle)
    header_rows = "".join(
        f"<tr><th>{_esc(key)}</th><td>{_esc(value)}</td></tr>"
        for key, value in meta.items()
        if key != "kind"
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{_esc(title)}</title>
<style>
body {{ font-family: -apple-system, 'Segoe UI', Helvetica, Arial,
        sans-serif; margin: 24px; color: #0b0b0b; background: #fcfcfb; }}
table {{ border-collapse: collapse; margin-top: 18px; font-size: 13px; }}
th, td {{ border: 1px solid #e7e6e2; padding: 4px 10px;
          text-align: left; }}
th {{ background: #f3f2ef; }}
caption {{ text-align: left; font-weight: 600; padding: 6px 0; }}
</style>
</head>
<body>
<h1>{_esc(title)}</h1>
<table><caption>trace</caption>{header_rows}</table>
{svg}
</body>
</html>
"""


def write_trace_html(path, meta, spans, title="trace timeline"):
    """Write the merged-trace timeline HTML; creates parent dirs."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(trace_timeline_html(meta, spans, title=title))
    return path
