"""Cost-model calibration against engine measurements.

Section 7 assumes cost-model errors are bounded by a factor ``delta``
(reporting ``delta = 0.3`` as typical) and inflates the guarantees by
``(1 + delta)^2``.  This module closes the loop from the other side:
given measured executions on the real engine, it

* **estimates delta** — the worst modelled-vs-measured cost ratio over a
  probe workload (:func:`measure_delta`), the number that feeds
  :func:`repro.core.bounds.inflate_for_cost_error`; and
* **re-fits the cost constants** — every operator's cost is linear in
  its per-tuple constants, so a least-squares fit over (feature counts,
  measured cost) pairs recovers constants that match the engine
  (:func:`calibrate`).

The engine plays the role of the real system (its meter constants are
the ground truth); the *planning* model under assessment may have
drifted from it — exactly the situation Section 7's delta describes.
The probe workload is a set of (plan, data) executions; features are
the exact tuple counts each constant multiplies, extracted from the
engine's own monitors, so the fit recovers the engine's constants up to
its startup terms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.engine.spill import execute_plan
from repro.errors import DiscoveryError
from repro.optimizer.cost_model import CostModel
from repro.optimizer.plans import plan_cost

#: The calibratable constants, in feature order.
CALIBRATED_FIELDS = (
    "seq_tuple", "index_fetch", "hash_build", "hash_probe",
    "sort_unit", "merge_unit", "nl_pair", "output_tuple",
)


@dataclass
class CalibrationReport:
    """Outcome of a calibration fit."""

    model: CostModel
    delta_before: float
    delta_after: float
    num_probes: int

    @property
    def improved(self):
        return self.delta_after <= self.delta_before + 1e-9


def _probe_features(plan, query, data_provider, engine_model):
    """Execute a plan and extract (feature counts, measured cost).

    Feature counts come from the run-time monitors: how many tuples each
    constant was charged for.  Startup charges are measured separately
    and subtracted, keeping the system exactly linear in the constants.
    """
    from repro.optimizer.plans import (
        HASH_JOIN,
        INDEX_NL_JOIN,
        MERGE_JOIN,
        NL_JOIN,
        JoinNode,
        ScanNode,
    )

    outcome = execute_plan(plan, query, data_provider, engine_model)
    if not outcome.completed:
        raise DiscoveryError("calibration probes must run unbudgeted")
    model = engine_model  # fixed terms are the engine's own charges
    features = dict.fromkeys(CALIBRATED_FIELDS, 0.0)
    fixed = 0.0
    for node in plan.iter_nodes():
        stats = outcome.stats.get(node.key)
        if stats is None:
            continue  # INL inner access: costed inside the join node
        fixed += model.startup
        if isinstance(node, ScanNode):
            if stats.rows_outer and stats.rows_outer < (
                query.schema.table(node.table).cardinality
            ):
                # Index scan path: descend + fetches.
                fixed += model.index_lookup * math.log2(
                    max(query.schema.table(node.table).cardinality, 2)
                )
                features["index_fetch"] += stats.rows_outer
            else:
                features["seq_tuple"] += stats.rows_outer
            features["output_tuple"] += stats.rows_out
        elif isinstance(node, JoinNode):
            if node.op == HASH_JOIN:
                features["hash_build"] += stats.rows_inner
                features["hash_probe"] += stats.rows_outer
            elif node.op == MERGE_JOIN:
                left, right = stats.rows_outer, stats.rows_inner
                features["sort_unit"] += (
                    left * math.log2(max(left, 2))
                    + right * math.log2(max(right, 2))
                )
                features["merge_unit"] += left + right
            elif node.op == NL_JOIN:
                features["nl_pair"] += stats.rows_outer * stats.rows_inner
            elif node.op == INDEX_NL_JOIN:
                inner_table = next(iter(node.inner.tables))
                base = query.schema.table(inner_table).cardinality
                fixed += (model.index_lookup * stats.rows_outer
                          * math.log2(max(base, 2)) * 0.25)
                # Fetch volume is not directly monitored; approximate by
                # the output count (residual filters are usually rare).
                features["index_fetch"] += stats.rows_out
            features["output_tuple"] += stats.rows_out
    return features, outcome.cost_spent - fixed, outcome


def measure_delta(probes, model, engine_model=None):
    """Worst multiplicative modelled-vs-measured error over probes.

    Args:
        probes: iterable of ``(plan, query, data_provider, env)`` where
            ``env`` maps epp dimension -> the *true* selectivity (so the
            model predicts at the right location).
        model: the *planning* cost model under assessment.
        engine_model: the engine's (ground-truth) constants; defaults to
            the library default.

    Returns the Section 7 ``delta``: the smallest value such that every
    probe's measured cost lies within ``[model/(1+delta), model*(1+delta)]``.
    """
    from repro.optimizer.cost_model import DEFAULT_COST_MODEL

    engine_model = engine_model or DEFAULT_COST_MODEL
    worst = 1.0
    for plan, query, data_provider, env in probes:
        outcome = execute_plan(plan, query, data_provider, engine_model)
        predicted = float(plan_cost(plan, query, model, env))
        measured = outcome.cost_spent
        if measured <= 0 or predicted <= 0:
            continue
        ratio = max(measured / predicted, predicted / measured)
        worst = max(worst, ratio)
    return worst - 1.0


def calibrate(probes, base_model, engine_model=None):
    """Fit the planning model's per-tuple constants to the engine.

    Least squares over the probes' (feature counts, measured cost)
    pairs, clipped to positive constants.  Constants no probe exercises
    keep their prior value.

    Returns a :class:`CalibrationReport` with the fitted model and the
    before/after delta on the same probes.
    """
    from repro.optimizer.cost_model import DEFAULT_COST_MODEL

    engine_model = engine_model or DEFAULT_COST_MODEL
    rows = []
    targets = []
    probe_list = list(probes)
    for plan, query, data_provider, _ in probe_list:
        features, adjusted_cost, _ = _probe_features(
            plan, query, data_provider, engine_model
        )
        rows.append([features[f] for f in CALIBRATED_FIELDS])
        targets.append(adjusted_cost)
    matrix = np.asarray(rows, dtype=float)
    target = np.asarray(targets, dtype=float)
    if matrix.size == 0:
        raise DiscoveryError("calibration needs at least one probe")

    exercised = matrix.sum(axis=0) > 0
    priors = np.array([getattr(base_model, f) for f in CALIBRATED_FIELDS])
    solution = priors.copy()
    if exercised.any():
        sub = matrix[:, exercised]
        fitted, *_ = np.linalg.lstsq(sub, target, rcond=None)
        fitted = np.maximum(fitted, 1e-6)  # constants are positive costs
        solution[exercised] = fitted

    fitted_model = CostModel(
        **{f: float(v) for f, v in zip(CALIBRATED_FIELDS, solution)},
        index_lookup=base_model.index_lookup,
        hash_mem_tuples=base_model.hash_mem_tuples,
        hash_spill=base_model.hash_spill,
        startup=base_model.startup,
    )
    return CalibrationReport(
        model=fitted_model,
        delta_before=measure_delta(probe_list, base_model, engine_model),
        delta_after=measure_delta(probe_list, fitted_model, engine_model),
        num_probes=len(probe_list),
    )
