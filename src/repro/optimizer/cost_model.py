"""The plan cost model.

A standard disk + CPU cost model in abstract cost units, deliberately
shaped so that physical-operator crossovers occur as selectivities move
(index nested-loop wins at low outer cardinalities, hash join in the
mid-range with a spill penalty past the memory budget, sort-merge for
big-big joins that blow the hash memory, plain nested-loop only for tiny
inputs).  Those crossovers are what give the Parametric Optimal Set of
Plans (POSP) its structure, and with it the iso-cost contour geometry the
discovery algorithms navigate.

Every cost function accepts scalars or numpy arrays (the optimizer sweeps
the whole ESS grid in one vectorized pass) and is monotonically
non-decreasing in every input cardinality; output-cardinality terms are
strictly increasing.  Plan Cost Monotonicity (PCM, paper Section 2.4)
follows by construction: inflating any epp selectivity inflates the
output cardinality of the node applying it and of every node above it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields

import numpy as np


def _log2(card):
    """``log2`` guarded against zero/sub-one cardinalities."""
    return np.log2(np.maximum(card, 2.0))


@dataclass(frozen=True)
class CostModel:
    """Cost-model constants (abstract units; roughly "per tuple touched").

    Attributes:
        seq_tuple: sequential read+qualify cost per base tuple.
        index_lookup: B-tree descend cost (multiplied by log2 of the
            indexed relation size).
        index_fetch: random-access fetch cost per matching tuple.
        hash_build: per-tuple hash-table build cost.
        hash_probe: per-tuple probe cost.
        hash_mem_tuples: in-memory hash-table budget; bigger builds pay
            the Grace-hash spill surcharge.
        hash_spill: per-tuple partition write+read surcharge when the
            build side exceeds memory.
        sort_unit: per-tuple-per-comparison-level sort cost.
        merge_unit: per-tuple merge-pass cost.
        nl_pair: per-tuple-pair nested-loop cost.
        output_tuple: per-result-tuple emission cost (strictly increasing
            term that anchors PCM).
        startup: fixed per-operator startup cost.
    """

    seq_tuple: float = 1.0
    index_lookup: float = 4.0
    index_fetch: float = 2.0
    hash_build: float = 2.0
    hash_probe: float = 1.2
    hash_mem_tuples: float = 2.0e6
    hash_spill: float = 1.6
    sort_unit: float = 0.25
    merge_unit: float = 0.4
    nl_pair: float = 0.05
    output_tuple: float = 0.5
    startup: float = 10.0

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------

    def scan_seq(self, base_card, out_card):
        """Full sequential scan; filter applied on the fly."""
        return self.startup + self.seq_tuple * base_card + self.output_tuple * out_card

    def scan_index(self, base_card, out_card):
        """Index scan driven by a filter on an indexed column.

        Pays a B-tree descend plus a random fetch per qualifying tuple —
        cheaper than a sequential scan only at low filter selectivities,
        which is exactly the crossover a real optimizer exhibits.
        """
        descend = self.index_lookup * _log2(base_card)
        fetch = self.index_fetch * out_card
        return self.startup + descend + fetch + self.output_tuple * out_card

    # ------------------------------------------------------------------
    # Joins.  ``outer``/``probe`` is the left child's output cardinality,
    # ``inner``/``build`` the right child's; ``out`` the join output.
    # ------------------------------------------------------------------

    def join_hash(self, probe_card, build_card, out_card):
        """Classic hybrid hash join with a Grace-style spill surcharge."""
        base = self.hash_build * build_card + self.hash_probe * probe_card
        over = np.maximum(build_card - self.hash_mem_tuples, 0.0)
        # Spilling repartitions both inputs proportionally to the overflow
        # fraction of the build side.
        frac = over / np.maximum(build_card, 1.0)
        spill = self.hash_spill * frac * (build_card + probe_card)
        return self.startup + base + spill + self.output_tuple * out_card

    def join_merge(self, left_card, right_card, out_card):
        """Sort-merge join; both inputs sorted from scratch."""
        sort = self.sort_unit * (
            left_card * _log2(left_card) + right_card * _log2(right_card)
        )
        merge = self.merge_unit * (left_card + right_card)
        return self.startup + sort + merge + self.output_tuple * out_card

    def join_nl(self, outer_card, inner_card, out_card):
        """Tuple nested-loop join — only viable for tiny inputs."""
        pairs = self.nl_pair * outer_card * inner_card
        return self.startup + pairs + self.output_tuple * out_card

    def join_inl(self, outer_card, inner_base_card, out_card):
        """Index nested-loop join into a base relation's index.

        Each outer tuple descends the inner index and fetches its
        matches; total fetch volume is the join output cardinality.
        """
        descend = self.index_lookup * outer_card * _log2(inner_base_card) * 0.25
        fetch = self.index_fetch * out_card
        return self.startup + descend + fetch + self.output_tuple * out_card

    def fingerprint(self):
        """Stable content hash of the model's constants.

        Cache keys (the in-memory workload registry and the persistent
        ESS archive) must distinguish cost models by *value*: ``id()``
        is reused after garbage collection and object identity does not
        survive process boundaries.  The fingerprint is a short hex
        digest over the full-precision constant values, so any perturbed
        model (:meth:`with_noise`) keys differently while equal models
        built independently key identically.
        """
        payload = ",".join(
            f"{f.name}={float(getattr(self, f.name))!r}"
            for f in fields(self)
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]

    def with_noise(self, delta, seed=0):
        """A cost model whose constants are perturbed by up to ``delta``.

        Models the bounded cost-model error of paper Section 7: every
        constant is scaled by a factor in ``[1/(1+delta), (1+delta)]``.
        Used by the ablation experiments; ``delta=0`` returns ``self``.
        """
        if delta <= 0:
            return self
        rng = np.random.default_rng(seed)
        scaled = {}
        for name in (
            "seq_tuple", "index_lookup", "index_fetch", "hash_build",
            "hash_probe", "hash_spill", "sort_unit", "merge_unit",
            "nl_pair", "output_tuple",
        ):
            factor = (1.0 + delta) ** rng.uniform(-1.0, 1.0)
            scaled[name] = getattr(self, name) * factor
        return CostModel(
            hash_mem_tuples=self.hash_mem_tuples, startup=self.startup, **scaled
        )


DEFAULT_COST_MODEL = CostModel()
