"""A Selinger-style cost-based optimizer with selectivity injection.

This is the substrate that plays the role of the paper's modified
PostgreSQL optimizer.  Two capabilities matter to the discovery
algorithms:

* **Selectivity injection** — the optimizer plans a query *as if* the
  error-prone predicates had caller-chosen selectivities.  Repeated
  injection over the ESS grid yields the POSP and the Optimal Cost
  Surface (paper Section 2.2).
* **Vectorized grid sweeps** — rather than invoking the planner once per
  grid location, the dynamic program is evaluated with numpy arrays over
  *all* locations at once: each DP entry holds the best cost per
  location plus the argmin alternative, and plans are reconstructed per
  location from the choice arrays afterwards.

The search space is bushy join trees over connected subgraphs (no cross
products), with physical alternatives per join (hash, sort-merge,
nested-loop, index nested-loop) and per scan (sequential, index).
"""

from __future__ import annotations

import numpy as np

from repro.errors import OptimizerError
from repro.optimizer.cost_model import DEFAULT_COST_MODEL
from repro.optimizer.plans import (
    HASH_JOIN,
    INDEX_NL_JOIN,
    INDEX_SCAN,
    MERGE_JOIN,
    NL_JOIN,
    SEQ_SCAN,
    JoinNode,
    ScanNode,
    predicate_selectivity,
)


class _ScanAlt:
    """A scan alternative for a singleton subset."""

    __slots__ = ("method", "table", "filters")

    def __init__(self, method, table, filters):
        self.method = method
        self.table = table
        self.filters = filters


class _JoinAlt:
    """A join alternative: ``op`` over ``(outer_mask, inner_mask)``."""

    __slots__ = ("op", "outer_mask", "inner_mask", "preds")

    def __init__(self, op, outer_mask, inner_mask, preds):
        self.op = op
        self.outer_mask = outer_mask
        self.inner_mask = inner_mask
        self.preds = preds


class OptimizationResult:
    """The outcome of one (possibly grid-wide) optimization sweep.

    Attributes:
        optimal_cost: ndarray of shape ``(N,)`` — ``Cost(P_q, q)`` per
            location.
    """

    def __init__(self, optimizer, best, choice, num_points):
        self._optimizer = optimizer
        self._best = best
        self._choice = choice
        self.num_points = num_points
        self.optimal_cost = best[optimizer.full_mask]

    def plan_at(self, point):
        """Reconstruct the optimal :class:`PlanNode` tree at one location."""
        cache = {}
        return self._build(self._optimizer.full_mask, point, cache)

    def plans(self):
        """Reconstruct plans for every location, deduplicated.

        Two locations share a plan exactly when they agree on every
        *load-bearing* choice entry — the DP cells actually consulted
        while walking the chosen tree top-down (a cell for a subset that
        the chosen join order never materializes cannot influence the
        plan).  Locations are therefore grouped by their signature of
        load-bearing entries and the recursive reconstruction runs once
        per distinct signature — O(|POSP|)-ish recursions instead of one
        per grid point, which dominates ESS build time on fine grids.

        Returns:
            (keys, plan_pool): ``keys`` is a list of plan-identity strings
            per location; ``plan_pool`` maps identity -> shared
            :class:`PlanNode` tree.
        """
        optimizer = self._optimizer
        full = optimizer.full_mask
        n = self.num_points
        # Top-down reachability sweep: parents have strictly more bits
        # than their children, so descending-popcount order processes
        # every parent before any of its children.
        masks = sorted(
            optimizer._connected_masks, key=lambda m: -bin(m).count("1")
        )
        reach = {full: np.ones(n, dtype=bool)}
        signature_columns = []
        for mask in masks:
            reached = reach.get(mask)
            if reached is None or not reached.any():
                continue
            alts = optimizer.alternatives[mask]
            branching = len(alts) > 1
            if branching:
                chosen = np.asarray(self._choice[mask])
                # Non-load-bearing entries are masked to -1 so they
                # cannot split otherwise-identical plans.
                signature_columns.append(
                    np.where(reached, chosen, -1).astype(np.int32)
                )
            for idx, alt in enumerate(alts):
                if isinstance(alt, _ScanAlt):
                    continue
                selected = reached & (chosen == idx) if branching else reached
                if not selected.any():
                    continue
                prev = reach.get(alt.outer_mask)
                reach[alt.outer_mask] = (
                    selected.copy() if prev is None else prev | selected
                )
                if alt.op != INDEX_NL_JOIN:  # INL never walks its inner side
                    prev = reach.get(alt.inner_mask)
                    reach[alt.inner_mask] = (
                        selected.copy() if prev is None else prev | selected
                    )
        if signature_columns:
            signatures = np.stack(signature_columns, axis=1)
            _, representatives, inverse = np.unique(
                signatures, axis=0, return_index=True, return_inverse=True
            )
            inverse = inverse.reshape(-1)
        else:  # a query with no plan choices anywhere
            representatives = np.zeros(1, dtype=np.int64)
            inverse = np.zeros(n, dtype=np.int64)
        cache = {}
        group_keys = [
            self._build(full, int(point), cache).key
            for point in representatives
        ]
        keys = [group_keys[int(g)] for g in inverse]
        pool = {}
        for node in cache.values():
            pool[node.key] = node
        # The pool contains all subtrees; restrict to full plans.
        full_tables = optimizer.all_tables
        return keys, {
            k: v for k, v in pool.items() if v.tables == full_tables
        }

    def _build(self, mask, point, cache):
        optimizer = self._optimizer
        alts = optimizer.alternatives[mask]
        idx = int(self._choice[mask][point]) if len(alts) > 1 else 0
        alt = alts[idx]
        if isinstance(alt, _ScanAlt):
            node = ScanNode(alt.table, alt.method, alt.filters)
        else:
            outer = self._build(alt.outer_mask, point, cache)
            if alt.op == INDEX_NL_JOIN:
                # The indexed inner side is accessed through its index,
                # never scanned — pin its identity so plan keys do not
                # vary with a cost-irrelevant scan choice.
                table = optimizer._table_of(alt.inner_mask)
                filters = tuple(optimizer.query.filters_on(table))
                inner = ScanNode(table, INDEX_SCAN, filters)
            else:
                inner = self._build(alt.inner_mask, point, cache)
            node = JoinNode(alt.op, outer, inner, alt.preds)
        shared = cache.get(node.key)
        if shared is not None:
            return shared
        cache[node.key] = node
        return node


class Optimizer:
    """Dynamic-programming join-order optimizer for one query.

    Construction precomputes the connected-subgraph structure; each call
    to :meth:`optimize` performs a sweep for one selectivity environment
    (a single point or the full grid).
    """

    def __init__(self, query, cost_model=DEFAULT_COST_MODEL, left_deep=False):
        """Args:
            query: the SPJ query to plan.
            cost_model: cost constants.
            left_deep: restrict the search to left-deep trees (inner
                side always a base relation) — the classical Selinger
                space; default searches bushy trees too.
        """
        self.query = query
        self.cost_model = cost_model
        self.left_deep = bool(left_deep)
        self.tables = list(query.tables)
        self.all_tables = frozenset(self.tables)
        self._bit = {t: 1 << i for i, t in enumerate(self.tables)}
        n = len(self.tables)
        self.full_mask = (1 << n) - 1

        # Adjacency bitmasks from the join graph.
        self._adj = [0] * n
        for i, t in enumerate(self.tables):
            for neighbor in query.join_graph.neighbors(t):
                self._adj[i] |= self._bit[neighbor]

        # Per-predicate endpoint masks.
        self._pred_masks = [
            (self._bit[p.left_table] | self._bit[p.right_table], p)
            for p in query.joins
        ]

        self._connected_masks = self._enumerate_connected()
        self.alternatives = self._enumerate_alternatives()

    # ------------------------------------------------------------------
    # Static structure
    # ------------------------------------------------------------------

    def _is_connected(self, mask):
        """Connectivity of a subset mask via bit-parallel BFS."""
        if mask == 0:
            return False
        start = mask & -mask
        frontier = start
        seen = start
        while frontier:
            reach = 0
            m = frontier
            while m:
                bit = m & -m
                m ^= bit
                reach |= self._adj[bit.bit_length() - 1]
            frontier = reach & mask & ~seen
            seen |= frontier
        return seen == mask

    def _enumerate_connected(self):
        masks = [
            mask
            for mask in range(1, self.full_mask + 1)
            if self._is_connected(mask)
        ]
        masks.sort(key=lambda m: (bin(m).count("1"), m))
        return masks

    def _cross_preds(self, mask_a, mask_b):
        found = []
        for endpoint_mask, pred in self._pred_masks:
            if (endpoint_mask & mask_a) and (endpoint_mask & mask_b) and (
                endpoint_mask & ~(mask_a | mask_b)
            ) == 0:
                found.append(pred)
        return tuple(found)

    def _table_of(self, singleton_mask):
        return self.tables[singleton_mask.bit_length() - 1]

    def _enumerate_alternatives(self):
        """Build the static alternative lists for every connected mask."""
        query = self.query
        alternatives = {}
        connected = set(self._connected_masks)
        for mask in self._connected_masks:
            if mask & (mask - 1) == 0:  # singleton
                table = self._table_of(mask)
                filters = tuple(query.filters_on(table))
                alts = [_ScanAlt(SEQ_SCAN, table, filters)]
                indexed_filters = [
                    f for f in filters
                    if query.schema.table(table).column(f.column).indexed
                ]
                if indexed_filters:
                    alts.append(_ScanAlt(INDEX_SCAN, table, filters))
                alternatives[mask] = alts
                continue

            alts = []
            sub = (mask - 1) & mask
            while sub:
                rest = mask ^ sub
                if self.left_deep and rest & (rest - 1):
                    sub = (sub - 1) & mask
                    continue  # left-deep: inner must be a base relation
                if sub in connected and rest in connected:
                    preds = self._cross_preds(sub, rest)
                    if preds:
                        alts.append(_JoinAlt(HASH_JOIN, sub, rest, preds))
                        alts.append(_JoinAlt(NL_JOIN, sub, rest, preds))
                        # Merge join is symmetric: enumerate one
                        # orientation (left-deep search only sees one
                        # anyway, so it keeps every split).
                        if self.left_deep or sub < rest:
                            alts.append(_JoinAlt(MERGE_JOIN, sub, rest, preds))
                        if rest & (rest - 1) == 0:
                            inner_table = self._table_of(rest)
                            if self._inl_applicable(inner_table, preds):
                                alts.append(
                                    _JoinAlt(INDEX_NL_JOIN, sub, rest, preds)
                                )
                sub = (sub - 1) & mask
            if not alts:
                raise OptimizerError(
                    f"no join alternatives for subset {mask:b} of "
                    f"query {query.name!r}"
                )
            alternatives[mask] = alts
        return alternatives

    def _inl_applicable(self, inner_table, preds):
        """Index NL requires an index on the inner join column."""
        table = self.query.schema.table(inner_table)
        for pred in preds:
            if inner_table in pred.tables:
                if table.column(pred.column_for(inner_table)).indexed:
                    return True
        return False

    # ------------------------------------------------------------------
    # The vectorized sweep
    # ------------------------------------------------------------------

    def optimize(self, env, num_points=None):
        """Optimize under a selectivity environment.

        Args:
            env: mapping epp dimension -> selectivity, each a scalar or an
                ndarray of shape ``(N,)``.
            num_points: N; inferred from array-valued entries if omitted
                (defaults to 1 when all entries are scalars).

        Returns:
            :class:`OptimizationResult`.
        """
        if num_points is None:
            num_points = 1
            for value in env.values():
                if isinstance(value, np.ndarray):
                    num_points = int(value.shape[0])
                    break
        cards = self._subset_cards(env)
        best = {}
        choice = {}
        model = self.cost_model
        query = self.query

        for mask in self._connected_masks:
            alts = self.alternatives[mask]
            best_cost = None
            best_idx = None
            for idx, alt in enumerate(alts):
                cost = self._alternative_cost(alt, mask, cards, best, env)
                cost = np.broadcast_to(
                    np.asarray(cost, dtype=float), (num_points,)
                )
                if best_cost is None:
                    best_cost = np.array(cost, dtype=float)
                    best_idx = np.zeros(num_points, dtype=np.int16)
                else:
                    better = cost < best_cost
                    if better.any():
                        best_cost = np.where(better, cost, best_cost)
                        best_idx = np.where(better, np.int16(idx), best_idx)
            best[mask] = best_cost
            choice[mask] = best_idx

        del model, query  # referenced via helpers
        return OptimizationResult(self, best, choice, num_points)

    def optimize_at(self, selectivities):
        """Single-point convenience: plan for one epp selectivity vector.

        Returns ``(plan, cost)``.
        """
        env = {dim: float(s) for dim, s in enumerate(selectivities)}
        result = self.optimize(env, num_points=1)
        return result.plan_at(0), float(result.optimal_cost[0])

    def _subset_cards(self, env):
        """Output cardinalities for every connected mask under ``env``."""
        query = self.query
        cards = {}
        for mask in self._connected_masks:
            if mask & (mask - 1) == 0:
                table = self._table_of(mask)
                card = float(query.schema.table(table).cardinality)
                for f in query.filters_on(table):
                    card = card * predicate_selectivity(f, query, env)
                cards[mask] = card
                continue
            # Any connected split reproduces the subset cardinality
            # (order-independence under selectivity independence).
            sub = mask & -mask
            # Grow `sub` into a connected component strictly inside mask.
            alt = self.alternatives[mask][0]
            card = cards[alt.outer_mask] * cards[alt.inner_mask]
            for pred in alt.preds:
                card = card * predicate_selectivity(pred, query, env)
            cards[mask] = card
            del sub
        return cards

    def _alternative_cost(self, alt, mask, cards, best, env):
        model = self.cost_model
        query = self.query
        if isinstance(alt, _ScanAlt):
            base = float(query.schema.table(alt.table).cardinality)
            out = cards[mask]
            if alt.method == INDEX_SCAN:
                # Fetch volume: rows matched by the indexed filters only.
                fetch = base
                for f in alt.filters:
                    if query.schema.table(alt.table).column(f.column).indexed:
                        fetch = fetch * predicate_selectivity(f, query, env)
                return model.scan_index(base, np.maximum(fetch, out))
            return model.scan_seq(base, out)

        outer_cost = best[alt.outer_mask]
        inner_cost = best[alt.inner_mask]
        outer_card = cards[alt.outer_mask]
        inner_card = cards[alt.inner_mask]
        out = cards[mask]
        if alt.op == HASH_JOIN:
            local = model.join_hash(outer_card, inner_card, out)
            return outer_cost + inner_cost + local
        if alt.op == MERGE_JOIN:
            local = model.join_merge(outer_card, inner_card, out)
            return outer_cost + inner_cost + local
        if alt.op == NL_JOIN:
            local = model.join_nl(outer_card, inner_card, out)
            return outer_cost + inner_cost + local
        if alt.op == INDEX_NL_JOIN:
            inner_table = self._table_of(alt.inner_mask)
            inner_base = float(query.schema.table(inner_table).cardinality)
            # Index matches precede residual filters on the inner side.
            ratio = inner_base / np.maximum(inner_card, 1e-12)
            match_card = out * np.minimum(ratio, inner_base)
            local = model.join_inl(outer_card, inner_base, match_card)
            return outer_cost + local  # the inner side is never scanned
        raise OptimizerError(f"unknown operator {alt.op!r}")
