"""Physical plan trees: identity, pipelines, re-costing, spill surgery.

A plan is an immutable tree of :class:`ScanNode` and :class:`JoinNode`
objects.  The discovery algorithms need four things from a plan beyond
what a conventional engine provides:

* **Canonical identity** (:attr:`PlanNode.key`) — POSP membership is
  decided by structural equality of plans across ESS locations.
* **Parameterized re-costing** (:func:`plan_cost`) — ``Cost(P, q)`` for a
  *fixed* plan at *any* ESS location, vectorized over the whole grid.
* **Pipeline decomposition and epp total order**
  (:func:`epp_total_order`) — the paper's spill-node identification
  (Section 3.1.3) orders epps by pipeline execution order, then by the
  upstream/downstream relation within a pipeline.
* **Spill subtree costing** (:func:`spill_subtree_cost`) — the cost of
  executing only the subtree rooted at an epp's node, which is what a
  spill-mode execution pays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OptimizerError, QueryError

#: Physical join operator tags.
HASH_JOIN = "HJ"
MERGE_JOIN = "MJ"
NL_JOIN = "NL"
INDEX_NL_JOIN = "INL"

SEQ_SCAN = "SEQ"
INDEX_SCAN = "IDX"


class PlanNode:
    """Base class for plan-tree nodes.

    Attributes:
        tables: frozenset of base tables under this node.
        applied_preds: predicates applied *at* this node (filters for
            scans, join predicates for joins).
        key: canonical structural identity string.
    """

    __slots__ = ("tables", "applied_preds", "key")

    @property
    def children(self):
        return ()

    def iter_nodes(self):
        """Yield all nodes in the subtree (pre-order)."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def __repr__(self):
        return self.key


class ScanNode(PlanNode):
    """A base-relation access: sequential or index scan."""

    __slots__ = ("table", "method")

    def __init__(self, table, method, filters=()):
        self.table = table
        self.method = method
        self.tables = frozenset((table,))
        self.applied_preds = tuple(filters)
        self.key = f"{method}({table})"


class JoinNode(PlanNode):
    """A binary join.

    ``outer`` is the streaming/probe/driving side, ``inner`` the
    blocking/build/indexed side — which side is which matters to both the
    cost model and the pipeline decomposition.
    """

    __slots__ = ("op", "outer", "inner")

    def __init__(self, op, outer, inner, preds):
        if not preds:
            raise OptimizerError("join node requires at least one predicate")
        self.op = op
        self.outer = outer
        self.inner = inner
        self.applied_preds = tuple(preds)
        self.tables = outer.tables | inner.tables
        pred_names = ",".join(sorted(p.name for p in preds))
        self.key = f"{op}[{pred_names}]({outer.key},{inner.key})"

    @property
    def children(self):
        return (self.outer, self.inner)


# ----------------------------------------------------------------------
# Selectivity environments
# ----------------------------------------------------------------------

def predicate_selectivity(pred, query, env):
    """Selectivity of a predicate under an ESS environment.

    ``env`` maps epp dimension -> selectivity (scalar or array); non-epp
    predicates use their true (assumed correctly estimated) selectivity.
    """
    if pred.error_prone:
        dim = query.epp_dimension(pred.name)
        try:
            return env[dim]
        except KeyError:
            raise QueryError(
                f"environment missing epp dimension {dim} ({pred.name})"
            ) from None
    return pred.selectivity


def base_cardinality(table, query, env):
    """Cardinality of a base table after its filters, under ``env``."""
    card = float(query.schema.table(table).cardinality)
    for f in query.filters_on(table):
        card = card * predicate_selectivity(f, query, env)
    return card


def node_output_cardinality(node, query, env, _cache=None):
    """Output cardinality of a plan node under ``env``.

    With the selectivity-independence assumption, the cardinality of a
    join over table set S is the product of filtered base cardinalities
    and of all join selectivities applied within S — independent of the
    join order, which is why a fixed plan can be re-costed anywhere.
    """
    if isinstance(node, ScanNode):
        return base_cardinality(node.table, query, env)
    card = node_output_cardinality(node.outer, query, env) * node_output_cardinality(
        node.inner, query, env
    )
    for pred in node.applied_preds:
        card = card * predicate_selectivity(pred, query, env)
    return card


# ----------------------------------------------------------------------
# Re-costing
# ----------------------------------------------------------------------

def _node_cost(node, query, cost_model, env, out_cards, inl_inner):
    """Cost of one node given precomputed output cardinalities.

    ``inl_inner`` is the set of node ids that are the inner (indexed)
    side of an index-nested-loop join: those relations are accessed
    through their index, never scanned, so they contribute no cost of
    their own — the access cost lives in the INL node.
    """
    if id(node) in inl_inner:
        return 0.0
    out = out_cards[id(node)]
    if isinstance(node, ScanNode):
        base = float(query.schema.table(node.table).cardinality)
        if node.method == INDEX_SCAN:
            fetch = base
            for f in node.applied_preds:
                if query.schema.table(node.table).column(f.column).indexed:
                    fetch = fetch * predicate_selectivity(f, query, env)
            return cost_model.scan_index(base, np.maximum(fetch, out))
        return cost_model.scan_seq(base, out)
    outer = out_cards[id(node.outer)]
    inner = out_cards[id(node.inner)]
    if node.op == HASH_JOIN:
        return cost_model.join_hash(outer, inner, out)
    if node.op == MERGE_JOIN:
        return cost_model.join_merge(outer, inner, out)
    if node.op == NL_JOIN:
        return cost_model.join_nl(outer, inner, out)
    if node.op == INDEX_NL_JOIN:
        inner_base = float(query.schema.table(next(iter(node.inner.tables))).cardinality)
        # Index matches precede any residual filter on the inner side.
        ratio = inner_base / np.maximum(inner, 1e-12)
        match_card = out * np.minimum(ratio, inner_base)
        return cost_model.join_inl(outer, inner_base, match_card)
    raise OptimizerError(f"unknown join operator {node.op!r}")


def _output_cardinalities(plan, query, env):
    """Map ``id(node) -> output cardinality`` for every node (post-order)."""
    cards = {}

    def walk(node):
        if isinstance(node, ScanNode):
            card = base_cardinality(node.table, query, env)
        else:
            card = walk(node.outer) * walk(node.inner)
            for pred in node.applied_preds:
                card = card * predicate_selectivity(pred, query, env)
        cards[id(node)] = card
        return card

    walk(plan)
    return cards


def plan_node_costs(plan, query, cost_model, env):
    """Per-node costs for a plan under ``env`` (map ``id(node) -> cost``)."""
    out_cards = _output_cardinalities(plan, query, env)
    inl_inner = {
        id(node.inner)
        for node in plan.iter_nodes()
        if isinstance(node, JoinNode) and node.op == INDEX_NL_JOIN
    }
    return {
        id(node): _node_cost(node, query, cost_model, env, out_cards, inl_inner)
        for node in plan.iter_nodes()
    }


def plan_cost(plan, query, cost_model, env):
    """Total ``Cost(P, q)``: sum of all node costs (scalar or array)."""
    costs = plan_node_costs(plan, query, cost_model, env)
    total = 0.0
    for value in costs.values():
        total = total + value
    return total


# ----------------------------------------------------------------------
# Pipelines and the epp total order (paper Section 3.1)
# ----------------------------------------------------------------------

def _blocking_children(node):
    """Children whose output is fully materialized before the node runs."""
    if isinstance(node, ScanNode):
        return ()
    if node.op == HASH_JOIN:
        return (node.inner,)  # the build side
    if node.op == MERGE_JOIN:
        return (node.outer, node.inner)  # both sorted first
    return ()  # NL / INL stream the outer, re-scan the inner


def execution_order(plan):
    """Nodes in completion order: a deterministic linearization that
    satisfies the paper's two spill-ordering rules.

    * *Inter-pipeline*: blocking children (hash builds, sort inputs)
      complete before the pipeline containing their parent.
    * *Intra-pipeline*: upstream nodes complete no later than their
      downstream consumers (post-order).
    """
    order = []

    def walk(node):
        blocking = _blocking_children(node)
        for child in blocking:
            walk(child)
        for child in node.children:
            if child not in blocking:
                walk(child)
        order.append(node)

    walk(plan)
    return order


def epp_total_order(plan, query):
    """Epp names in the spill-ordering total order for this plan.

    An epp's position is the completion rank of the node applying it;
    multiple epps at one node tie-break by ESS dimension.
    """
    ordered = []
    for node in execution_order(plan):
        node_epps = sorted(
            (p for p in node.applied_preds if p.error_prone),
            key=lambda p: query.epp_dimension(p.name),
        )
        ordered.extend(p.name for p in node_epps)
    return ordered


def spill_dimension(plan, query, remaining_dims):
    """The ESS dimension this plan spills on, given the unlearned dims.

    Per Section 3.1.3 the spill node is the *first* unlearned epp in the
    total order; returns ``None`` when the plan touches none of them.
    """
    remaining = set(remaining_dims)
    for name in epp_total_order(plan, query):
        dim = query.epp_dimension(name)
        if dim in remaining:
            return dim
    return None


def find_epp_node(plan, epp_name):
    """The node applying the named epp, or ``None``."""
    for node in plan.iter_nodes():
        if any(p.name == epp_name for p in node.applied_preds):
            return node
    return None


def spill_subtree_cost(plan, query, cost_model, env, epp_name):
    """Cost of a spill-mode execution of ``plan`` on ``epp_name``.

    Spill-mode execution runs only the subtree rooted at the epp's node
    and discards its output (Section 3.1.2); the budget therefore buys
    exactly the subtree's cost.
    """
    node = find_epp_node(plan, epp_name)
    if node is None:
        raise OptimizerError(f"plan {plan.key} does not apply epp {epp_name!r}")
    costs = plan_node_costs(node, query, cost_model, env)
    total = 0.0
    for value in costs.values():
        total = total + value
    return total


def pipelines(plan):
    """Decompose a plan into pipelines (lists of nodes), execution order.

    A pipeline is a maximal set of nodes connected by streaming edges;
    blocking edges (hash build, sort inputs) separate pipelines.  Returned
    in completion order, consistent with :func:`execution_order`.
    """
    # Union nodes along streaming edges.
    parent = {}

    def find(x):
        while parent[x] is not x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    nodes = list(plan.iter_nodes())
    for node in nodes:
        parent.setdefault(node, node)
    for node in nodes:
        blocking = set(_blocking_children(node))
        for child in node.children:
            if child not in blocking:
                ra, rb = find(node), find(child)
                if ra is not rb:
                    parent[ra] = rb

    groups = {}
    for node in execution_order(plan):
        groups.setdefault(find(node), []).append(node)
    return list(groups.values())
