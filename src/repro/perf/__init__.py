"""Performance layer: sweep engines, persistent ESS cache, timers.

Four coordinated pieces (see ``docs/performance.md``):

* :mod:`repro.perf.batch` — frontier-batched discovery simulation: the
  exhaustive sweep visits each discovery state once and partitions
  location *sets* with vectorized comparisons, bit-identical to the
  per-location loop; preferred by
  :func:`repro.core.mso.evaluate_algorithm` whenever it covers the
  algorithm;
* :mod:`repro.perf.parallel` — multiprocess exhaustive-sweep engine
  (``REPRO_WORKERS``) with a fan-out cost guard; workers chunk the
  location set and propagate each chunk through the shared state
  machine;
* :mod:`repro.perf.cache` — persistent content-keyed ESS archive cache
  (``REPRO_CACHE_DIR`` / ``REPRO_CACHE``), wired into
  :func:`repro.bench.workloads.load`;
* :mod:`repro.perf.timers` — process-global phase timing behind the
  ``BENCH_*.json`` perf-trajectory artifacts.
"""

from repro.perf.batch import batched_suboptimality
from repro.perf.cache import archive_path, cache_dir, cache_enabled
from repro.perf.parallel import (
    SweepSpec,
    fanout_decision,
    parallel_suboptimality,
    spec_for,
    worker_count,
)
from repro.perf.timers import TIMERS, PhaseTimer

__all__ = [
    "TIMERS",
    "PhaseTimer",
    "SweepSpec",
    "archive_path",
    "batched_suboptimality",
    "cache_dir",
    "cache_enabled",
    "fanout_decision",
    "parallel_suboptimality",
    "spec_for",
    "worker_count",
]
