"""Performance layer: parallel sweeps, persistent ESS cache, timers.

Three coordinated pieces (see ``docs/performance.md``):

* :mod:`repro.perf.parallel` — multiprocess exhaustive-sweep engine
  (``REPRO_WORKERS``), wired into :func:`repro.core.mso.evaluate_algorithm`;
* :mod:`repro.perf.cache` — persistent content-keyed ESS archive cache
  (``REPRO_CACHE_DIR`` / ``REPRO_CACHE``), wired into
  :func:`repro.bench.workloads.load`;
* :mod:`repro.perf.timers` — process-global phase timing behind the
  ``BENCH_*.json`` perf-trajectory artifacts.
"""

from repro.perf.cache import archive_path, cache_dir, cache_enabled
from repro.perf.parallel import (
    SweepSpec,
    parallel_suboptimality,
    spec_for,
    worker_count,
)
from repro.perf.timers import TIMERS, PhaseTimer

__all__ = [
    "TIMERS",
    "PhaseTimer",
    "SweepSpec",
    "archive_path",
    "cache_dir",
    "cache_enabled",
    "parallel_suboptimality",
    "spec_for",
    "worker_count",
]
