"""Frontier-batched discovery simulation: the vectorized sweep engine.

The paper's whole evaluation (Figures 8-13) rests on *exhaustive*
sub-optimality sweeps: every ESS grid location is treated as the actual
selectivity ``qa`` and discovery is re-run from scratch.  Discovery for
a given ``qa`` is deterministic, and its path is a walk through a small
shared state machine whose states are ``(contour index, learned
coordinates)`` pairs — exactly the states SpillBound already memoizes
plan steps for.  Instead of running N independent walks, this engine
propagates *sets* of grid locations through that state machine:

* each distinct discovery state is visited **once**, carrying the set
  of locations currently in it (the frontier);
* a budgeted execution's outcome partitions the set with one vectorized
  comparison — locations whose grid index along the step's dimension is
  ``<= learn_idx`` complete (fully learning the epp, charged from the
  spill-cost curve), the rest are charged the budget and half-space
  pruned past the step (Lemma 3.1 / 4.3);
* completions split by their learnt coordinate and advance to the
  ``(same contour, learned + {dim: idx})`` state; survivors of a whole
  contour crossing advance to ``(contour + 1, learned)``;
* once one epp remains, the group's 1-D PlanBouquet tail is *deferred*:
  after the walk, all tail states drain together in one globally
  vectorized pass — per-line (contour, plan) trial sequences from the
  shared :func:`~repro.core.spill_bound.band_trials`, plan-cost gathers
  grouped per plan, and one completion ``argmax`` per location.

States are processed in lexicographic ``(contour, |learned|)`` order —
every transition strictly increases that key, so a state's location set
is complete when it is popped, and each location's charges accumulate
in exactly the order the scalar ``run(qa)`` walk would apply them
(the tail is each location's final, separately-subtotalled charge in
both walks, so draining it last preserves that order).  Contours whose
effective slice plans no steps are crossed without charges, exactly as
the scalar walk does — the engine fast-forwards through them without
touching the heap.  Charges, budgets, learn thresholds and spill
curves all come from the same ``contour_steps`` / ``band_trials``
caches the scalar walk uses, so the resulting sub-optimality array is
**bit-identical** to the per-location loop (pinned by
``tests/test_perf_batch.py``).

Coverage is gated on the exact algorithm type: :class:`PlanBouquet`
(whose regular-mode sweep is a pure contour/plan/budget pass),
:class:`SpillBound` and :class:`AlignedBound`.  Subclasses (randomized
step orders, SI-violating worlds) keep the per-location reference loop.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.conformance.monitors import observe_sweep
from repro.core.discovery import budget_covers
from repro.errors import DiscoveryError
from repro.obs.trace import span as obs_span
from repro.perf.timers import TIMERS


def batched_suboptimality(algorithm, points=None):
    """Sub-optimality for every requested location, in one batched pass.

    Args:
        algorithm: a discovery algorithm instance.
        points: optional iterable of flat grid indices (any order,
            duplicates allowed); default is the full grid.

    Returns:
        ``(len(points),)`` float array aligned with the input order
        (grid order for the full sweep), or ``None`` when the engine
        does not cover the algorithm — callers fall back to the
        per-location loop.
    """
    engine = _engine_for(algorithm)
    if engine is None:
        return None
    grid = algorithm.ess.grid
    if points is None:
        flats = np.arange(grid.num_points, dtype=np.int64)
        unique = flats
    else:
        flats = np.asarray(list(points), dtype=np.int64)
        if flats.size == 0:
            return np.empty(0, dtype=float)
        unique = np.unique(flats)
    prior = getattr(algorithm, "prior", None)
    with TIMERS.phase("batched_sweep"):
        with obs_span("sweep.batch", points=int(flats.size),
                      unique=int(unique.size),
                      prior="uniform" if prior is None else prior.kind):
            total = engine(algorithm, unique)
    TIMERS.incr("batched_sweeps")
    TIMERS.incr("batched_sweep_points", int(flats.size))
    # Gather only the swept locations' denominators: on a lazy surface a
    # restricted sweep must not materialize the whole grid.
    sub = total[flats] / algorithm.ess.optimal_cost_at(flats)
    observe_sweep(algorithm, sub, "batch")
    return sub


#: Registered engines for non-stock algorithm classes (exact type ->
#: engine), populated by :func:`register_batch_engine` — how the arena
#: rivals plug into the batched path without this module knowing them.
_EXTRA_ENGINES = {}


def register_batch_engine(cls, engine):
    """Register a batched sweep engine for an algorithm class.

    ``engine(algorithm, flats)`` must return a full-grid *total
    charged cost* array filled at the requested flats, exactly like
    the stock engines; :func:`batched_suboptimality` handles the
    optimal-cost division and monitor observation.  The gate stays
    exact-type: subclasses of a registered class fall back to the
    per-location loop, mirroring the stock classes.
    """
    _EXTRA_ENGINES[cls] = engine


def _engine_for(algorithm):
    """The batched engine for an algorithm, or None (exact-type gate:
    subclasses override walk behaviour the engine cannot see)."""
    from repro.core.aligned_bound import AlignedBound
    from repro.core.plan_bouquet import PlanBouquet
    from repro.core.spill_bound import SpillBound

    kind = type(algorithm)
    if kind is PlanBouquet:
        return _sweep_bouquet
    if kind in (SpillBound, AlignedBound):
        return _sweep_frontier
    return _EXTRA_ENGINES.get(kind)


def _start_array(algorithm, flats):
    """Per-location prior starting contours, or None when inert.

    ``None`` keeps the engines on their literal pre-prior code paths —
    the inert sweep must stay bit-identical, not merely equivalent.
    """
    schedule_of = getattr(algorithm, "prior_schedule", None)
    if schedule_of is None:
        return None
    schedule = schedule_of()
    if not schedule.active:
        return None
    return schedule.start_array(flats)


# ----------------------------------------------------------------------
# PlanBouquet: regular-mode contour ascent, one mask per plan
# ----------------------------------------------------------------------

def _sweep_bouquet(algorithm, flats):
    """Total charged cost per location for PlanBouquet's sweep.

    Every location ascends the same reduced-contour/plan sequence until
    its first completion, so the whole sweep is one boolean-mask pass
    per bouquet plan against that plan's cached cost surface.
    """
    ess = algorithm.ess
    total = np.zeros(ess.grid.num_points, dtype=float)
    active = np.zeros(ess.grid.num_points, dtype=bool)
    active[flats] = True
    # Prior-guided starts: locations stay uncharged (and unexamined)
    # until the ladder reaches their starting contour.  ``starts`` is
    # None for inert priors, keeping the original single-mask pass.
    starts = _start_array(algorithm, flats)
    start_full = None
    if starts is not None:
        start_full = np.zeros(ess.grid.num_points, dtype=np.int64)
        start_full[flats] = starts
    for rc in algorithm.reduction.reduced:
        if not active.any():
            break
        budget = rc.inflated_budget
        if start_full is None:
            eligible = active
        else:
            eligible = active & (start_full <= rc.index)
            if not eligible.any():
                continue
        for pid in algorithm.contour_plans(rc):
            if not eligible.any():
                break
            cost = ess.plan_cost_array(pid)
            completes = eligible & budget_covers(cost, budget)
            total[completes] += cost[completes]
            active &= ~completes
            if eligible is not active:
                eligible &= ~completes
            total[eligible] += budget
    if active.any():
        raise DiscoveryError("PlanBouquet sweep left unfinished locations")
    return total


# ----------------------------------------------------------------------
# SpillBound / AlignedBound: the frontier walk
# ----------------------------------------------------------------------

def _sweep_frontier(algorithm, flats):
    """Total charged cost per location for the spill-mode algorithms."""
    ess = algorithm.ess
    grid = ess.grid
    contours = algorithm.contours
    num_contours = contours.num_contours
    num_dims = grid.num_dims
    total = np.zeros(grid.num_points, dtype=float)
    coord = [grid.coord_array(d) for d in range(num_dims)]
    contour_steps = algorithm.contour_steps

    # state key -> list of location arrays awaiting the state's visit.
    frontier = {}
    heap = []
    tick = itertools.count()
    tails = []  # deferred 1-D states: (free_dim, start_contour, group)

    def push(contour_index, learned_key, group):
        state = (contour_index, learned_key)
        bucket = frontier.get(state)
        if bucket is None:
            frontier[state] = [group]
            heapq.heappush(
                heap, (contour_index, len(learned_key), next(tick), state)
            )
        else:
            bucket.append(group)

    # Prior-guided starts partition the initial frontier by starting
    # contour; inert priors keep the original single push at contour 1.
    starts = _start_array(algorithm, flats)
    if starts is None:
        push(1, (), flats)
    else:
        for start in np.unique(starts):
            push(int(start), (), flats[starts == start])
    max_penalty = 1.0
    num_states = 0
    while heap:
        _, _, _, state = heapq.heappop(heap)
        contour_index, learned_key = state
        groups = frontier.pop(state)
        group = groups[0] if len(groups) == 1 else np.concatenate(groups)
        num_states += 1
        learned = dict(learned_key)
        remaining = num_dims - len(learned)
        if remaining == 0:
            raise DiscoveryError("all epps learnt before the 1-D phase")
        if remaining == 1:
            tails.append((
                next(d for d in range(num_dims) if d not in learned),
                contour_index,
                group,
            ))
            continue
        # Fast-forward contours whose effective slice plans no steps:
        # the scalar walk crosses those without charges too.
        while True:
            if contour_index > num_contours:
                # The scalar walk invokes the ladder-exhausted hook
                # here; for the stock algorithms that raises (Lemma 3.2
                # / the slice-terminus argument under SI).
                raise DiscoveryError(
                    f"sweep ascended past the last contour (state {state})"
                )
            steps = contour_steps(contour_index, learned)
            if steps:
                break
            contour_index += 1

        active = group
        for step in steps:
            if active.size == 0:
                break
            if step.penalty > max_penalty:
                max_penalty = step.penalty
            idx = coord[step.exec_dim][active]
            done = idx <= step.learn_idx
            completed = active[done]
            if completed.size:
                done_idx = idx[done]
                total[completed] += np.asarray(
                    step.curve, dtype=float
                )[done_idx]
                # Completions split by the coordinate they learnt.
                for value in np.unique(done_idx):
                    next_key = tuple(sorted(
                        learned_key + ((int(step.exec_dim), int(value)),)
                    ))
                    push(contour_index, next_key,
                         completed[done_idx == value])
            active = active[~done]
            total[active] += step.budget
        if active.size:
            # Nothing learnt: qa lies beyond this contour (Lemma 4.3).
            push(contour_index + 1, learned_key, active)

    _drain_tails(algorithm, tails, total)
    if hasattr(algorithm, "observed_max_penalty"):
        # Mirror the scalar walk's side effect (Table 4 reads it).
        algorithm.observed_max_penalty = max(
            algorithm.observed_max_penalty, max_penalty
        )
    TIMERS.incr("batched_sweep_states", num_states)
    return total


def _drain_tails(algorithm, tails, total):
    """Drain every deferred 1-D PlanBouquet tail in one vectorized pass.

    A tail state is a line (the learnt coordinates plus one free
    dimension), an entry contour, and the locations that reached it.
    Grouped by free dimension, the (contour, plan) trial sequences of
    all lines come from one :func:`~repro.core.spill_bound.band_trials`
    call — the same implementation behind the scalar tail's per-contour
    plan lists — and every location's charge reduces to the prefix sum
    of failed-trial budgets plus the completing plan's cost.

    The scalar walk sums the tail into its own accumulator and adds the
    subtotal once (``total += tail_total``); the prefix-plus-completion
    form reproduces that float64 association exactly (``cumsum`` along
    a trial row is the same left-to-right addition chain).
    """
    from repro.core.spill_bound import band_trials

    if not tails:
        return
    ess = algorithm.ess
    grid = ess.grid
    budgets = np.asarray(algorithm.contours.budgets, dtype=float)
    band = algorithm.contours.band
    plan_ids = ess.plan_ids

    by_dim = {}
    for free_dim, start, group in tails:
        by_dim.setdefault(free_dim, []).append((start, group))

    for free_dim, entries in by_dim.items():
        stride = grid.strides[free_dim]
        length = grid.resolution[free_dim]
        coord = grid.coord_array(free_dim)
        num_lines = len(entries)
        starts = np.fromiter(
            (s for s, _ in entries), dtype=np.int64, count=num_lines
        )
        groups = [g for _, g in entries]
        counts = np.fromiter(
            (g.size for g in groups), dtype=np.int64, count=num_lines
        )
        flats = np.concatenate(groups)
        ent_off = np.cumsum(counts) - counts
        # One representative member locates each state's line.
        anchors = flats[ent_off]
        bases = anchors - coord[anchors].astype(np.int64) * stride
        lines = bases[:, None] + stride * np.arange(length, dtype=np.int64)
        t_line, t_band, t_pid = band_trials(band[lines], plan_ids[lines])
        # Trials on contours below a state's entry contour never run.
        keep = t_band >= (starts - 1)[t_line]
        t_line, t_band, t_pid = t_line[keep], t_band[keep], t_pid[keep]
        t_budget = budgets[t_band]
        t_count = np.bincount(t_line, minlength=num_lines)
        if (t_count == 0).any():
            raise DiscoveryError(
                f"1-D bouquet failed to terminate (dim {free_dim})"
            )
        t_off = np.cumsum(t_count) - t_count
        t_rank = np.arange(t_line.size, dtype=np.int64) - t_off[t_line]
        width = int(t_count.max())
        # Per-state running budget totals, identical to the scalar
        # walk's sequential additions.
        cum_budget = np.zeros((num_lines, width), dtype=float)
        cum_budget[t_line, t_rank] = t_budget
        np.cumsum(cum_budget, axis=1, out=cum_budget)
        # Expand each trial over its state's entrants.
        rep = counts[t_line]
        num_pairs = int(rep.sum())
        pair_trial = np.repeat(np.arange(t_line.size), rep)
        rep_off = np.cumsum(rep) - rep
        pair_ent = (
            np.arange(num_pairs, dtype=np.int64)
            - rep_off[pair_trial]
            + ent_off[t_line[pair_trial]]
        )
        pair_flat = flats[pair_ent]
        # Plan-cost gathers grouped per plan: a handful of big fancy
        # gathers instead of one tiny one per (state, contour, plan).
        pair_cost = np.empty(num_pairs, dtype=float)
        pair_pid = t_pid[pair_trial]
        order = np.argsort(pair_pid, kind="stable")
        sorted_pid = pair_pid[order]
        cuts = np.flatnonzero(np.diff(sorted_pid)) + 1
        for seg in np.split(order, cuts):
            pid = int(pair_pid[seg[0]])
            # plan_cost_at_points keeps large grids on the point-wise
            # memo path instead of materializing a full cost surface.
            pair_cost[seg] = ess.plan_cost_at_points(pid, pair_flat[seg])
        pair_ok = budget_covers(pair_cost, t_budget[pair_trial])
        # First completing trial per entrant.
        ok = np.zeros((flats.size, width), dtype=bool)
        costm = np.zeros((flats.size, width), dtype=float)
        cols = t_rank[pair_trial]
        ok[pair_ent, cols] = pair_ok
        costm[pair_ent, cols] = pair_cost
        if not ok.any(axis=1).all():
            raise DiscoveryError(
                f"1-D bouquet failed to terminate (dim {free_dim})"
            )
        first = ok.argmax(axis=1)
        ent_state = np.repeat(np.arange(num_lines), counts)
        prefix = np.where(
            first > 0, cum_budget[ent_state, first - 1], 0.0
        )
        total[flats] += prefix + costm[np.arange(flats.size), first]
