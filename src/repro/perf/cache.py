"""Persistent, content-keyed ESS cache.

Paper Section 7 flags ESS/contour construction as "a computationally
intensive task" best amortized offline.  This module is that
amortization: built ESS surfaces are stored as format-v2
:mod:`repro.ess.persistence` archives under a cache directory, keyed by
the full content of the build — query name, per-dimension grid
resolution and ``sel_min`` floors, the cost model's value fingerprint,
and the plan-search space — so a repeated benchmark or test run skips
the optimizer sweep entirely while any change to the inputs keys a
fresh build.

Knobs (environment):

* ``REPRO_CACHE_DIR`` — cache directory; defaults to
  ``$XDG_CACHE_HOME/repro/ess`` (or ``~/.cache/repro/ess``).
* ``REPRO_CACHE=0`` — disable the persistent cache entirely (builds
  always run; nothing is written).
* ``REPRO_CACHE_MMAP=0`` — write self-contained v2 archives instead of
  the default v3 format (compressed metadata + uncompressed ``.npy``
  sidecars that loads memory-map, so warm loads page cost arrays in on
  demand instead of decompressing whole grids).

Before touching disk, :func:`fetch` consults the shared-memory offer
registry (:mod:`repro.perf.shm`): while a parallel sweep is live, its
workers attach to the parent's exported surface instead of re-reading
the archive.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading

from repro.obs.trace import span as obs_span
from repro.perf.timers import TIMERS

_ARCHIVE_SUFFIX = ".ess.npz"

#: Serializes every archive read against the rewrite-and-GC sequence in
#: :func:`store`.  Within one process (the concurrent serving tier runs
#: fetches and stores from many threads) a fetch can therefore never
#: observe the window where the new ``.npz`` is in place but the old
#: archive's now-stale v3 sidecars are being deleted — without the lock
#: a reader could open the *old* npz (still cached in an open handle or
#: raced just before ``os.replace``) and find its sidecar gone.
#: Cross-process racers keep the weaker best-effort guarantee the
#: atomic-rename + content-addressed-sidecar protocol already provides.
_IO_LOCK = threading.Lock()


def cache_enabled():
    """Whether the persistent cache is active (``REPRO_CACHE`` != 0)."""
    return os.environ.get("REPRO_CACHE", "1") not in ("0", "off", "false")


def mmap_enabled():
    """Whether archives are written in the mmap-sidecar v3 format."""
    return os.environ.get("REPRO_CACHE_MMAP", "1") not in (
        "0", "off", "false"
    )


def cache_dir():
    """The active cache directory (not necessarily existing yet)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro", "ess")


def archive_path(key):
    """Archive path for an :func:`~repro.ess.persistence.ess_cache_key`."""
    digest = hashlib.sha256(
        json.dumps(key, sort_keys=True).encode("ascii")
    ).hexdigest()[:24]
    safe_name = "".join(
        c if c.isalnum() or c in "-_" else "-" for c in key["query_name"]
    )
    return os.path.join(cache_dir(), f"{safe_name}-{digest}{_ARCHIVE_SUFFIX}")


def fetch(key, query, cost_model):
    """Load the archived ESS for ``key``, or None on miss/corruption.

    A hit is only trusted when the archive's recorded cache key matches
    ``key`` exactly; any read/parse failure is treated as a miss (the
    entry is rebuilt and overwritten, never propagated).
    """
    from repro.perf import shm

    ess = shm.attach_if_offered(key, query, cost_model)
    if ess is not None:
        return ess
    if not cache_enabled():
        return None
    path = archive_path(key)
    if not os.path.exists(path):
        TIMERS.incr("ess_cache_miss")
        return None
    from repro.ess.persistence import load_ess

    try:
        with TIMERS.phase("ess_cache_load"):
            with obs_span("cache.load", key=key), _IO_LOCK:
                ess = load_ess(path, query, cost_model=cost_model,
                               expected_key=key)
    except Exception:
        TIMERS.incr("ess_cache_invalid")
        TIMERS.incr("ess_cache_miss")
        return None
    TIMERS.incr("ess_cache_hit")
    return ess


def store(ess, key):
    """Persist a freshly-built ESS under ``key`` (best-effort).

    Every file is written to a temporary name and atomically renamed
    (``os.replace``), sidecars strictly before the ``.npz`` that
    references them, so concurrent readers (parallel sweep workers
    racing on a cold cache) can never observe a torn archive: until the
    final rename they see the old archive or a miss, and v3 sidecar
    names are content-addressed so a rewrite never mutates files an
    already-open reader may have mapped.  The whole write — sidecar
    save, stale-sidecar inventory, rename, GC — runs under
    :data:`_IO_LOCK`, so an in-process fetch racing a rewrite can never
    read the old archive mid-GC (half its sidecars deleted), and one
    store's GC can never delete sidecars a concurrent store has written
    but not yet published: the sidecars exist on disk *before* the
    referencing ``.npz`` is renamed in, and no other thread runs
    between the two while the lock is held.
    """
    if not cache_enabled():
        return None
    from repro.ess.persistence import archive_sidecars, save_ess

    path = archive_path(key)
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=_ARCHIVE_SUFFIX
        )
        os.close(fd)
        with TIMERS.phase("ess_cache_save"), _IO_LOCK:
            save_ess(ess, tmp, cache_key=key, mmap=mmap_enabled(),
                     sidecar_base=path)
            stale = _sidecars_of(path)
            fresh = set(archive_sidecars(tmp))
            os.replace(tmp, path)
            # Drop sidecars the replaced archive referenced but the new
            # one does not (best-effort: a racing *process* already
            # holds inodes; racing threads are excluded by the lock).
            for name in stale - fresh:
                try:
                    os.remove(os.path.join(os.path.dirname(path), name))
                except OSError:
                    pass
    except OSError:
        return None  # read-only cache dir etc. — caching is best-effort
    TIMERS.incr("ess_cache_store")
    return path


def _sidecars_of(path):
    """Sidecar names an existing archive references (empty on any error)."""
    if not os.path.exists(path):
        return set()
    from repro.ess.persistence import archive_sidecars

    try:
        return set(archive_sidecars(path))
    except Exception:
        return set()


def clear():
    """Remove every archive (and mmap sidecar) in the cache directory."""
    directory = cache_dir()
    if not os.path.isdir(directory):
        return 0
    removed = 0
    for entry in os.listdir(directory):
        if entry.endswith(_ARCHIVE_SUFFIX) or entry.endswith(".npy"):
            try:
                os.remove(os.path.join(directory, entry))
                removed += 1
            except OSError:
                pass
    return removed
