"""Multiprocess exhaustive-sweep engine.

The evaluation pipeline (Figures 8-13) is dominated by exhaustive
per-grid-location discovery sweeps.  This module fans those sweeps
across worker processes: the flat-index range is chunked, each worker
*reconstructs* its ESS and algorithm from the persistent archive /
workload registry (a picklable :class:`SweepSpec` — live plan trees are
never pickled across the process boundary), evaluates its chunks, and
the parent reassembles the per-location sub-optimality array in order.
Inside each worker the chunk is evaluated with the frontier-batched
engine of :mod:`repro.perf.batch` when it covers the algorithm — the
chunk's locations propagate as a set through the shared discovery state
machine, so a worker's cost scales with the *states* its chunk touches,
not with its point count — falling back to the per-point loop otherwise.

Results are exactly the serial ones: discovery is deterministic given
the ESS surface, and the persisted archive round-trips the surface
bit-identically.

Fan-out only happens when it can win.  :func:`fanout_decision` is the
cost guard: it keeps the sweep serial on single-CPU hosts, for sweeps
under :data:`MIN_PARALLEL_POINTS` locations, and when the per-worker
share falls under :data:`MIN_POINTS_PER_WORKER` (pool startup plus
per-worker ESS reconstruction would dominate — the PR-1 benchmark
measured fan-out at 0.62-0.67x of serial on a 1-CPU host).  Every skip
is recorded in ``TIMERS`` counters (``parallel_sweep_skipped`` plus a
``parallel_sweep_skip_<reason>`` breakdown) so BENCH artifacts report
the decision honestly.

Knobs:

* ``REPRO_WORKERS`` — worker processes for exhaustive sweeps.  Unset,
  ``0`` or ``1`` keep the serial path; ``auto`` uses the CPU count.
* ``REPRO_FORCE_PARALLEL`` — ``1`` bypasses the cost guard (benchmark
  and test harnesses that must exercise the pool machinery regardless
  of the host).
* serial fallback — any worker-side failure (unpicklable spec, missing
  archive, pool start failure) silently falls back to the serial sweep.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.obs import trace as tracing
from repro.obs.trace import span as obs_span
from repro.perf.timers import TIMERS

#: Sweeps smaller than this stay serial even when workers are enabled —
#: pool startup plus per-worker ESS reconstruction would dominate.
MIN_PARALLEL_POINTS = 256

#: Minimum locations per worker for fan-out to amortize its overheads;
#: the worker count is clamped down (or fan-out skipped) below it.
MIN_POINTS_PER_WORKER = 64

#: Chunks per worker: >1 so faster workers steal the tail of the grid.
CHUNKS_PER_WORKER = 4


def worker_count(explicit=None):
    """Resolve the worker count (explicit arg beats ``REPRO_WORKERS``)."""
    if explicit is not None:
        return max(1, int(explicit))
    raw = os.environ.get("REPRO_WORKERS", "").strip().lower()
    if not raw or raw == "0":
        return 1
    if raw == "auto":
        return max(1, os.cpu_count() or 1)
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(
            f"REPRO_WORKERS must be an integer or 'auto', got {raw!r}"
        ) from None


def force_parallel():
    """Whether ``REPRO_FORCE_PARALLEL`` bypasses the fan-out cost guard."""
    raw = os.environ.get("REPRO_FORCE_PARALLEL", "").strip().lower()
    return raw in ("1", "true", "on", "yes")


def fanout_decision(num_points, workers, cpus=None):
    """The fan-out cost guard: can a multiprocess sweep win here?

    Returns ``(effective_workers, skip_reason)``: a worker count > 1
    with ``skip_reason=None`` when fan-out is worth attempting, or
    ``(1, reason)`` when the sweep should stay serial — because only
    one worker was requested (``"one_worker"``), the host exposes a
    single CPU (``"single_cpu"``), the sweep is too small overall
    (``"small_sweep"``), or the per-worker share is below amortization
    (``"below_amortization"``).  ``REPRO_FORCE_PARALLEL=1`` bypasses
    everything but the worker-count floor.
    """
    workers = min(int(workers), max(1, int(num_points)))
    if workers <= 1:
        return 1, "one_worker"
    if force_parallel():
        return workers, None
    if cpus is None:
        cpus = os.cpu_count() or 1
    if cpus <= 1:
        return 1, "single_cpu"
    if num_points < MIN_PARALLEL_POINTS:
        return 1, "small_sweep"
    affordable = int(num_points) // MIN_POINTS_PER_WORKER
    if affordable < 2:
        return 1, "below_amortization"
    return min(workers, affordable), None


@dataclass(frozen=True)
class SweepSpec:
    """A picklable recipe for rebuilding an algorithm in a worker.

    ``kind`` selects the rebuild path: ``"workload"`` goes through
    :func:`repro.bench.workloads.load` (which hits the persistent ESS
    cache), ``"wallclock"`` through
    :func:`repro.bench.wallclock.build_wallclock_setup`, and
    ``"conformance"`` through
    :func:`repro.conformance.workloads.build_conformance_instance`
    (the randomized conformance suite's seeded builds).  ``algorithm``
    names the discovery algorithm (``pb``/``sb``/``ab``) and
    ``algo_kwargs`` its extra constructor arguments.
    """

    kind: str
    build_kwargs: tuple  # sorted (name, value) pairs, hashable
    algorithm: str
    algo_kwargs: tuple = field(default_factory=tuple)


#: Extra algorithm factories (name -> class) added at runtime, e.g. by
#: :mod:`repro.arena.rivals`.  Worker processes start with this empty,
#: so :func:`_factories` also imports the arena module — a spec naming
#: a rival rebuilds cleanly in a fresh worker.
_EXTRA_FACTORIES = {}


def register_algorithm_factory(name, factory):
    """Register an algorithm class under a spec name.

    The class must be constructible as ``factory(ess, contours,
    **algo_kwargs)``; instances may expose ``spec_kwargs()`` returning
    picklable constructor kwargs for the worker-side rebuild.
    """
    _EXTRA_FACTORIES[str(name)] = factory


def _factories():
    from repro.core.aligned_bound import AlignedBound
    from repro.core.plan_bouquet import PlanBouquet
    from repro.core.spill_bound import SpillBound

    try:
        import repro.arena.rivals  # noqa: F401  (registers its factories)
    except ImportError:  # pragma: no cover - arena is part of the tree
        pass
    factories = {
        "pb": PlanBouquet,
        "sb": SpillBound,
        "ab": AlignedBound,
    }
    factories.update(_EXTRA_FACTORIES)
    return factories


def spec_for(algorithm):
    """Derive a :class:`SweepSpec` from a live algorithm, or None.

    Requires the algorithm's ESS to carry build provenance (attached by
    the workload registry / wallclock setup) and the algorithm to be one
    of the three stock discovery classes with contours matching the
    provenance — anything else (hand-built ESS, subclassed algorithms,
    mismatched contour ratios) evaluates serially.
    """
    ess = getattr(algorithm, "ess", None)
    provenance = getattr(ess, "provenance", None)
    if not provenance:
        return None
    name = None
    for key, cls in _factories().items():
        if type(algorithm) is cls:
            name = key
            break
    if name is None:
        return None
    contours = getattr(algorithm, "contours", None)
    if contours is None:
        return None
    if contours.cost_ratio != provenance.get("cost_ratio"):
        return None
    algo_kwargs = {}
    if name == "pb":
        algo_kwargs["lam"] = algorithm.lam
    spec_kwargs = getattr(algorithm, "spec_kwargs", None)
    if spec_kwargs is not None:
        algo_kwargs.update(spec_kwargs())
    prior = getattr(algorithm, "prior", None)
    if prior is not None and prior.is_active:
        # Grid-independent parameters only: the worker rebuilds the
        # prior with prior_from_spec and discretizes to the same pmf,
        # keeping the fan-out bit-identical to the in-process engines.
        algo_kwargs["prior"] = prior.spec()
    return SweepSpec(
        kind=provenance["kind"],
        build_kwargs=tuple(sorted(provenance["build_kwargs"].items())),
        algorithm=name,
        algo_kwargs=tuple(sorted(algo_kwargs.items())),
    )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-process algorithm cache: a worker serves many chunks of the same
#: sweep and must rebuild its ESS (from the persisted archive or the
#: forked registry) only once.
_WORKER_ALGORITHMS = {}


def _build_algorithm(spec):
    cached = _WORKER_ALGORITHMS.get(spec)
    if cached is not None:
        return cached
    build_kwargs = dict(spec.build_kwargs)
    if spec.kind == "workload":
        from repro.bench import workloads

        instance = workloads.load(**build_kwargs)
        ess, contours = instance.ess, instance.contours
    elif spec.kind == "wallclock":
        from repro.bench.wallclock import build_wallclock_setup

        setup = build_wallclock_setup(**build_kwargs)
        ess, contours = setup.ess, setup.contours
    elif spec.kind == "conformance":
        from repro.conformance.workloads import build_conformance_instance

        instance = build_conformance_instance(**build_kwargs)
        ess, contours = instance.ess, instance.contours
    elif spec.kind == "adversarial":
        from repro.arena.adversarial import build_adversarial_instance

        instance = build_adversarial_instance(**build_kwargs)
        ess, contours = instance.ess, instance.contours
    else:
        raise ValueError(f"unknown sweep spec kind {spec.kind!r}")
    factories = _factories()
    factory = factories.get(spec.algorithm)
    if factory is None:
        from repro.errors import ReproError

        raise ReproError(
            f"sweep spec names unregistered algorithm "
            f"{spec.algorithm!r}; registered: {sorted(factories)}"
        )
    algo_kwargs = dict(spec.algo_kwargs)
    if "prior" in algo_kwargs:
        from repro.prior import prior_from_spec

        algo_kwargs["prior"] = prior_from_spec(algo_kwargs["prior"])
    algorithm = factory(ess, contours, **algo_kwargs)
    _WORKER_ALGORITHMS.clear()  # one live sweep per worker is the norm
    _WORKER_ALGORITHMS[spec] = algorithm
    return algorithm


def _evaluate_chunk(task):
    spec, flats, trace_wire = task
    # Reset the worker's global profile so this chunk's summary carries
    # exactly its own deltas — the parent merges every chunk summary, so
    # nothing a worker measures is dropped and nothing is double-counted.
    # (Pool workers run only chunks, so the reset clobbers no one.)
    TIMERS.reset()
    # Join the parent's trace when one rides in the task: spans minted
    # here ship home with the chunk result, exactly like the TIMERS
    # summary (see repro.obs.trace — cross-process propagation).
    tracer = tracing.child_tracer(trace_wire)
    previous = tracing.install_tracer(tracer) if tracer is not None else None
    try:
        with tracing.span("sweep.worker", pid=os.getpid(),
                          points=len(flats)):
            algorithm = _build_algorithm(spec)
            # Workers chunk *states*, not points: the chunk's locations
            # propagate as a set through the shared discovery state
            # machine, so the cost of a chunk scales with the states it
            # touches.
            from repro.perf.batch import batched_suboptimality

            sub = batched_suboptimality(algorithm, flats)
            if sub is not None:
                out = np.asarray(sub, dtype=float)
            else:
                out = np.empty(len(flats), dtype=float)
                for i, flat in enumerate(flats):
                    out[i] = algorithm.run(int(flat)).suboptimality
    finally:
        if tracer is not None:
            tracing.install_tracer(previous)
    spans = [s.to_record() for s in tracer.spans] if tracer is not None \
        else None
    return out, TIMERS.summary(), spans


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------

def parallel_suboptimality(spec, flats, workers, ess=None):
    """Fan a sweep across ``workers`` processes.

    When the caller hands over its live ``ess`` (and the surface's
    provenance carries a content key), the parent exports the cost
    arrays to shared memory first — workers attach to that one surface
    through the cache's shm tier instead of rebuilding or re-reading
    grids per process (:mod:`repro.perf.shm`).

    Returns the ``(len(flats),)`` sub-optimality array in input order,
    or None when the parallel path is unavailable (caller falls back to
    the serial loop).
    """
    flats = np.asarray(flats, dtype=np.int64)
    workers, skip = fanout_decision(len(flats), workers)
    if skip is not None:
        TIMERS.incr("parallel_sweep_skipped")
        TIMERS.incr(f"parallel_sweep_skip_{skip}")
        return None
    surface = None
    if ess is not None:
        disk_key = getattr(ess, "provenance", {}).get("disk_key")
        if disk_key is not None:
            from repro.perf import shm

            surface = shm.publish(disk_key, ess)
    num_chunks = min(len(flats), workers * CHUNKS_PER_WORKER)
    chunks = np.array_split(flats, num_chunks)
    try:
        with TIMERS.phase("parallel_sweep"):
            with obs_span("sweep.parallel", workers=workers,
                          points=len(flats), chunks=num_chunks):
                # Captured inside the sweep.parallel span so worker
                # spans parent onto it in the merged tree.
                ctx = tracing.current_context()
                wire = ctx.to_wire() if ctx is not None else None
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    results = list(
                        pool.map(_evaluate_chunk,
                                 [(spec, c, wire) for c in chunks])
                    )
    except Exception:
        TIMERS.incr("parallel_sweep_fallback")
        return None
    finally:
        if surface is not None:
            surface.close()
    parts = [part for part, _, _ in results]
    # Fold every worker chunk's phase timings and counters back into the
    # parent profile — before this merge, worker measurements vanished
    # with the pool.  Shipped spans splice into the live trace the same
    # way.
    active = tracing.active_tracer()
    for _, worker_summary, worker_spans in results:
        TIMERS.merge(worker_summary)
        if active is not None and worker_spans:
            active.splice(worker_spans)
    TIMERS.incr("parallel_sweeps")
    TIMERS.incr("parallel_sweep_points", len(flats))
    TIMERS.incr("parallel_sweep_workers", workers)
    return np.concatenate(parts)
