"""Shared-memory ESS surfaces for the multiprocess sweep engine.

When the parent fans a sweep out (:mod:`repro.perf.parallel`), each
worker historically *rebuilt* its ESS — from the persistent archive on
a warm cache, or a full optimizer sweep on a cold one.  This module
lets workers attach to the parent's surface instead: the parent copies
``optimal_cost`` / ``plan_ids`` into ``multiprocessing.shared_memory``
segments once and registers an *offer* keyed by the ESS content key;
:func:`repro.perf.cache.fetch` consults the offer registry before the
disk archive, so any worker whose in-process memo misses reconstructs
the identical ESS from the mapped segments — zero copies, zero
optimizer calls, and (unlike the disk path) zero decompression.

The offer registry is a process-global dict, inherited by workers under
the ``fork`` start method (the Linux default).  Under ``spawn`` the
registry is empty in workers and the cache falls back to disk — the
tier degrades, never breaks.  Plan trees are never shared: the offer
carries plan *keys* (small strings) and workers reparse them, exactly
like the archive path, so plan ids match the parent's ordering.

The parent owns segment lifetime: :meth:`SharedSurface.close` unlinks
the segments and withdraws the offer (``parallel_suboptimality`` does
this in a ``finally``).  Workers unregister their attachments from the
``resource_tracker`` — Python 3.11 has no ``track=False`` — so a worker
exiting cannot reap segments the parent still serves.
"""

from __future__ import annotations

import hashlib
import json
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.obs.trace import span as obs_span
from repro.perf.timers import TIMERS

#: Offer registry: content-key digest -> offer dict.  Module-global so
#: forked sweep workers inherit live offers.
_OFFERS = {}


def _digest(key):
    """Stable digest of an :func:`~repro.ess.persistence.ess_cache_key`."""
    return hashlib.sha256(
        json.dumps(key, sort_keys=True).encode("ascii")
    ).hexdigest()


class SharedSurface:
    """Parent-side owner of one ESS's shared-memory segments."""

    def __init__(self, key, ess):
        self.key = key
        self._segments = []
        try:
            offer = self._export(key, ess)
        except BaseException:
            self._release_segments()
            raise
        self.offer = offer
        _OFFERS[_digest(key)] = offer

    def _export(self, key, ess):
        grid = ess.grid
        arrays = {
            "optimal_cost": np.asarray(ess.optimal_cost, dtype=float),
            "plan_ids": np.asarray(ess.plan_ids, dtype=np.int32),
        }
        names = {}
        for field, source in arrays.items():
            segment = shared_memory.SharedMemory(
                create=True, size=source.nbytes
            )
            self._segments.append(segment)
            view = np.ndarray(
                source.shape, dtype=source.dtype, buffer=segment.buf
            )
            view[:] = source
            names[field] = segment.name
        return {
            "key": key,
            "segments": names,
            "num_points": grid.num_points,
            "plan_keys": list(ess.plan_keys),
            # Exact grid values: attached grids must be bit-identical.
            "grid_values": [
                np.array(grid.values[d]) for d in range(grid.num_dims)
            ],
            "resolution": list(grid.resolution),
        }

    def _release_segments(self):
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:
                pass
        self._segments = []

    def close(self):
        """Withdraw the offer and free the segments."""
        _OFFERS.pop(_digest(self.key), None)
        self._release_segments()


def publish(key, ess):
    """Offer an ESS's surface over shared memory, or None on failure.

    Lazy surfaces are never published: materializing one to share it
    would pay the full sweep the lazy mode exists to avoid (workers
    re-resolve their own points instead).
    """
    if getattr(ess, "is_lazy", False):
        return None
    try:
        surface = SharedSurface(key, ess)
    except Exception:
        TIMERS.incr("ess_shm_publish_failed")
        return None
    TIMERS.incr("ess_shm_published")
    return surface


def attach_if_offered(key, query, cost_model):
    """Reconstruct an ESS from a live offer for ``key``, or None.

    Any attachment failure (segment gone, shape mismatch) returns None
    so the caller falls through to the disk archive / rebuild.
    """
    offer = _OFFERS.get(_digest(key))
    if offer is None:
        return None
    try:
        with obs_span("cache.shm_attach", key=key):
            ess = _attach(offer, query, cost_model)
    except Exception:
        TIMERS.incr("ess_shm_attach_failed")
        return None
    TIMERS.incr("ess_shm_hit")
    return ess


def _attach(offer, query, cost_model):
    from repro.ess.grid import ESSGrid
    from repro.ess.ocs import ESS
    from repro.ess.persistence import parse_plan_key

    num_points = int(offer["num_points"])
    handles = []
    for field in ("optimal_cost", "plan_ids"):
        segment = shared_memory.SharedMemory(
            name=offer["segments"][field]
        )
        # Python 3.11's SharedMemory cannot attach untracked
        # (track=False arrives in 3.13); unregister immediately so this
        # process exiting does not reap segments the parent still owns.
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
        handles.append(segment)
    optimal_cost = np.ndarray(
        (num_points,), dtype=np.float64, buffer=handles[0].buf
    )
    plan_ids = np.ndarray(
        (num_points,), dtype=np.int32, buffer=handles[1].buf
    )
    grid = ESSGrid(query.num_epps, resolution=offer["resolution"])
    for dim, values in enumerate(offer["grid_values"]):
        grid.values[dim] = np.asarray(values, dtype=float)
    grid.invalidate_caches()
    if grid.num_points != num_points:
        raise ValueError("shared surface does not match its grid")
    plans = [parse_plan_key(str(k), query) for k in offer["plan_keys"]]
    ess = ESS(
        query=query,
        grid=grid,
        cost_model=cost_model,
        optimal_cost=optimal_cost,
        plan_ids=plan_ids,
        plans=plans,
    )
    # The arrays alias the segments; pin the handles to the ESS so the
    # mapping outlives this frame.
    ess._shm_handles = handles
    return ess


def live_offers():
    """Number of currently registered offers (introspection/tests)."""
    return len(_OFFERS)
