"""Shared-memory ESS surfaces for the multiprocess sweep engine.

When the parent fans a sweep out (:mod:`repro.perf.parallel`), each
worker historically *rebuilt* its ESS — from the persistent archive on
a warm cache, or a full optimizer sweep on a cold one.  This module
lets workers attach to the parent's surface instead: the parent copies
``optimal_cost`` / ``plan_ids`` into ``multiprocessing.shared_memory``
segments once and registers an *offer* keyed by the ESS content key;
:func:`repro.perf.cache.fetch` consults the offer registry before the
disk archive, so any worker whose in-process memo misses reconstructs
the identical ESS from the mapped segments — zero copies, zero
optimizer calls, and (unlike the disk path) zero decompression.

The offer registry is a process-global dict, inherited by workers under
the ``fork`` start method (the Linux default).  Under ``spawn`` the
registry is empty in workers and the cache falls back to disk — the
tier degrades, never breaks.  Plan trees are never shared: the offer
carries plan *keys* (small strings) and workers reparse them, exactly
like the archive path, so plan ids match the parent's ordering.

The parent owns segment lifetime: :meth:`SharedSurface.close` unlinks
the segments and withdraws the offer (``parallel_suboptimality`` does
this in a ``finally``).  Workers unregister their attachments from the
``resource_tracker`` — Python 3.11 has no ``track=False`` — so a worker
exiting cannot reap segments the parent still serves.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.obs.trace import span as obs_span
from repro.perf.timers import TIMERS

#: Offer registry: content-key digest -> offer dict.  Module-global so
#: forked sweep workers inherit live offers.
_OFFERS = {}

#: Ceiling on *transferred* offers a process keeps registered
#: (:func:`register_offer` evicts least-recently-registered beyond it).
#: Bounds long-lived pool workers, which otherwise accumulate an offer
#: — grid values, plan keys and all — for every surface they ever
#: served, long after the server evicted the segments themselves.
_OFFER_LIMIT = int(os.environ.get("REPRO_SHM_OFFER_LIMIT", "32"))


@contextmanager
def _untracked():
    """Suppress resource_tracker traffic for shared-memory segments.

    Python 3.11's ``SharedMemory`` cannot attach untracked
    (``track=False`` arrives in 3.13), and the register-then-unregister
    workaround races when two processes attach the same segment
    concurrently: the tracker's name cache is a *set*, so the duplicate
    register is absorbed and the second unregister raises (a harmless
    but noisy KeyError traceback in the tracker process).  Suppressing
    registration at attach time has no such window.  ``unregister`` is
    silenced too: ``SharedMemory.unlink()`` unregisters internally,
    which would hit the same KeyError when the unlinking process never
    registered the name (the serving tier unlinks segments its pool
    workers created).  Only the ``shared_memory`` rtype is skipped, and
    only inside this block — creators keep normal tracking until they
    hand ownership off.
    """
    original_register = resource_tracker.register
    original_unregister = resource_tracker.unregister

    def _skip_register(name, rtype):
        if rtype != "shared_memory":
            original_register(name, rtype)

    def _skip_unregister(name, rtype):
        if rtype != "shared_memory":
            original_unregister(name, rtype)

    resource_tracker.register = _skip_register
    resource_tracker.unregister = _skip_unregister
    try:
        yield
    finally:
        resource_tracker.register = original_register
        resource_tracker.unregister = original_unregister


def _digest(key):
    """Stable digest of an :func:`~repro.ess.persistence.ess_cache_key`."""
    return hashlib.sha256(
        json.dumps(key, sort_keys=True).encode("ascii")
    ).hexdigest()


class SharedSurface:
    """Parent-side owner of one ESS's shared-memory segments."""

    def __init__(self, key, ess):
        self.key = key
        self._segments = []
        try:
            offer = self._export(key, ess)
        except BaseException:
            self._release_segments()
            raise
        self.offer = offer
        _OFFERS[_digest(key)] = offer

    def _export(self, key, ess):
        grid = ess.grid
        arrays = {
            "optimal_cost": np.asarray(ess.optimal_cost, dtype=float),
            "plan_ids": np.asarray(ess.plan_ids, dtype=np.int32),
        }
        names = {}
        for field, source in arrays.items():
            segment = shared_memory.SharedMemory(
                create=True, size=source.nbytes
            )
            self._segments.append(segment)
            view = np.ndarray(
                source.shape, dtype=source.dtype, buffer=segment.buf
            )
            view[:] = source
            names[field] = segment.name
        return {
            "key": key,
            "segments": names,
            "num_points": grid.num_points,
            "plan_keys": list(ess.plan_keys),
            # Exact grid values: attached grids must be bit-identical.
            "grid_values": [
                np.array(grid.values[d]) for d in range(grid.num_dims)
            ],
            "resolution": list(grid.resolution),
        }

    def _release_segments(self):
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:
                pass
        self._segments = []

    def close(self):
        """Withdraw the offer and free the segments."""
        _OFFERS.pop(_digest(self.key), None)
        self._release_segments()


def publish(key, ess):
    """Offer an ESS's surface over shared memory, or None on failure.

    Lazy surfaces are never published: materializing one to share it
    would pay the full sweep the lazy mode exists to avoid (workers
    re-resolve their own points instead).
    """
    if getattr(ess, "is_lazy", False):
        return None
    try:
        surface = SharedSurface(key, ess)
    except Exception:
        TIMERS.incr("ess_shm_publish_failed")
        return None
    TIMERS.incr("ess_shm_published")
    return surface


def attach_if_offered(key, query, cost_model):
    """Reconstruct an ESS from a live offer for ``key``, or None.

    Any attachment failure (segment gone, shape mismatch) returns None
    so the caller falls through to the disk archive / rebuild.
    """
    digest = _digest(key)
    offer = _OFFERS.get(digest)
    if offer is None:
        return None
    try:
        with obs_span("cache.shm_attach", key=key):
            ess = _attach(offer, query, cost_model)
    except Exception:
        # The segments are gone (unlinked/evicted by their owner) or
        # the offer is inconsistent; drop it so a long-lived worker
        # doesn't pay a doomed attach on every future fetch of this key.
        _OFFERS.pop(digest, None)
        TIMERS.incr("ess_shm_attach_failed")
        return None
    TIMERS.incr("ess_shm_hit")
    return ess


def _attach(offer, query, cost_model):
    from repro.ess.grid import ESSGrid
    from repro.ess.ocs import ESS
    from repro.ess.persistence import parse_plan_key

    num_points = int(offer["num_points"])
    handles = []
    for field in ("optimal_cost", "plan_ids"):
        # Attach untracked (see _untracked) so this process exiting
        # does not reap segments the parent still owns.
        with _untracked():
            segment = shared_memory.SharedMemory(
                name=offer["segments"][field]
            )
        handles.append(segment)
    optimal_cost = np.ndarray(
        (num_points,), dtype=np.float64, buffer=handles[0].buf
    )
    plan_ids = np.ndarray(
        (num_points,), dtype=np.int32, buffer=handles[1].buf
    )
    grid = ESSGrid(query.num_epps, resolution=offer["resolution"])
    for dim, values in enumerate(offer["grid_values"]):
        grid.values[dim] = np.asarray(values, dtype=float)
    grid.invalidate_caches()
    if grid.num_points != num_points:
        raise ValueError("shared surface does not match its grid")
    plans = [parse_plan_key(str(k), query) for k in offer["plan_keys"]]
    ess = ESS(
        query=query,
        grid=grid,
        cost_model=cost_model,
        optimal_cost=optimal_cost,
        plan_ids=plan_ids,
        plans=plans,
    )
    # The arrays alias the segments; pin the handles to the ESS so the
    # mapping outlives this frame.
    ess._shm_handles = handles
    return ess


def live_offers():
    """Number of currently registered offers (introspection/tests)."""
    return len(_OFFERS)


# ----------------------------------------------------------------------
# Transferable offers: the serving tier's zero-copy hand-off
# ----------------------------------------------------------------------
#
# The fork-inherited registry above only covers workers forked *after*
# an offer exists (the parallel-sweep pattern).  The discovery server's
# process pool outlives every offer, so its surfaces travel the other
# way: a pool worker that just built an ESS exports the segments with
# :func:`export_for_transfer` and ships the (picklable) offer back to
# the server, which owns segment lifetime from then on — passing the
# offer along with later requests (workers adopt it via
# :func:`register_offer`, so ``cache.fetch`` attaches zero-copy) and
# unlinking the segments on LRU eviction (:func:`unlink_offer`).
# Unlinking is safe while attachments are live: POSIX shm only drops
# the *name*; existing mappings stay valid until their handles close.


def offer_nbytes(offer):
    """Resident bytes of an offer's segments (the LRU accounting unit)."""
    return int(offer.get("nbytes", 0))


def export_for_transfer(key, ess):
    """Create shared segments for ``ess`` and return a picklable offer.

    Unlike :class:`SharedSurface`, the creating process keeps *no*
    handles and *no* registry entry: every segment is unregistered from
    this process's ``resource_tracker`` and its local mapping closed, so
    the segments survive the creating pool worker exiting and belong to
    whoever received the offer.  Returns ``None`` for lazy surfaces or
    on any shared-memory failure (the caller falls back to the disk
    archive — the tier degrades, never breaks).
    """
    if getattr(ess, "is_lazy", False):
        return None
    grid = ess.grid
    arrays = {
        "optimal_cost": np.asarray(ess.optimal_cost, dtype=float),
        "plan_ids": np.asarray(ess.plan_ids, dtype=np.int32),
    }
    names = {}
    created = []
    nbytes = 0
    try:
        for field, source in arrays.items():
            segment = shared_memory.SharedMemory(
                create=True, size=source.nbytes
            )
            created.append(segment)
            view = np.ndarray(
                source.shape, dtype=source.dtype, buffer=segment.buf
            )
            view[:] = source
            names[field] = segment.name
            nbytes += source.nbytes
    except Exception:
        for segment in created:
            try:
                segment.close()
                segment.unlink()
            except OSError:
                pass
        TIMERS.incr("ess_shm_publish_failed")
        return None
    for segment in created:
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
        segment.close()
    TIMERS.incr("ess_shm_exported")
    return {
        "key": key,
        "segments": names,
        "num_points": grid.num_points,
        "nbytes": int(nbytes),
        "plan_keys": list(ess.plan_keys),
        "grid_values": [
            np.array(grid.values[d]) for d in range(grid.num_dims)
        ],
        "resolution": list(grid.resolution),
    }


def register_offer(offer):
    """Adopt a transferred offer into this process's registry.

    Idempotent; after this, :func:`repro.perf.cache.fetch` for the
    offer's key attaches over shared memory ahead of the disk archive.
    A registered offer whose segments were since unlinked simply fails
    to attach and the cache falls through — no cleanup protocol needed.

    The registry is bounded (``REPRO_SHM_OFFER_LIMIT``): beyond the
    limit the least-recently-registered *transferred* offers are
    forgotten — dropping a registry entry never touches the segments,
    whose lifetime belongs to the offer's owner (the serving tier).
    """
    digest = _digest(offer["key"])
    _OFFERS.pop(digest, None)  # re-registration refreshes recency
    _OFFERS[digest] = offer
    while len(_OFFERS) > max(1, _OFFER_LIMIT):
        oldest = next(iter(_OFFERS))
        if oldest == digest:
            break
        _OFFERS.pop(oldest)


def unlink_offer(offer):
    """Free a transferred offer's segments (best-effort, idempotent).

    The serving tier calls this on LRU eviction and shutdown.  Workers
    holding live attachments are unaffected (their mappings survive the
    unlink); workers that try to attach afterwards fall back to disk.
    """
    _OFFERS.pop(_digest(offer["key"]), None)
    freed = 0
    for name in offer["segments"].values():
        try:
            with _untracked():
                segment = shared_memory.SharedMemory(name=name)
                segment.close()
                segment.unlink()
            freed += 1
        except OSError:
            continue
    return freed
