"""Lightweight phase timing and counters for the performance layer.

Every expensive stage of the pipeline (ESS optimizer sweep, contour
construction, exhaustive discovery sweeps, archive save/load) reports
into a process-global :class:`PhaseTimer`, and the benchmark CLI dumps
the accumulated profile into a ``BENCH_*.json`` artifact so the repo
carries a perf trajectory across PRs.

The instrumentation is deliberately cheap — a ``perf_counter`` pair and
a dict update per phase — so it stays enabled unconditionally.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager


class PhaseTimer:
    """Accumulates wall-clock totals per named phase, plus counters.

    Phases nest freely; each :meth:`phase` block adds its own elapsed
    time to its own name (no parent/child exclusion — the consumers
    know which phases contain which).
    """

    def __init__(self):
        self._phases = {}
        self._counters = {}

    @contextmanager
    def phase(self, name):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            total, count = self._phases.get(name, (0.0, 0))
            self._phases[name] = (total + elapsed, count + 1)

    def record(self, name, seconds):
        """Add an externally-measured duration to a phase."""
        total, count = self._phases.get(name, (0.0, 0))
        self._phases[name] = (total + float(seconds), count + 1)

    def incr(self, counter, amount=1):
        """Bump a named counter (cache hits/misses, worker counts...)."""
        self._counters[counter] = self._counters.get(counter, 0) + amount

    def counter(self, name):
        return self._counters.get(name, 0)

    def reset(self):
        self._phases.clear()
        self._counters.clear()

    def summary(self):
        """Plain-data profile: phase totals/counts and counters."""
        return {
            "phases": {
                name: {"total_s": total, "count": count}
                for name, (total, count) in sorted(self._phases.items())
            },
            "counters": dict(sorted(self._counters.items())),
        }

    def write_json(self, path, extra=None):
        """Write the profile (merged with ``extra``) to a JSON file."""
        payload = self.summary()
        if extra:
            payload.update(extra)
        with open(path, "w", encoding="ascii") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return payload


#: The process-global timer every instrumented module reports into.
TIMERS = PhaseTimer()
