"""Back-compat phase timing shim over the observability registry.

Historically this module owned the process-global profile: a
:class:`PhaseTimer` accumulating wall-clock totals per named phase plus
ad-hoc counters, dumped into ``BENCH_*.json`` artifacts.  The storage
now lives in :class:`repro.obs.metrics.MetricsRegistry` — one registry
for phases, counters, gauges and histograms, with cross-process
``merge()`` — and :class:`PhaseTimer` remains as a thin delegating
facade so the dozen instrumented modules (and external BENCH
consumers) keep working unchanged.

**Deprecation path**: new instrumentation should call
:data:`repro.obs.metrics.REGISTRY` directly; ``TIMERS`` stays for the
existing phase/counter call sites and is backed by that same registry,
so both views always agree.  See ``docs/observability.md``.
"""

from __future__ import annotations

import json
import os

from repro.obs.metrics import REGISTRY, MetricsRegistry


class PhaseTimer:
    """Facade over a :class:`MetricsRegistry` with the legacy API.

    Phases nest freely; each :meth:`phase` block adds its own elapsed
    time to its own name (no parent/child exclusion — the consumers
    know which phases contain which).  A bare ``PhaseTimer()`` owns a
    private registry (test isolation); the global :data:`TIMERS` shares
    the process-global :data:`~repro.obs.metrics.REGISTRY`.
    """

    def __init__(self, registry=None):
        self.registry = registry if registry is not None else MetricsRegistry()

    def phase(self, name):
        return self.registry.phase(name)

    def record(self, name, seconds):
        """Add an externally-measured duration to a phase."""
        self.registry.record_phase(name, seconds)

    def incr(self, counter, amount=1):
        """Bump a named counter (cache hits/misses, worker counts...)."""
        self.registry.incr(counter, amount)

    def counter(self, name):
        return self.registry.counter(name)

    def reset(self):
        self.registry.reset()

    def merge(self, summary):
        """Fold another process's :meth:`summary` into this profile."""
        self.registry.merge(summary)

    def summary(self):
        """Plain-data profile: phase totals/counts and counters.

        The ``phases``/``counters`` sections keep their historical
        shape; the registry's ``gauges``/``histograms`` sections ride
        along for newer consumers.
        """
        return self.registry.summary()

    def write_json(self, path, extra=None):
        """Write the profile (merged with ``extra``) to a JSON file.

        Creates parent directories and writes UTF-8, so nested
        artifact paths and non-ASCII ``extra`` payloads both work.
        """
        payload = self.summary()
        if extra:
            payload.update(extra)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True,
                      ensure_ascii=False)
            handle.write("\n")
        return payload


#: The process-global timer every instrumented module reports into —
#: a facade over :data:`repro.obs.metrics.REGISTRY`.
TIMERS = PhaseTimer(registry=REGISTRY)
