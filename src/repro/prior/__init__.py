"""Selectivity priors for anytime discovery scheduling.

The MSO proofs (paper Sections 3-5) pin down *which* iso-cost contours
a discovery run may cross and *that* every plan on a contour may be
budget-executed — but they leave two choices completely free: the
contour the ladder starts on, and the order in which a contour's
executions are issued.  This package fills those degrees of freedom
with an optional *prior* over the actual selectivity location ``qa``
(PARQO-style empirical error profiles; Trummer & Koch's sampled
selectivities — see PAPERS.md), so the average-case cost drops while
the worst-case accounting stays verbatim:

* **Starting contour** — begin the ladder at
  ``s = min(target, band(qa))`` where ``target`` is the contour holding
  the prior's mass quantile and ``band(qa)`` comes from a plain
  optimizer costing of the location (an uncharged consultation, exactly
  like the contour construction itself).  No budgeted execution below
  ``band(qa)`` can complete — their budgets sit strictly under
  ``Cost(P_qa, qa)`` — so the skipped rungs only ever removed
  guaranteed kills.  The geometric ladder above ``s`` and its charge
  accounting are untouched, hence the per-contour summation in the MSO
  theorems applies verbatim to the (shorter) ladder and the bounds
  hold unchanged.
* **Within-contour order** — execute a contour's plans / spill steps in
  descending prior-mass order, so likely locations resolve in the first
  execution instead of the k-th.  The set of executions the accounting
  charges is permutation-invariant, so the bound is again untouched.

``UniformPrior`` is the default and an exact no-op: every scheduling
hook collapses to the pre-prior code path and produces bit-identical
output (enforced by the ``prior-inert`` conformance monitor and the
differential test suite).
"""

from __future__ import annotations

import json
import os
import zlib

import numpy as np

from repro.errors import ReproError

#: Prior kinds the CLI / serving tier accept.
PRIOR_KINDS = ("uniform", "sampled", "history")

#: Default mass quantile locating the starting contour.
DEFAULT_QUANTILE = 0.5

#: Mass floor mixed into every discretized pmf so no grid slice is ever
#: assigned zero probability (the prior is a *hint*, never a filter).
FLOOR_MASS = 1e-3

#: Synthetic population / ANALYZE-sample sizes used by
#: :meth:`SampledPrior.fit` (the sample drives the estimation error).
POPULATION_ROWS = 50_000
SAMPLE_ROWS = 2_000

#: Kernel bandwidth floor (natural-log selectivity space).
MIN_SIGMA_LOG = 0.2

#: Histogram buckets for the ``repro_prior_start_contour`` metric.
START_CONTOUR_BUCKETS = tuple(float(b) for b in range(1, 17))


class SelectivityPrior:
    """Interface: a probability model over ESS locations.

    Subclasses provide :meth:`pmf` (per-dimension probability vectors on
    the grid) and :meth:`spec` (a hashable, grid-independent parameter
    tuple that round-trips through :func:`prior_from_spec` — this is how
    priors ride a :class:`~repro.perf.parallel.SweepSpec` into worker
    processes bit-identically).
    """

    kind = "uniform"

    def __init__(self, quantile=DEFAULT_QUANTILE):
        self.quantile = float(quantile)

    @property
    def is_active(self):
        """Whether this prior may influence scheduling at all."""
        return self.kind != "uniform"

    def pmf(self, grid):
        """Per-dimension mass vectors on ``grid`` (or None = inert).

        Returns a list of ``grid.resolution[d]``-length float arrays,
        each summing to 1, or None when the prior has nothing to say
        (uniform, or a history prior with no observations yet).
        """
        raise NotImplementedError

    def spec(self):
        """Hashable grid-independent parameters; see :func:`prior_from_spec`."""
        raise NotImplementedError

    def describe(self):
        return self.kind


class UniformPrior(SelectivityPrior):
    """The default: all ESS locations equally likely — an exact no-op."""

    kind = "uniform"

    def pmf(self, grid):
        return None

    def spec(self):
        return ("uniform",)


def _kernel_pmf(grid, dim, centers, sigmas):
    """Gaussian mixture over one dimension's log-selectivity grid."""
    x = np.log(np.asarray(grid.values[dim], dtype=float))
    weight = np.zeros(x.shape, dtype=float)
    for mu, sigma in zip(centers, sigmas):
        z = (x - mu) / sigma
        weight += np.exp(-0.5 * z * z)
    total = weight.sum()
    if not np.isfinite(total) or total <= 0.0:
        weight = np.ones_like(x)
        total = weight.sum()
    weight = weight / total
    # Mix in the floor so the prior never zeroes out a grid slice.
    return (1.0 - FLOOR_MASS) * weight + FLOOR_MASS / weight.size


class SampledPrior(SelectivityPrior):
    """Per-epp selectivity distributions estimated by sampling data.

    :meth:`fit` pushes a seeded synthetic column population through
    :class:`repro.catalog.statistics.EquiDepthHistogram` on an
    ANALYZE-style subsample, so the estimate ``phat`` of each epp's
    selectivity carries realistic sampling + bucket-discretization
    error.  The per-dimension distribution is a log-space Gaussian at
    ``log(phat)`` whose width is the binomial standard error of the
    sample (floored at :data:`MIN_SIGMA_LOG`).
    """

    kind = "sampled"

    def __init__(self, params, quantile=DEFAULT_QUANTILE):
        super().__init__(quantile)
        # ((mu_log, sigma_log), ...) — one pair per ESS dimension.
        self.params = tuple(
            (float(mu), float(sigma)) for mu, sigma in params
        )

    @classmethod
    def fit(cls, query, seed=None, quantile=DEFAULT_QUANTILE):
        """Estimate each epp's selectivity through the statistics layer."""
        from repro.catalog.statistics import EquiDepthHistogram

        if seed is None:
            seed = zlib.crc32(query.name.encode("utf-8"))
        params = []
        for d, epp in enumerate(query.epps):
            p_true = min(max(float(epp.selectivity), 1e-9), 1.0)
            rng = np.random.default_rng([int(seed), d, 0x5E1])
            population = rng.random(POPULATION_ROWS)
            sample = rng.choice(population, size=SAMPLE_ROWS, replace=False)
            hist = EquiDepthHistogram(sample, num_buckets=64)
            phat = hist.selectivity_le(p_true)
            phat = min(max(phat, 1.0 / SAMPLE_ROWS), 1.0)
            # Binomial standard error of the sample, mapped to log space
            # (d log p = dp / p), plus a floor for bucket granularity.
            se_log = np.sqrt((1.0 - phat) / (SAMPLE_ROWS * phat))
            sigma = float(max(se_log, MIN_SIGMA_LOG))
            params.append((float(np.log(phat)), sigma))
        return cls(params, quantile=quantile)

    def pmf(self, grid):
        return [
            _kernel_pmf(grid, d, [mu], [sigma])
            for d, (mu, sigma) in enumerate(self.params[: len(grid.resolution)])
        ]

    def spec(self):
        return ("sampled", self.params, self.quantile)

    def describe(self):
        return f"sampled({len(self.params)} epps)"


class HistoryPrior(SelectivityPrior):
    """Fitted from the observed ``qa`` outcomes of previous runs.

    Observations are full selectivity vectors recorded by
    :class:`HistoryStore` (the serving tier appends one per completed
    discovery).  The per-dimension distribution is a kernel-density
    estimate over the observed log-selectivities.  With no observations
    the prior is *inert* — scheduling is bit-identical to uniform until
    history accrues.
    """

    kind = "history"

    def __init__(self, observations, quantile=DEFAULT_QUANTILE):
        super().__init__(quantile)
        # Per-dimension tuples of observed natural-log selectivities.
        self.observations = tuple(
            tuple(float(v) for v in dim_obs) for dim_obs in observations
        )

    @classmethod
    def from_store(cls, store, key, num_dims, quantile=DEFAULT_QUANTILE):
        rows = store.observations(key, num_dims)
        if not rows:
            return cls((), quantile=quantile)
        obs = tuple(
            tuple(float(np.log(max(row[d], 1e-12))) for row in rows)
            for d in range(num_dims)
        )
        return cls(obs, quantile=quantile)

    def pmf(self, grid):
        if not self.observations:
            return None
        out = []
        for d in range(len(grid.resolution)):
            centers = self.observations[d] if d < len(self.observations) else ()
            if not centers:
                return None
            spread = float(np.std(centers)) if len(centers) > 1 else 0.0
            sigma = max(spread, MIN_SIGMA_LOG)
            out.append(_kernel_pmf(grid, d, centers, [sigma] * len(centers)))
        return out

    def spec(self):
        return ("history", self.observations, self.quantile)

    def describe(self):
        n = len(self.observations[0]) if self.observations else 0
        return f"history({n} runs)"


class HistoryStore:
    """JSONL sidecar persisting observed ``qa`` outcomes across runs.

    One line per completed discovery: ``{"key": ..., "sel": [...]}``
    where ``key`` ties the observation to a cost-model fingerprint +
    query name (see :func:`history_key`), so a cache shared between
    profiles never cross-pollinates.  Appends are single ``write``
    calls on a line-buffered handle — atomic enough for concurrent
    pool workers on POSIX.
    """

    def __init__(self, path=None):
        if path is None:
            path = os.environ.get("REPRO_PRIOR_STORE", "").strip()
        if not path:
            from repro.perf.cache import cache_dir

            path = os.path.join(cache_dir(), "prior_history.jsonl")
        self.path = path

    def record(self, key, selectivities):
        """Append one observed selectivity vector (best effort)."""
        line = json.dumps(
            {"key": key, "sel": [float(s) for s in selectivities]},
            sort_keys=True,
        )
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def observations(self, key, num_dims):
        """All recorded vectors for ``key`` with the right arity."""
        rows = []
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue  # torn write; skip, don't fail the run
                    if entry.get("key") != key:
                        continue
                    sel = entry.get("sel")
                    if isinstance(sel, list) and len(sel) == num_dims:
                        rows.append(tuple(float(v) for v in sel))
        except OSError:
            return []
        return rows


def history_key(query, ess=None):
    """Store key: cost-model fingerprint + query name."""
    fingerprint = ""
    cost_model = getattr(ess, "cost_model", None)
    if cost_model is not None:
        try:
            fingerprint = cost_model.fingerprint()
        except Exception:
            fingerprint = ""
    return f"{fingerprint}:{query.name}"


def as_prior(value):
    """Normalize a constructor argument into a prior instance."""
    if value is None:
        return UniformPrior()
    if isinstance(value, SelectivityPrior):
        return value
    if isinstance(value, tuple):
        return prior_from_spec(value)
    if isinstance(value, str) and value == "uniform":
        return UniformPrior()
    raise ReproError(
        f"cannot interpret {value!r} as a selectivity prior; pass a "
        f"SelectivityPrior, a spec tuple, or use make_prior()"
    )


def make_prior(kind, query=None, ess=None, seed=None, store=None,
               quantile=DEFAULT_QUANTILE):
    """Build a prior by kind for a concrete query/surface context."""
    kind = "uniform" if kind is None else str(kind).strip().lower()
    if kind not in PRIOR_KINDS:
        raise ReproError(
            f"unknown prior kind {kind!r}; choose from "
            f"{', '.join(PRIOR_KINDS)}"
        )
    if kind == "uniform":
        return UniformPrior()
    if query is None:
        raise ReproError(f"prior kind {kind!r} needs a query context")
    if kind == "sampled":
        return SampledPrior.fit(query, seed=seed, quantile=quantile)
    if store is None:
        store = HistoryStore()
    return HistoryPrior.from_store(
        store, history_key(query, ess), query.num_epps, quantile=quantile
    )


def prior_from_spec(spec):
    """Rebuild a prior from its :meth:`SelectivityPrior.spec` tuple.

    The round trip is bit-exact: specs carry the fitted parameters (not
    the raw data), so a worker-side rebuild discretizes to the same pmf
    arrays as the parent's instance.
    """
    if spec is None:
        return UniformPrior()
    if not isinstance(spec, tuple) or not spec:
        raise ReproError(f"malformed prior spec {spec!r}")
    kind = spec[0]
    if kind == "uniform":
        return UniformPrior()
    if kind == "sampled":
        return SampledPrior(spec[1], quantile=spec[2])
    if kind == "history":
        return HistoryPrior(spec[1], quantile=spec[2])
    raise ReproError(f"unknown prior spec kind {kind!r}")


def record_start_choice(schedule, start, qa_band):
    """Emit one starting-contour decision into observability.

    Called only when the schedule is active, so inert runs pay nothing.
    """
    from repro.obs.metrics import REGISTRY
    from repro.obs.trace import current_span

    REGISTRY.observe(
        "repro_prior_start_contour", float(start),
        labels={"prior": schedule.prior.kind},
        buckets=START_CONTOUR_BUCKETS,
    )
    span = current_span()
    if span is not None:
        span.set_attr("prior_kind", schedule.prior.kind)
        span.set_attr("prior_start_contour", int(start))
        span.set_attr("prior_target_contour", int(schedule.start_target))
        span.set_attr("prior_skipped_contours", int(start) - 1)
        span.set_attr("prior_qa_band", int(qa_band))


class PriorSchedule:
    """A prior discretized onto one concrete ESS + contour ladder.

    This is the object the discovery algorithms actually consult; it
    owns the two scheduling decisions:

    * :meth:`start_for` / :meth:`start_array` — the starting contour
      ``min(target, band(qa))``, never above the band holding ``qa``
      (below the band no budgeted execution can complete, so skipped
      rungs only removed guaranteed kills; the clamp is an uncharged
      optimizer costing, the same consultation that built the ladder).
    * :meth:`order_steps` / :meth:`order_plan_ids` — stable descending
      prior-mass order within a contour.

    ``active`` is False when the prior kind is uniform *or* the prior
    produced no pmf (e.g. an empty history): every method then returns
    its argument unchanged and the caller's fast path is preserved.
    """

    def __init__(self, prior, ess, contours):
        self.prior = prior
        self.ess = ess
        self.contours = contours
        pmf = prior.pmf(ess.grid) if prior.is_active else None
        self.pmf = pmf
        self.active = pmf is not None
        self._plan_order = {}
        if self.active:
            self.cdf = [np.cumsum(p) for p in pmf]
            self.start_target = self._target_contour()
        else:
            self.cdf = None
            self.start_target = 1

    def _target_contour(self):
        """1-based contour band holding the prior's mass quantile."""
        grid = self.ess.grid
        coords = tuple(
            int(min(
                np.searchsorted(self.cdf[d], self.prior.quantile),
                grid.resolution[d] - 1,
            ))
            for d in range(len(grid.resolution))
        )
        flat = grid.flat_index(coords)
        return self._bands(np.asarray([flat], dtype=np.int64))[0]

    def _bands(self, flats):
        """1-based contour band per flat index (eager- and lazy-safe)."""
        costs = self.ess.optimal_cost_at(np.asarray(flats, dtype=np.int64))
        return (
            self.contours.band_of_costs(costs).astype(np.int64) + 1
        )

    def qa_band(self, flat):
        return int(self._bands(np.asarray([int(flat)], dtype=np.int64))[0])

    def start_for(self, flat):
        """Starting contour for one run at ``flat`` (1 when inert)."""
        if not self.active:
            return 1
        band = self.qa_band(flat)
        start = max(1, min(self.start_target, band))
        record_start_choice(self, start, band)
        return start

    def start_array(self, flats):
        """Vectorized :meth:`start_for` (None when inert)."""
        if not self.active:
            return None
        bands = self._bands(flats)
        return np.maximum(1, np.minimum(self.start_target, bands))

    def completion_prob(self, dim, learn_idx):
        """Prior probability a budgeted execution on ``dim`` completes."""
        return float(self.cdf[dim][int(learn_idx)])

    def order_steps(self, steps):
        """Stable descending completion-probability order (ties keep the
        original deterministic order; inert schedules return ``steps``
        unchanged — the same list object, so the no-prior path is
        untouched)."""
        if not self.active or len(steps) < 2:
            return steps
        return sorted(
            steps,
            key=lambda s: -self.cdf[s.exec_dim][int(s.learn_idx)],
        )

    def order_plan_ids(self, rc):
        """A reduced contour's plans in descending prior-mass order.

        Mass of a plan is the pmf product summed over the contour
        points whose optimal plan it is (its optimality region on the
        contour).  Cached per contour index; ties keep the reduction's
        deterministic execution order.
        """
        if not self.active or len(rc.plan_ids) < 2:
            return rc.plan_ids
        cached = self._plan_order.get(rc.index)
        if cached is not None:
            return cached
        contour = self.contours.contour(rc.index)
        coords = np.asarray(contour.coords)
        weights = np.ones(len(contour.points), dtype=float)
        for d in range(coords.shape[1]):
            weights *= self.pmf[d][coords[:, d]]
        plan_ids = np.asarray(contour.plan_ids)
        mass = {
            pid: float(weights[plan_ids == pid].sum())
            for pid in rc.plan_ids
        }
        ordered = sorted(rc.plan_ids, key=lambda pid: -mass.get(pid, 0.0))
        self._plan_order[rc.index] = ordered
        return ordered
