"""Join-graph model and geometry classification.

The benchmark queries model "a spectrum of join-graph geometries,
including chain, star, branch" (paper Section 6.1).  This module gives the
optimizer the connectivity structure it needs for connected-subgraph
enumeration, and classifies the geometry for reporting.
"""

from __future__ import annotations

from collections import defaultdict, deque

from repro.errors import QueryError


class JoinGraph:
    """Undirected multigraph over the query's relations.

    Vertices are table names; edges are join predicates.  The optimizer
    only enumerates connected sub-plans, so connectivity queries are the
    hot path here.
    """

    def __init__(self, tables, join_predicates):
        self.tables = tuple(tables)
        self._index = {t: i for i, t in enumerate(self.tables)}
        if len(self._index) != len(self.tables):
            raise QueryError("duplicate table in join graph")
        self.join_predicates = tuple(join_predicates)
        self._adjacency = defaultdict(set)
        self._edges_between = defaultdict(list)
        for pred in self.join_predicates:
            for t in pred.tables:
                if t not in self._index:
                    raise QueryError(f"join {pred.name} references unknown table {t!r}")
            a, b = pred.tables
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
            self._edges_between[frozenset((a, b))].append(pred)

    def neighbors(self, table):
        return frozenset(self._adjacency[table])

    def degree(self, table):
        return len(self._adjacency[table])

    def edges_between(self, table_a, table_b):
        """Join predicates directly connecting two tables."""
        return list(self._edges_between.get(frozenset((table_a, table_b)), ()))

    def predicates_within(self, tables):
        """Join predicates with both endpoints inside ``tables``."""
        table_set = set(tables)
        return [
            p for p in self.join_predicates
            if p.left_table in table_set and p.right_table in table_set
        ]

    def predicates_across(self, left_tables, right_tables):
        """Join predicates with one endpoint in each set."""
        left, right = set(left_tables), set(right_tables)
        found = []
        for p in self.join_predicates:
            a, b = p.tables
            if (a in left and b in right) or (a in right and b in left):
                found.append(p)
        return found

    def is_connected(self, tables=None):
        """BFS connectivity check over a subset (default: all tables)."""
        nodes = set(self.tables if tables is None else tables)
        if not nodes:
            return False
        start = next(iter(nodes))
        seen = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor in nodes and neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return seen == nodes

    def has_cycle(self):
        """Whether the join graph contains a cycle (JOB-style queries)."""
        # A connected simple graph is acyclic iff |E| = |V| - 1; account
        # for parallel edges, which always form cycles.
        simple_edges = set()
        for p in self.join_predicates:
            edge = frozenset(p.tables)
            if edge in simple_edges:
                return True
            simple_edges.add(edge)
        parent = {t: t for t in self.tables}

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for edge in simple_edges:
            a, b = tuple(edge)
            ra, rb = find(a), find(b)
            if ra == rb:
                return True
            parent[ra] = rb
        return False

    def geometry(self):
        """Classify the join-graph shape: chain, star, branch, or cyclic.

        * ``chain`` — a path (all degrees <= 2).
        * ``star`` — one hub joined to all others (hub degree n-1, others 1).
        * ``cyclic`` — contains a cycle.
        * ``branch`` — any other tree shape.
        """
        if self.has_cycle():
            return "cyclic"
        degrees = [self.degree(t) for t in self.tables]
        n = len(self.tables)
        if n <= 2:
            return "chain"
        if max(degrees) <= 2:
            return "chain"
        if sorted(degrees) == [1] * (n - 1) + [n - 1]:
            return "star"
        return "branch"
