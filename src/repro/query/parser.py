"""A small SQL front-end for SPJ queries.

Parses the select-project-join fragment the framework handles::

    SELECT *
    FROM part, lineitem, orders
    WHERE part.p_partkey = lineitem.l_partkey    -- epp
      AND orders.o_orderkey = lineitem.l_orderkey
      AND part.p_retailprice < 1000 [0.05]

Conventions:

* equality between two column references is a join predicate;
* a comparison against a literal is a filter predicate;
* a trailing ``[x]`` annotation on a predicate sets its true
  selectivity (filters default to the catalog estimate heuristics;
  joins default to ``1/max(ndv)``);
* a trailing ``-- epp`` comment (or an ``[x] epp`` annotation) marks the
  predicate error-prone.

The goal is ergonomic workload authoring, not SQL completeness: no
subqueries, aggregation, or outer joins — the paper's algorithms target
the SPJ core.
"""

from __future__ import annotations

import re

from repro.errors import QueryError
from repro.query.predicates import filter_pred, join
from repro.query.query import SPJQuery

_SELECT_RE = re.compile(
    r"^\s*select\s+(?P<select>.*?)\s+from\s+(?P<tables>.*?)"
    r"(?:\s+where\s+(?P<where>.*?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_COLUMN_RE = re.compile(r"^(\w+)\.(\w+)$")
_ANNOTATION_RE = re.compile(
    r"\[\s*(?P<sel>[0-9.eE+-]+)\s*\]\s*(?P<epp>epp)?\s*$"
)
_OPS = ("<=", ">=", "=", "<", ">")


def _strip_comments(sql):
    """Remove ``--`` comments, converting ``-- epp`` into an annotation."""
    lines = []
    for line in sql.splitlines():
        code, sep, comment = line.partition("--")
        if sep and re.search(r"\bepp\b", comment, re.IGNORECASE):
            code += " /*epp*/ "
        lines.append(code)
    return "\n".join(lines)


def _split_conjuncts(where):
    """Split the WHERE clause on top-level ANDs."""
    parts = re.split(r"\band\b", where, flags=re.IGNORECASE)
    return [part.strip() for part in parts if part.strip()]


def _parse_value(text):
    text = text.strip().strip("'\"")
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return text


class SQLParser:
    """Parse SPJ SQL text against a schema."""

    def __init__(self, schema, catalog=None):
        """Args:
            schema: the :class:`~repro.catalog.schema.Schema`.
            catalog: optional
                :class:`~repro.catalog.statistics.StatisticsCatalog` used
                for default selectivities; a throwaway catalog over the
                schema is built when omitted.
        """
        from repro.catalog.statistics import StatisticsCatalog

        self.schema = schema
        self.catalog = catalog or StatisticsCatalog(schema)

    def parse(self, sql, name="adhoc"):
        """Parse SQL text into an :class:`SPJQuery`."""
        text = _strip_comments(sql)
        match = _SELECT_RE.match(text)
        if not match:
            raise QueryError("expected SELECT ... FROM ... [WHERE ...]")
        tables = [t.strip() for t in match.group("tables").split(",")]
        for table in tables:
            if not re.fullmatch(r"\w+", table):
                raise QueryError(f"bad table reference {table!r} "
                                 "(aliases are not supported)")
            self.schema.table(table)  # validates existence
        joins = []
        filters = []
        where = match.group("where")
        if where:
            for conjunct in _split_conjuncts(where):
                predicate = self._parse_conjunct(conjunct, set(tables))
                if hasattr(predicate, "left_table"):
                    joins.append(predicate)
                else:
                    filters.append(predicate)
        return SPJQuery(name, self.schema, tables, joins=joins,
                        filters=filters)

    # ------------------------------------------------------------------

    def _parse_conjunct(self, conjunct, tables):
        error_prone = "/*epp*/" in conjunct
        conjunct = conjunct.replace("/*epp*/", "").strip()
        selectivity = None
        annotation = _ANNOTATION_RE.search(conjunct)
        if annotation:
            selectivity = float(annotation.group("sel"))
            if annotation.group("epp"):
                error_prone = True
            conjunct = conjunct[: annotation.start()].strip()

        for op in _OPS:
            lhs, sep, rhs = conjunct.partition(op)
            if not sep:
                continue
            lhs, rhs = lhs.strip(), rhs.strip()
            left_col = _COLUMN_RE.match(lhs)
            right_col = _COLUMN_RE.match(rhs)
            if left_col and right_col and op == "=":
                return self._make_join(left_col, right_col, selectivity,
                                       error_prone, tables)
            if left_col and not right_col:
                return self._make_filter(left_col, op, rhs, selectivity,
                                         error_prone, tables)
            if right_col and not left_col and op == "=":
                return self._make_filter(right_col, op, lhs, selectivity,
                                         error_prone, tables)
            raise QueryError(f"unsupported predicate {conjunct!r}")
        raise QueryError(f"no comparison operator in {conjunct!r}")

    def _make_join(self, left, right, selectivity, error_prone, tables):
        lt, lc = left.group(1), left.group(2)
        rt, rc = right.group(1), right.group(2)
        for table in (lt, rt):
            if table not in tables:
                raise QueryError(f"table {table!r} not in FROM clause")
        if selectivity is None:
            selectivity = self.catalog.estimate_join(lt, lc, rt, rc)
        return join(lt, lc, rt, rc, selectivity=selectivity,
                    error_prone=error_prone)

    def _make_filter(self, column, op, literal, selectivity, error_prone,
                     tables):
        table, col = column.group(1), column.group(2)
        if table not in tables:
            raise QueryError(f"table {table!r} not in FROM clause")
        value = _parse_value(literal)
        if selectivity is None:
            if op == "=":
                selectivity = self.catalog.estimate_filter(
                    table, col, value=value
                )
            elif op in ("<", "<="):
                selectivity = self.catalog.estimate_filter(
                    table, col, high=value if isinstance(value, (int, float))
                    else None
                )
            else:
                selectivity = 1.0 / 3.0
            selectivity = min(max(selectivity, 1e-9), 1.0)
        return filter_pred(table, col, op, value, selectivity=selectivity,
                           error_prone=error_prone)


def parse_sql(sql, schema, catalog=None, name="adhoc"):
    """Convenience one-shot parse."""
    return SQLParser(schema, catalog).parse(sql, name=name)
