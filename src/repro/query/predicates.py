"""Predicate model: filters, equi-joins, and error-prone marking.

The paper partitions a query's predicates into those the optimizer can
estimate reliably and the *error-prone predicates* (epps) whose
selectivities span the Error-prone Selectivity Space (ESS).  In the
benchmark workloads all epps are join predicates, but the model supports
filter epps as well.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError


@dataclass(frozen=True)
class FilterPredicate:
    """A single-table predicate ``table.column <op> value``.

    Attributes:
        table / column: the filtered column.
        op: one of ``"="``, ``"<"``, ``"<="``, ``">"``, ``">="``,
            ``"between"``.
        value: comparison constant (a ``(low, high)`` pair for between).
        selectivity: the *true* selectivity of the predicate; non-epp
            filters are assumed perfectly estimated (paper Section 1.1).
        error_prone: whether this filter is an epp.
        name: stable identifier used in plans and traces.
    """

    table: str
    column: str
    op: str
    value: object
    selectivity: float
    error_prone: bool = False
    name: str = ""

    _VALID_OPS = ("=", "<", "<=", ">", ">=", "between")

    def __post_init__(self):
        if self.op not in self._VALID_OPS:
            raise QueryError(f"unsupported filter op {self.op!r}")
        if not 0.0 < self.selectivity <= 1.0:
            raise QueryError(
                f"filter on {self.table}.{self.column}: selectivity "
                f"{self.selectivity} outside (0, 1]"
            )
        if not self.name:
            object.__setattr__(self, "name", f"f:{self.table}.{self.column}")

    @property
    def tables(self):
        return (self.table,)

    def describe(self):
        return f"{self.table}.{self.column} {self.op} {self.value!r}"


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate ``left.column = right.column``.

    Attributes:
        left_table / left_column / right_table / right_column: endpoints.
        selectivity: the true join selectivity, normalized as
            ``|L JOIN R| / |L x R|`` — exactly the quantity the ESS axes
            range over.
        error_prone: whether this join is an epp (an ESS dimension).
        name: stable identifier, e.g. ``"j:catalog_sales-date_dim"``.
    """

    left_table: str
    left_column: str
    right_table: str
    right_column: str
    selectivity: float
    error_prone: bool = False
    name: str = ""

    def __post_init__(self):
        if self.left_table == self.right_table:
            raise QueryError("self-joins require distinct table aliases")
        if not 0.0 < self.selectivity <= 1.0:
            raise QueryError(
                f"join {self.left_table}-{self.right_table}: selectivity "
                f"{self.selectivity} outside (0, 1]"
            )
        if not self.name:
            object.__setattr__(
                self, "name", f"j:{self.left_table}-{self.right_table}"
            )

    @property
    def tables(self):
        return (self.left_table, self.right_table)

    def other_table(self, table):
        """The endpoint opposite ``table``."""
        if table == self.left_table:
            return self.right_table
        if table == self.right_table:
            return self.left_table
        raise QueryError(f"{self.name}: table {table!r} is not an endpoint")

    def column_for(self, table):
        """The join column on the ``table`` side."""
        if table == self.left_table:
            return self.left_column
        if table == self.right_table:
            return self.right_column
        raise QueryError(f"{self.name}: table {table!r} is not an endpoint")

    def describe(self):
        return (
            f"{self.left_table}.{self.left_column} = "
            f"{self.right_table}.{self.right_column}"
        )


def join(left_table, left_column, right_table, right_column,
         selectivity, error_prone=False, name=""):
    """Convenience constructor for :class:`JoinPredicate`."""
    return JoinPredicate(
        left_table=left_table,
        left_column=left_column,
        right_table=right_table,
        right_column=right_column,
        selectivity=selectivity,
        error_prone=error_prone,
        name=name,
    )


def filter_pred(table, column, op, value, selectivity,
                error_prone=False, name=""):
    """Convenience constructor for :class:`FilterPredicate`."""
    return FilterPredicate(
        table=table,
        column=column,
        op=op,
        value=value,
        selectivity=selectivity,
        error_prone=error_prone,
        name=name,
    )
