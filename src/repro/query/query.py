"""The SPJ query model.

An :class:`SPJQuery` bundles a schema, the joined tables, the join and
filter predicates, and — crucially — the ordered list of error-prone
predicates (epps) that span the ESS.  Epp order is significant: epp ``j``
is the ``j``-th ESS dimension throughout the library.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.query.joingraph import JoinGraph
from repro.query.predicates import FilterPredicate, JoinPredicate


class SPJQuery:
    """A select-project-join query over a schema.

    Args:
        name: query identifier (e.g. ``"4D_Q91"``).
        schema: the :class:`~repro.catalog.schema.Schema` it runs against.
        tables: tables joined by the query.
        joins: :class:`JoinPredicate` list; their ``error_prone`` flags
            select the ESS dimensions.
        filters: :class:`FilterPredicate` list.

    The query validates that every predicate references declared tables
    and columns and that the join graph is connected (the optimizer never
    considers cross products).
    """

    def __init__(self, name, schema, tables, joins, filters=()):
        self.name = name
        self.schema = schema
        self.tables = tuple(tables)
        self.joins = tuple(joins)
        self.filters = tuple(filters)
        self._validate()
        self.join_graph = JoinGraph(self.tables, self.joins)
        if len(self.tables) > 1 and not self.join_graph.is_connected():
            raise QueryError(f"query {name!r}: join graph is disconnected")
        self.epps = tuple(
            p for p in list(self.joins) + list(self.filters) if p.error_prone
        )
        self._epp_index = {p.name: i for i, p in enumerate(self.epps)}

    def _validate(self):
        table_set = set(self.tables)
        if len(table_set) != len(self.tables):
            raise QueryError(f"query {self.name!r}: duplicate table")
        for t in self.tables:
            if not self.schema.has_table(t):
                raise QueryError(f"query {self.name!r}: unknown table {t!r}")
        names = set()
        for pred in list(self.joins) + list(self.filters):
            if pred.name in names:
                raise QueryError(f"query {self.name!r}: duplicate predicate {pred.name!r}")
            names.add(pred.name)
            for t in pred.tables:
                if t not in table_set:
                    raise QueryError(
                        f"query {self.name!r}: predicate {pred.name} references "
                        f"table {t!r} outside the FROM list"
                    )
            if isinstance(pred, JoinPredicate):
                self.schema.table(pred.left_table).column(pred.left_column)
                self.schema.table(pred.right_table).column(pred.right_column)
            elif isinstance(pred, FilterPredicate):
                self.schema.table(pred.table).column(pred.column)

    @property
    def num_epps(self):
        """The paper's ``D`` — the ESS dimensionality."""
        return len(self.epps)

    def epp(self, dim):
        """The epp spanning ESS dimension ``dim`` (0-based)."""
        return self.epps[dim]

    def epp_dimension(self, predicate_name):
        """The ESS dimension of a named epp."""
        try:
            return self._epp_index[predicate_name]
        except KeyError:
            raise QueryError(
                f"query {self.name!r}: {predicate_name!r} is not an epp"
            ) from None

    def is_epp(self, predicate_name):
        return predicate_name in self._epp_index

    def filters_on(self, table):
        """Filter predicates applying to one table."""
        return [f for f in self.filters if f.table == table]

    def base_selectivity(self, table):
        """Combined selectivity of the non-epp filters on a table.

        Uses the selectivity-independence assumption the paper adopts.
        Epp filters are excluded: their contribution is an ESS coordinate.
        """
        sel = 1.0
        for f in self.filters_on(table):
            if not f.error_prone:
                sel *= f.selectivity
        return sel

    def true_location(self):
        """The actual selectivity vector ``qa`` of the epps (a tuple).

        In the simulation framework the predicates carry their true
        selectivities; discovery algorithms must *not* look at this —
        it exists for evaluation (computing sub-optimality) only.
        """
        return tuple(p.selectivity for p in self.epps)

    def with_epps(self, epp_names):
        """Derive a query with a different epp marking (same predicates).

        Used by the dimensionality-sweep experiment (paper Fig. 9), where
        TPC-DS Q91 is evaluated with 2..6 of its joins marked error-prone.
        """
        target = set(epp_names)
        known = {p.name for p in list(self.joins) + list(self.filters)}
        missing = target - known
        if missing:
            raise QueryError(f"query {self.name!r}: unknown epps {sorted(missing)}")

        def remark(pred):
            flag = pred.name in target
            if pred.error_prone == flag:
                return pred
            kwargs = {k: getattr(pred, k) for k in pred.__dataclass_fields__}
            kwargs["error_prone"] = flag
            return type(pred)(**kwargs)

        joins = [remark(p) for p in self.joins]
        filters = [remark(p) for p in self.filters]
        name = f"{len(target)}D_{self.name.split('_', 1)[-1]}"
        return SPJQuery(name, self.schema, self.tables, joins, filters)

    def describe(self):
        """Human-readable multi-line description."""
        lines = [f"query {self.name}: {len(self.tables)} relations, "
                 f"D={self.num_epps} ({self.join_graph.geometry()} join graph)"]
        for p in self.joins:
            marker = "  [epp]" if p.error_prone else ""
            lines.append(f"  join   {p.describe()}{marker}")
        for f in self.filters:
            marker = "  [epp]" if f.error_prone else ""
            lines.append(f"  filter {f.describe()}{marker}")
        return "\n".join(lines)

    def __repr__(self):
        return f"SPJQuery({self.name!r}, D={self.num_epps})"
