"""The concurrent discovery service.

Everything below :mod:`repro.serve` turns the batch/CLI reproduction
into a long-running server answering a stream of discovery requests
(ROADMAP item 1 — the "millions of users" axis):

* :mod:`repro.serve.protocol` — the HTTP/JSON wire protocol and
  request validation;
* :mod:`repro.serve.surfaces` — the concurrent in-memory ESS surface
  tier: single-flight builds keyed by content fingerprint, bounded LRU
  eviction by resident shared-memory bytes;
* :mod:`repro.serve.worker` — the process-pool back-end: builds and
  discovery runs executed in pool workers with cooperative
  cancellation and per-task metrics shipping;
* :mod:`repro.serve.server` — the asyncio front-end: admission
  control, per-tenant quotas, budget-kill cancellation, graceful
  drain, and the ``/metrics`` Prometheus endpoint;
* :mod:`repro.serve.loadgen` — the closed-loop load generator behind
  ``repro loadgen`` and the BENCH v6 ``serving`` section.

See ``docs/serving.md`` for the protocol, knobs and metrics catalogue.
"""

from repro.serve.server import DiscoveryServer, ServeConfig  # noqa: F401
