"""Live operations view of the discovery server.

Two in-process pieces, both fed by the request tail in
:meth:`repro.serve.server.DiscoveryServer.discover`:

* :class:`DashboardState` — a bounded ring buffer of per-request
  completion events (timestamp, outcome, phase timings, surface
  source, tenant, conformance violations, trace id).  ``GET
  /dashboard`` renders it with :func:`render_dashboard_html` into one
  self-contained HTML page on the existing svgfig primitives:
  throughput and rejections, p50/p99 latency by phase, cache
  hit/coalesce rate, inflight, and a table of the slowest recent
  requests with their trace ids.  Everything is computed at render
  time from the ring — no background aggregation thread, no state
  beyond the deque.

* :class:`AuditLog` — a structured slow-request JSONL log.  A request
  is written when its total latency crosses ``threshold_s`` *or* when
  it falls on the ``every``-th sample (``every=0`` disables sampling,
  keeping only slow requests).  Knobs ride in ``REPRO_SERVE_AUDIT``
  (path), ``REPRO_SERVE_AUDIT_THRESHOLD_S`` and
  ``REPRO_SERVE_AUDIT_SAMPLE`` — see ``docs/observability.md`` for the
  record schema.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

from repro.bench.svgfig import line_chart

#: Ring capacity: at the serve bench's ~35 rps this is ~2 minutes of
#: traffic; the dashboard window trims further by wall clock.
DEFAULT_CAPACITY = 4096

#: Dashboard look-back window (seconds).
DEFAULT_WINDOW_S = 300

#: Buckets drawn across the window in the time-series charts.
CHART_BUCKETS = 30

#: Schema tag on every audit record.
AUDIT_SCHEMA = "repro.serve.audit.v1"


def _percentile(values, q):
    """Nearest-rank percentile of a non-empty sorted-or-not list."""
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return float(ordered[idx])


class DashboardState:
    """Bounded ring buffer of request completion events (thread-safe)."""

    def __init__(self, capacity=DEFAULT_CAPACITY):
        self._events = deque(maxlen=int(capacity))
        self._lock = threading.Lock()

    def record(self, **event):
        event.setdefault("ts", time.time())
        with self._lock:
            self._events.append(event)

    def snapshot(self):
        with self._lock:
            return list(self._events)


class AuditLog:
    """Append-only JSONL log of slow (and sampled) requests."""

    def __init__(self, path, threshold_s=1.0, every=0):
        self.path = str(path)
        self.threshold_s = float(threshold_s)
        self.every = int(every)
        self._seq = 0
        self._lock = threading.Lock()
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)

    @classmethod
    def from_env(cls):
        """An :class:`AuditLog` from ``REPRO_SERVE_AUDIT*``, or None."""
        path = os.environ.get("REPRO_SERVE_AUDIT", "").strip()
        if not path:
            return None
        return cls(
            path,
            threshold_s=float(
                os.environ.get("REPRO_SERVE_AUDIT_THRESHOLD_S", "1.0")
            ),
            every=int(os.environ.get("REPRO_SERVE_AUDIT_SAMPLE", "0")),
        )

    def maybe_record(self, record):
        """Write ``record`` if it qualifies; returns True when written.

        Qualification: ``total_s >= threshold_s`` (marked
        ``slow: true``), or the request falls on the ``every``-th
        sample (``slow: false``).  Records are one JSON object per
        line under the ``repro.serve.audit.v1`` schema.
        """
        with self._lock:
            self._seq += 1
            slow = float(record.get("total_s", 0.0)) >= self.threshold_s
            sampled = self.every > 0 and self._seq % self.every == 0
            if not slow and not sampled:
                return False
            payload = dict(record)
            payload["schema"] = AUDIT_SCHEMA
            payload["slow"] = slow
            payload.setdefault("ts", time.time())
            line = json.dumps(payload, sort_keys=True, default=str)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
            return True


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _bucketize(events, now, window_s, buckets):
    """Split window events into ``buckets`` equal time slices."""
    step = window_s / buckets
    sliced = [[] for _ in range(buckets)]
    for event in events:
        age = now - event.get("ts", now)
        if age < 0 or age >= window_s:
            continue
        idx = buckets - 1 - int(age / step)
        if 0 <= idx < buckets:
            sliced[idx].append(event)
    return sliced, step


def _series_tables(events, now, window_s=DEFAULT_WINDOW_S,
                   buckets=CHART_BUCKETS):
    """All chart series out of one pass over the window's events."""
    sliced, step = _bucketize(events, now, window_s, buckets)
    rps, rejected, killed = [], [], []
    p50_ms, p99_ms, run_p50_ms = [], [], []
    hit_rate, coalesce_rate = [], []
    inflight, violations = [], []
    for bucket in sliced:
        done = [e for e in bucket if e.get("outcome") not in
                ("rejected", "invalid")]
        rps.append(len(done) / step)
        rejected.append(
            sum(1 for e in bucket if e.get("outcome") == "rejected") / step
        )
        killed.append(
            sum(1 for e in bucket if e.get("outcome") == "killed") / step
        )
        totals = [e.get("total_s", 0.0) for e in done]
        runs = [e.get("run_s", 0.0) for e in done]
        p50_ms.append(_percentile(totals, 50) * 1000.0)
        p99_ms.append(_percentile(totals, 99) * 1000.0)
        run_p50_ms.append(_percentile(runs, 50) * 1000.0)
        sourced = [e.get("source") for e in bucket if e.get("source")]
        eligible = [s for s in sourced if s != "none"]
        hits = sum(1 for s in eligible if s == "hit")
        coalesced = sum(1 for s in eligible if s == "coalesced")
        hit_rate.append(100.0 * hits / len(eligible) if eligible else 0.0)
        coalesce_rate.append(
            100.0 * coalesced / len(eligible) if eligible else 0.0
        )
        inflight.append(
            max((e.get("inflight", 0) for e in bucket), default=0)
        )
        violations.append(sum(e.get("violations", 0) for e in bucket))
    ago = [round(-(buckets - 1 - i) * step) for i in range(buckets)]
    return {
        "ago_s": ago,
        "rps": rps, "rejected": rejected, "killed": killed,
        "p50_ms": p50_ms, "p99_ms": p99_ms, "run_p50_ms": run_p50_ms,
        "hit_rate": hit_rate, "coalesce_rate": coalesce_rate,
        "inflight": inflight, "violations": violations,
    }


def _esc(text):
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _tile(label, value):
    return (
        f'<div class="tile"><div class="v">{_esc(value)}</div>'
        f'<div class="l">{_esc(label)}</div></div>'
    )


def _slow_table(events, limit=10):
    """The slowest completed requests in the window, slowest first."""
    done = [e for e in events if e.get("outcome") not in
            ("rejected", "invalid")]
    done.sort(key=lambda e: e.get("total_s", 0.0), reverse=True)
    rows = []
    for event in done[:limit]:
        rows.append(
            "<tr>"
            f"<td>{_esc(event.get('query', '?'))}</td>"
            f"<td>{_esc(event.get('algorithm', '?'))}</td>"
            f"<td>{_esc(event.get('tenant', '?'))}</td>"
            f"<td>{_esc(event.get('outcome', '?'))}</td>"
            f"<td>{event.get('total_s', 0.0) * 1000:.1f}</td>"
            f"<td>{event.get('run_s', 0.0) * 1000:.1f}</td>"
            f"<td>{_esc(event.get('trace_id') or '-')}</td>"
            "</tr>"
        )
    return "".join(rows)


def render_dashboard_html(state, registry, health, now=None,
                          window_s=DEFAULT_WINDOW_S,
                          title="repro serve dashboard"):
    """One self-contained HTML page of the server's recent behaviour."""
    now = time.time() if now is None else now
    events = [e for e in state.snapshot()
              if now - e.get("ts", now) < window_s]
    tables = _series_tables(events, now, window_s=window_s)

    requests_total = sum(
        value for (name, _labels), value in registry.series()[0].items()
        if name == "serve_requests"
    )
    dropped = registry.counter("trace_spans_dropped")
    surfaces = health.get("surfaces", {})
    tiles = "".join([
        _tile("status", health.get("status", "?")),
        _tile("inflight", health.get("inflight", 0)),
        _tile("workers", health.get("workers", 0)),
        _tile("uptime s", f"{health.get('uptime_s', 0.0):.0f}"),
        _tile("requests", int(requests_total)),
        _tile("window reqs", len(events)),
        _tile("violations", int(
            registry.counter("serve_conformance_violations"))),
        _tile("trace drops", int(dropped)),
        _tile("surfaces", surfaces.get("ready", 0)),
        _tile("cache MB", f"{surfaces.get('resident_bytes', 0) / 1e6:.0f}"),
    ])

    charts = []
    if events:
        ago = tables["ago_s"]
        charts.append(line_chart(
            "throughput (req/s)", ago,
            [("served", tables["rps"]),
             ("rejected", tables["rejected"]),
             ("killed", tables["killed"])],
            x_label="seconds ago", y_label="req/s",
        ))
        charts.append(line_chart(
            "latency (ms)", ago,
            [("p50 total", tables["p50_ms"]),
             ("p99 total", tables["p99_ms"]),
             ("p50 run", tables["run_p50_ms"])],
            x_label="seconds ago", y_label="ms",
        ))
        charts.append(line_chart(
            "surface cache (%)", ago,
            [("hit rate", tables["hit_rate"]),
             ("coalesce rate", tables["coalesce_rate"])],
            x_label="seconds ago", y_label="%",
        ))
        charts.append(line_chart(
            "inflight / violations", ago,
            [("inflight", [float(v) for v in tables["inflight"]]),
             ("violations", [float(v) for v in tables["violations"]])],
            x_label="seconds ago", y_label="count",
        ))
    body_charts = "\n".join(charts) if charts else (
        "<p>no requests in the window yet — send traffic to "
        "<code>POST /v1/discover</code>.</p>"
    )

    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="5">
<title>{_esc(title)}</title>
<style>
body {{ font-family: -apple-system, 'Segoe UI', Helvetica, Arial,
        sans-serif; margin: 24px; color: #0b0b0b; background: #fcfcfb; }}
.tiles {{ display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }}
.tile {{ border: 1px solid #e7e6e2; border-radius: 8px;
         padding: 10px 18px; background: #fff; min-width: 90px; }}
.tile .v {{ font-size: 22px; font-weight: 600; }}
.tile .l {{ font-size: 11px; color: #666; text-transform: uppercase; }}
table {{ border-collapse: collapse; margin-top: 18px; font-size: 13px; }}
th, td {{ border: 1px solid #e7e6e2; padding: 4px 10px;
          text-align: left; }}
th {{ background: #f3f2ef; }}
caption {{ text-align: left; font-weight: 600; padding: 6px 0; }}
svg {{ margin: 12px 0; }}
</style>
</head>
<body>
<h1>{_esc(title)}</h1>
<p>window {window_s:.0f} s · rendered {time.strftime('%Y-%m-%d %H:%M:%S',
                                                     time.localtime(now))}
· auto-refreshes every 5 s</p>
<div class="tiles">{tiles}</div>
{body_charts}
<table><caption>slowest requests in window</caption>
<tr><th>query</th><th>algo</th><th>tenant</th><th>outcome</th>
<th>total ms</th><th>run ms</th><th>trace id</th></tr>
{_slow_table(events)}
</table>
</body>
</html>
"""
