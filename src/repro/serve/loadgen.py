"""Closed-loop load generator and in-process serving bench.

Three layers, bottom up:

* :class:`ServeClient` — a blocking keep-alive JSON client over the
  stdlib ``http.client`` (one per load-generator thread, no deps);
* :func:`run_loadgen` — the closed loop itself: ``concurrency`` client
  threads issue requests back-to-back until ``total`` have completed,
  recording per-request latency/outcome and folding them into
  p50/p90/p99/rps;
* :func:`bench_serving` — the BENCH schema-v6 ``serving`` section:
  boots an in-process server (:class:`ServerThread`) against a fresh
  throw-away archive-cache directory, fires a mixed-tenant burst,
  scrapes ``/metrics`` before and after to *prove* single-flight (the
  ``ess_build`` phase-run delta must equal the number of unique
  surfaces touched, with every other concurrent request coalesced or a
  cache hit), and checks served results bit-identical to solo in-process
  runs plus violation-free under the conformance monitor.

Percentiles use linear interpolation between order statistics (the
numpy default), implemented by hand so the hot path stays stdlib-only.
"""

from __future__ import annotations

import http.client
import json
import os
import shutil
import tempfile
import threading
import time

from repro.errors import ReproError

#: Workloads of the default serving bench burst (small on purpose — the
#: point is contention on few surfaces, not surface size).
DEFAULT_SERVING_QUERIES = ("2D_Q91", "3D_Q91", "2D_JOB1a")


class ServeClient:
    """Blocking keep-alive JSON client for one server connection."""

    def __init__(self, host, port, timeout=120.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._conn = None

    def _connection(self):
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def request(self, method, path, obj=None):
        """One request/response exchange: ``(status, body_bytes)``.

        A connection-level failure retries once on a fresh connection
        (the server may have closed an idle keep-alive socket).
        """
        body = None if obj is None else json.dumps(obj).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()
                return response.status, payload
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt:
                    raise

    def request_json(self, method, path, obj=None):
        status, payload = self.request(method, path, obj)
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            decoded = {"outcome": "error",
                       "error": f"undecodable body: {payload[:200]!r}"}
        return status, decoded

    def discover(self, payload):
        return self.request_json("POST", "/v1/discover", payload)

    def metrics_text(self, exemplars=False):
        path = "/metrics?exemplars=1" if exemplars else "/metrics"
        status, payload = self.request("GET", path)
        if status != 200:
            raise ReproError(f"/metrics returned HTTP {status}")
        return payload.decode("utf-8")

    def dashboard_html(self):
        status, payload = self.request("GET", "/dashboard")
        if status != 200:
            raise ReproError(f"/dashboard returned HTTP {status}")
        return payload.decode("utf-8")

    def health(self):
        return self.request_json("GET", "/healthz")[1]

    def close(self):
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:
                pass
            self._conn = None


def percentile(values, q):
    """The ``q``-quantile (0..1) by linear interpolation."""
    if not values:
        return 0.0
    data = sorted(values)
    position = (len(data) - 1) * float(q)
    low = int(position)
    high = min(low + 1, len(data) - 1)
    fraction = position - low
    return data[low] * (1.0 - fraction) + data[high] * fraction


def scrape_counter(text, metric, labels=None):
    """Sum a metric's samples out of Prometheus text exposition.

    ``labels`` filters: every given pair must match the sample's label
    set (extra sample labels are allowed).  Missing metric reads 0.0 —
    counters that were never bumped are absent from the exposition.
    """
    wanted = {str(k): str(v) for k, v in (labels or {}).items()}
    total = 0.0
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if "{" in name_part:
            name, _, inner = name_part.partition("{")
            sample_labels = {}
            for item in inner.rstrip("}").split(","):
                if not item:
                    continue
                key, _, value = item.partition("=")
                sample_labels[key] = value.strip('"')
        else:
            name, sample_labels = name_part, {}
        if name != metric:
            continue
        if any(sample_labels.get(k) != v for k, v in wanted.items()):
            continue
        try:
            total += float(value_part)
        except ValueError:
            continue
    return total


def run_loadgen(host, port, queries, total=64, concurrency=8,
                algorithm="sb", kind="run", tenants=("default",),
                sleep_s=0.0, timeout=120.0, extra=None, trace_every=0):
    """Closed-loop burst: ``concurrency`` threads, ``total`` requests.

    Requests round-robin over ``queries`` and ``tenants`` by global
    request index.  ``trace_every`` > 0 forces ``"trace": true`` on
    every N-th request (by index) regardless of the server's own
    sampling policy; traced responses' ``trace_id`` values land on the
    per-request records and are counted in the summary.  Returns the
    latency/outcome summary (and the raw per-request records under
    ``"records"`` for callers that aggregate further).
    """
    queries = list(queries)
    tenants = list(tenants) or ["default"]
    if not queries:
        raise ReproError("loadgen needs at least one query")
    total = int(total)
    concurrency = max(1, min(int(concurrency), total))
    records = []
    lock = threading.Lock()
    counter = iter(range(total))

    def next_index():
        with lock:
            return next(counter, None)

    def drive():
        client = ServeClient(host, port, timeout=timeout)
        try:
            while True:
                index = next_index()
                if index is None:
                    return
                payload = {
                    "query": queries[index % len(queries)],
                    "algorithm": algorithm,
                    "kind": kind,
                    "tenant": tenants[index % len(tenants)],
                }
                if sleep_s:
                    payload["sleep_s"] = sleep_s
                if extra:
                    payload.update(extra)
                if trace_every and index % trace_every == 0:
                    payload["trace"] = True
                start = time.perf_counter()
                try:
                    status, response = client.discover(payload)
                    outcome = response.get("outcome", "error")
                except Exception as exc:  # noqa: BLE001 - record, go on
                    status, outcome = 0, "client_error"
                    response = {"error": f"{type(exc).__name__}: {exc}"}
                record = {
                    "index": index,
                    "query": payload["query"],
                    "tenant": payload["tenant"],
                    "status": status,
                    "outcome": outcome,
                    "latency_s": time.perf_counter() - start,
                }
                if response.get("trace_id"):
                    record["trace_id"] = response["trace_id"]
                if outcome in ("error", "client_error", "invalid"):
                    record["error"] = response.get("error")
                with lock:
                    records.append(record)
        finally:
            client.close()

    threads = [threading.Thread(target=drive, daemon=True)
               for _ in range(concurrency)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started

    latencies = [r["latency_s"] for r in records]
    outcomes = {}
    statuses = {}
    for record in records:
        outcomes[record["outcome"]] = outcomes.get(record["outcome"], 0) + 1
        statuses[str(record["status"])] = (
            statuses.get(str(record["status"]), 0) + 1
        )
    completed = outcomes.get("ok", 0)
    traced = sum(1 for r in records if r.get("trace_id"))
    return {
        "requests": len(records),
        "traced": traced,
        "concurrency": concurrency,
        "queries": queries,
        "tenants": tenants,
        "algorithm": algorithm,
        "kind": kind,
        "sleep_s": float(sleep_s),
        "duration_s": duration,
        "rps": len(records) / duration if duration > 0 else 0.0,
        "ok": completed,
        "outcomes": outcomes,
        "status_codes": statuses,
        "latency_s": {
            "p50": percentile(latencies, 0.50),
            "p90": percentile(latencies, 0.90),
            "p99": percentile(latencies, 0.99),
            "mean": (sum(latencies) / len(latencies)) if latencies else 0.0,
            "max": max(latencies) if latencies else 0.0,
        },
        "records": records,
    }


class ServerThread:
    """A :class:`~repro.serve.server.DiscoveryServer` on a background
    event loop — the in-process harness for tests and the bench."""

    def __init__(self, config=None, **overrides):
        from repro.serve.server import DiscoveryServer

        self.server = DiscoveryServer(config, **overrides)
        self.loop = None
        self.address = None
        self._thread = None
        self._ready = threading.Event()
        self._error = None

    def start(self, timeout=180.0):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ReproError("discovery server failed to start in time")
        if self._error is not None:
            raise ReproError(f"discovery server failed to start: "
                             f"{self._error}")
        return self.address

    def _run(self):
        import asyncio

        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)

        async def boot():
            try:
                self.address = await self.server.start()
            except BaseException as exc:  # noqa: BLE001 - report to starter
                self._error = exc
            finally:
                self._ready.set()

        self.loop.create_task(boot())
        try:
            self.loop.run_forever()
        finally:
            self.loop.close()

    def submit(self, coroutine, timeout=120.0):
        """Run a coroutine on the server loop from any thread."""
        import asyncio

        future = asyncio.run_coroutine_threadsafe(coroutine, self.loop)
        return future.result(timeout)

    def stop(self, drain=True, timeout=120.0):
        if self.loop is None or not self._thread.is_alive():
            return
        if self._error is None:
            try:
                self.submit(self.server.stop(drain=drain), timeout=timeout)
            except Exception:
                pass
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout)


def solo_result(query, profile=None, algorithm="sb", qa=None):
    """The exact result payload a solo (CLI-path) run produces.

    Same substrate calls as :func:`repro.serve.worker.run_discovery`
    (``workloads.load`` then ``algorithm.run(trace=True)``), same
    serializer, then one JSON round-trip so the comparison is against
    wire bytes on both sides.
    """
    from repro.bench import workloads
    from repro.serve import worker

    workloads.clear_cache()
    instance = workloads.load(query, profile=profile, ess_mode="eager")
    algo = worker._make_algorithm(algorithm, instance)
    payload = worker._execute(
        {"kind": "run", "qa": list(qa) if qa else None}, instance, algo
    )
    payload.pop("_raw", None)
    return json.loads(json.dumps(payload))


def bench_serving(queries=DEFAULT_SERVING_QUERIES, total=64, concurrency=32,
                  profile="smoke", workers=None, num_tenants=4,
                  sleep_s=0.02):
    """The BENCH v6 ``serving`` section: burst, prove, compare.

    Runs against a throw-away ``REPRO_CACHE_DIR`` so "one ESS build per
    unique surface" is provable from the ``/metrics`` scrape: on a cold
    archive every surface costs exactly one ``ess_build`` phase run
    server-wide, no matter how many concurrent requests want it.
    """
    from repro.serve.server import ServeConfig

    queries = list(queries)
    unique_queries = list(dict.fromkeys(queries))
    tmpdir = tempfile.mkdtemp(prefix="repro-serve-bench-")
    saved_env = {key: os.environ.get(key)
                 for key in ("REPRO_CACHE_DIR", "REPRO_CACHE")}
    os.environ["REPRO_CACHE_DIR"] = tmpdir
    os.environ["REPRO_CACHE"] = "1"
    thread = None
    client = None
    try:
        config = ServeConfig.from_env(
            profile=profile, workers=workers, ess_mode="eager",
        )
        thread = ServerThread(config)
        host, port = thread.start()
        client = ServeClient(host, port)
        before = client.metrics_text()
        burst = run_loadgen(
            host, port, queries=queries, total=total,
            concurrency=concurrency,
            tenants=[f"tenant-{i}" for i in range(max(1, num_tenants))],
            sleep_s=sleep_s,
        )
        after = client.metrics_text()

        def delta(metric, labels=None):
            return (scrape_counter(after, metric, labels)
                    - scrape_counter(before, metric, labels))

        ess_builds = delta("repro_phase_runs_total", {"phase": "ess_build"})
        single_flight = {
            "unique_surfaces": len(unique_queries),
            "ess_builds": int(ess_builds),
            "surface_builds": int(delta("repro_serve_surface_builds_total")),
            "coalesced": int(delta("repro_serve_surface_coalesced_total")),
            "hits": int(delta("repro_serve_surface_hits_total")),
            "ok": int(ess_builds) == len(unique_queries),
        }

        identity = []
        for query in unique_queries:
            status, served = client.discover({"query": query})
            solo = solo_result(query, profile=profile)
            identity.append({
                "query": query,
                "status": status,
                "surface_source": served.get("surface", {}).get("source"),
                "identical": (
                    status == 200
                    and json.dumps(served.get("result"), sort_keys=True)
                    == json.dumps(solo, sort_keys=True)
                ),
            })

        violations = 0
        conformance_requests = 0
        for query in unique_queries:
            status, served = client.discover(
                {"query": query, "conformance": True}
            )
            if status == 200 and "conformance" in served:
                conformance_requests += 1
                violations += served["conformance"]["num_violations"]

        health = client.health()
        burst.pop("records", None)
        return {
            "config": {
                "workers": config.workers,
                "queue_limit": config.queue_limit,
                "tenant_quota": config.tenant_quota,
                "cache_mb": config.cache_mb,
                "profile": profile,
            },
            "loadgen": burst,
            "single_flight": single_flight,
            "identity": identity,
            "all_identical": all(row["identical"] for row in identity),
            "conformance": {
                "requests": conformance_requests,
                "violations": violations,
                "ok": (conformance_requests == len(unique_queries)
                       and violations == 0),
            },
            "health": {key: health.get(key)
                       for key in ("status", "workers", "surfaces")},
        }
    finally:
        if client is not None:
            client.close()
        if thread is not None:
            thread.stop()
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        shutil.rmtree(tmpdir, ignore_errors=True)


def _await_trace_file(trace_dir, trace_id, timeout=10.0):
    """The server writes trace JSONL off the event loop; wait for it."""
    path = os.path.join(trace_dir, f"trace-{trace_id}.jsonl")
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path) and os.path.getsize(path) > 0:
            return path
        time.sleep(0.05)
    raise ReproError(f"trace file {path} never appeared")


def check_merged_trace(meta, spans):
    """Structural verdict on one merged multi-process trace.

    Proves the acceptance shape: every span under one trace id, a
    ``serve.request`` root, pool-worker (``serve.worker.*``) and — when
    the request fanned a nested sweep — ``sweep.worker`` spans from
    other pids, and children wall-clock ordered by their
    ``time_unix_ns`` anchors.
    """
    from repro.obs.export import span_tree

    trace_ids = {s.get("trace_id") for s in spans}
    pids = {s.get("attrs", {}).get("pid") for s in spans} - {None}
    names = [s.get("name") for s in spans]
    roots, children = span_tree(spans)
    ordered = True
    for siblings in list(children.values()) + [roots]:
        anchors = [s.get("time_unix_ns") or 0 for s in siblings]
        if anchors != sorted(anchors):
            ordered = False
    verdict = {
        "trace_id": meta.get("trace_id"),
        "schema": meta.get("schema"),
        "spans": len(spans),
        "single_trace_id": trace_ids == {meta.get("trace_id")},
        "pids": sorted(int(p) for p in pids),
        "multi_process": len(pids) >= 2,
        "has_request_root": any(
            s.get("name") == "serve.request" for s in roots
        ),
        "has_pool_worker_spans": any(
            n and n.startswith("serve.worker.") for n in names
        ),
        "has_sweep_worker_spans": "sweep.worker" in names,
        "wall_ordered": ordered,
    }
    verdict["ok"] = all(
        verdict[key] for key in (
            "single_trace_id", "multi_process", "has_request_root",
            "has_pool_worker_spans", "wall_ordered",
        )
    )
    return verdict


def bench_observability(queries=DEFAULT_SERVING_QUERIES, total=48,
                        concurrency=12, profile="smoke", workers=None,
                        sweep_query="2D_Q91", sleep_s=0.02, pairs=3):
    """The BENCH v9 ``observability`` section: overhead, identity, trace.

    Three proofs against one in-process server with a throw-away
    archive cache and a trace spool directory:

    * **overhead** — ``pairs`` alternating closed-loop burst pairs,
      tracing off then every request traced (``trace_every=1``); the
      end-to-end overhead is the *median* of the per-pair relative p50
      deltas, so one noisy burst cannot swing the verdict.  Bursts
      carry the same deterministic per-request service time the
      serving bench uses (``sleep_s``), keeping the request cost
      representative — against the smoke profile's artificially tiny
      discovery runs, a fixed few-dozen-microsecond tracing cost would
      otherwise read as a large relative number.
    * **identity** — the served ``result`` payload for each query is
      bit-identical (as sorted JSON) with tracing on, with tracing
      off, and to a solo in-process run: tracing must be a pure
      observer.
    * **merged trace** — one traced ``evaluate`` request with
      ``engine=parallel`` (``REPRO_WORKERS=2`` and
      ``REPRO_FORCE_PARALLEL=1`` exported before boot so forked pool
      workers inherit them) must yield a single JSONL trace whose
      spans cover the front-end, the pool worker, and the nested
      sweep workers — see :func:`check_merged_trace`.
    """
    from repro.obs.export import read_trace_jsonl
    from repro.serve.server import ServeConfig

    queries = list(queries)
    unique_queries = list(dict.fromkeys(queries))
    tmpdir = tempfile.mkdtemp(prefix="repro-obs-bench-")
    trace_dir = os.path.join(tmpdir, "traces")
    saved_env = {key: os.environ.get(key)
                 for key in ("REPRO_CACHE_DIR", "REPRO_CACHE",
                             "REPRO_WORKERS", "REPRO_FORCE_PARALLEL")}
    os.environ["REPRO_CACHE_DIR"] = os.path.join(tmpdir, "cache")
    os.environ["REPRO_CACHE"] = "1"
    # Exported before boot: the pool forks workers lazily, so these are
    # inherited and govern the nested sweep inside `engine=parallel`.
    os.environ["REPRO_WORKERS"] = "2"
    os.environ["REPRO_FORCE_PARALLEL"] = "1"
    thread = None
    client = None
    try:
        config = ServeConfig.from_env(
            profile=profile, workers=workers, ess_mode="eager",
            trace_dir=trace_dir,
        )
        thread = ServerThread(config)
        host, port = thread.start()
        client = ServeClient(host, port)

        # Warm every surface (and both code paths) so the off/on bursts
        # compare steady-state serving, not ESS builds.
        for query in unique_queries:
            client.discover({"query": query})
            client.discover({"query": query, "trace": True})

        deltas = []
        off = on = None
        for _ in range(max(1, int(pairs))):
            off = run_loadgen(host, port, queries=queries, total=total,
                              concurrency=concurrency, sleep_s=sleep_s,
                              trace_every=0)
            on = run_loadgen(host, port, queries=queries, total=total,
                             concurrency=concurrency, sleep_s=sleep_s,
                             trace_every=1)
            off_p50 = off["latency_s"]["p50"]
            on_p50 = on["latency_s"]["p50"]
            deltas.append(100.0 * (on_p50 - off_p50) / off_p50
                          if off_p50 > 0 else 0.0)
        overhead_pct = sorted(deltas)[len(deltas) // 2]

        identity = []
        for query in unique_queries:
            _, untraced = client.discover({"query": query, "trace": False})
            _, traced = client.discover({"query": query, "trace": True})
            solo = solo_result(query, profile=profile)
            canon = lambda payload: json.dumps(  # noqa: E731
                payload.get("result"), sort_keys=True)
            identity.append({
                "query": query,
                "traced_has_trace_id": bool(traced.get("trace_id")),
                "identical": (canon(untraced) == canon(traced)
                              == json.dumps(solo, sort_keys=True)),
            })

        status, sweep = client.discover({
            "query": sweep_query, "kind": "evaluate",
            "engine": "parallel", "trace": True,
        })
        merged = {"ok": False, "error": f"evaluate HTTP {status}"}
        if status == 200 and sweep.get("trace_id"):
            path = _await_trace_file(trace_dir, sweep["trace_id"])
            meta, spans = read_trace_jsonl(path)
            merged = check_merged_trace(meta, spans)
            merged["sweep_mso"] = sweep.get("result", {}).get("mso")

        dashboard = client.dashboard_html()
        after = client.metrics_text()
        return {
            "config": {
                "workers": config.workers,
                "profile": profile,
                "sweep_workers": 2,
                "queries": unique_queries,
            },
            "tracing_off": {k: v for k, v in off.items()
                            if k != "records"},
            "tracing_on": {k: v for k, v in on.items()
                           if k != "records"},
            "overhead_pct_pairs": deltas,
            "overhead_pct": overhead_pct,
            "overhead_ok": overhead_pct < 2.0,
            "identity": identity,
            "all_identical": all(row["identical"] for row in identity),
            "merged_trace": merged,
            "spans_dropped": int(scrape_counter(
                after, "repro_trace_spans_dropped_total")),
            "dashboard_bytes": len(dashboard),
            "dashboard_ok": "<svg" in dashboard,
        }
    finally:
        if client is not None:
            client.close()
        if thread is not None:
            thread.stop()
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        shutil.rmtree(tmpdir, ignore_errors=True)
