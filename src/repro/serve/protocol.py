"""Wire protocol of the discovery service.

The server speaks HTTP/1.1 with JSON bodies — plain enough that
``curl``, a Prometheus scraper, and the stdlib ``http.client`` all work
against it without any dependency beyond the socket:

* ``POST /v1/discover`` — one discovery request (see
  :class:`DiscoverRequest`); the response body is a JSON object whose
  ``outcome`` is ``ok``, ``killed`` (cooperative budget kill),
  ``invalid`` (HTTP 400), ``rejected`` (HTTP 429/503) or ``error``
  (HTTP 500).
* ``GET /metrics`` — Prometheus text exposition of the process-global
  registry (server counters plus everything the pool workers shipped
  home).
* ``GET /healthz`` — liveness/drain status as JSON.

This module owns request validation (:func:`parse_discover`) and the
minimal HTTP framing both the server and the load-generator client
share.  Every validation failure raises :class:`ProtocolError`, a
:class:`~repro.errors.ReproError`, and maps to HTTP 400 — never a
traceback into the connection.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field

from repro.errors import ReproError

#: Discovery algorithms a request may name.  ``native`` is run-only
#: (there is no native exhaustive-evaluation path worth serving).
ALGORITHM_CHOICES = ("pb", "sb", "ab", "native")

#: Request kinds: one traced discovery run at ``qa``, or an exhaustive
#: MSO/ASO sweep over the whole ESS.
KIND_CHOICES = ("run", "evaluate")

#: Sweep engines an ``evaluate`` request may pick.  ``parallel`` fans
#: a nested sweep pool out of the pool worker (the executor's worker
#: processes are non-daemonic); its width follows ``REPRO_WORKERS`` in
#: the server's environment, which defaults to serial — nested fan-out
#: is a deliberate operator opt-in, and the sweep's cost guard still
#: applies.
EVALUATE_ENGINES = ("auto", "batch", "loop", "parallel")

#: ESS surface modes (``None`` defers to the server default / REPRO_ESS).
ESS_MODES = (None, "eager", "lazy")

#: Selectivity priors guiding contour scheduling (``None`` defers to
#: the server default / REPRO_PRIOR).
PRIOR_MODES = (None, "uniform", "sampled", "history")

#: Ceiling on the synthetic per-request service time (load shaping).
MAX_SLEEP_S = 30.0

#: Ceiling on a request's cooperative-kill budget.
MAX_BUDGET_S = 3600.0

#: Request bodies over this size are rejected before parsing.
MAX_BODY_BYTES = 1 << 20


class ProtocolError(ReproError):
    """A malformed request (HTTP 400, never a server-side traceback)."""


@dataclass
class DiscoverRequest:
    """One validated ``POST /v1/discover`` body.

    Attributes:
        query: workload name (``xD_Qz`` TPC-DS or ``xD_JOB1a``).
        algorithm: ``pb`` / ``sb`` / ``ab`` / ``native`` (run-only).
        kind: ``run`` (one traced discovery at ``qa``) or ``evaluate``
            (exhaustive MSO/ASO sweep).
        qa: optional actual-selectivity vector; default is the
            workload's true location (bit-identical to the CLI default).
        budget_s: optional wall-clock budget; on expiry the server
            cooperatively kills the request (outcome ``killed``).
        engine: sweep engine for ``evaluate`` (ignored for ``run``).
        ess_mode: ``eager`` / ``lazy`` surface; ``None`` = server default.
        prior: ``uniform`` / ``sampled`` / ``history`` contour
            scheduling prior; ``None`` = server default.
        resolution: optional explicit grid resolution.
        tenant: quota bucket the request is accounted against.
        sleep_s: synthetic extra service time, cooperatively
            cancellable — load shaping for benchmarks and tests.
        conformance: run the request under a
            :class:`~repro.conformance.monitors.ConformanceMonitor` and
            report violations in the response; ``None`` = server default.
        trace: force tracing on (True) or off (False) for this request;
            ``None`` defers to the server's sampling policy
            (``REPRO_SERVE_TRACE``).  Traced responses carry their
            ``trace_id``.
    """

    query: str
    algorithm: str = "sb"
    kind: str = "run"
    qa: tuple = None
    budget_s: float = None
    engine: str = "auto"
    ess_mode: str = None
    prior: str = None
    resolution: int = None
    tenant: str = "default"
    sleep_s: float = 0.0
    conformance: bool = None
    trace: bool = None
    extra: dict = field(default_factory=dict)


def _number(value, name, low=None, high=None):
    try:
        out = float(value)
    except (TypeError, ValueError):
        raise ProtocolError(f"{name} must be a number, got {value!r}") from None
    if not math.isfinite(out):
        raise ProtocolError(f"{name} must be finite, got {value!r}")
    if low is not None and out < low:
        raise ProtocolError(f"{name} must be >= {low}, got {out}")
    if high is not None and out > high:
        raise ProtocolError(f"{name} must be <= {high}, got {out}")
    return out


def parse_discover(payload):
    """Validate a decoded ``/v1/discover`` body into a request object."""
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    query = payload.get("query")
    if not isinstance(query, str) or not query:
        raise ProtocolError("'query' must be a non-empty workload name")
    algorithm = payload.get("algorithm", "sb")
    if algorithm not in ALGORITHM_CHOICES:
        raise ProtocolError(
            f"unknown algorithm {algorithm!r}; choose from {ALGORITHM_CHOICES}"
        )
    kind = payload.get("kind", "run")
    if kind not in KIND_CHOICES:
        raise ProtocolError(
            f"unknown kind {kind!r}; choose from {KIND_CHOICES}"
        )
    if kind == "evaluate" and algorithm == "native":
        raise ProtocolError("kind 'evaluate' supports pb/sb/ab only")
    engine = payload.get("engine", "auto")
    if engine not in EVALUATE_ENGINES:
        raise ProtocolError(
            f"unknown engine {engine!r}; choose from {EVALUATE_ENGINES}"
        )
    ess_mode = payload.get("ess_mode")
    if ess_mode not in ESS_MODES:
        raise ProtocolError(
            f"unknown ess_mode {ess_mode!r}; choose from "
            f"{[m for m in ESS_MODES if m]} or omit for the server default"
        )
    prior = payload.get("prior")
    if prior not in PRIOR_MODES:
        raise ProtocolError(
            f"unknown prior {prior!r}; choose from "
            f"{[m for m in PRIOR_MODES if m]} or omit for the server default"
        )
    qa = payload.get("qa")
    if qa is not None:
        if not isinstance(qa, (list, tuple)) or not qa:
            raise ProtocolError("'qa' must be a non-empty array of numbers")
        qa = tuple(_number(v, "qa component", low=0.0) for v in qa)
    budget_s = payload.get("budget_s")
    if budget_s is not None:
        budget_s = _number(budget_s, "budget_s", low=0.0, high=MAX_BUDGET_S)
    resolution = payload.get("resolution")
    if resolution is not None:
        if not isinstance(resolution, int) or isinstance(resolution, bool) \
                or resolution < 2:
            raise ProtocolError(
                f"resolution must be an integer >= 2, got {resolution!r}"
            )
    tenant = payload.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
        raise ProtocolError("'tenant' must be a string of 1..64 characters")
    sleep_s = _number(payload.get("sleep_s", 0.0), "sleep_s",
                      low=0.0, high=MAX_SLEEP_S)
    conformance = payload.get("conformance")
    if conformance is not None and not isinstance(conformance, bool):
        raise ProtocolError("'conformance' must be a boolean")
    trace = payload.get("trace")
    if trace is not None and not isinstance(trace, bool):
        raise ProtocolError("'trace' must be a boolean")
    return DiscoverRequest(
        query=query, algorithm=algorithm, kind=kind, qa=qa,
        budget_s=budget_s, engine=engine, ess_mode=ess_mode,
        prior=prior, resolution=resolution, tenant=tenant,
        sleep_s=sleep_s, conformance=conformance, trace=trace,
    )


# ----------------------------------------------------------------------
# Minimal HTTP/1.1 framing (shared by server and loadgen client)
# ----------------------------------------------------------------------

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


async def read_http_message(reader, max_body=MAX_BODY_BYTES):
    """Read one HTTP message (request or response) off a stream.

    Returns ``(start_line, headers, body)`` with lower-cased header
    names, or ``None`` on a clean EOF before any bytes (the peer hung
    up between messages).  Raises :class:`ProtocolError` on framing
    violations and oversized bodies.
    """
    try:
        start = await reader.readline()
    except (ConnectionError, OSError):
        return None
    except (ValueError, asyncio.LimitOverrunError):
        # readline() raises when a line exceeds the stream's buffer
        # limit; answer 400, don't drop the connection with a traceback.
        raise ProtocolError("request line too long") from None
    if not start:
        return None
    start_line = start.decode("latin-1").rstrip("\r\n")
    headers = {}
    while True:
        try:
            line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise ProtocolError("header line too long") from None
        if not line:
            raise ProtocolError("connection closed inside headers")
        text = line.decode("latin-1").rstrip("\r\n")
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(
            f"bad Content-Length {length_text!r}"
        ) from None
    if length < 0 or length > max_body:
        raise ProtocolError(f"body of {length} bytes exceeds {max_body}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except Exception:
            raise ProtocolError("connection closed inside body") from None
    return start_line, headers, body


def http_payload(status, body, content_type="application/json",
                 close=False):
    """Serialize one HTTP/1.1 response to bytes."""
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def json_payload(status, obj, close=False):
    """An HTTP response whose body is ``obj`` rendered as JSON."""
    body = json.dumps(obj, sort_keys=True).encode("utf-8")
    return http_payload(status, body, close=close)


def http_request_payload(method, path, obj=None):
    """Serialize one HTTP/1.1 request (keep-alive) to bytes."""
    body = b"" if obj is None else json.dumps(obj).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        "Host: repro\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Content-Type: application/json\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def parse_status(start_line):
    """HTTP status code out of a response start line."""
    parts = start_line.split(" ", 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ProtocolError(f"malformed status line {start_line!r}")
    return int(parts[1])
