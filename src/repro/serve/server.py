"""The asyncio discovery server.

One :class:`DiscoveryServer` owns four moving parts:

* an **asyncio front-end** (``asyncio.start_server``) speaking the
  HTTP/JSON protocol of :mod:`repro.serve.protocol` over keep-alive
  connections;
* a **process-pool back-end** (``ProcessPoolExecutor``) running the
  build and discovery tasks of :mod:`repro.serve.worker`, with a
  fork-inherited cancel-slot array for cooperative budget kills;
* the **single-flight surface tier** of :mod:`repro.serve.surfaces`
  handing built ESS surfaces to workers zero-copy;
* **admission control**: a bounded in-system request count (queue
  depth beyond the worker count) and per-tenant in-flight quotas, both
  answered with HTTP 429 — shed load at the door, never by letting the
  event loop drown.

Lifecycle: :meth:`start` binds the socket and spins the pool up;
:meth:`stop` drains — new work is refused with 503, in-flight requests
get ``drain_timeout_s`` to finish, stragglers are cooperatively
killed, the pool shuts down, and every cached surface is unlinked.

Observability: every phase is counted/timed into the process-global
:data:`repro.obs.metrics.REGISTRY` (each worker ships its own summary
home per task and the server merges it), and ``GET /metrics`` renders
the whole registry as Prometheus text exposition.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

from repro.errors import QueryError, ReproError
from repro.obs.export import prometheus_text, write_trace_jsonl
from repro.obs.metrics import REGISTRY
from repro.obs.trace import NOOP_SPAN, Tracer
from repro.serve import protocol, worker
from repro.serve.dashboard import AuditLog, DashboardState, \
    render_dashboard_html
from repro.serve.surfaces import DEFAULT_CACHE_MB, SurfaceTier

#: Histogram buckets for request-latency phases (seconds).
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

#: Trace spool flush period: finished traces batch on the loop for at
#: most this long before the writer thread persists them.
TRACE_FLUSH_S = 0.25


def _env_int(name, default):
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        raise ReproError(
            f"{name} must be an integer, got {value!r}"
        ) from None


def _env_float(name, default):
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return float(value)
    except ValueError:
        raise ReproError(
            f"{name} must be a number, got {value!r}"
        ) from None


@dataclass
class ServeConfig:
    """Server knobs (constructor args override the environment).

    Environment variables: ``REPRO_SERVE_WORKERS`` (pool size),
    ``REPRO_SERVE_QUEUE`` (admitted-but-not-running ceiling),
    ``REPRO_SERVE_QUOTA`` (per-tenant in-flight ceiling),
    ``REPRO_SERVE_CACHE_MB`` (surface-tier resident bytes),
    ``REPRO_SERVE_TRACE`` (trace every Nth request; 0 = off, per-request
    ``trace`` field overrides), ``REPRO_SERVE_TRACE_DIR`` (write each
    traced request's merged multi-process trace as
    ``trace-<trace_id>.jsonl`` under this directory),
    ``REPRO_SERVE_AUDIT`` / ``REPRO_SERVE_AUDIT_THRESHOLD_S`` /
    ``REPRO_SERVE_AUDIT_SAMPLE`` (slow-request JSONL audit log).
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = None
    queue_limit: int = None
    tenant_quota: int = None
    cache_mb: int = None
    profile: str = None
    ess_mode: str = None
    prior: str = None
    conformance: bool = False
    drain_timeout_s: float = 10.0
    trace_every: int = None
    trace_dir: str = None
    audit_path: str = None
    audit_threshold_s: float = None
    audit_every: int = None

    @classmethod
    def from_env(cls, **overrides):
        config = cls(**{k: v for k, v in overrides.items() if v is not None})
        if config.prior is None:
            raw = os.environ.get("REPRO_PRIOR", "").strip().lower()
            config = replace(config, prior=raw or "uniform")
        from repro.prior import PRIOR_KINDS

        if config.prior not in PRIOR_KINDS:
            raise ReproError(
                f"invalid serve prior {config.prior!r}; "
                f"choose from {', '.join(PRIOR_KINDS)}"
            )
        if config.workers is None:
            config = replace(config, workers=_env_int(
                "REPRO_SERVE_WORKERS", min(4, os.cpu_count() or 1) or 1))
        if config.queue_limit is None:
            config = replace(config, queue_limit=_env_int(
                "REPRO_SERVE_QUEUE", 64))
        if config.tenant_quota is None:
            config = replace(config, tenant_quota=_env_int(
                "REPRO_SERVE_QUOTA", 16))
        if config.cache_mb is None:
            config = replace(config, cache_mb=_env_int(
                "REPRO_SERVE_CACHE_MB", DEFAULT_CACHE_MB))
        if config.trace_every is None:
            config = replace(config, trace_every=_env_int(
                "REPRO_SERVE_TRACE", 0))
        if config.trace_dir is None:
            raw = os.environ.get("REPRO_SERVE_TRACE_DIR", "").strip()
            config = replace(config, trace_dir=raw or None)
        if config.audit_path is None:
            raw = os.environ.get("REPRO_SERVE_AUDIT", "").strip()
            config = replace(config, audit_path=raw or None)
        if config.audit_threshold_s is None:
            config = replace(config, audit_threshold_s=_env_float(
                "REPRO_SERVE_AUDIT_THRESHOLD_S", 1.0))
        if config.audit_every is None:
            config = replace(config, audit_every=_env_int(
                "REPRO_SERVE_AUDIT_SAMPLE", 0))
        if config.workers < 1:
            raise ReproError("serve workers must be >= 1")
        if config.queue_limit < 1 or config.tenant_quota < 1:
            raise ReproError("serve queue and quota must be >= 1")
        if config.trace_every < 0 or config.audit_every < 0:
            raise ReproError("serve trace/audit sampling must be >= 0")
        return config


class _RequestState:
    """Server-side bookkeeping for one admitted request."""

    __slots__ = ("slot", "cancelled", "cancel_event", "timer", "detached")

    def __init__(self, slot, cancel_event):
        self.slot = slot
        self.cancelled = False
        self.cancel_event = cancel_event
        self.timer = None
        # A dispatched pool future still running after a kill: it polls
        # the cancel slot, so the slot cannot be recycled before it ends.
        self.detached = None


class DiscoveryServer:
    """The long-running concurrent discovery service."""

    def __init__(self, config=None, **overrides):
        self.config = (config if config is not None
                       else ServeConfig.from_env(**overrides))
        self.tier = SurfaceTier(self.config.cache_mb * 1024 * 1024)
        self._server = None
        self._pool = None
        self._cancel_slots = None
        self._free_slots = []
        self._active = set()
        self._draining = False
        self._inflight = 0
        self._tenant_inflight = {}
        self._conn_tasks = set()
        self._started_at = None
        self._seq = 0
        self.dash = DashboardState()
        self.audit = (
            AuditLog(self.config.audit_path,
                     threshold_s=self.config.audit_threshold_s,
                     every=self.config.audit_every)
            if self.config.audit_path else None
        )
        self._trace_queue = None
        self._trace_writer = None
        self._trace_buffer = []
        self._trace_flusher = None

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self):
        """``(host, port)`` actually bound (port 0 resolves here)."""
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def start(self):
        num_slots = self.config.queue_limit + self.config.workers + 8
        self._cancel_slots = multiprocessing.Array(
            "b", num_slots, lock=False
        )
        self._free_slots = list(range(num_slots))
        self._pool = ProcessPoolExecutor(
            max_workers=self.config.workers,
            initializer=worker.init_worker,
            initargs=(self._cancel_slots,),
        )
        # Spin every worker up now: fork happens before the server gets
        # busy, and the first requests don't pay process start-up.
        loop = asyncio.get_running_loop()
        await asyncio.gather(*[
            loop.run_in_executor(self._pool, worker.warmup)
            for _ in range(self.config.workers)
        ])
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        self._started_at = time.time()
        REGISTRY.gauge("serve_workers", self.config.workers)
        self._publish_gauges()
        return self.address

    async def stop(self, drain=True):
        """Graceful drain: refuse new work, finish in-flight, clean up."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + (
            self.config.drain_timeout_s if drain else 0.0
        )
        while self._inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        if self._inflight:
            # Stragglers get a cooperative kill and a short grace.
            for state in list(self._active):
                self._kill(state)
            grace = time.monotonic() + 2.0
            while self._inflight and time.monotonic() < grace:
                await asyncio.sleep(0.02)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._trace_flusher is not None:
            self._trace_flusher.cancel()
            self._trace_flusher = None
        self._flush_traces()
        if self._trace_writer is not None:
            # Flush the spool: every accepted trace lands before stop()
            # returns.
            self._trace_queue.put(None)
            self._trace_writer.join(timeout=10.0)
            self._trace_writer = None
        self.tier.close()
        self._publish_gauges()

    # -- cancellation --------------------------------------------------

    def _alloc_state(self):
        if not self._free_slots:
            return None
        slot = self._free_slots.pop()
        self._cancel_slots[slot] = 0
        return _RequestState(slot, asyncio.Event())

    def _release_state(self, state):
        if state.timer is not None:
            state.timer.cancel()
        detached = state.detached
        if detached is not None and not detached.done():
            # A killed request's pool task is still running and polls
            # the cancel slot at its checkpoints.  Clearing the flag now
            # would let the task run to completion (the kill becomes a
            # no-op) and recycling the slot could kill an unrelated
            # request; both wait until the task actually finishes.
            detached.add_done_callback(
                lambda task: self._finish_release(state, task)
            )
            return
        self._finish_release(state, detached)

    def _finish_release(self, state, task=None):
        if task is not None and not task.cancelled():
            task.exception()  # detached result is dropped; consume errors
        self._cancel_slots[state.slot] = 0
        self._free_slots.append(state.slot)

    def _kill(self, state):
        if not state.cancelled:
            state.cancelled = True
            self._cancel_slots[state.slot] = 1
            state.cancel_event.set()
            REGISTRY.incr("serve_killed")

    async def _race_cancel(self, awaitable, state, holds_slot=False):
        """Await ``awaitable`` unless the request gets killed first.

        Returns ``(done, value)``; on a kill the awaitable keeps
        running detached (single-flight builds and already-dispatched
        pool tasks must complete for their other consumers).  Pass
        ``holds_slot=True`` when the awaitable polls the request's
        cancel slot: the slot is then pinned until the detached task
        completes (see :meth:`_release_state`).
        """
        wait_task = asyncio.ensure_future(awaitable)
        cancel_task = asyncio.ensure_future(state.cancel_event.wait())
        try:
            await asyncio.wait(
                {wait_task, cancel_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            cancel_task.cancel()
        if wait_task.done():
            return True, wait_task.result()
        if holds_slot:
            state.detached = wait_task
        return False, None

    # -- admission -----------------------------------------------------

    def _admission_error(self, request):
        if self._draining:
            return 503, "draining"
        if self._inflight >= self.config.queue_limit + self.config.workers:
            return 429, "queue_full"
        tenant_count = self._tenant_inflight.get(request.tenant, 0)
        if tenant_count >= self.config.tenant_quota:
            return 429, "tenant_quota"
        return None

    def _publish_gauges(self):
        REGISTRY.gauge("serve_inflight", self._inflight)
        REGISTRY.gauge(
            "serve_queue_depth",
            max(0, self._inflight - self.config.workers),
        )
        REGISTRY.gauge("serve_draining", 1.0 if self._draining else 0.0)

    # -- request handling ----------------------------------------------

    async def _handle_conn(self, reader, writer):
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    message = await protocol.read_http_message(reader)
                except protocol.ProtocolError as exc:
                    writer.write(protocol.json_payload(
                        400, {"outcome": "invalid", "error": str(exc)},
                        close=True,
                    ))
                    await writer.drain()
                    break
                if message is None:
                    break
                start_line, headers, body = message
                status, payload_bytes = await self._route(
                    start_line, headers, body
                )
                writer.write(payload_bytes)
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            self._conn_tasks.discard(task)
            try:
                writer.close()
            except Exception:
                pass

    async def _route(self, start_line, headers, body):
        parts = start_line.split(" ")
        if len(parts) < 3:
            return 400, protocol.json_payload(
                400, {"outcome": "invalid", "error": "malformed request"}
            )
        method, path = parts[0], parts[1]
        path, _, query_string = path.partition("?")
        if method == "GET" and path == "/metrics":
            self._publish_gauges()
            # Exemplars are opt-in (?exemplars=1): the suffix is
            # OpenMetrics syntax, and strict 0.0.4 consumers (including
            # our own loadgen scraper) split sample lines on the last
            # space.
            text = prometheus_text(
                REGISTRY, exemplars="exemplars=1" in query_string
            )
            return 200, protocol.http_payload(
                200, text.encode("utf-8"),
                content_type="text/plain; version=0.0.4",
            )
        if method == "GET" and path == "/dashboard":
            html = render_dashboard_html(self.dash, REGISTRY, self.health())
            return 200, protocol.http_payload(
                200, html.encode("utf-8"),
                content_type="text/html; charset=utf-8",
            )
        if method == "GET" and path == "/healthz":
            return 200, protocol.json_payload(200, self.health())
        if method == "POST" and path == "/v1/discover":
            try:
                decoded = protocol.json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                return 400, protocol.json_payload(
                    400, {"outcome": "invalid",
                          "error": f"bad JSON body: {exc}"},
                )
            status, obj = await self.discover(decoded)
            return status, protocol.json_payload(status, obj)
        return 404, protocol.json_payload(
            404, {"outcome": "invalid", "error": f"no route {method} {path}"}
        )

    def health(self):
        return {
            "status": "draining" if self._draining else "ok",
            "inflight": self._inflight,
            "queue_depth": max(0, self._inflight - self.config.workers),
            "workers": self.config.workers,
            "uptime_s": (0.0 if self._started_at is None
                         else time.time() - self._started_at),
            "surfaces": self.tier.stats(),
        }

    def _should_trace(self, request):
        """Per-request tracing decision: explicit field beats sampling."""
        if request.trace is not None:
            return request.trace
        every = self.config.trace_every
        return every > 0 and self._seq % every == 0

    async def discover(self, payload):
        """One ``/v1/discover`` request: ``(http_status, response_obj)``."""
        received = time.time()
        self._seq += 1
        try:
            request = protocol.parse_discover(payload)
        except protocol.ProtocolError as exc:
            REGISTRY.incr("serve_requests",
                          labels={"outcome": "invalid"})
            self.dash.record(outcome="invalid", total_s=0.0)
            return 400, {"outcome": "invalid", "error": str(exc)}
        rejection = self._admission_error(request)
        if rejection is not None:
            status, reason = rejection
            REGISTRY.incr("serve_rejected", labels={"reason": reason})
            REGISTRY.incr("serve_requests",
                          labels={"outcome": "rejected"})
            self.dash.record(outcome="rejected", reason=reason,
                             query=request.query, tenant=request.tenant,
                             total_s=0.0, inflight=self._inflight)
            return status, {
                "outcome": "rejected", "reason": reason,
                "query": request.query, "tenant": request.tenant,
            }
        state = self._alloc_state()
        if state is None:  # exhausted slots (admission should prevent it)
            REGISTRY.incr("serve_rejected", labels={"reason": "queue_full"})
            return 429, {"outcome": "rejected", "reason": "queue_full"}
        self._inflight += 1
        self._active.add(state)
        self._tenant_inflight[request.tenant] = (
            self._tenant_inflight.get(request.tenant, 0) + 1
        )
        self._publish_gauges()
        if request.budget_s is not None:
            state.timer = asyncio.get_running_loop().call_later(
                request.budget_s, self._kill, state
            )
        tracer = None
        if self._should_trace(request):
            # Per-request tracer, never installed globally: span stacks
            # are per-tracer thread-locals, so concurrent coroutines on
            # the event loop each nest only their own request's spans.
            tracer = Tracer()
            REGISTRY.incr("serve_traced")
        try:
            if tracer is not None:
                with tracer.span("serve.request", pid=os.getpid(),
                                 query=request.query,
                                 algorithm=request.algorithm,
                                 kind=request.kind, tenant=request.tenant):
                    status, response = await self._admitted(
                        request, state, received, tracer=tracer
                    )
            else:
                status, response = await self._admitted(
                    request, state, received
                )
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            REGISTRY.incr("serve_requests", labels={"outcome": "error"})
            status, response = 500, {
                "outcome": "error",
                "error": f"{type(exc).__name__}: {exc}",
            }
        finally:
            self._inflight -= 1
            self._active.discard(state)
            remaining = self._tenant_inflight.get(request.tenant, 1) - 1
            if remaining <= 0:
                self._tenant_inflight.pop(request.tenant, None)
            else:
                self._tenant_inflight[request.tenant] = remaining
            self._release_state(state)
            self._publish_gauges()
        total_s = time.time() - received
        response.setdefault("timings", {})["total_s"] = total_s
        outcome = response.get("outcome", "error")
        REGISTRY.incr("serve_requests", labels={"outcome": outcome})
        REGISTRY.incr("serve_requests_by_algorithm",
                      labels={"algorithm": request.algorithm,
                              "kind": request.kind})
        REGISTRY.incr("serve_tenant_requests",
                      labels={"tenant": request.tenant})
        exemplar = {"trace_id": tracer.trace_id} if tracer else None
        REGISTRY.observe("serve_latency_seconds", total_s,
                         labels={"phase": "total"},
                         buckets=LATENCY_BUCKETS, exemplar=exemplar)
        if tracer is not None:
            response["trace_id"] = tracer.trace_id
            if self.config.trace_dir:
                self._spool_trace(tracer)
        await self._observe_request(request, response, outcome, total_s,
                                    tracer)
        return status, response

    def _spool_trace(self, tracer):
        """Buffer one finished trace for the spool writer.

        The request path pays one ``list.append``.  Anything heavier
        here is amplified by the whole inflight window: writing the
        file inline stalls the loop for every queued response, and even
        a bare ``queue.Queue.put`` per trace costs ~0.25 ms in writer
        thread wake-up / GIL hand-off — at concurrency 12 that alone
        shows up as several ms of p50.  A periodic flusher hands the
        accumulated batch to a single daemon writer thread, so the
        per-trace cost on the loop is microseconds and the thread wakes
        once per flush interval, not once per request.  The per-request
        tracer is complete and immutable by now.
        """
        self._trace_buffer.append(tracer)
        if self._trace_flusher is None:
            self._trace_flusher = asyncio.get_running_loop().create_task(
                self._flush_traces_forever()
            )

    async def _flush_traces_forever(self):
        while True:
            await asyncio.sleep(TRACE_FLUSH_S)
            self._flush_traces()

    def _flush_traces(self):
        """Hand the buffered batch to the writer thread (lazy start)."""
        if not self._trace_buffer:
            return
        if self._trace_writer is None:
            import queue

            self._trace_queue = queue.Queue()
            self._trace_writer = threading.Thread(
                target=self._drain_traces, daemon=True,
                name="repro-trace-spool",
            )
            self._trace_writer.start()
        batch, self._trace_buffer = self._trace_buffer, []
        self._trace_queue.put(batch)

    def _drain_traces(self):
        """Spool-writer thread body: write batches until the sentinel."""
        while True:
            batch = self._trace_queue.get()
            if batch is None:
                return
            for tracer in batch:
                path = os.path.join(self.config.trace_dir,
                                    f"trace-{tracer.trace_id}.jsonl")
                try:
                    write_trace_jsonl(tracer, path)
                except OSError:
                    REGISTRY.incr("serve_trace_write_errors")

    async def _observe_request(self, request, response, outcome, total_s,
                               tracer):
        """Feed the dashboard ring and the audit log (request tail)."""
        timings = response.get("timings", {})
        conformance = response.get("conformance") or {}
        event = {
            "query": request.query,
            "algorithm": request.algorithm,
            "kind": request.kind,
            "tenant": request.tenant,
            "outcome": outcome,
            "total_s": total_s,
            "build_s": timings.get("build_s", 0.0),
            "queue_s": timings.get("queue_s", 0.0),
            "run_s": timings.get("run_s", 0.0),
            "source": response.get("surface", {}).get("source"),
            "violations": conformance.get("num_violations", 0),
            "inflight": self._inflight,
            "trace_id": tracer.trace_id if tracer else None,
        }
        self.dash.record(**event)
        if self.audit is not None:
            written = await asyncio.get_running_loop().run_in_executor(
                None, self.audit.maybe_record, event
            )
            if written:
                REGISTRY.incr("serve_audited")

    async def _admitted(self, request, state, received, tracer=None):
        """The post-admission pipeline: surface, dispatch, classify."""

        def _span(name, **attrs):
            return (tracer.span(name, **attrs) if tracer is not None
                    else NOOP_SPAN)

        loop = asyncio.get_running_loop()
        ess_mode = self._resolve_ess_mode(request)
        prior = request.prior or self.config.prior or "uniform"
        base = {
            "query": request.query, "algorithm": request.algorithm,
            "kind": request.kind, "tenant": request.tenant,
            "ess_mode": ess_mode, "prior": prior,
        }
        try:
            fingerprint, num_points = await loop.run_in_executor(
                None, self._surface_fingerprint, request
            )
        except QueryError as exc:
            return 400, dict(base, outcome="invalid", error=str(exc))
        base["surface"] = {"fingerprint": fingerprint, "mode": ess_mode,
                           "num_points": num_points, "source": "none"}

        offer = None
        build_s = 0.0
        if ess_mode == "eager":
            build_start = time.time()
            try:
                with _span("serve.build", fingerprint=fingerprint):
                    done, acquired = await self._race_cancel(
                        self.tier.acquire(
                            fingerprint,
                            lambda: self._build_surface(request, tracer),
                        ),
                        state,
                    )
            except Exception as exc:  # build failed for the whole flight
                return 500, dict(
                    base, outcome="error",
                    error=f"surface build failed: {exc}",
                )
            build_s = time.time() - build_start
            REGISTRY.observe("serve_latency_seconds", build_s,
                             labels={"phase": "build"},
                             buckets=LATENCY_BUCKETS)
            if not done:
                return 200, dict(base, outcome="killed",
                                 timings={"build_s": build_s})
            offer, source = acquired
            base["surface"]["source"] = source
        if state.cancelled:
            return 200, dict(base, outcome="killed",
                             timings={"build_s": build_s})

        spec = {
            "query": request.query,
            "algorithm": request.algorithm,
            "kind": request.kind,
            "qa": list(request.qa) if request.qa else None,
            "engine": request.engine,
            "profile": self.config.profile,
            "resolution": request.resolution,
            "ess_mode": ess_mode,
            "prior": prior,
            "sleep_s": request.sleep_s,
            "cancel_slot": state.slot,
            "offer": offer,
            "conformance": (self.config.conformance
                            if request.conformance is None
                            else request.conformance),
        }
        dispatched = time.time()
        with _span("serve.dispatch") as dispatch_span:
            if tracer is not None:
                # Captured inside the dispatch span: the worker's child
                # tracer parents its spans onto it, so the merged tree
                # reads front-end -> dispatch -> worker.
                spec["trace"] = tracer.context().to_wire()
            done, result = await self._race_cancel(
                loop.run_in_executor(self._pool, worker.run_discovery,
                                     spec),
                state, holds_slot=True,
            )
            if done and tracer is not None:
                adopted = tracer.splice(result.get("spans"))
                dispatch_span.set_attr("worker_spans", adopted)
        if not done:
            # The pool task keeps running until its next checkpoint; the
            # response does not wait for it.
            return 200, dict(
                base, outcome="killed",
                timings={"build_s": build_s,
                         "queue_s": dispatched - received},
            )
        if result.get("metrics"):
            REGISTRY.merge(result["metrics"])
        queue_s = max(0.0, result.get("started_at", dispatched) - dispatched)
        run_s = result.get("run_s", 0.0)
        REGISTRY.observe("serve_latency_seconds", queue_s,
                         labels={"phase": "queue"}, buckets=LATENCY_BUCKETS)
        REGISTRY.observe("serve_latency_seconds", run_s,
                         labels={"phase": "run"}, buckets=LATENCY_BUCKETS)
        timings = {
            "build_s": build_s, "queue_s": queue_s,
            "load_s": result.get("load_s", 0.0), "run_s": run_s,
        }
        outcome = result.get("outcome", "error")
        response = dict(base, outcome=outcome, timings=timings,
                        worker_pid=result.get("pid"))
        if outcome == "ok":
            response["result"] = result["result"]
            if "conformance" in result:
                response["conformance"] = result["conformance"]
                REGISTRY.incr(
                    "serve_conformance_violations",
                    result["conformance"]["num_violations"],
                )
            return 200, response
        if outcome == "killed":
            return 200, response
        response["error"] = result.get("error", "unknown worker failure")
        return (400 if outcome == "invalid" else 500), response

    # -- surface plumbing ----------------------------------------------

    def _resolve_ess_mode(self, request):
        from repro.ess.lazy import resolve_ess_mode

        return resolve_ess_mode(request.ess_mode or self.config.ess_mode)

    def _surface_fingerprint(self, request):
        """Content fingerprint of the request's surface (thread pool).

        Cheap (query parse + grid metadata), but it touches the catalog
        so it stays off the event loop.
        """
        import hashlib
        import json

        from repro.bench import workloads

        disk_key, num_points = workloads.surface_key(
            request.query, profile=self.config.profile,
            resolution=request.resolution,
        )
        digest = hashlib.sha256(
            json.dumps(disk_key, sort_keys=True).encode("ascii")
        ).hexdigest()[:16]
        return f"{request.query}-{digest}", num_points

    async def _build_surface(self, request, tracer=None):
        """Single-flight leader body: build in the pool, adopt the offer.

        The build's worker spans land in the *leader's* trace (coalesced
        waiters share the surface, not the spans — the build belongs to
        the request that triggered it).
        """
        loop = asyncio.get_running_loop()
        spec = {
            "query": request.query,
            "profile": self.config.profile,
            "resolution": request.resolution,
            "cancel_slot": None,  # shared builds outlive any one request
        }
        if tracer is not None:
            spec["trace"] = tracer.context().to_wire()
        result = await loop.run_in_executor(
            self._pool, worker.build_surface, spec
        )
        if tracer is not None:
            tracer.splice(result.get("spans"))
        if result.get("metrics"):
            REGISTRY.merge(result["metrics"])
        if result["outcome"] != "ok":
            raise ReproError(
                result.get("error", f"build {result['outcome']}")
            )
        offer = result.get("offer")
        nbytes = 0 if offer is None else offer.get("nbytes", 0)
        return offer, nbytes, result.get("num_points", 0)


async def serve_forever(config):
    """Run a server until SIGINT/SIGTERM, then drain (CLI entry)."""
    import signal

    server = DiscoveryServer(config)
    host, port = await server.start()
    print(f"repro serve listening on http://{host}:{port} "
          f"({config.workers} workers, queue {config.queue_limit}, "
          f"tenant quota {config.tenant_quota})", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    print("draining...", flush=True)
    await server.stop(drain=True)
    print("stopped", flush=True)
    return 0
