"""The concurrent in-memory ESS surface tier.

Layered over the persistent archive cache (:mod:`repro.perf.cache`),
this is the shared, contended resource at the heart of the discovery
server: eager surfaces live in ``multiprocessing.shared_memory``
segments owned by the *server* process, keyed by the same content
fingerprint as the disk archive (:func:`repro.bench.workloads.
surface_key`), and handed to pool workers zero-copy through the
:mod:`repro.perf.shm` offer registry.

Guarantees:

* **single-flight** — N simultaneous requests for the same fingerprint
  pay exactly one ESS build: the first requester becomes the *leader*
  and launches the build task, every later one awaits the same future
  (``serve_surface_coalesced_total`` counts them).  The build runs as
  an independent asyncio task, so a leader killed by its budget does
  not abort the build the coalesced waiters depend on.
* **bounded** — entries are evicted LRU by resident segment bytes
  (``REPRO_SERVE_CACHE_MB``).  Eviction unlinks the segments; workers
  holding live attachments are untouched (POSIX shm semantics), and
  workers that attach too late fall through to the disk archive.
* **degrading, never breaking** — a build whose shared-memory export
  fails still resolves (offer ``None``); requests proceed and workers
  load from the disk archive instead.  A build that fails outright is
  forgotten, so the next request retries rather than caching the error.

All tier state is touched only from the server's event loop, so no
locks are needed here; the thread-safety burden sits in
:class:`~repro.obs.metrics.MetricsRegistry` (worker summaries merge on
executor threads) and :mod:`repro.perf.cache`.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict

from repro.obs.metrics import REGISTRY
from repro.perf import shm

#: Default resident-bytes budget for the tier (``REPRO_SERVE_CACHE_MB``).
DEFAULT_CACHE_MB = 256


class _Entry:
    __slots__ = ("future", "offer", "nbytes", "num_points")

    def __init__(self, future):
        self.future = future
        self.offer = None
        self.nbytes = 0
        self.num_points = 0


class SurfaceTier:
    """Single-flight, byte-bounded LRU cache of shared ESS surfaces."""

    def __init__(self, limit_bytes=DEFAULT_CACHE_MB * 1024 * 1024):
        self.limit_bytes = int(limit_bytes)
        self._entries = OrderedDict()
        self._resident = 0
        self._closed = False

    # -- introspection -------------------------------------------------

    @property
    def resident_bytes(self):
        return self._resident

    def stats(self):
        ready = sum(1 for e in self._entries.values() if e.future.done())
        return {
            "entries": len(self._entries),
            "ready": ready,
            "building": len(self._entries) - ready,
            "resident_bytes": self._resident,
            "limit_bytes": self.limit_bytes,
        }

    def _publish_gauges(self):
        REGISTRY.gauge("serve_cache_resident_bytes", self._resident)
        REGISTRY.gauge("serve_cache_entries", len(self._entries))

    # -- the single-flight path ----------------------------------------

    async def acquire(self, fingerprint, builder):
        """The offer for ``fingerprint``, building at most once.

        ``builder`` is a zero-argument coroutine function returning
        ``(offer_or_None, nbytes, num_points)``; it runs in its own
        task so requester cancellation never aborts a shared build.

        Returns ``(offer_or_None, source)`` where source is ``hit``,
        ``coalesced`` or ``built``.  A failed build raises to the
        caller *after* the tier forgot the entry (next request retries).
        """
        if self._closed:
            raise RuntimeError("surface tier is closed")
        entry = self._entries.get(fingerprint)
        if entry is not None:
            if entry.future.done() and entry.future.exception() is None:
                self._entries.move_to_end(fingerprint)
                REGISTRY.incr("serve_surface_hits")
                return entry.offer, "hit"
            REGISTRY.incr("serve_surface_coalesced")
            return await asyncio.shield(entry.future), "coalesced"
        loop = asyncio.get_running_loop()
        entry = _Entry(loop.create_future())
        self._entries[fingerprint] = entry
        REGISTRY.incr("serve_surface_builds")
        loop.create_task(self._build(fingerprint, entry, builder))
        return await asyncio.shield(entry.future), "built"

    async def _build(self, fingerprint, entry, builder):
        try:
            offer, nbytes, num_points = await builder()
        except BaseException as exc:
            # Forget the entry first so a retry can start immediately,
            # then wake every waiter with the failure.
            self._entries.pop(fingerprint, None)
            REGISTRY.incr("serve_surface_build_failures")
            if not entry.future.done():
                entry.future.set_exception(exc)
                # The leader and all coalesced waiters await through
                # shield(); if every one of them was killed first, the
                # exception would otherwise be logged as unretrieved.
                entry.future.exception()
            return
        if self._closed or self._entries.get(fingerprint) is not entry:
            # close() (or an invalidate) ran while the build was in
            # flight: nothing references this entry any more, so unlink
            # the segments here or they leak until reboot.  Waiters (all
            # moot by now) resolve with no offer and fall back to disk.
            if offer is not None:
                shm.unlink_offer(offer)
            if not entry.future.done():
                entry.future.set_result(None)
            return
        entry.offer = offer
        entry.nbytes = int(nbytes or 0)
        entry.num_points = int(num_points or 0)
        self._resident += entry.nbytes
        if not entry.future.done():
            entry.future.set_result(offer)
        self._evict(keep=fingerprint)
        self._publish_gauges()

    # -- eviction and shutdown -----------------------------------------

    def _evict(self, keep=None):
        """Unlink least-recently-used ready entries over the budget.

        The entry named by ``keep`` survives even when it alone exceeds
        the budget — evicting the surface a request is about to use
        would turn every oversized workload into a permanent miss.
        """
        while self._resident > self.limit_bytes:
            victim = None
            for fp, entry in self._entries.items():
                if fp != keep and entry.future.done() \
                        and entry.future.exception() is None:
                    victim = fp
                    break
            if victim is None:
                return
            self._drop(victim)

    def _drop(self, fingerprint):
        entry = self._entries.pop(fingerprint)
        self._resident -= entry.nbytes
        if entry.offer is not None:
            shm.unlink_offer(entry.offer)
        REGISTRY.incr("serve_surface_evictions")
        self._publish_gauges()

    def invalidate(self, fingerprint):
        """Drop one ready entry (tests and cache-poisoning drills)."""
        entry = self._entries.get(fingerprint)
        if entry is not None and entry.future.done():
            self._drop(fingerprint)

    def close(self):
        """Unlink every ready surface; in-flight builds resolve moot."""
        self._closed = True
        for fp in [fp for fp, e in self._entries.items()
                   if e.future.done() and e.future.exception() is None]:
            self._drop(fp)
        self._entries.clear()
        self._resident = 0
        self._publish_gauges()
