"""Process-pool back-end of the discovery server.

Every function here executes inside a ``ProcessPoolExecutor`` worker.
Tasks arrive as plain dict *specs* and return plain dict *payloads*
(picklable both ways, JSON-shaped so the server can forward results
verbatim), and every task ships the worker's metrics summary home for
the server to merge — the same worker-to-parent pattern the parallel
sweep engine uses, so nothing a worker measures is dropped.

Cancellation is cooperative: the server allocates each request a slot
in a fork-inherited ``multiprocessing`` byte array and flips it on
budget expiry (or drain); workers poll the slot at phase boundaries
(task start, after workload load, every ~10 ms of synthetic service
time) and answer ``outcome: killed`` instead of finishing.  The
existing discovery substrate (:mod:`repro.core`, :mod:`repro.engine`)
runs unchanged in between checkpoints.

The zero-copy hand-off: a ``build`` task constructs the eager surface
(through the persistent archive cache) and exports it via
:func:`repro.perf.shm.export_for_transfer`; later ``discover`` tasks
receive the offer in their spec, adopt it with
:func:`repro.perf.shm.register_offer`, and their ``workloads.load``
attaches over shared memory instead of re-reading or rebuilding.
"""

from __future__ import annotations

import hashlib
import os
import time

import numpy as np

from repro.bench import workloads
from repro.core.aligned_bound import AlignedBound
from repro.core.mso import evaluate_algorithm
from repro.core.native import NativeOptimizer
from repro.core.plan_bouquet import PlanBouquet
from repro.core.spill_bound import SpillBound
from repro.errors import ReproError
from repro.obs import trace as tracing
from repro.perf import shm
from repro.perf.timers import TIMERS

#: Worker-side workload memo bound: above this many cached instances
#: the registry is dropped wholesale, keeping long-lived workers from
#: accumulating every surface they ever touched.
MEMO_LIMIT = int(os.environ.get("REPRO_SERVE_WORKER_MEMO", "32"))

#: Poll interval of the cooperative-cancellation checkpoints inside
#: synthetic service time.
_CANCEL_POLL_S = 0.01

_CANCEL = None


class CancelledByServer(Exception):
    """The server flipped this task's cancel slot (budget kill/drain)."""


def init_worker(cancel_slots):
    """Pool initializer: adopt the server's shared cancel-slot array."""
    global _CANCEL
    _CANCEL = cancel_slots


def _checkpoint(slot):
    if _CANCEL is not None and slot is not None and _CANCEL[slot]:
        raise CancelledByServer()


def _cooperative_sleep(seconds, slot):
    """Synthetic service time that still honours cancellation."""
    deadline = time.monotonic() + seconds
    while True:
        _checkpoint(slot)
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return
        time.sleep(min(_CANCEL_POLL_S, remaining))


def _bound_memo():
    if len(workloads._CACHE) > MEMO_LIMIT:
        workloads.clear_cache()


def _make_algorithm(name, instance, prior_kind=None):
    if name == "native":
        return NativeOptimizer(instance.ess)
    from repro.prior import make_prior

    prior = make_prior(prior_kind or "uniform", instance.query,
                       instance.ess)
    if name == "pb":
        return PlanBouquet(instance.ess, instance.contours, prior=prior)
    if name == "sb":
        return SpillBound(instance.ess, instance.contours, prior=prior)
    return AlignedBound(instance.ess, instance.contours, prior=prior)


def _record_history(instance, result):
    """Persist a completed discovery's actual selectivities.

    The serving tier always records — repeated tenant workloads are
    exactly where the :class:`~repro.prior.HistoryPrior` pays off.
    Best-effort: a read-only store never fails the request.
    """
    from repro.prior import HistoryStore, history_key

    grid = instance.ess.grid
    try:
        HistoryStore().record(
            history_key(instance.query, instance.ess),
            grid.selectivities_of(grid.flat_index(result.qa_coords)),
        )
    except (OSError, ReproError):
        pass


def _load(spec):
    _bound_memo()
    return workloads.load(
        spec["query"],
        profile=spec.get("profile"),
        resolution=spec.get("resolution"),
        ess_mode=spec.get("ess_mode"),
    )


def _adopt_trace(spec):
    """Join the request's trace, if the spec carries a TraceContext.

    Installs a child tracer as this worker process's global tracer for
    the duration of one task (pool workers run tasks one at a time, so
    the install/uninstall pair cannot interleave) and returns
    ``(tracer, previous)`` for :func:`_ship_trace` to undo.
    """
    tracer = tracing.child_tracer(spec.get("trace"))
    if tracer is None:
        return None, None
    return tracer, tracing.install_tracer(tracer)


def _ship_trace(out, tracer, previous):
    """Uninstall the task's child tracer and attach its finished spans
    to the result payload (the worker-to-parent shipping lane — same
    pattern as the TIMERS summary riding in ``out["metrics"]``)."""
    if tracer is None:
        return
    tracing.install_tracer(previous)
    out["spans"] = [s.to_record() for s in tracer.spans]
    if tracer.dropped:
        out["spans_dropped"] = tracer.dropped


# ----------------------------------------------------------------------
# Tasks
# ----------------------------------------------------------------------


def warmup():
    """Force a pool worker to exist (spawns happen lazily otherwise)."""
    return os.getpid()


def build_surface(spec):
    """Build (or archive-load) an eager ESS and export it for transfer.

    The single-flight leader's task.  ``offer`` is None when shared
    memory is unavailable — the surface still landed in the persistent
    archive, so discover tasks fall back to a disk load, not a rebuild.
    """
    TIMERS.reset()
    tracer, previous = _adopt_trace(spec)
    out = {"task": "build", "outcome": "ok", "started_at": time.time(),
           "pid": os.getpid()}
    try:
        with tracing.span("serve.worker.build", pid=os.getpid(),
                          query=spec.get("query", "")):
            _checkpoint(spec.get("cancel_slot"))
            instance = _load(dict(spec, ess_mode="eager"))
            out["num_points"] = int(instance.ess.grid.num_points)
            out["offer"] = shm.export_for_transfer(
                instance.ess.provenance["disk_key"], instance.ess
            )
    except CancelledByServer:
        out["outcome"] = "killed"
    except ReproError as exc:
        out["outcome"] = "invalid"
        out["error"] = str(exc)
    except Exception as exc:  # noqa: BLE001 - must cross the pipe
        out["outcome"] = "error"
        out["error"] = f"{type(exc).__name__}: {exc}"
    _ship_trace(out, tracer, previous)
    out["metrics"] = TIMERS.summary()
    out["finished_at"] = time.time()
    return out


def run_discovery(spec):
    """One served discovery request: scalar run or exhaustive sweep."""
    TIMERS.reset()
    tracer, previous = _adopt_trace(spec)
    slot = spec.get("cancel_slot")
    out = {"task": spec.get("kind", "run"), "outcome": "ok",
           "started_at": time.time(), "pid": os.getpid()}
    try:
        with tracing.span("serve.worker.discover", pid=os.getpid(),
                          query=spec.get("query", ""),
                          kind=spec.get("kind", "run"),
                          algorithm=spec.get("algorithm", "sb")):
            _checkpoint(slot)
            offer = spec.get("offer")
            if offer is not None:
                shm.register_offer(offer)
            load_start = time.time()
            with tracing.span("worker.load", query=spec.get("query", "")):
                instance = _load(spec)
            out["load_s"] = time.time() - load_start
            _checkpoint(slot)
            if spec.get("sleep_s"):
                _cooperative_sleep(float(spec["sleep_s"]), slot)
            algorithm = _make_algorithm(spec.get("algorithm", "sb"),
                                        instance,
                                        prior_kind=spec.get("prior"))
            run_start = time.time()
            if spec.get("conformance"):
                from repro.conformance.monitors import monitoring

                with monitoring() as monitor:
                    out["result"] = _execute(spec, instance, algorithm)
                    if spec.get("kind", "run") == "run" \
                            and spec.get("algorithm", "sb") != "native":
                        monitor.check_run(out["result"]["_raw"], algorithm,
                                          engine="serve")
                    out["conformance"] = {
                        "checks": dict(monitor.counters),
                        "violations": [
                            {"invariant": v.invariant, "message": v.message}
                            for v in monitor.violations[:10]
                        ],
                        "num_violations": len(monitor.violations),
                    }
            else:
                out["result"] = _execute(spec, instance, algorithm)
            raw = out["result"].pop("_raw", None)
            if raw is not None and spec.get("algorithm", "sb") != "native":
                _record_history(instance, raw)
            out["run_s"] = time.time() - run_start
    except CancelledByServer:
        out["outcome"] = "killed"
        out.pop("result", None)
    except ReproError as exc:
        out["outcome"] = "invalid"
        out["error"] = str(exc)
        out.pop("result", None)
    except Exception as exc:  # noqa: BLE001 - must cross the pipe
        out["outcome"] = "error"
        out["error"] = f"{type(exc).__name__}: {exc}"
        out.pop("result", None)
    _ship_trace(out, tracer, previous)
    out["metrics"] = TIMERS.summary()
    out["finished_at"] = time.time()
    return out


def _execute(spec, instance, algorithm):
    if spec.get("kind", "run") == "evaluate":
        with tracing.span("worker.evaluate",
                          engine=spec.get("engine", "auto")):
            evaluation = evaluate_algorithm(
                algorithm, engine=spec.get("engine", "auto")
            )
        sub = np.ascontiguousarray(evaluation.suboptimality)
        return {
            "mso": float(evaluation.mso),
            "aso": float(evaluation.aso),
            "worst_location": int(evaluation.worst_location),
            "num_points": int(sub.size),
            "subopt_sha256": hashlib.sha256(sub.tobytes()).hexdigest(),
        }
    qa = spec.get("qa")
    qa = tuple(qa) if qa else instance.query.true_location()
    with tracing.span("worker.run", algorithm=spec.get("algorithm", "sb")):
        result = algorithm.run(qa, trace=True)
    executions = []
    for rec in result.executions or ():
        executions.append({
            "contour": int(rec.contour),
            "plan_key": rec.plan_key,
            "mode": rec.mode,
            "spill_dim": (None if rec.spill_dim is None
                          else int(rec.spill_dim)),
            "budget": float(rec.budget),
            "charged": float(rec.charged),
            "completed": bool(rec.completed),
            "learned_selectivity": float(rec.learned_selectivity),
            "fresh": bool(rec.fresh),
            "penalty": float(rec.penalty),
        })
    return {
        "qa": [float(v) for v in qa],
        "qa_coords": [int(c) for c in result.qa_coords],
        "total_cost": float(result.total_cost),
        "optimal_cost": float(result.optimal_cost),
        "suboptimality": float(result.suboptimality),
        "num_executions": int(result.num_executions),
        "num_repeat_executions": int(result.num_repeat_executions),
        "contours_visited": int(result.contours_visited),
        "completed_plan_key": result.completed_plan_key,
        "max_penalty": float(result.max_penalty),
        "executions": executions,
        "_raw": result,
    }
