"""Shared fixtures: small schemas, queries, and built ESS instances.

ESS construction is the expensive step, so anything reusable is
session-scoped.  Tests that need mutation build their own copies.
"""

from __future__ import annotations

import os

import pytest

# Keep workload-registry resolution small for everything test-shaped.
os.environ.setdefault("REPRO_PROFILE", "smoke")

from repro import (  # noqa: E402  (env var must precede import)
    AlignedBound,
    Column,
    ContourSet,
    ESS,
    ESSGrid,
    ForeignKey,
    PlanBouquet,
    Schema,
    SPJQuery,
    SpillBound,
    Table,
    filter_pred,
    fk_column,
    join,
    key_column,
)


def make_toy_schema():
    """Three-table chain schema (part - lineitem - orders)."""
    return Schema("toy", tables=[
        Table("part", 2_000_000, [
            key_column("p_partkey", 2_000_000),
            Column("p_retailprice", ndv=30_000, indexed=True),
        ]),
        Table("lineitem", 60_000_000, [
            fk_column("l_partkey", 2_000_000, indexed=True),
            fk_column("l_orderkey", 15_000_000, indexed=True),
        ]),
        Table("orders", 15_000_000, [
            key_column("o_orderkey", 15_000_000),
        ]),
    ], foreign_keys=[
        ForeignKey("lineitem", "l_partkey", "part", "p_partkey"),
        ForeignKey("lineitem", "l_orderkey", "orders", "o_orderkey"),
    ])


def make_toy_query(schema=None):
    """The paper's Figure 1 example query with two epps."""
    schema = schema or make_toy_schema()
    return SPJQuery("EQ", schema, ["part", "lineitem", "orders"], joins=[
        join("part", "p_partkey", "lineitem", "l_partkey",
             selectivity=2e-5, error_prone=True),
        join("orders", "o_orderkey", "lineitem", "l_orderkey",
             selectivity=3e-4, error_prone=True),
    ], filters=[
        filter_pred("part", "p_retailprice", "<", 1000, selectivity=0.05),
    ])


def make_star_query(num_epps=3):
    """A small star query with a configurable number of epp joins."""
    dims = [
        Table(f"dim{i}", 10_000 * (i + 1), [
            key_column(f"d{i}_id", 10_000 * (i + 1)),
            Column(f"d{i}_attr", ndv=50),
        ])
        for i in range(num_epps)
    ]
    fact_cols = [fk_column(f"f_d{i}", 10_000 * (i + 1), indexed=True)
                 for i in range(num_epps)]
    schema = Schema("star", tables=dims + [
        Table("fact", 5_000_000, fact_cols + [Column("f_val", ndv=100)]),
    ])
    joins = [
        join("fact", f"f_d{i}", f"dim{i}", f"d{i}_id",
             selectivity=10.0 ** -(3 + i % 2), error_prone=True,
             name=f"j:f-d{i}")
        for i in range(num_epps)
    ]
    return SPJQuery(f"star{num_epps}", schema,
                    ["fact"] + [f"dim{i}" for i in range(num_epps)],
                    joins=joins,
                    filters=[filter_pred("dim0", "d0_attr", "=", 7,
                                         selectivity=0.02)])


@pytest.fixture(scope="session")
def toy_schema():
    return make_toy_schema()


@pytest.fixture(scope="session")
def toy_query(toy_schema):
    return make_toy_query(toy_schema)


@pytest.fixture(scope="session")
def toy_ess(toy_query):
    grid = ESSGrid(2, resolution=20, sel_min=1e-7)
    return ESS.build(toy_query, grid)


@pytest.fixture(scope="session")
def toy_contours(toy_ess):
    return ContourSet(toy_ess)


@pytest.fixture(scope="session")
def toy_pb(toy_ess, toy_contours):
    return PlanBouquet(toy_ess, toy_contours)


@pytest.fixture(scope="session")
def toy_sb(toy_ess, toy_contours):
    return SpillBound(toy_ess, toy_contours)


@pytest.fixture(scope="session")
def toy_ab(toy_ess, toy_contours):
    return AlignedBound(toy_ess, toy_contours)


@pytest.fixture(scope="session")
def star_ess():
    query = make_star_query(3)
    grid = ESSGrid(3, resolution=8, sel_min=1e-6)
    return ESS.build(query, grid)


@pytest.fixture(scope="session")
def star_contours(star_ess):
    return ContourSet(star_ess)
