"""Shared fixtures: small schemas, queries, and built ESS instances.

ESS construction is the expensive step, so anything reusable is
session-scoped.  Tests that need mutation build their own copies.

Randomized tests draw their seed lists through :func:`fuzz_seeds`, so a
failure anywhere in the fuzz/randomized/conformance suites can be
replayed exactly by exporting ``REPRO_TEST_SEED=<seed>`` (the failing
seed is printed in the test report).
"""

from __future__ import annotations

import os

import pytest

# Keep workload-registry resolution small for everything test-shaped.
os.environ.setdefault("REPRO_PROFILE", "smoke")


def fuzz_seeds(defaults):
    """The seed list for a randomized test module.

    Returns ``defaults`` normally.  When ``REPRO_TEST_SEED`` is set, every
    adopting test collapses to just that seed — the one-line reproduction
    path for a fuzz failure::

        REPRO_TEST_SEED=21 PYTHONPATH=src python -m pytest tests/test_fuzz.py
    """
    pinned = os.environ.get("REPRO_TEST_SEED", "").strip()
    if pinned:
        return [int(pinned)]
    return list(defaults)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Print the failing seed of any seed-parametrized test.

    The section shows up in the failure report so the seed can be fed
    straight back through ``REPRO_TEST_SEED`` / :func:`fuzz_seeds`.
    """
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    callspec = getattr(item, "callspec", None)
    if not callspec or "seed" not in callspec.params:
        return
    seed = callspec.params["seed"]
    base_nodeid = item.nodeid.split("[")[0]
    report.sections.append((
        "randomized seed",
        f"reproduce with: REPRO_TEST_SEED={seed} "
        f"PYTHONPATH=src python -m pytest {base_nodeid}",
    ))

from repro import (  # noqa: E402  (env var must precede import)
    AlignedBound,
    Column,
    ContourSet,
    ESS,
    ESSGrid,
    ForeignKey,
    PlanBouquet,
    Schema,
    SPJQuery,
    SpillBound,
    Table,
    filter_pred,
    fk_column,
    join,
    key_column,
)


def make_toy_schema():
    """Three-table chain schema (part - lineitem - orders)."""
    return Schema("toy", tables=[
        Table("part", 2_000_000, [
            key_column("p_partkey", 2_000_000),
            Column("p_retailprice", ndv=30_000, indexed=True),
        ]),
        Table("lineitem", 60_000_000, [
            fk_column("l_partkey", 2_000_000, indexed=True),
            fk_column("l_orderkey", 15_000_000, indexed=True),
        ]),
        Table("orders", 15_000_000, [
            key_column("o_orderkey", 15_000_000),
        ]),
    ], foreign_keys=[
        ForeignKey("lineitem", "l_partkey", "part", "p_partkey"),
        ForeignKey("lineitem", "l_orderkey", "orders", "o_orderkey"),
    ])


def make_toy_query(schema=None):
    """The paper's Figure 1 example query with two epps."""
    schema = schema or make_toy_schema()
    return SPJQuery("EQ", schema, ["part", "lineitem", "orders"], joins=[
        join("part", "p_partkey", "lineitem", "l_partkey",
             selectivity=2e-5, error_prone=True),
        join("orders", "o_orderkey", "lineitem", "l_orderkey",
             selectivity=3e-4, error_prone=True),
    ], filters=[
        filter_pred("part", "p_retailprice", "<", 1000, selectivity=0.05),
    ])


def make_star_query(num_epps=3):
    """A small star query with a configurable number of epp joins."""
    dims = [
        Table(f"dim{i}", 10_000 * (i + 1), [
            key_column(f"d{i}_id", 10_000 * (i + 1)),
            Column(f"d{i}_attr", ndv=50),
        ])
        for i in range(num_epps)
    ]
    fact_cols = [fk_column(f"f_d{i}", 10_000 * (i + 1), indexed=True)
                 for i in range(num_epps)]
    schema = Schema("star", tables=dims + [
        Table("fact", 5_000_000, fact_cols + [Column("f_val", ndv=100)]),
    ])
    joins = [
        join("fact", f"f_d{i}", f"dim{i}", f"d{i}_id",
             selectivity=10.0 ** -(3 + i % 2), error_prone=True,
             name=f"j:f-d{i}")
        for i in range(num_epps)
    ]
    return SPJQuery(f"star{num_epps}", schema,
                    ["fact"] + [f"dim{i}" for i in range(num_epps)],
                    joins=joins,
                    filters=[filter_pred("dim0", "d0_attr", "=", 7,
                                         selectivity=0.02)])


@pytest.fixture(scope="session")
def toy_schema():
    return make_toy_schema()


@pytest.fixture(scope="session")
def toy_query(toy_schema):
    return make_toy_query(toy_schema)


@pytest.fixture(scope="session")
def toy_ess(toy_query):
    grid = ESSGrid(2, resolution=20, sel_min=1e-7)
    return ESS.build(toy_query, grid)


@pytest.fixture(scope="session")
def toy_contours(toy_ess):
    return ContourSet(toy_ess)


@pytest.fixture(scope="session")
def toy_pb(toy_ess, toy_contours):
    return PlanBouquet(toy_ess, toy_contours)


@pytest.fixture(scope="session")
def toy_sb(toy_ess, toy_contours):
    return SpillBound(toy_ess, toy_contours)


@pytest.fixture(scope="session")
def toy_ab(toy_ess, toy_contours):
    return AlignedBound(toy_ess, toy_contours)


@pytest.fixture(scope="session")
def star_ess():
    query = make_star_query(3)
    grid = ESSGrid(3, resolution=8, sel_min=1e-6)
    return ESS.build(query, grid)


@pytest.fixture(scope="session")
def star_contours(star_ess):
    return ContourSet(star_ess)
