"""The Theorem 4.6 adversarial lower-bound suite.

The paper proves no deterministic half-space-pruning discovery
algorithm can guarantee ``MSO < D``; :mod:`repro.arena.adversarial`
builds that proof's constructive workload.  These tests pin the
construction empirically: SpillBound and AlignedBound land on
``MSO >= D`` (exactly ``D`` here — flat surface, rotated spill
orders) at D = 2, 3, 4, stay within their proven ``D^2 + 3D``
ceilings, rebuild bit-identically from the same seed, and produce
zero conformance violations while doing it.
"""

import numpy as np
import pytest

from repro.arena.adversarial import (
    FAMILY_DIMS,
    AdversarialESS,
    adversarial_knobs,
    build_adversarial_instance,
)
from repro.conformance.monitors import ConformanceMonitor, monitoring
from repro.conformance.workloads import (
    WORKLOAD_FAMILIES,
    build_conformance_instance,
)
from repro.core.aligned_bound import AlignedBound
from repro.core.mso import evaluate_algorithm
from repro.core.plan_bouquet import PlanBouquet
from repro.core.spill_bound import SpillBound
from repro.errors import ReproError

pytestmark = pytest.mark.conformance

DIMS = (2, 3, 4)


def _instance(num_dims, resolution=5, scale=100.0):
    return build_adversarial_instance(
        seed=0, num_dims=num_dims, resolution=resolution, scale=scale)


class TestLowerBound:
    """The acceptance criterion: MSO >= D, within ceilings, clean."""

    @pytest.mark.parametrize("num_dims", DIMS)
    @pytest.mark.parametrize("label,cls", [("sb", SpillBound),
                                           ("ab", AlignedBound)])
    def test_mso_at_least_d_within_ceiling(self, num_dims, label, cls):
        instance = _instance(num_dims)
        algorithm = cls(instance.ess, instance.contours)
        monitor = ConformanceMonitor()
        with monitoring(monitor=monitor):
            evaluation = evaluate_algorithm(algorithm, engine="loop")
        assert evaluation.mso >= num_dims - 1e-9, (
            f"{label} beat the Theorem 4.6 lower bound at D={num_dims}")
        assert evaluation.mso <= algorithm.mso_guarantee() * (1 + 1e-9)
        # The construction is tight: every location costs exactly D * C.
        assert np.allclose(evaluation.suboptimality, num_dims)
        assert monitor.ok, monitor.violations

    @pytest.mark.parametrize("num_dims", DIMS)
    def test_traced_runs_conform(self, num_dims):
        instance = _instance(num_dims)
        monitor = ConformanceMonitor()
        last = instance.ess.grid.num_points - 1
        for cls in (SpillBound, AlignedBound, PlanBouquet):
            algorithm = cls(instance.ess, instance.contours)
            for flat in (0, last // 2, last):
                result = algorithm.run(flat, trace=True)
                monitor.check_run(result, algorithm, engine="loop")
        assert monitor.ok, monitor.violations

    def test_pb_is_outside_the_halfspace_class(self):
        # PlanBouquet covers the single flat contour with one plan and
        # sub-optimality 1 everywhere: the lower bound binds only the
        # half-space-pruning algorithms, and the construction shows it.
        instance = _instance(3)
        evaluation = evaluate_algorithm(
            PlanBouquet(instance.ess, instance.contours), engine="loop")
        assert np.allclose(evaluation.suboptimality, 1.0)


class TestConstruction:
    def test_single_flat_contour(self):
        for num_dims in DIMS:
            instance = _instance(num_dims, scale=250.0)
            assert len(instance.contours.budgets) == 1
            assert np.allclose(instance.contours.budgets, 250.0)
            assert np.allclose(instance.ess.optimal_cost, 250.0)

    def test_rotated_spill_orders_cover_every_dim(self):
        ess = _instance(4).ess
        for pid in range(4):
            order = ess.spill_order(pid)
            assert sorted(order) == [0, 1, 2, 3]
            assert order[0] == pid

    def test_every_residue_in_every_slice(self):
        # plan_ids = sum(coords) mod D puts every plan in every axis
        # slice, so each dimension has spillers at its extreme.
        ess = _instance(3, resolution=5).ess
        ids = np.asarray(ess.plan_ids).reshape(5, 5, 5)
        for axis in range(3):
            for k in range(5):
                sl = np.take(ids, k, axis=axis)
                assert set(np.unique(sl)) == {0, 1, 2}

    def test_validation_errors(self):
        with pytest.raises(ReproError, match="D >= 2"):
            AdversarialESS(1, 5, 100.0)
        with pytest.raises(ReproError, match="positive"):
            AdversarialESS(2, 5, 0.0)
        with pytest.raises(ReproError, match="plan id"):
            _instance(2).ess.plan_cost_array(99)


class TestSeededFamily:
    def test_knobs_deterministic(self):
        for seed in range(12):
            knobs = adversarial_knobs(seed)
            assert knobs == adversarial_knobs(seed)
            num_dims, resolution, scale = knobs
            assert num_dims in FAMILY_DIMS
            assert 5 <= resolution <= 7
            assert 50.0 <= scale <= 500.0

    def test_seeded_roundtrip_bit_identical(self):
        a = build_adversarial_instance(seed=7)
        b = build_adversarial_instance(seed=7)
        assert a.name == b.name
        assert np.array_equal(a.ess.optimal_cost, b.ess.optimal_cost)
        assert np.array_equal(a.ess.plan_ids, b.ess.plan_ids)
        assert np.array_equal(a.contours.budgets, b.contours.budgets)
        assert a.ess.plan_keys == b.ess.plan_keys

    def test_registry_family_routes_here(self):
        assert "adversarial" in WORKLOAD_FAMILIES
        instance = build_conformance_instance(2, family="adversarial")
        assert instance.ess.provenance["kind"] == "adversarial"
        twin = build_adversarial_instance(seed=2)
        assert np.array_equal(instance.ess.plan_ids, twin.ess.plan_ids)

    def test_unknown_family_rejected(self):
        with pytest.raises(ReproError, match="family"):
            build_conformance_instance(0, family="bogus")

    def test_worker_rebuild_bit_identical(self):
        from repro.perf.parallel import _build_algorithm, spec_for

        instance = build_adversarial_instance(seed=1)
        sb = SpillBound(instance.ess, instance.contours)
        spec = spec_for(sb)
        assert spec is not None and spec.kind == "adversarial"
        rebuilt = _build_algorithm(spec)
        assert np.array_equal(rebuilt.ess.optimal_cost,
                              instance.ess.optimal_cost)
        assert np.array_equal(rebuilt.ess.plan_ids, instance.ess.plan_ids)

    def test_engine_bit_identity(self):
        instance = _instance(3)
        loop = evaluate_algorithm(
            SpillBound(instance.ess, instance.contours), engine="loop")
        batch = evaluate_algorithm(
            SpillBound(instance.ess, instance.contours), engine="batch")
        assert np.array_equal(loop.suboptimality, batch.suboptimality)
