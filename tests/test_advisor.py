"""Unit tests for the deployment aids: epp selection and the advisor."""

import numpy as np
import pytest

from repro import StatisticsCatalog
from repro.core.advisor import (
    Advice,
    EppRecommendation,
    RobustnessAdvisor,
    recommend_epps,
)
from tests.conftest import make_toy_query, make_toy_schema


@pytest.fixture
def catalog():
    return StatisticsCatalog(make_toy_schema())


class TestRecommendEpps:
    def test_all_joins_assessed(self, catalog):
        query = make_toy_query()
        recs = recommend_epps(query, catalog)
        assert {r.name for r in recs} == {p.name for p in query.joins}

    def test_sorted_by_risk(self, catalog):
        recs = recommend_epps(make_toy_query(), catalog)
        risks = [r.risk for r in recs]
        assert risks == sorted(risks, reverse=True)

    def test_query_log_feedback_raises_risk(self, catalog):
        query = make_toy_query()
        baseline = {r.name: r.risk for r in recommend_epps(query, catalog)}
        informed = recommend_epps(
            query, catalog,
            observed={"j:part-lineitem": 0.05},  # 1/2M estimated: huge miss
        )
        by_name = {r.name: r for r in informed}
        assert by_name["j:part-lineitem"].risk > baseline["j:part-lineitem"]
        assert any("query log" in reason
                   for reason in by_name["j:part-lineitem"].reasons)

    def test_skewed_histogram_raises_risk(self, catalog):
        query = make_toy_query()
        baseline = {r.name: r.risk for r in recommend_epps(query, catalog)}
        skewed = np.concatenate([np.zeros(9_000), np.arange(1_000)])
        catalog.analyze("lineitem", "l_partkey", skewed, num_buckets=16)
        informed = {r.name: r.risk
                    for r in recommend_epps(query, catalog)}
        assert informed["j:part-lineitem"] > baseline["j:part-lineitem"]

    def test_max_epps_truncates(self, catalog):
        recs = recommend_epps(make_toy_query(), catalog, max_epps=1)
        assert len(recs) == 1

    def test_min_risk_filters(self, catalog):
        recs = recommend_epps(make_toy_query(), catalog, min_risk=1e9)
        assert recs == []

    def test_recommendations_feed_with_epps(self, catalog):
        query = make_toy_query()
        recs = recommend_epps(query, catalog, max_epps=1)
        marked = query.with_epps([recs[0].name])
        assert marked.num_epps == 1

    def test_str_rendering(self, catalog):
        rec = recommend_epps(make_toy_query(), catalog)[0]
        assert "risk" in str(rec)
        assert isinstance(rec, EppRecommendation)


class TestRobustnessAdvisor:
    def test_small_radius_prefers_native(self, toy_ess):
        advisor = RobustnessAdvisor(toy_ess)
        advice = advisor.advise(toy_ess.grid.terminus, error_radius=1.01)
        assert isinstance(advice, Advice)
        # With (almost) no anticipated error the native plan is optimal.
        assert advice.native_worst_case == pytest.approx(1.0, abs=0.5)
        assert not advice.use_robust

    def test_huge_radius_prefers_robust(self, toy_ess):
        advisor = RobustnessAdvisor(toy_ess)
        advice = advisor.advise(toy_ess.grid.origin, error_radius=1e9)
        assert advice.native_worst_case > advice.spillbound_guarantee
        assert advice.use_robust

    def test_worst_case_monotone_in_radius(self, toy_ess):
        advisor = RobustnessAdvisor(toy_ess)
        coords = toy_ess.grid.origin
        values = [advisor.native_worst_case(coords, r) for r in (2, 10, 1e4)]
        assert values == sorted(values)

    def test_advise_accepts_selectivity_vector(self, toy_ess):
        advisor = RobustnessAdvisor(toy_ess)
        advice = advisor.advise((1e-5, 1e-5), error_radius=10)
        assert advice.native_worst_case >= 1.0

    def test_crossover_radius_found(self, toy_ess):
        advisor = RobustnessAdvisor(toy_ess)
        radius = advisor.crossover_radius(toy_ess.grid.origin)
        assert radius is not None
        # At the crossover the advisor indeed flips to robust.
        assert advisor.advise(toy_ess.grid.origin, radius).use_robust

    def test_reason_is_informative(self, toy_ess):
        advisor = RobustnessAdvisor(toy_ess)
        advice = advisor.advise(toy_ess.grid.origin, error_radius=3)
        assert "SpillBound guarantee" in advice.reason
