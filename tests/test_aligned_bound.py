"""Unit tests for AlignedBound: partitions, PSA, penalties, guarantees."""

import pytest

from repro import (
    AlignedBound,
    SpillBound,
    contour_alignment_stats,
    evaluate_algorithm,
)
from repro.core.aligned_bound import set_partitions


class TestSetPartitions:
    @pytest.mark.parametrize("n,bell", [(0, 1), (1, 1), (2, 2), (3, 5),
                                        (4, 15), (5, 52), (6, 203)])
    def test_bell_numbers(self, n, bell):
        assert len(list(set_partitions(range(n)))) == bell

    def test_partitions_cover_exactly(self):
        for partition in set_partitions([0, 1, 2, 3]):
            flat = [x for part in partition for x in part]
            assert sorted(flat) == [0, 1, 2, 3]

    def test_no_empty_parts(self):
        for partition in set_partitions([0, 1, 2]):
            assert all(len(part) > 0 for part in partition)

    def test_partitions_distinct(self):
        seen = {
            frozenset(frozenset(p) for p in partition)
            for partition in set_partitions(range(4))
        }
        assert len(seen) == 15


class TestGuarantee:
    def test_range_formula(self, toy_ab):
        low, high = toy_ab.mso_guarantee_range()
        assert low == 6.0 and high == 10.0  # D=2

    def test_empirical_within_upper_bound(self, toy_ab):
        evaluation = evaluate_algorithm(toy_ab)
        assert evaluation.mso <= toy_ab.mso_guarantee() * (1 + 1e-9)

    def test_3d_within_upper_bound(self, star_ess, star_contours):
        ab = AlignedBound(star_ess, star_contours)
        evaluation = evaluate_algorithm(ab)
        assert evaluation.mso <= ab.mso_guarantee() * (1 + 1e-9)


class TestExecutionSemantics:
    def test_terminates_everywhere(self, toy_ab, toy_ess):
        for flat in range(0, toy_ess.grid.num_points, 19):
            result = toy_ab.run(flat)
            assert result.completed_plan_key
            assert result.suboptimality >= 1.0 - 1e-9

    def test_never_slower_than_sb_by_much(self, toy_ab, toy_sb, toy_ess):
        """AB may pay penalties but its MSO must stay comparable."""
        ab_eval = evaluate_algorithm(toy_ab)
        sb_eval = evaluate_algorithm(toy_sb)
        assert ab_eval.mso <= max(sb_eval.mso * 1.5, toy_ab.mso_guarantee())

    def test_max_penalty_recorded(self, toy_ab):
        result = toy_ab.run(250)
        assert result.max_penalty >= 1.0
        assert toy_ab.observed_max_penalty >= result.max_penalty

    def test_penalties_in_trace(self, toy_ab):
        result = toy_ab.run(250, trace=True)
        for record in result.executions:
            assert record.penalty >= 1.0 - 1e-12

    def test_at_most_one_execution_per_part(self, toy_ab, toy_ess):
        """Each contour pass executes at most one plan per partition
        part, hence no more than D spill executions per pass."""
        d = toy_ess.grid.num_dims
        result = toy_ab.run(333, trace=True)
        passes = {}
        for record in result.executions:
            if record.mode == "spill":
                passes.setdefault(record.contour, 0)
                passes[record.contour] += 1
        # With re-planning after each learning, a contour sees at most
        # D + D-1 + ... executions, bounded by D passes of <= D parts.
        assert all(v <= d * d for v in passes.values())

    def test_learning_correctness(self, toy_ab, toy_ess):
        grid = toy_ess.grid
        coords = (grid.resolution[0] - 3, 4)
        result = toy_ab.run(coords, trace=True)
        for record in result.executions:
            if record.mode == "spill" and record.completed:
                dim = record.spill_dim
                assert record.learned_selectivity == pytest.approx(
                    grid.selectivity(dim, coords[dim])
                )


class TestAlignmentStats:
    def test_fractions_monotone_in_threshold(self, toy_ess, toy_contours):
        stats = contour_alignment_stats(toy_ess, toy_contours)
        fractions = [stats.fraction_aligned(t) for t in (1.0, 1.2, 1.5, 2.0)]
        assert fractions == sorted(fractions)

    def test_fraction_bounds(self, toy_ess, toy_contours):
        stats = contour_alignment_stats(toy_ess, toy_contours)
        assert 0.0 <= stats.fraction_aligned(1.0) <= 1.0

    def test_max_penalty_aligns_everything(self, toy_ess, toy_contours):
        stats = contour_alignment_stats(toy_ess, toy_contours)
        if stats.max_penalty != float("inf"):
            assert stats.fraction_aligned(stats.max_penalty) == pytest.approx(
                1.0
            )

    def test_penalties_at_least_one(self, toy_ess, toy_contours):
        stats = contour_alignment_stats(toy_ess, toy_contours)
        assert all(p >= 1.0 for p in stats.contour_penalties)


class TestPartitionChoice:
    def test_partition_covers_active_dims(self, toy_ab):
        steps = toy_ab._plan_partition(3, {})
        dims_covered = set()
        for step in steps:
            dims_covered.update(step.dims)
        # Each active dim appears in exactly one part.
        total = sum(len(step.dims) for step in steps)
        assert total == len(dims_covered)

    def test_leaders_belong_to_their_parts(self, toy_ab):
        steps = toy_ab._plan_partition(4, {})
        for step in steps:
            assert step.leader in step.dims

    def test_native_steps_have_unit_penalty(self, toy_ab):
        steps = toy_ab._plan_partition(4, {})
        for step in steps:
            if step.native:
                assert step.penalty == pytest.approx(1.0)
