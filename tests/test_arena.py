"""The competing-algorithm arena: rivals, profiles, and the report.

Metamorphic properties pin the rival selectors' semantics:

* uniform cost scaling never changes the penalty-aware choice (the
  expected penalty scales linearly, so the argmin is invariant);
* plan relabeling never changes the minmax-regret choice (selection
  tie-breaks on the canonical plan key, never the surface-local id);
* the degenerate zero-error profile collapses every rival to the plain
  optimizer's choice at the estimate (cost-equality at ``qe``).

Plus: bit-identity across sweep engines, conformance-monitor exemption
for guarantee-less rivals, seeded arena determinism, the clean
unregistered-algorithm errors, and the ``repro arena`` CLI.
"""

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.arena.profiles import (
    DEFAULT_PROFILE,
    ErrorProfile,
    as_profile,
    profile_from_spec,
    zero_error_profile,
)
from repro.arena.report import ARENA_ALGORITHMS, arena_algorithms, run_arena
from repro.arena.rivals import (
    RIVAL_FACTORIES,
    MinmaxRegretSelector,
    PenaltyAwareSelector,
    ProbabilisticSelector,
)
from repro.cli import main
from repro.conformance.monitors import ConformanceMonitor, monitoring
from repro.core.mso import evaluate_algorithm
from repro.errors import ReproError
from repro.ess.grid import ESSGrid

pytestmark = pytest.mark.conformance

RIVAL_CLASSES = tuple(RIVAL_FACTORIES.values())


class StubESS:
    """A surface defined directly by a ``(plans, points)`` cost matrix."""

    def __init__(self, grid, costs, keys):
        self.grid = grid
        self._costs = np.asarray(costs, dtype=float)
        self.plan_keys = list(keys)
        self.optimal_cost = self._costs.min(axis=0)
        self.plan_ids = np.argmin(self._costs, axis=0).astype(np.int32)

    def resolve(self, flats):
        pass

    def resolve_all(self):
        pass

    def optimal_cost_at(self, flats):
        return self.optimal_cost[np.asarray(flats, dtype=np.int64)]

    def plan_cost_array(self, plan_id):
        return self._costs[plan_id]

    def plan_cost_at_points(self, plan_id, flats):
        return self._costs[plan_id][np.asarray(flats, dtype=np.int64)]

    def plan_cost_at(self, plan_id, flat):
        return float(self._costs[plan_id][int(flat)])


def make_stub(seed=0, num_plans=5, scale=1.0, permutation=None):
    """A seeded random stub surface, optionally scaled or relabeled."""
    grid = ESSGrid(2, resolution=6)
    rng = np.random.default_rng([0xBEEF, seed])
    costs = rng.uniform(10.0, 500.0, size=(num_plans, grid.num_points))
    keys = [f"plan-{p}" for p in range(num_plans)]
    if permutation is not None:
        costs = costs[list(permutation)]
        keys = [keys[p] for p in permutation]
    return StubESS(grid, costs * scale, keys)


class TestMetamorphic:
    @pytest.mark.parametrize("cls", RIVAL_CLASSES)
    def test_uniform_cost_scaling_is_invariant(self, cls):
        for seed in range(5):
            base = cls(make_stub(seed), estimate=(2, 3))
            scaled = cls(make_stub(seed, scale=7.5), estimate=(2, 3))
            assert (base.ess.plan_keys[base.plan_id]
                    == scaled.ess.plan_keys[scaled.plan_id])

    @pytest.mark.parametrize("cls", RIVAL_CLASSES)
    def test_plan_relabeling_is_invariant(self, cls):
        perm = (3, 0, 4, 1, 2)
        for seed in range(5):
            base = cls(make_stub(seed), estimate=(2, 3))
            shuffled = cls(make_stub(seed, permutation=perm),
                           estimate=(2, 3))
            assert (base.ess.plan_keys[base.plan_id]
                    == shuffled.ess.plan_keys[shuffled.plan_id])

    @pytest.mark.parametrize("cls", RIVAL_CLASSES)
    def test_zero_error_collapses_to_optimizer_choice(self, cls):
        for seed in range(5):
            ess = make_stub(seed)
            qe = (1, 4)
            flat = ess.grid.flat_index(qe)
            rival = cls(ess, profile=zero_error_profile(), estimate=qe)
            # With all mass on qe the chosen plan is cost-optimal there
            # (possibly tied with the native pick, never worse).
            assert ess.plan_cost_at(rival.plan_id, flat) == \
                float(ess.optimal_cost[flat])

    def test_selectors_actually_differ_somewhere(self):
        # The three scoring rules are distinct strategies, not aliases:
        # on at least one seeded surface they disagree.
        picks = set()
        for seed in range(10):
            ess = make_stub(seed, num_plans=8)
            picks.add(tuple(
                cls(ess, estimate=(2, 3)).plan_id
                for cls in (PenaltyAwareSelector, MinmaxRegretSelector,
                            ProbabilisticSelector)))
        assert any(len(set(p)) > 1 for p in picks)


class TestProfiles:
    def test_zero_error_support_is_the_estimate(self):
        grid = ESSGrid(3, resolution=5)
        flats, weights = zero_error_profile().support(grid, (1, 2, 3))
        assert flats.tolist() == [grid.flat_index((1, 2, 3))]
        assert weights.tolist() == [1.0]

    def test_weights_sum_to_one_with_boundary_clipping(self):
        grid = ESSGrid(2, resolution=5)
        for qe in ((0, 0), (4, 4), (2, 0)):
            flats, weights = DEFAULT_PROFILE.support(grid, qe)
            assert np.isclose(weights.sum(), 1.0)
            assert flats.size == np.unique(flats).size

    def test_spec_roundtrip(self):
        profile = ErrorProfile(width=3, spread=0.5, kind="uniform")
        assert profile_from_spec(profile.spec()) == profile
        assert as_profile(profile.spec()) == profile
        assert as_profile(None) == DEFAULT_PROFILE

    def test_validation(self):
        with pytest.raises(ReproError, match="kind"):
            ErrorProfile(kind="cauchy")
        with pytest.raises(ReproError, match="width"):
            ErrorProfile(width=-1)
        with pytest.raises(ReproError, match="spread"):
            ErrorProfile(width=2, spread=0.0)
        with pytest.raises(ReproError, match="error profile"):
            as_profile(3.14)


class TestRivalRuns:
    @pytest.mark.parametrize("name", sorted(RIVAL_FACTORIES))
    def test_engines_bit_identical(self, toy_ess, toy_contours, name):
        cls = RIVAL_FACTORIES[name]
        loop = evaluate_algorithm(cls(toy_ess, toy_contours),
                                  engine="loop")
        batch = evaluate_algorithm(cls(toy_ess, toy_contours),
                                   engine="batch")
        assert np.array_equal(loop.suboptimality, batch.suboptimality)
        # Division by an independently computed optimum can round a
        # ulp under 1 where the rival holds the optimal plan.
        assert loop.suboptimality.min() >= 1.0 - 1e-9

    def test_traced_run_is_monitor_exempt(self, toy_ess, toy_contours):
        # Rivals have no mso_guarantee: the monitor must accept their
        # unbounded sub-optimality and their single budget-free record.
        monitor = ConformanceMonitor()
        for cls in RIVAL_CLASSES:
            rival = cls(toy_ess, toy_contours)
            evaluation = evaluate_algorithm(rival, engine="loop")
            result = rival.run(evaluation.worst_location, trace=True)
            monitor.check_run(result, rival)
            monitor.check_sweep(evaluation.suboptimality, rival,
                                engine="loop")
        assert monitor.ok, monitor.violations
        assert not hasattr(cls(toy_ess, toy_contours), "mso_guarantee")

    def test_oracle_floor_still_enforced_for_rivals(self, toy_ess,
                                                    toy_contours):
        monitor = ConformanceMonitor()
        rival = PenaltyAwareSelector(toy_ess, toy_contours)
        result = rival.run(0, trace=True)
        result.total_cost = result.optimal_cost * 0.5
        monitor.check_run(result, rival)
        assert "mso-bound" in monitor.violations_by_invariant()

    def test_parallel_spec_roundtrip(self):
        from repro.conformance.workloads import build_conformance_instance
        from repro.perf.parallel import _build_algorithm, spec_for

        instance = build_conformance_instance(3)
        origin = instance.ess.grid.origin
        estimate = tuple(c + 1 for c in origin)
        rival = MinmaxRegretSelector(
            instance.ess, instance.contours,
            profile=ErrorProfile(width=1, spread=2.0), estimate=estimate)
        spec = spec_for(rival)
        assert spec is not None
        kwargs = dict(spec.algo_kwargs)
        assert kwargs["profile"] == ("error-profile", "gaussian", 1, 2.0)
        assert kwargs["estimate"] == estimate
        rebuilt = _build_algorithm(spec)
        assert type(rebuilt) is MinmaxRegretSelector
        assert rebuilt.plan_id == rival.plan_id
        assert rebuilt.profile == rival.profile


class TestArenaReport:
    LINEUP = ("sb", "penalty", "regret")

    def test_arena_rows_and_aggregates(self):
        report = run_arena(num_workloads=2, algorithms=self.LINEUP,
                           engine="batch")
        assert len(report.rows) == 2 * len(self.LINEUP)
        assert report.num_violations == 0
        for row in report.rows:
            assert row.mso >= row.aso >= 1.0 - 1e-9
            if row.algorithm == "sb":
                assert row.guarantee is not None
                assert row.mso <= row.guarantee * (1 + 1e-9)
            else:
                assert row.guarantee is None
        aggregates = report.by_algorithm()
        assert set(aggregates) == set(self.LINEUP)
        payload = report.to_payload()
        json.dumps(payload)  # BENCH-embeddable
        assert payload["num_violations"] == 0
        series = dict(report.scatter_series())
        assert all(len(series[name]) == 2 for name in self.LINEUP)

    def test_arena_is_seed_deterministic(self):
        a = run_arena(num_workloads=2, algorithms=self.LINEUP,
                      engine="batch")
        b = run_arena(num_workloads=2, algorithms=self.LINEUP,
                      engine="batch")
        assert [(r.algorithm, r.mso, r.aso) for r in a.rows] == \
            [(r.algorithm, r.mso, r.aso) for r in b.rows]

    def test_adversarial_family_arena(self):
        report = run_arena(num_workloads=1, family="adversarial",
                           algorithms=("sb", "penalty"))
        assert report.num_violations == 0
        by_algo = report.by_algorithm()
        assert by_algo["sb"]["worst_mso"] >= 2.0  # the lower bound
        assert np.isclose(by_algo["penalty"]["worst_mso"], 1.0)

    def test_rejects_bad_inputs(self, toy_ess, toy_contours):
        with pytest.raises(ReproError, match="at least one"):
            run_arena(num_workloads=0)
        with pytest.raises(ReproError, match="family"):
            run_arena(num_workloads=1, family="bogus")
        with pytest.raises(ReproError, match="unknown arena algorithm"):
            arena_algorithms(
                SimpleNamespace(ess=toy_ess, contours=toy_contours),
                algorithms=("sb", "nope"))

    def test_default_lineup_names_resolve(self, toy_ess, toy_contours):
        instance = SimpleNamespace(ess=toy_ess, contours=toy_contours)
        lineup = arena_algorithms(instance)
        assert tuple(lineup) == ARENA_ALGORITHMS


class TestUnregisteredAlgorithmErrors:
    """The satellite regression: opaque KeyErrors became ReproErrors."""

    def test_evaluate_without_run_or_engine(self, toy_ess):
        shell = SimpleNamespace(ess=toy_ess)
        with pytest.raises(ReproError, match="SimpleNamespace"):
            evaluate_algorithm(shell, engine="loop")

    def test_worker_rejects_unknown_algorithm_name(self):
        from repro.perf.parallel import SweepSpec, _build_algorithm

        spec = SweepSpec(kind="conformance",
                         build_kwargs=(("seed", 0),),
                         algorithm="nope", algo_kwargs=())
        with pytest.raises(ReproError, match="nope"):
            _build_algorithm(spec)

    def test_cli_names_the_unknown_algorithm(self, capsys):
        code = main(["evaluate", "2D_Q91", "--algorithms", "pb,bogus"])
        assert code == 2
        assert "bogus" in capsys.readouterr().err


class TestArenaCommand:
    def test_arena_cli_smoke(self, capsys, tmp_path):
        json_path = tmp_path / "arena.json"
        svg_path = tmp_path / "arena.svg"
        code = main(["arena", "--workloads", "1",
                     "--algorithms", "sb,penalty", "--engine", "batch",
                     "--json", str(json_path), "--svg", str(svg_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "penalty" in out and "0 violation(s)" in out
        payload = json.loads(json_path.read_text())
        assert payload["num_violations"] == 0
        assert {row["algorithm"] for row in payload["rows"]} == \
            {"sb", "penalty"}
        assert svg_path.read_text().startswith("<svg")

    def test_arena_cli_rejects_unknowns(self, capsys):
        assert main(["arena", "--workloads", "1",
                     "--family", "bogus"]) == 2
        assert main(["arena", "--workloads", "1",
                     "--profile-kind", "cauchy"]) == 2
        assert main(["arena", "--workloads", "1",
                     "--algorithms", "sb,nope"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "cauchy" in err and "nope" in err
