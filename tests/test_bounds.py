"""Unit tests for the closed-form MSO bound calculus."""

import pytest

from repro import DiscoveryError
from repro.core.bounds import (
    ab_aligned_mso_bound,
    ab_mso_bound_range,
    guarantee_table,
    inflate_for_cost_error,
    optimal_ratio_pb,
    optimal_ratio_sb,
    pb_mso_bound,
    sb_mso_bound,
)


class TestFormulas:
    def test_pb_at_doubling_matches_paper(self):
        assert pb_mso_bound(3, lam=0.2, ratio=2.0) == pytest.approx(
            4.0 * 1.2 * 3
        )

    def test_sb_at_doubling_is_quadratic(self):
        for d in range(1, 8):
            assert sb_mso_bound(d, 2.0) == pytest.approx(d * d + 3 * d)

    def test_ab_aligned_at_doubling(self):
        for d in range(1, 8):
            assert ab_aligned_mso_bound(d, 2.0) == pytest.approx(2 * d + 2)

    def test_range_endpoints(self):
        low, high = ab_mso_bound_range(4)
        assert low == pytest.approx(10.0)
        assert high == pytest.approx(28.0)

    @pytest.mark.parametrize("ratio", [0.5, 1.0])
    def test_invalid_ratio_rejected(self, ratio):
        with pytest.raises(DiscoveryError):
            sb_mso_bound(2, ratio)

    def test_invalid_epp_counts(self):
        with pytest.raises(DiscoveryError):
            sb_mso_bound(0)
        with pytest.raises(DiscoveryError):
            ab_aligned_mso_bound(0)


class TestOptimalRatios:
    def test_pb_optimum_is_doubling(self):
        """Footnote 3: doubling minimizes PlanBouquet's bound."""
        best = optimal_ratio_pb()
        assert best == 2.0
        around = pb_mso_bound(3, 0.2, best)
        for ratio in (1.5, 1.8, 2.2, 3.0):
            assert pb_mso_bound(3, 0.2, ratio) >= around - 1e-9

    def test_sb_ideal_ratio_2d_is_1_8(self):
        """Section 4.2 remark: ~1.8 improves the 2-epp bound to 9.9."""
        ratio = optimal_ratio_sb(2)
        assert ratio == pytest.approx(1.8165, abs=1e-3)
        assert sb_mso_bound(2, ratio) == pytest.approx(9.899, abs=1e-2)
        assert sb_mso_bound(2, ratio) < sb_mso_bound(2, 2.0)

    def test_sb_ideal_ratio_is_a_minimum(self):
        for d in (2, 3, 5):
            best = optimal_ratio_sb(d)
            value = sb_mso_bound(d, best)
            for eps in (-0.05, 0.05):
                assert sb_mso_bound(d, best + eps) >= value - 1e-9

    def test_ideal_ratio_shrinks_with_d(self):
        ratios = [optimal_ratio_sb(d) for d in (2, 3, 4, 5, 6)]
        assert ratios == sorted(ratios, reverse=True)
        assert all(1.0 < r < 2.0 for r in ratios)

    def test_marginal_improvement_only(self):
        """Paper: 'only marginal improvements' at the studied D."""
        for d in (2, 3, 4, 5, 6):
            at_two = sb_mso_bound(d, 2.0)
            at_best = sb_mso_bound(d, optimal_ratio_sb(d))
            assert at_best <= at_two
            assert at_best >= at_two * 0.85  # within ~15%


class TestInflation:
    def test_section7_inflation(self):
        assert inflate_for_cost_error(10.0, 0.3) == pytest.approx(16.9)

    def test_zero_delta_identity(self):
        assert inflate_for_cost_error(28.0, 0.0) == 28.0

    def test_negative_delta_rejected(self):
        with pytest.raises(DiscoveryError):
            inflate_for_cost_error(10.0, -0.1)


class TestIntegrationWithAlgorithms:
    def test_guarantee_table_shape(self):
        rows = guarantee_table()
        assert [r["D"] for r in rows] == [2, 3, 4, 5, 6]
        for row in rows:
            assert row["lower_bound"] <= row["ab_aligned"] <= row["sb"]

    def test_spillbound_uses_ratio_aware_bound(self, toy_ess):
        from repro import ContourSet, SpillBound

        contours = ContourSet(toy_ess, cost_ratio=3.0)
        sb = SpillBound(toy_ess, contours)
        assert sb.mso_guarantee() == pytest.approx(sb_mso_bound(2, 3.0))

    def test_guarantee_still_holds_at_nonstandard_ratio(self, toy_ess):
        from repro import ContourSet, SpillBound, evaluate_algorithm

        for ratio in (1.8165, 3.0):
            contours = ContourSet(toy_ess, cost_ratio=ratio)
            sb = SpillBound(toy_ess, contours)
            evaluation = evaluate_algorithm(sb)
            assert evaluation.mso <= sb.mso_guarantee() * (1 + 1e-9)

    def test_pb_guarantee_holds_at_nonstandard_ratio(self, toy_ess):
        from repro import ContourSet, PlanBouquet, evaluate_algorithm

        contours = ContourSet(toy_ess, cost_ratio=3.0)
        pb = PlanBouquet(toy_ess, contours)
        evaluation = evaluate_algorithm(pb)
        assert evaluation.mso <= pb.mso_guarantee() * (1 + 1e-9)
