"""Tests for cost-model calibration against engine measurements."""

import pytest

from repro import DEFAULT_COST_MODEL, DataGenerator, Optimizer
from repro.core.bounds import inflate_for_cost_error
from repro.optimizer.calibration import (
    CalibrationReport,
    calibrate,
    measure_delta,
)
from tests.test_engine_iterators import mini_schema

from repro import SPJQuery, filter_pred, join


@pytest.fixture(scope="module")
def probes():
    """A probe workload: several distinct plans over generated data."""
    schema = mini_schema()
    query = SPJQuery("probe", schema, ["dim", "fact"], joins=[
        join("dim", "d_id", "fact", "f_dim_id", selectivity=1 / 40,
             error_prone=True),
    ], filters=[filter_pred("dim", "d_attr", "=", 2, selectivity=0.25)])
    gen = DataGenerator(schema, seed=5)
    gen.generate_table("dim")
    gen.generate_table("fact", fk_skew={"f_dim_id": 0.5})
    from repro.engine.driver import measured_join_selectivity

    true_sel = measured_join_selectivity(gen, query, query.joins[0])
    env = {0: true_sel}
    optimizer = Optimizer(query)
    plans = []
    seen = set()
    for sels in [(1e-4,), (1e-2,), (0.5,), (1.0,)]:
        plan, _ = optimizer.optimize_at(sels)
        if plan.key not in seen:
            seen.add(plan.key)
            plans.append(plan)
    return [(plan, query, gen, env) for plan in plans]


class TestMeasureDelta:
    def test_true_model_has_small_delta(self, probes):
        """With the engine's own constants and true selectivities, the
        residual delta is only cardinality/approximation noise."""
        delta = measure_delta(probes, DEFAULT_COST_MODEL)
        assert delta < 0.6

    def test_drifted_model_has_larger_delta(self, probes):
        drifted = DEFAULT_COST_MODEL.with_noise(0.5, seed=3)
        assert measure_delta(probes, drifted) > measure_delta(
            probes, DEFAULT_COST_MODEL
        ) - 1e-9

    def test_delta_nonnegative(self, probes):
        assert measure_delta(probes, DEFAULT_COST_MODEL) >= 0.0


class TestCalibrate:
    def test_recovers_from_drift(self, probes):
        drifted = DEFAULT_COST_MODEL.with_noise(0.5, seed=3)
        report = calibrate(probes, drifted)
        assert isinstance(report, CalibrationReport)
        assert report.num_probes == len(probes)
        assert report.delta_after <= report.delta_before + 1e-9

    def test_fitted_constants_positive(self, probes):
        report = calibrate(probes, DEFAULT_COST_MODEL.with_noise(0.3))
        for field in ("seq_tuple", "hash_build", "output_tuple"):
            assert getattr(report.model, field) > 0

    def test_empty_probes_rejected(self):
        from repro.errors import DiscoveryError

        with pytest.raises((DiscoveryError, ValueError)):
            calibrate([], DEFAULT_COST_MODEL)

    def test_feeds_section7_inflation(self, probes):
        """The measured delta plugs into the (1+delta)^2 bound."""
        delta = measure_delta(probes, DEFAULT_COST_MODEL)
        inflated = inflate_for_cost_error(28.0, delta)
        assert inflated >= 28.0
