"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(["--profile", "smoke", *argv])
    assert code == 0
    return capsys.readouterr().out


class TestInformational:
    def test_list(self, capsys):
        out = run_cli(capsys, "list")
        assert "4D_Q91" in out and "JOB" in out

    def test_describe(self, capsys):
        out = run_cli(capsys, "describe", "3D_Q15")
        assert "D=3" in out
        assert "POSP size" in out

    def test_guarantees(self, capsys):
        out = run_cli(capsys, "guarantees")
        assert "ideal ratio" in out
        assert "9.90" in out  # the paper's 2-epp 1.8-ratio bound

    def test_guarantees_custom_ratio(self, capsys):
        out = run_cli(capsys, "guarantees", "--ratio", "3.0")
        assert "ratio 3.0" in out


class TestRuns:
    def test_run_sb_default_qa(self, capsys):
        out = run_cli(capsys, "run", "3D_Q15")
        assert "sub-optimality" in out
        assert "spill" in out

    def test_run_native_with_qa(self, capsys):
        out = run_cli(capsys, "run", "3D_Q15", "--algorithm", "native",
                      "--qa", "0.001,0.001,0.001")
        assert "sub-optimality" in out

    def test_run_each_algorithm(self, capsys):
        for algorithm in ("pb", "sb", "ab"):
            out = run_cli(capsys, "run", "3D_Q15", "--algorithm", algorithm)
            assert "execution sequence" in out

    def test_evaluate(self, capsys):
        out = run_cli(capsys, "evaluate", "3D_Q15", "--algorithms", "sb")
        assert "MSOe" in out

    def test_advise(self, capsys):
        out = run_cli(capsys, "advise", "3D_Q15", "--radius", "2")
        assert "recommendation" in out


class TestExperiments:
    @pytest.mark.parametrize("name", ["fig8", "fig9", "lower-bound"])
    def test_cheap_experiments(self, capsys, name):
        out = run_cli(capsys, "experiment", name)
        assert "==" in out

    def test_table3(self, capsys):
        out = run_cli(capsys, "experiment", "table3")
        assert "Table 3" in out


class TestErrorPaths:
    """Bad inputs must fail loudly, with a nonzero exit and a message
    on stderr — never a traceback and never a silent success."""

    def test_unknown_engine_rejected(self, capsys):
        code = main(["wallclock", "--engine", "warp"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--engine" in err and "warp" in err

    @pytest.mark.parametrize("bad", ["abc", "1", "0", "-3"])
    def test_wallclock_bad_resolution_rejected(self, capsys, bad):
        with pytest.raises(SystemExit) as excinfo:
            main(["wallclock", "--resolution", bad])
        assert excinfo.value.code == 2
        assert "resolution" in capsys.readouterr().err

    def test_bench_bad_resolution_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--resolution", "1"])
        assert excinfo.value.code == 2
        assert "resolution" in capsys.readouterr().err

    def test_bench_unknown_workload_reports_error(self, capsys):
        code = main(["--profile", "smoke", "bench", "--query", "NO_SUCH"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "NO_SUCH" in err

    def test_describe_unknown_workload_reports_error(self, capsys):
        code = main(["--profile", "smoke", "describe", "NO_SUCH_QUERY"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_check_unknown_engine_reports_error(self, capsys):
        code = main(["check", "--workloads", "1", "--engines", "loop,bogus"])
        assert code == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "loop" in err

    def test_bench_json_directory_rejected_before_measuring(
        self, capsys, tmp_path
    ):
        """An unwritable --json destination must fail in seconds with a
        clean ReproError, not as an OSError traceback after the whole
        benchmark has run."""
        code = main(["--profile", "smoke", "bench", "--json",
                     str(tmp_path)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "directory" in err

    def test_bench_json_unwritable_parent_rejected(self, capsys, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        code = main(["--profile", "smoke", "bench", "--json",
                     str(blocker / "out.json")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_loadgen_json_directory_rejected(self, capsys, tmp_path):
        code = main(["loadgen", "--json", str(tmp_path)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")


class TestBuildAndSave:
    def test_build(self, capsys):
        out = run_cli(capsys, "build", "3D_Q15")
        assert "built ESS" in out

    def test_build_with_save(self, capsys, tmp_path):
        target = tmp_path / "q.npz"
        out = run_cli(capsys, "build", "3D_Q15", "--save", str(target))
        assert target.exists()
        assert "saved" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
